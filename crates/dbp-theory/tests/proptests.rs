//! Property tests for the closed-form bounds: monotonicity in μ, ordering
//! between strategies, and argmin correctness across the parameter space.

use dbp_theory::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// All the μ-dependent upper bounds are non-decreasing in μ.
    #[test]
    fn bounds_monotone_in_mu(a in 1.0f64..1e5, delta in 0.01f64..1e4) {
        let b = a * 1.01;
        prop_assert!(ff_non_clairvoyant(a) <= ff_non_clairvoyant(b));
        prop_assert!(next_fit_bound(a) <= next_fit_bound(b));
        prop_assert!(hybrid_ff_bound_unknown_mu(a) <= hybrid_ff_bound_unknown_mu(b));
        prop_assert!(cbdt_best_known(a) <= cbdt_best_known(b));
        prop_assert!(cbd_best_known(a).0 <= cbd_best_known(b).0 + 1e-9);
        // The general CBDT form is monotone in μ for fixed ρ, Δ.
        let rho = delta * 3.0;
        prop_assert!(cbdt_bound(rho, delta, a) <= cbdt_bound(rho, delta, b));
    }

    /// cbdt_optimal_rho really is the argmin of the general bound
    /// (sampled neighbourhood check).
    #[test]
    fn cbdt_rho_argmin(mu in 1.0f64..1e4, delta in 0.1f64..1e3, mult in 0.05f64..20.0) {
        let star = cbdt_optimal_rho(delta, mu);
        let at_star = cbdt_bound(star, delta, mu);
        prop_assert!(cbdt_bound(star * mult, delta, mu) >= at_star - 1e-9);
        prop_assert!((at_star - cbdt_best_known(mu)).abs() < 1e-9);
    }

    /// cbd_best_known's n is the argmin over a wide range.
    #[test]
    fn cbd_n_argmin(mu in 1.0f64..1e6) {
        let (best, n_star) = cbd_best_known(mu);
        for n in 1..=80u32 {
            let v = mu.powf(1.0 / n as f64) + n as f64 + 3.0;
            prop_assert!(v >= best - 1e-9, "n={} beats n*={} at mu={}", n, n_star, mu);
        }
    }

    /// The §5.3 improvement holds everywhere: the Theorem 5 bound is below
    /// Shalom et al.'s BucketFirstFit bound whenever μ ≥ α (so the bucket
    /// count is ≥ 1).
    #[test]
    fn improvement_over_bucket_ff_everywhere(alpha in 1.1f64..8.0, factor in 1.0f64..1e4) {
        let mu = alpha * factor;
        prop_assert!(cbd_bound(alpha, mu) <= bucket_ff_bound(alpha, mu) + 1e-9);
    }

    /// Figure 8's qualitative shape at arbitrary μ: the winner among the
    /// two classification strategies flips exactly at μ = 4.
    #[test]
    fn crossover_shape(mu in 1.0f64..1e4) {
        let cbdt = cbdt_best_known(mu);
        let (cbd, _) = cbd_best_known(mu);
        if mu < 4.0 {
            prop_assert!(cbdt <= cbd + 1e-9);
        } else {
            prop_assert!(cbd <= cbdt + 1e-9);
        }
    }
}
