//! Closed-form competitive/approximation ratio bounds.
//!
//! Sources, by theorem:
//!
//! | Function | Result | Source |
//! |---|---|---|
//! | [`ddff_approx`] | 5 | Theorem 1 |
//! | [`dual_coloring_approx`] | 4 | Theorem 2 |
//! | [`online_lower_bound`] | `(1+√5)/2` | Theorem 3 |
//! | [`cbdt_bound`] / [`cbdt_best_known`] | `ρ/Δ + μΔ/ρ + 3` / `2√μ+3` | Theorem 4 |
//! | [`cbd_bound`] / [`cbd_best_known`] | `α + ⌈log_α μ⌉ + 4` / `min_n μ^{1/n}+n+3` | Theorem 5 |
//! | [`ff_non_clairvoyant`] | `μ + 4` | Tang et al. (IPDPS'16), quoted in §5.3 |
//! | [`any_fit_lower_bound`] | `μ + 1` | Li et al., quoted in §1 |
//! | [`next_fit_bound`] | `2μ + 1` | Kamali & López-Ortiz, quoted in §1 |
//! | [`hybrid_ff_bound_unknown_mu`] | `8μ/7 + 55/7` | Li et al., quoted in §1 |
//! | [`hybrid_ff_bound_known_mu`] | `μ + 5` | Li et al., quoted in §1 |
//! | [`bucket_ff_bound`] | `(2α+2)·⌈log_α μ⌉` | Shalom et al., quoted in §5.3 |
//! | [`non_clairvoyant_lower_bound`] | `μ` | Li et al./Kamali et al., quoted in §5 |

/// Theorem 1: Duration Descending First Fit is a 5-approximation.
pub const fn ddff_approx() -> f64 {
    5.0
}

/// Theorem 2: Dual Coloring is a 4-approximation.
pub const fn dual_coloring_approx() -> f64 {
    4.0
}

/// Theorem 3: no deterministic online packer beats the golden ratio
/// `(1+√5)/2 ≈ 1.618` for Clairvoyant MinUsageTime DBP.
pub fn online_lower_bound() -> f64 {
    (1.0 + 5.0_f64.sqrt()) / 2.0
}

/// The lower bound `μ` on any online algorithm in the *non-clairvoyant*
/// setting (Li et al. / Kamali et al.), for contrast with Theorem 3.
pub fn non_clairvoyant_lower_bound(mu: f64) -> f64 {
    mu
}

/// Theorem 4 (general form): classify-by-departure-time First Fit with
/// interval length `ρ` has competitive ratio at most `ρ/Δ + μΔ/ρ + 3`.
pub fn cbdt_bound(rho: f64, delta: f64, mu: f64) -> f64 {
    assert!(rho > 0.0 && delta > 0.0 && mu >= 1.0);
    rho / delta + mu * delta / rho + 3.0
}

/// Theorem 4 (optimized): with `Δ`, `μ` known, `ρ = √μ·Δ` yields `2√μ + 3`.
pub fn cbdt_best_known(mu: f64) -> f64 {
    assert!(mu >= 1.0);
    2.0 * mu.sqrt() + 3.0
}

/// Theorem 5 (general form): classify-by-duration First Fit with category
/// ratio `α` has competitive ratio at most `α + ⌈log_α μ⌉ + 4`.
pub fn cbd_bound(alpha: f64, mu: f64) -> f64 {
    assert!(alpha > 1.0 && mu >= 1.0);
    alpha + ceil_log(alpha, mu) + 4.0
}

/// Theorem 5 (optimized): with durations known, `min_{n≥1} μ^{1/n} + n + 3`;
/// returns `(bound, argmin n)`.
pub fn cbd_best_known(mu: f64) -> (f64, u32) {
    assert!(mu >= 1.0);
    let f = |n: u32| mu.powf(1.0 / n as f64) + n as f64 + 3.0;
    let mut best_n = 1u32;
    let mut best = f(1);
    for n in 2..=128 {
        let v = f(n);
        if v < best {
            best = v;
            best_n = n;
        } else if v > best + 2.0 {
            break;
        }
    }
    (best, best_n)
}

/// The best `α` for [`cbd_bound`] when `μ` is known but the item stream is
/// classified by the unknown-durations rule; found by scanning candidate
/// `α` (the bound is piecewise in `⌈log_α μ⌉`). Returns `(bound, α)`.
pub fn cbd_best_alpha(mu: f64) -> (f64, f64) {
    assert!(mu >= 1.0);
    // For each integer k = ⌈log_α μ⌉, the best α is μ^{1/k} (the smallest α
    // giving that k), yielding bound μ^{1/k} + k + 4. The k = 1 candidate
    // seeds the scan (α = μ, bound μ + 5); since α ≥ 1 forces the bound to
    // at least k + 5, the scan stops once no larger k can win.
    let seed_alpha = mu.max(1.0 + 1e-12);
    let mut best = (seed_alpha + 1.0 + 4.0, seed_alpha);
    for k in 2..=128u32 {
        if k as f64 + 5.0 >= best.0 {
            break;
        }
        let alpha = mu.powf(1.0 / k as f64).max(1.0 + 1e-12);
        let b = alpha + k as f64 + 4.0;
        if b < best.0 {
            best = (b, alpha);
        }
    }
    best
}

/// Tang et al. (IPDPS 2016): First Fit is `(μ+4)`-competitive in the
/// non-clairvoyant setting — the baseline curve of Figure 8.
pub fn ff_non_clairvoyant(mu: f64) -> f64 {
    assert!(mu >= 1.0);
    mu + 4.0
}

/// Li et al.: no Any Fit algorithm is better than `(μ+1)`-competitive in
/// the non-clairvoyant setting.
pub fn any_fit_lower_bound(mu: f64) -> f64 {
    mu + 1.0
}

/// Kamali & López-Ortiz: Next Fit is `(2μ+1)`-competitive.
pub fn next_fit_bound(mu: f64) -> f64 {
    2.0 * mu + 1.0
}

/// Li et al.: Hybrid First Fit without knowledge of `μ`: `8μ/7 + 55/7`.
pub fn hybrid_ff_bound_unknown_mu(mu: f64) -> f64 {
    8.0 * mu / 7.0 + 55.0 / 7.0
}

/// Li et al.: Hybrid First Fit with `μ` known: `μ + 5`.
pub fn hybrid_ff_bound_known_mu(mu: f64) -> f64 {
    mu + 5.0
}

/// Shalom et al.: BucketFirstFit for online interval scheduling with
/// bounded parallelism: `(2α+2)·⌈log_α μ⌉`. The paper's §5.3 remark shows
/// Theorem 5 improves this to `α + ⌈log_α μ⌉ + 4` (and generalizes it to
/// arbitrary sizes).
pub fn bucket_ff_bound(alpha: f64, mu: f64) -> f64 {
    assert!(alpha > 1.0 && mu >= 1.0);
    (2.0 * alpha + 2.0) * ceil_log(alpha, mu).max(1.0)
}

/// `⌈log_α μ⌉` computed robustly near integer boundaries.
fn ceil_log(alpha: f64, mu: f64) -> f64 {
    if mu <= 1.0 {
        return 0.0;
    }
    let raw = mu.ln() / alpha.ln();
    let mut k = raw.ceil();
    // Guard the k−1 boundary against FP noise: α^(k−1) ≥ μ means k too big.
    if k >= 1.0 && alpha.powf(k - 1.0) >= mu * (1.0 - 1e-12) {
        k -= 1.0;
    }
    k.max(0.0)
}

/// The optimal `ρ` of Theorem 4 given `Δ` and `μ`: `√μ·Δ`.
pub fn cbdt_optimal_rho(delta: f64, mu: f64) -> f64 {
    mu.sqrt() * delta
}

/// One row of the known-results landscape at a given `μ`.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundRow {
    /// Algorithm / result name.
    pub name: &'static str,
    /// Source (paper section or citation).
    pub source: &'static str,
    /// Whether the value is an upper bound on an algorithm's ratio
    /// (`true`) or a lower bound on every algorithm (`false`).
    pub is_upper: bool,
    /// The numeric bound at the requested `μ`.
    pub value: f64,
}

/// The full landscape of competitive/approximation bounds the paper
/// states or quotes, evaluated at `μ` — the related-work table as data.
pub fn known_bounds(mu: f64) -> Vec<BoundRow> {
    assert!(mu >= 1.0);
    let (cbd, _) = cbd_best_known(mu);
    vec![
        BoundRow {
            name: "any online algorithm (clairvoyant)",
            source: "Theorem 3",
            is_upper: false,
            value: online_lower_bound(),
        },
        BoundRow {
            name: "any online algorithm (non-clairvoyant)",
            source: "Li et al. / Kamali et al.",
            is_upper: false,
            value: non_clairvoyant_lower_bound(mu),
        },
        BoundRow {
            name: "any Any Fit algorithm (non-clairvoyant)",
            source: "Li et al.",
            is_upper: false,
            value: any_fit_lower_bound(mu),
        },
        BoundRow {
            name: "First Fit (non-clairvoyant)",
            source: "Tang et al.",
            is_upper: true,
            value: ff_non_clairvoyant(mu),
        },
        BoundRow {
            name: "Next Fit (non-clairvoyant)",
            source: "Kamali & Lopez-Ortiz",
            is_upper: true,
            value: next_fit_bound(mu),
        },
        BoundRow {
            name: "Hybrid First Fit, mu unknown",
            source: "Li et al.",
            is_upper: true,
            value: hybrid_ff_bound_unknown_mu(mu),
        },
        BoundRow {
            name: "Hybrid First Fit, mu known",
            source: "Li et al.",
            is_upper: true,
            value: hybrid_ff_bound_known_mu(mu),
        },
        BoundRow {
            name: "classify-by-departure-time FF (clairvoyant)",
            source: "Theorem 4",
            is_upper: true,
            value: cbdt_best_known(mu),
        },
        BoundRow {
            name: "classify-by-duration FF (clairvoyant)",
            source: "Theorem 5",
            is_upper: true,
            value: cbd,
        },
        BoundRow {
            name: "Duration Descending First Fit (offline)",
            source: "Theorem 1",
            is_upper: true,
            value: ddff_approx(),
        },
        BoundRow {
            name: "Dual Coloring (offline)",
            source: "Theorem 2",
            is_upper: true,
            value: dual_coloring_approx(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbdt_bound_minimized_at_sqrt_mu_delta() {
        let (delta, mu) = (10.0, 25.0);
        let opt_rho = cbdt_optimal_rho(delta, mu);
        let at_opt = cbdt_bound(opt_rho, delta, mu);
        assert!((at_opt - cbdt_best_known(mu)).abs() < 1e-12);
        for rho in [10.0, 20.0, 40.0, 80.0, 200.0] {
            assert!(cbdt_bound(rho, delta, mu) >= at_opt - 1e-12);
        }
    }

    #[test]
    fn cbd_best_alpha_boundaries() {
        // μ = 1: one category suffices, α degenerates to 1⁺, bound → 6.
        let (b1, a1) = cbd_best_alpha(1.0);
        assert!((b1 - 6.0).abs() < 1e-9, "bound at mu=1: {b1}");
        assert!(a1 > 1.0 && a1 < 1.0 + 1e-9, "alpha at mu=1: {a1}");
        // μ just above 1: continuity — still k = 1, bound ≈ μ + 5.
        let mu = 1.0 + 1e-9;
        let (b, a) = cbd_best_alpha(mu);
        assert!((b - (mu + 5.0)).abs() < 1e-6, "bound at mu=1+ε: {b}");
        assert!((a - mu).abs() < 1e-6);
        // For μ > 1 the k-parametrized scan is complete: it matches the
        // direct formula at its own α and never loses to any other α.
        for mu in [1.5, 4.0, 100.0, 1e6] {
            let (best, alpha) = cbd_best_alpha(mu);
            assert!((cbd_bound(alpha, mu) - best).abs() < 1e-6, "mu={mu}");
            for cand in [1.0001, 1.5, 2.0, 3.0, 8.0, 64.0] {
                assert!(best <= cbd_bound(cand, mu) + 1e-9, "mu={mu} cand={cand}");
            }
        }
    }

    #[test]
    fn cbd_known_beats_or_matches_unknown() {
        for mu in [1.0, 2.0, 7.0, 31.0, 1000.0] {
            let (known, _) = cbd_best_known(mu);
            let (unknown, _) = cbd_best_alpha(mu);
            // Known-μ drops the "+1 category" slack: bound is 1 lower at
            // matched α (n + 3 vs ⌈log⌉ + 4).
            assert!(known <= unknown + 1e-9, "mu={mu}");
        }
    }

    #[test]
    fn improvement_over_bucket_ff() {
        // §5.3 remark: α + ⌈log_α μ⌉ + 4 ≪ (2α+2)⌈log_α μ⌉ asymptotically.
        for (alpha, mu) in [(2.0, 100.0), (1.5, 1e4), (3.0, 1e6)] {
            assert!(cbd_bound(alpha, mu) < bucket_ff_bound(alpha, mu));
        }
    }

    #[test]
    fn ceil_log_boundaries() {
        assert_eq!(ceil_log(2.0, 1.0), 0.0);
        assert_eq!(ceil_log(2.0, 2.0), 1.0);
        assert_eq!(ceil_log(2.0, 3.0), 2.0);
        assert_eq!(ceil_log(2.0, 4.0), 2.0);
        assert_eq!(ceil_log(2.0, 4.0001), 3.0);
        assert_eq!(ceil_log(10.0, 1000.0), 3.0);
    }

    #[test]
    fn golden_ratio_value() {
        assert!((online_lower_bound() - 1.618_033_988_749_895).abs() < 1e-12);
        // φ is well below the non-clairvoyant lower bound μ for μ > φ:
        // clairvoyance provably helps.
        assert!(online_lower_bound() < non_clairvoyant_lower_bound(2.0));
    }

    #[test]
    fn prior_work_ordering() {
        // At large μ: FF (μ+4) < HFF-unknown (8μ/7+55/7) < NF (2μ+1).
        let mu = 100.0;
        assert!(ff_non_clairvoyant(mu) < hybrid_ff_bound_unknown_mu(mu));
        assert!(hybrid_ff_bound_unknown_mu(mu) < next_fit_bound(mu));
        // Known-μ HFF sits between FF's μ+4 and the Any Fit floor μ+1.
        assert!(any_fit_lower_bound(mu) < ff_non_clairvoyant(mu));
        assert!(ff_non_clairvoyant(mu) < hybrid_ff_bound_known_mu(mu));
    }

    #[test]
    fn constants() {
        assert_eq!(ddff_approx(), 5.0);
        assert_eq!(dual_coloring_approx(), 4.0);
    }

    #[test]
    fn known_bounds_consistency() {
        for mu in [1.0, 4.0, 64.0, 1e4] {
            let rows = known_bounds(mu);
            assert_eq!(rows.len(), 11);
            // Every upper bound of an online algorithm dominates the
            // universal clairvoyant lower bound.
            let phi = online_lower_bound();
            for r in rows.iter().filter(|r| r.is_upper) {
                assert!(r.value >= phi, "{} at mu={mu}", r.name);
            }
            // The clairvoyant strategies are the best online uppers once
            // mu is large.
            if mu >= 16.0 {
                let best_online_upper = rows
                    .iter()
                    .filter(|r| r.is_upper && r.name.contains("FF"))
                    .map(|r| r.value)
                    .fold(f64::INFINITY, f64::min);
                let cbd = rows.iter().find(|r| r.source == "Theorem 5").unwrap();
                assert_eq!(best_online_upper, cbd.value);
            }
        }
    }
}
