//! # dbp-theory — the paper's bounds in closed form
//!
//! Every theorem of *Ren & Tang, SPAA 2016* as an executable formula, plus
//! the parameter optimizations used in §5.4's numerical comparison
//! (Figure 8) and the bounds of the prior work the paper compares against.
//!
//! All functions take the max/min duration ratio `μ ≥ 1` (and algorithm
//! parameters where applicable) and return the corresponding bound on the
//! competitive/approximation ratio.

#![warn(missing_docs)]

pub mod ratios;

pub use ratios::*;

/// One row of the Figure 8 comparison: the best achievable competitive
/// ratios at a given `μ` when `Δ` and `μ` are known.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Figure8Row {
    /// Max/min item duration ratio.
    pub mu: f64,
    /// Plain First Fit in the non-clairvoyant setting: `μ + 4`.
    pub first_fit: f64,
    /// Classify-by-departure-time at `ρ = √μ·Δ`: `2√μ + 3`.
    pub cbdt: f64,
    /// Classify-by-duration at the optimal `n`: `min_n μ^{1/n} + n + 3`.
    pub cbd: f64,
    /// The optimal `n` attaining `cbd`.
    pub cbd_n: u32,
}

/// Generates the Figure 8 data: best achievable competitive ratios for
/// `μ` sweeping over the given values.
pub fn figure8(mus: &[f64]) -> Vec<Figure8Row> {
    mus.iter()
        .map(|&mu| {
            let (cbd, cbd_n) = cbd_best_known(mu);
            Figure8Row {
                mu,
                first_fit: ff_non_clairvoyant(mu),
                cbdt: cbdt_best_known(mu),
                cbd,
                cbd_n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_crossover_at_mu_4() {
        // §5.4: CBDT wins for μ < 4, CBD wins for μ > 4, tie at μ = 4.
        let rows = figure8(&[2.0, 3.0, 3.9, 4.0, 4.1, 8.0, 100.0]);
        for r in &rows {
            if r.mu < 4.0 {
                assert!(r.cbdt < r.cbd, "CBDT should win at μ={}", r.mu);
            } else if r.mu > 4.0 {
                assert!(r.cbd < r.cbdt, "CBD should win at μ={}", r.mu);
            } else {
                assert!((r.cbd - r.cbdt).abs() < 1e-9, "tie at μ=4");
            }
            if r.mu >= 4.0 {
                assert!(r.cbdt <= r.first_fit);
                assert!(r.cbd <= r.first_fit);
            }
        }
    }

    #[test]
    fn figure8_values_spot_checked() {
        let rows = figure8(&[1.0, 4.0, 16.0, 100.0]);
        // μ=1: FF=5, CBDT=2·1+3=5, CBD(n=1)=1+1+3=5.
        assert!((rows[0].first_fit - 5.0).abs() < 1e-12);
        assert!((rows[0].cbdt - 5.0).abs() < 1e-12);
        assert!((rows[0].cbd - 5.0).abs() < 1e-12);
        // μ=4: CBDT=2·2+3=7; CBD: n=1→8, n=2→7, n=3→~7.59 → 7.
        assert!((rows[1].cbdt - 7.0).abs() < 1e-12);
        assert!((rows[1].cbd - 7.0).abs() < 1e-12);
        // μ=16: CBDT=11; CBD: n=2→9, n=3→~8.52, n=4→9 → n=3.
        assert!((rows[2].cbdt - 11.0).abs() < 1e-12);
        assert_eq!(rows[2].cbd_n, 3);
        assert!(rows[2].cbd < 9.0);
        // μ=100: FF=104, CBDT=23, CBD well below both.
        assert!((rows[3].first_fit - 104.0).abs() < 1e-12);
        assert!((rows[3].cbdt - 23.0).abs() < 1e-12);
        assert!(rows[3].cbd < rows[3].cbdt);
    }
}
