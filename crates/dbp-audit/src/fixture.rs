//! JSON regression fixtures: shrunk counterexamples persisted to disk and
//! replayed by tests forever after.
//!
//! The format is one flat object (see `docs/auditing.md`):
//!
//! ```json
//! {
//!   "version": 1,
//!   "name": "overfull-first-fit",
//!   "algo": "first-fit",
//!   "check": "capacity",
//!   "seed": 0,
//!   "case": 17,
//!   "note": "how this fixture came to be",
//!   "items": [
//!     {"id": 0, "size_raw": 11744051, "arrival": 0, "departure": 10}
//!   ]
//! }
//! ```
//!
//! Sizes are stored as **raw** [`Size`] units (`u64`, `SCALE` = 1.0) and
//! parsed with `dbp-obs`'s literal-text JSON numbers, so they round-trip
//! exactly — a fixture replays the bit-identical instance that failed.

use dbp_core::{DbpError, Instance, Item, Size};
use dbp_obs::json::{self, Json};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One item of a fixture instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixtureItem {
    /// Item id.
    pub id: u32,
    /// Raw size units (`Size::SCALE` = full bin).
    pub size_raw: u64,
    /// Arrival tick.
    pub arrival: i64,
    /// Departure tick.
    pub departure: i64,
}

/// A persisted counterexample: the shrunk instance plus enough metadata
/// to know what it once broke and how to regenerate it.
#[derive(Clone, Debug, PartialEq)]
pub struct Fixture {
    /// Short kebab-case name (also the file stem).
    pub name: String,
    /// The algorithm that failed (roster name, or a description for
    /// injected packers).
    pub algo: String,
    /// The violated check's stable id ([`crate::invariants::CheckId`]).
    pub check: String,
    /// The fuzzer seed that produced the original failure.
    pub seed: u64,
    /// The case index under that seed.
    pub case: u64,
    /// Free-form provenance note.
    pub note: String,
    /// The shrunk instance's items.
    pub items: Vec<FixtureItem>,
}

impl Fixture {
    /// Builds a fixture from an instance plus metadata.
    pub fn from_instance(
        name: impl Into<String>,
        algo: impl Into<String>,
        check: impl Into<String>,
        seed: u64,
        case: u64,
        note: impl Into<String>,
        inst: &Instance,
    ) -> Fixture {
        Fixture {
            name: name.into(),
            algo: algo.into(),
            check: check.into(),
            seed,
            case,
            note: note.into(),
            items: inst
                .items()
                .iter()
                .map(|r| FixtureItem {
                    id: r.id().0,
                    size_raw: r.size().raw(),
                    arrival: r.arrival(),
                    departure: r.departure(),
                })
                .collect(),
        }
    }

    /// Reconstructs the instance.
    pub fn instance(&self) -> Result<Instance, DbpError> {
        let items = self
            .items
            .iter()
            .map(|fi| Item::try_new(fi.id, Size::from_raw(fi.size_raw), fi.arrival, fi.departure))
            .collect::<Result<Vec<_>, _>>()?;
        Instance::from_items(items)
    }

    /// Serializes to the on-disk JSON form.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"version\": 1,");
        let _ = writeln!(s, "  \"name\": \"{}\",", json::escape(&self.name));
        let _ = writeln!(s, "  \"algo\": \"{}\",", json::escape(&self.algo));
        let _ = writeln!(s, "  \"check\": \"{}\",", json::escape(&self.check));
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"case\": {},", self.case);
        let _ = writeln!(s, "  \"note\": \"{}\",", json::escape(&self.note));
        let _ = writeln!(s, "  \"items\": [");
        for (i, it) in self.items.iter().enumerate() {
            let comma = if i + 1 < self.items.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"id\": {}, \"size_raw\": {}, \"arrival\": {}, \"departure\": {}}}{comma}",
                it.id, it.size_raw, it.arrival, it.departure
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = write!(s, "}}");
        s
    }

    /// Parses the on-disk JSON form.
    pub fn parse(text: &str) -> Result<Fixture, String> {
        let v = json::parse(text)?;
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("missing version")?;
        if version != 1 {
            return Err(format!("unsupported fixture version {version}"));
        }
        let field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let num = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let Some(Json::Arr(raw_items)) = v.get("items") else {
            return Err("missing items array".into());
        };
        let mut items = Vec::with_capacity(raw_items.len());
        for (i, it) in raw_items.iter().enumerate() {
            let geti = |key: &str| -> Result<i64, String> {
                it.get(key)
                    .and_then(Json::as_i64)
                    .ok_or_else(|| format!("item {i}: missing field {key:?}"))
            };
            items.push(FixtureItem {
                id: it
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("item {i}: missing id"))? as u32,
                size_raw: it
                    .get("size_raw")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("item {i}: missing size_raw"))?,
                arrival: geti("arrival")?,
                departure: geti("departure")?,
            });
        }
        Ok(Fixture {
            name: field("name")?,
            algo: field("algo")?,
            check: field("check")?,
            seed: num("seed")?,
            case: num("case")?,
            note: field("note").unwrap_or_default(),
            items,
        })
    }

    /// Writes the fixture to `dir/<name>.json`, creating `dir` if needed.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Loads every `*.json` fixture in a directory, sorted by file name so
/// test output is stable. A missing directory is an empty set, not an
/// error (a fresh checkout has no generated fixtures beyond the committed
/// ones).
pub fn load_dir(dir: &Path) -> Result<Vec<(String, Fixture)>, String> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(out),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let fixture = Fixture::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((path.display().to_string(), fixture));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Fixture {
        Fixture {
            name: "sample".into(),
            algo: "first-fit".into(),
            check: "capacity".into(),
            seed: 7,
            case: 42,
            note: "hand-written \"sample\"".into(),
            items: vec![
                FixtureItem {
                    id: 0,
                    size_raw: Size::SCALE,
                    arrival: 0,
                    departure: 10,
                },
                FixtureItem {
                    id: 1,
                    size_raw: 11_744_051, // an awkward raw value, exact
                    arrival: 3,
                    departure: 12,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let f = sample();
        let parsed = Fixture::parse(&f.to_json()).unwrap();
        assert_eq!(parsed, f);
        let inst = parsed.instance().unwrap();
        assert_eq!(inst.items()[1].size().raw(), 11_744_051);
    }

    #[test]
    fn write_and_load_dir() {
        let dir = std::env::temp_dir().join(format!("dbp-audit-fixture-{}", std::process::id()));
        let f = sample();
        let path = f.write_to(&dir).unwrap();
        assert!(path.ends_with("sample.json"));
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1, f);
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(load_dir(&dir).unwrap().is_empty(), "missing dir is empty");
    }
}
