//! The vector audit family: seeded sweeps driving the dynamic *vector*
//! bin packing roster against its ground-truth oracles.
//!
//! Per `(instance, algorithm)` cell the audit checks:
//!
//! 1. **Indexed ≡ linear** — the indexed fit-query packer must produce
//!    the exact [`OnlineRun`] of its `with_linear_scan()` foil
//!    ([`CheckId::Differential`]).
//! 2. **Per-axis feasibility** — the run's packing passes
//!    [`VecInstance::validate_packing`]: capacity on *every* axis of
//!    every load segment, coverage, no migration. Capacity breaches are
//!    classified as [`CheckId::VectorCapacity`].
//! 3. **The max-axis lower bound** — usage is at least
//!    `max_d ∫⌈S_d(t)⌉ dt` (the Proposition 3 bound axis-wise;
//!    [`CheckId::VectorLowerBound`]).
//! 4. **Usage accounting** — total usage equals the sum of per-bin
//!    lifetimes ([`CheckId::UsageAccounting`]).
//! 5. **dim-1 ≡ scalar** — at one dimension, roster packers that have a
//!    scalar twin must reproduce its run bit for bit
//!    ([`CheckId::Differential`]).
//!
//! One extra cell per instance, `batch-foil`, replays the streaming
//! stack against the original batch [`dbp_multidim::pack_online`]
//! reference under every [`Classification`] it supports (the streaming
//! side uses the unclamped constructors, matching the foil's unclamped
//! category math).
//!
//! Failures shrink with [`shrink_vec_instance`] — the vector port of the
//! scalar shrinker (drop chunks, shorten durations, left-shift arrivals,
//! round every axis to eighths) — and persist as [`VecFixture`] JSON with
//! per-axis raw sizes, so counterexamples replay bit-identically.

use crate::fuzz::{case_instance, isolated, Failure};
use crate::invariants::{CheckId, Violation};
use crate::shrink::ShrinkBudget;
use crate::AuditSummary;
use dbp_algos::online::{VecAnyFit, VecClassifyByDepartureTime, VecClassifyByDuration};
use dbp_bench::grid::{run_grid_checked, GridCell};
use dbp_bench::registry::{
    online_packer, vector_packer, vector_packer_linear, AlgoParams, VECTOR_ALGOS,
};
use dbp_core::{
    DbpError, OnlineEngine, OnlineRun, Size, SizeVec, VecInstance, VecItem, VecOnlineEngine,
    VecOnlinePacker, MAX_DIMS,
};
use dbp_multidim::{pack_online, Classification, MultiInstance};
use dbp_obs::json::{self, Json};
use dbp_workloads::random::DurationDist;
use dbp_workloads::vector::{project_axis, CorrelatedVectorWorkload, VectorWorkload};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Vector-sweep configuration.
#[derive(Clone, Copy, Debug)]
pub struct VectorAuditConfig {
    /// Number of generated cases.
    pub cases: u64,
    /// Master seed; instances derive from it.
    pub seed: u64,
    /// Upper bound on generated instance size.
    pub max_items: usize,
    /// Generated dimensionality rotates through `1..=max_dims`
    /// (clamped to [`MAX_DIMS`]).
    pub max_dims: usize,
    /// Worker threads for the sweep grid (`None` = available
    /// parallelism).
    pub threads: Option<usize>,
}

impl Default for VectorAuditConfig {
    fn default() -> Self {
        VectorAuditConfig {
            cases: 50,
            seed: 0,
            max_items: 24,
            max_dims: MAX_DIMS,
            threads: None,
        }
    }
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates the vector instance for `(seed, case_idx)`: dimensionality
/// rotates through `1..=max_dims` and three families alternate — the
/// full scalar [`case_instance`] rotation lifted axis-wise (adversarial
/// instances included), correlated multi-resource demands across the `ρ`
/// range, and a tight near-capacity family that stresses per-axis
/// boundaries. Returns the family label with the instance.
pub fn case_vec_instance(
    seed: u64,
    case_idx: u64,
    max_items: usize,
    max_dims: usize,
) -> (String, VecInstance) {
    if case_idx == 0 {
        return (
            "vec-empty".into(),
            VecInstance::from_items(Vec::new()).expect("empty instance"),
        );
    }
    let s = mix(seed ^ mix(case_idx).rotate_left(17));
    let dims = 1 + (s % max_dims.clamp(1, MAX_DIMS) as u64) as usize;
    let n = 6 + (s % (max_items.max(7) as u64 - 5)) as usize;
    match case_idx % 3 {
        1 => {
            let (family, inst) = case_instance(seed, case_idx, max_items);
            (
                format!("lift{dims}:{family}"),
                VecInstance::lift(&inst, dims),
            )
        }
        2 => {
            let rho = [-0.9, -0.5, 0.0, 0.5, 0.9][((s >> 8) % 5) as usize];
            let menu = [0.35, 0.2, 0.45, 0.15];
            let w = CorrelatedVectorWorkload::new(n, &menu[..dims], 0.5, rho)
                .expect("valid correlated family")
                .with_durations(DurationDist::uniform(1, 30).expect("valid uniform"))
                .with_arrival_span(50);
            (format!("corr(dims={dims},rho={rho})"), w.generate_seeded(s))
        }
        _ => {
            // Near-half demands on every axis: per-axis bin boundaries
            // get hit constantly, anti-correlated so axes disagree about
            // which bin is full.
            let menu = [0.5, 0.45, 0.55, 0.4];
            let w = CorrelatedVectorWorkload::new(n, &menu[..dims], 0.3, -0.9)
                .expect("valid tight family")
                .with_durations(DurationDist::uniform(1, 8).expect("valid uniform"))
                .with_arrival_span(12);
            (format!("tight(dims={dims})"), w.generate_seeded(s))
        }
    }
}

/// Classification strategies need the departure; the Any-Fit family and
/// the vector-native heuristics run blind.
fn engine_for(algo: &str) -> VecOnlineEngine {
    if matches!(algo, "cbdt" | "cbd") {
        VecOnlineEngine::clairvoyant()
    } else {
        VecOnlineEngine::non_clairvoyant()
    }
}

/// Scalar roster twins of the vector roster names (the vector-native
/// heuristics have none).
fn scalar_twin(algo: &str) -> Option<&str> {
    match algo {
        "first-fit" | "best-fit" | "worst-fit" | "next-fit" | "cbdt" | "cbd" => Some(algo),
        _ => None,
    }
}

/// Shared invariants on one finished run: per-axis validity, the
/// max-axis lower bound, and usage accounting.
fn check_vec_run(inst: &VecInstance, algo: &str, run: &OnlineRun, out: &mut Vec<Violation>) {
    if let Err(e) = inst.validate_packing(&run.packing) {
        let check = match e {
            DbpError::CapacityExceeded { .. } => CheckId::VectorCapacity,
            _ => CheckId::Coverage,
        };
        out.push(Violation::new(check, format!("{algo}: {e}")));
    }
    let lb = inst.vector_lower_bound();
    if run.usage < lb {
        out.push(Violation::new(
            CheckId::VectorLowerBound,
            format!("{algo}: usage {} below the max-axis bound {lb}", run.usage),
        ));
    }
    let record_sum: u128 = run
        .bins
        .iter()
        .map(|b| (b.closed_at - b.opened_at).max(0) as u128)
        .sum();
    if record_sum != run.usage {
        out.push(Violation::new(
            CheckId::UsageAccounting,
            format!(
                "{algo}: bin records sum to {record_sum}, run reports {}",
                run.usage
            ),
        ));
    }
}

/// Runs one vector algorithm's audit on one instance: indexed vs linear,
/// per-axis validity, the lower bound, accounting, and (at one
/// dimension) the scalar-twin differential.
pub fn audit_vector_algo(inst: &VecInstance, algo: &str) -> Vec<Violation> {
    let params = AlgoParams::from_vec_instance(inst);
    let mut out = Vec::new();

    let mut indexed = vector_packer(algo, params);
    let run = match engine_for(algo).run(inst, indexed.as_mut()) {
        Ok(r) => r,
        Err(e) => {
            return vec![Violation::new(
                CheckId::EngineError,
                format!("{algo}: streaming run failed: {e}"),
            )]
        }
    };

    let mut linear = vector_packer_linear(algo, params);
    match engine_for(algo).run(inst, linear.as_mut()) {
        Ok(foil) => {
            if foil != run {
                out.push(Violation::new(
                    CheckId::Differential,
                    format!("{algo}: indexed run diverges from the linear-scan foil"),
                ));
            }
        }
        Err(e) => out.push(Violation::new(
            CheckId::EngineError,
            format!("{algo}: linear-scan foil failed: {e}"),
        )),
    }

    check_vec_run(inst, algo, &run, &mut out);

    if inst.dims() == 1 {
        if let Some(twin) = scalar_twin(algo) {
            match project_axis(inst, 0) {
                Ok(scalar) => {
                    let mut sp = online_packer(twin, AlgoParams::from_instance(&scalar));
                    let engine = if matches!(twin, "cbdt" | "cbd") {
                        OnlineEngine::clairvoyant()
                    } else {
                        OnlineEngine::non_clairvoyant()
                    };
                    match engine.run(&scalar, sp.as_mut()) {
                        Ok(sref) if sref == run => {}
                        Ok(_) => out.push(Violation::new(
                            CheckId::Differential,
                            format!("{algo}: dim-1 run diverges from the scalar twin"),
                        )),
                        Err(e) => out.push(Violation::new(
                            CheckId::EngineError,
                            format!("{algo}: scalar twin failed: {e}"),
                        )),
                    }
                }
                Err(e) => out.push(Violation::new(
                    CheckId::EngineError,
                    format!("{algo}: axis-0 projection failed: {e}"),
                )),
            }
        }
    }
    out
}

/// Per-bin item ids in opening order — the batch foil's result shape.
fn bin_ids(run: &OnlineRun) -> Vec<Vec<u32>> {
    run.bins
        .iter()
        .map(|b| b.items.iter().map(|r| r.0).collect())
        .collect()
}

/// Replays the streaming stack against the batch [`pack_online`]
/// reference under every [`Classification`] it supports. The streaming
/// side uses the *unclamped* constructors — the batch foil never clamps
/// duration categories.
pub fn audit_batch_foil(inst: &VecInstance) -> Vec<Violation> {
    let multi = MultiInstance::from_vector(inst);
    let mut out = Vec::new();
    let cases: Vec<(Classification, Box<dyn VecOnlinePacker>)> = vec![
        (Classification::None, Box::new(VecAnyFit::first_fit())),
        (
            Classification::ByDepartureTime { rho: 7 },
            Box::new(VecClassifyByDepartureTime::new(7)),
        ),
        (
            Classification::ByDuration {
                base: 1,
                alpha: 2.0,
            },
            Box::new(VecClassifyByDuration::new(1, 2.0)),
        ),
    ];
    for (classify, mut packer) in cases {
        let batch = pack_online(&multi, classify);
        let streamed = match VecOnlineEngine::clairvoyant().run(inst, packer.as_mut()) {
            Ok(r) => r,
            Err(e) => {
                out.push(Violation::new(
                    CheckId::EngineError,
                    format!("batch-foil {classify:?}: streaming run failed: {e}"),
                ));
                continue;
            }
        };
        if bin_ids(&streamed) != batch.bins {
            out.push(Violation::new(
                CheckId::Differential,
                format!("batch-foil {classify:?}: bin contents diverge"),
            ));
        }
        if streamed.usage != batch.usage {
            out.push(Violation::new(
                CheckId::Differential,
                format!(
                    "batch-foil {classify:?}: streaming usage {} vs batch {}",
                    streamed.usage, batch.usage
                ),
            ));
        }
    }
    out
}

/// Audits one instance against the vector roster plus the batch-foil
/// cell, each algorithm panic-isolated.
pub fn audit_vector_instance(inst: &VecInstance) -> Vec<(String, Vec<Violation>)> {
    let mut out = Vec::new();
    for algo in VECTOR_ALGOS {
        let v = match isolated(|| audit_vector_algo(inst, algo)) {
            Ok(v) => v,
            Err(msg) => vec![Violation::new(CheckId::Panic, format!("{algo}: {msg}"))],
        };
        out.push((algo.to_string(), v));
    }
    let v = match isolated(|| audit_batch_foil(inst)) {
        Ok(v) => v,
        Err(msg) => vec![Violation::new(CheckId::Panic, format!("batch-foil: {msg}"))],
    };
    out.push(("batch-foil".into(), v));
    out
}

/// Runs the vector sweep. Same containment guarantees as
/// [`crate::fuzz::run_audit`]: any panic is confined to its cell.
pub fn run_vector_audit(cfg: &VectorAuditConfig) -> AuditSummary {
    let cells: Vec<GridCell<u64>> = (0..cfg.cases)
        .map(|i| GridCell {
            label: format!("vec{i}"),
            input: i,
        })
        .collect();
    let (seed, max_items, max_dims) = (cfg.seed, cfg.max_items, cfg.max_dims);

    let results = run_grid_checked(cells, cfg.threads, move |&case_idx| {
        let (family, inst) = case_vec_instance(seed, case_idx, max_items, max_dims);
        let per_algo = audit_vector_instance(&inst);
        (family, per_algo)
    });

    let mut summary = AuditSummary {
        cases: cfg.cases,
        ..Default::default()
    };
    for (case_idx, res) in results.into_iter().enumerate() {
        match res.output {
            Ok((family, per_algo)) => {
                summary.cells += per_algo.len();
                for (algo, violations) in per_algo {
                    if !violations.is_empty() {
                        summary.failures.push(Failure {
                            case: case_idx as u64,
                            family: family.clone(),
                            algo,
                            violations,
                        });
                    }
                }
            }
            Err(p) => summary.failures.push(Failure {
                case: case_idx as u64,
                family: "vector:<generation>".into(),
                algo: "<cell>".into(),
                violations: vec![Violation::new(CheckId::Panic, p.message)],
            }),
        }
    }
    summary
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

struct VecShrinker<'a, F> {
    pred: &'a mut F,
    evals_left: usize,
}

impl<F: FnMut(&VecInstance) -> bool> VecShrinker<'_, F> {
    fn still_fails(&mut self, items: &[VecItem]) -> bool {
        if self.evals_left == 0 {
            return false;
        }
        self.evals_left -= 1;
        match VecInstance::from_items(items.to_vec()) {
            Ok(inst) => (self.pred)(&inst),
            Err(_) => false,
        }
    }

    fn try_replace(&mut self, items: &mut [VecItem], idx: usize, replacement: VecItem) -> bool {
        let prev = items[idx];
        items[idx] = replacement;
        if self.still_fails(items) {
            true
        } else {
            items[idx] = prev;
            false
        }
    }
}

/// Greedily shrinks a failing vector instance: drop item chunks, shorten
/// durations toward one tick, left-shift arrivals toward zero, and round
/// every axis to clean eighths — the vector port of
/// [`crate::shrink::shrink_instance`]. `pred` returns `true` while the
/// candidate still fails; panic isolation is the caller's job.
pub fn shrink_vec_instance<F>(inst: &VecInstance, mut pred: F, budget: ShrinkBudget) -> VecInstance
where
    F: FnMut(&VecInstance) -> bool,
{
    let mut s = VecShrinker {
        pred: &mut pred,
        evals_left: budget.max_evals,
    };
    let mut items: Vec<VecItem> = inst.items().to_vec();

    loop {
        let mut changed = false;

        // Drop windows of decreasing size.
        let mut chunk = (items.len() / 2).max(1);
        'chunks: loop {
            let mut start = 0;
            let mut removed_any = false;
            while start < items.len() && items.len() > 1 {
                let end = (start + chunk).min(items.len());
                let mut candidate = items.clone();
                candidate.drain(start..end);
                if s.still_fails(&candidate) {
                    items = candidate;
                    changed = true;
                    removed_any = true;
                } else {
                    start = end;
                }
                if s.evals_left == 0 {
                    break 'chunks;
                }
            }
            if removed_any && chunk < items.len() {
                chunk = (items.len() / 2).max(1);
            } else if chunk > 1 {
                chunk /= 2;
            } else {
                break;
            }
        }

        // Shorten durations: one tick first, then halvings.
        for idx in 0..items.len() {
            loop {
                let it = items[idx];
                let dur = it.duration();
                if dur <= 1 || s.evals_left == 0 {
                    break;
                }
                let one = VecItem::new(it.id().0, it.size(), it.arrival(), it.arrival() + 1);
                if s.try_replace(&mut items, idx, one) {
                    changed = true;
                    break;
                }
                let half = VecItem::new(
                    it.id().0,
                    it.size(),
                    it.arrival(),
                    it.arrival() + (dur / 2).max(1),
                );
                if s.try_replace(&mut items, idx, half) {
                    changed = true;
                } else {
                    break;
                }
            }
        }

        // Left-shift arrivals toward zero.
        for idx in 0..items.len() {
            loop {
                let it = items[idx];
                let a = it.arrival();
                if a == 0 || s.evals_left == 0 {
                    break;
                }
                let dur = it.duration();
                let target = if a > 1 { a / 2 } else { 0 };
                let cand = VecItem::new(it.id().0, it.size(), target, target + dur);
                if s.try_replace(&mut items, idx, cand) {
                    changed = true;
                } else {
                    if target != 0 {
                        let cand = VecItem::new(it.id().0, it.size(), 0, dur);
                        if s.try_replace(&mut items, idx, cand) {
                            changed = true;
                        }
                    }
                    break;
                }
            }
        }

        // Round each axis to clean eighths (down first, then up).
        let eighth = Size::SCALE / 8;
        for idx in 0..items.len() {
            let it = items[idx];
            let axes: Vec<Size> = it.size().axes().to_vec();
            for (d, &ax) in axes.iter().enumerate() {
                if ax.raw() % eighth == 0 {
                    continue;
                }
                let down = (ax.raw() / eighth) * eighth;
                for raw in [down, down + eighth] {
                    if raw == 0 || raw > Size::SCALE || s.evals_left == 0 {
                        continue;
                    }
                    let mut new_axes = items[idx].size().axes().to_vec();
                    new_axes[d] = Size::from_raw(raw);
                    let cand = VecItem::new(
                        it.id().0,
                        SizeVec::new(&new_axes),
                        it.arrival(),
                        it.departure(),
                    );
                    if s.try_replace(&mut items, idx, cand) {
                        changed = true;
                        break;
                    }
                }
            }
        }

        if !changed || s.evals_left == 0 {
            break;
        }
    }

    // Final cosmetic pass: renumber ids 0..n if the failure survives it.
    let renumbered: Vec<VecItem> = items
        .iter()
        .enumerate()
        .map(|(i, it)| VecItem::new(i as u32, it.size(), it.arrival(), it.departure()))
        .collect();
    if s.still_fails(&renumbered) {
        return VecInstance::from_items(renumbered).expect("renumbered items stay valid");
    }
    VecInstance::from_items(items).expect("shrunk items stay valid")
}

/// Shrinks a vector roster failure to a minimal instance that still
/// fails the same algorithm (any violation or panic counts).
pub fn shrink_vector_failure(inst: &VecInstance, algo: &str, budget: ShrinkBudget) -> VecInstance {
    let algo = algo.to_string();
    shrink_vec_instance(
        inst,
        move |candidate| match isolated(|| {
            if algo == "batch-foil" {
                audit_batch_foil(candidate)
            } else {
                audit_vector_algo(candidate, &algo)
            }
        }) {
            Ok(v) => !v.is_empty(),
            Err(_) => true,
        },
        budget,
    )
}

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

/// One item of a vector fixture instance: per-axis **raw** [`Size`]
/// units, so demands round-trip exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VecFixtureItem {
    /// Item id.
    pub id: u32,
    /// Raw size units per axis (`Size::SCALE` = full bin).
    pub axes_raw: Vec<u64>,
    /// Arrival tick.
    pub arrival: i64,
    /// Departure tick.
    pub departure: i64,
}

/// A persisted vector counterexample — the multi-axis sibling of
/// [`crate::fixture::Fixture`], with the same metadata envelope and a
/// per-axis `axes_raw` array per item.
#[derive(Clone, Debug, PartialEq)]
pub struct VecFixture {
    /// Short kebab-case name (also the file stem).
    pub name: String,
    /// The algorithm that failed.
    pub algo: String,
    /// The violated check's stable id.
    pub check: String,
    /// The fuzzer seed that produced the original failure.
    pub seed: u64,
    /// The case index under that seed.
    pub case: u64,
    /// Free-form provenance note.
    pub note: String,
    /// The shrunk instance's items.
    pub items: Vec<VecFixtureItem>,
}

impl VecFixture {
    /// Builds a fixture from an instance plus metadata.
    pub fn from_instance(
        name: impl Into<String>,
        algo: impl Into<String>,
        check: impl Into<String>,
        seed: u64,
        case: u64,
        note: impl Into<String>,
        inst: &VecInstance,
    ) -> VecFixture {
        VecFixture {
            name: name.into(),
            algo: algo.into(),
            check: check.into(),
            seed,
            case,
            note: note.into(),
            items: inst
                .items()
                .iter()
                .map(|r| VecFixtureItem {
                    id: r.id().0,
                    axes_raw: r.size().axes().iter().map(|s| s.raw()).collect(),
                    arrival: r.arrival(),
                    departure: r.departure(),
                })
                .collect(),
        }
    }

    /// Reconstructs the instance.
    pub fn instance(&self) -> Result<VecInstance, DbpError> {
        let items = self
            .items
            .iter()
            .map(|fi| {
                let axes: Vec<Size> = fi.axes_raw.iter().map(|&r| Size::from_raw(r)).collect();
                VecItem::try_new(fi.id, SizeVec::try_new(&axes)?, fi.arrival, fi.departure)
            })
            .collect::<Result<Vec<_>, _>>()?;
        VecInstance::from_items(items)
    }

    /// Serializes to the on-disk JSON form (version 1, `kind: "vector"`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"version\": 1,");
        let _ = writeln!(s, "  \"kind\": \"vector\",");
        let _ = writeln!(s, "  \"name\": \"{}\",", json::escape(&self.name));
        let _ = writeln!(s, "  \"algo\": \"{}\",", json::escape(&self.algo));
        let _ = writeln!(s, "  \"check\": \"{}\",", json::escape(&self.check));
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"case\": {},", self.case);
        let _ = writeln!(s, "  \"note\": \"{}\",", json::escape(&self.note));
        let _ = writeln!(s, "  \"items\": [");
        for (i, it) in self.items.iter().enumerate() {
            let comma = if i + 1 < self.items.len() { "," } else { "" };
            let axes = it
                .axes_raw
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                s,
                "    {{\"id\": {}, \"axes_raw\": [{axes}], \"arrival\": {}, \"departure\": {}}}{comma}",
                it.id, it.arrival, it.departure
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = write!(s, "}}");
        s
    }

    /// Parses the on-disk JSON form.
    pub fn parse(text: &str) -> Result<VecFixture, String> {
        let v = json::parse(text)?;
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("missing version")?;
        if version != 1 {
            return Err(format!("unsupported fixture version {version}"));
        }
        match v.get("kind").and_then(Json::as_str) {
            Some("vector") => {}
            other => return Err(format!("not a vector fixture (kind {other:?})")),
        }
        let field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let num = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let Some(Json::Arr(raw_items)) = v.get("items") else {
            return Err("missing items array".into());
        };
        let mut items = Vec::with_capacity(raw_items.len());
        for (i, it) in raw_items.iter().enumerate() {
            let geti = |key: &str| -> Result<i64, String> {
                it.get(key)
                    .and_then(Json::as_i64)
                    .ok_or_else(|| format!("item {i}: missing field {key:?}"))
            };
            let Some(Json::Arr(axes)) = it.get("axes_raw") else {
                return Err(format!("item {i}: missing axes_raw array"));
            };
            let axes_raw = axes
                .iter()
                .map(|a| {
                    a.as_u64()
                        .ok_or_else(|| format!("item {i}: non-numeric axis"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            items.push(VecFixtureItem {
                id: it
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("item {i}: missing id"))? as u32,
                axes_raw,
                arrival: geti("arrival")?,
                departure: geti("departure")?,
            });
        }
        Ok(VecFixture {
            name: field("name")?,
            algo: field("algo")?,
            check: field("check")?,
            seed: num("seed")?,
            case: num("case")?,
            note: field("note").unwrap_or_default(),
            items,
        })
    }

    /// Writes the fixture to `dir/<name>.json`, creating `dir` if needed.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faulty::AxisBlindFirstFit;

    #[test]
    fn case_vec_generation_is_deterministic_and_varied() {
        let mut families = std::collections::HashSet::new();
        let mut dims = std::collections::HashSet::new();
        for case in 0..18 {
            let (fam_a, inst_a) = case_vec_instance(3, case, 24, MAX_DIMS);
            let (fam_b, inst_b) = case_vec_instance(3, case, 24, MAX_DIMS);
            assert_eq!(fam_a, fam_b);
            assert_eq!(inst_a, inst_b);
            families.insert(fam_a.split('(').next().unwrap().to_string());
            dims.insert(inst_a.dims());
        }
        assert!(families.len() >= 3, "family mix too narrow: {families:?}");
        assert!(dims.len() >= 3, "dimensionality never varied: {dims:?}");
        let (_, other_seed) = case_vec_instance(4, 2, 24, MAX_DIMS);
        assert_ne!(case_vec_instance(3, 2, 24, MAX_DIMS).1, other_seed);
        // Capped dimensionality never exceeds the cap.
        for case in 1..12 {
            assert!(case_vec_instance(3, case, 24, 2).1.dims() <= 2);
        }
    }

    #[test]
    fn small_vector_sweep_is_clean() {
        let cfg = VectorAuditConfig {
            cases: 10,
            seed: 5,
            ..Default::default()
        };
        let summary = run_vector_audit(&cfg);
        assert_eq!(summary.cases, 10);
        assert_eq!(summary.cells, 10 * (VECTOR_ALGOS.len() + 1));
        assert!(
            summary.ok(),
            "vector violations on a clean roster: {:?}",
            summary.failures
        );
    }

    /// The pipeline proof: the axis-blind packer is *caught* as a
    /// violation, the witness *shrinks* to its two-item core, and the
    /// fixture *round-trips* through JSON bit-identically.
    #[test]
    fn axis_blind_packer_is_caught_shrunk_and_persisted() {
        // Pad a real failure with decoys the shrinker must strip.
        let mut items = vec![
            VecItem::new(0, SizeVec::from_f64s(&[0.2, 0.8]), 3, 40),
            VecItem::new(1, SizeVec::from_f64s(&[0.2, 0.8]), 5, 39),
        ];
        for i in 2..14 {
            items.push(VecItem::new(
                i,
                SizeVec::from_f64s(&[0.11, 0.07]),
                i as i64 * 7,
                i as i64 * 7 + 3,
            ));
        }
        let inst = VecInstance::from_items(items).unwrap();

        let fails = |candidate: &VecInstance| {
            VecOnlineEngine::non_clairvoyant()
                .run(candidate, &mut AxisBlindFirstFit)
                .is_err()
        };
        assert!(fails(&inst), "axis-blind bug must be caught");

        let small = shrink_vec_instance(&inst, fails, ShrinkBudget::default());
        assert!(fails(&small), "shrunk instance must still fail");
        assert!(small.len() <= 2, "got {} items: {small:?}", small.len());

        let fixture = VecFixture::from_instance(
            "axis-blind-ff",
            "faulty-axis-blind-ff",
            CheckId::EngineError.as_str(),
            0,
            0,
            "injected axis-blind fault",
            &small,
        );
        let parsed = VecFixture::parse(&fixture.to_json()).unwrap();
        assert_eq!(parsed, fixture);
        let replayed = parsed.instance().unwrap();
        assert_eq!(&replayed, &small, "fixture replay must be bit-identical");
        assert!(fails(&replayed));
    }

    #[test]
    fn vec_fixture_rejects_scalar_fixtures() {
        let scalar = crate::fixture::Fixture {
            name: "s".into(),
            algo: "first-fit".into(),
            check: "capacity".into(),
            seed: 0,
            case: 0,
            note: String::new(),
            items: vec![],
        };
        let err = VecFixture::parse(&scalar.to_json()).unwrap_err();
        assert!(err.contains("not a vector fixture"), "{err}");
    }

    #[test]
    fn shrinker_rounds_axes_and_renumbers() {
        // Awkward sizes on both axes; failure = "any item's axis 1
        // demand is at least half". The shrinker should land on one item
        // with clean eighths.
        let items = vec![
            VecItem::new(7, SizeVec::from_f64s(&[0.137, 0.613]), 9, 25),
            VecItem::new(11, SizeVec::from_f64s(&[0.211, 0.083]), 2, 30),
        ];
        let inst = VecInstance::from_items(items).unwrap();
        let fails = |c: &VecInstance| {
            c.items()
                .iter()
                .any(|r| r.size().axis(1).raw() * 2 >= Size::SCALE)
        };
        let small = shrink_vec_instance(&inst, fails, ShrinkBudget::default());
        assert!(fails(&small));
        assert_eq!(small.len(), 1);
        assert_eq!(small.items()[0].id().0, 0, "ids renumbered");
        assert!(small.items()[0].arrival() == 0);
        assert!(
            small.items()[0]
                .size()
                .axes()
                .iter()
                .all(|s| s.raw() % (Size::SCALE / 8) == 0),
            "axes rounded to eighths: {:?}",
            small.items()[0].size()
        );
    }
}
