//! The invariant checker: everything a `(Instance, OnlineRun | Packing)`
//! pair must satisfy, checked exactly.
//!
//! The checks, in dependency order:
//!
//! 1. **Coverage** — every instance item placed exactly once, nothing
//!    else placed ([`Packing::validate`]). Placement is a single static
//!    assignment, so passing coverage also certifies **no migration**.
//! 2. **Capacity** — no bin exceeds unit capacity at any load segment
//!    (exact sweep, also via [`Packing::validate`]).
//! 3. **Bin usage** — each bin's recorded lifetime equals the span of its
//!    members' intervals, and its open/close stamps are the members' hull.
//! 4. **Usage accounting** — the run's claimed total equals both the sum
//!    of per-bin lifetimes and the packing's recomputed `Σ span(R_k)`.
//! 5. **Bound chain** — `d(R) ≤ LB3`, `span ≤ LB3` (Proposition 3
//!    dominates 1 and 2), and `max(bounds) ≤ usage`. On instances small
//!    enough for the exact oracles, the full chain
//!    `LB3 ≤ OPT_total ≤ min_usage ≤ usage` is checked. (The issue's
//!    shorthand `d(R) ≤ span` is *not* an invariant — two full-size items
//!    sharing an interval have `d(R) = 2·span` — so the checker pins each
//!    bound below LB3 instead, which Proposition 3 does guarantee.)
//! 6. **Theorem ceilings** — for the roster's `cbdt` and `cbd` entries,
//!    `usage ≤ bound(μ, Δ) · OPT_total` (Theorems 4 and 5), checked when
//!    `OPT_total` is exactly computable.

use dbp_bench::registry::AlgoParams;
use dbp_core::accounting::lower_bounds;
use dbp_core::interval::span_of;
use dbp_core::online::OnlineRun;
use dbp_core::{DbpError, Instance, Item, ItemId, Packing};
use std::collections::HashMap;
use std::fmt;

/// Which invariant family a violation falls under. The string forms are
/// stable: they name checks in fixtures and CLI output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckId {
    /// Item coverage / no-migration (each item placed exactly once).
    Coverage,
    /// Bin capacity at every load segment.
    Capacity,
    /// Per-bin lifetime = span of member intervals.
    BinUsage,
    /// Claimed total usage = Σ per-bin spans.
    UsageAccounting,
    /// The Proposition 1–3 / exact-oracle bound chain.
    BoundChain,
    /// A Theorem 4/5 competitive-ratio ceiling.
    TheoremCeiling,
    /// Two execution paths disagreed (batch vs stream vs replay vs
    /// reference engine).
    Differential,
    /// The engine rejected the algorithm's decision or the run errored.
    EngineError,
    /// The cell panicked (caught; the sweep continued).
    Panic,
    /// Chaos accounting: a job was lost, double-counted, or its ledger
    /// contradicts its recorded outcome.
    ChaosAccounting,
    /// Chaos capacity: a bin exceeded capacity after fault recovery.
    ChaosCapacity,
    /// A checkpoint/resume differed from the uninterrupted run.
    Resume,
    /// Sharded accounting: an item was lost, duplicated, or the merged
    /// totals contradict the per-shard slices.
    ShardAccounting,
    /// A sharded run diverged from its per-shard plain-session reference
    /// (or a single-shard run from the unsharded session).
    ShardMerge,
    /// Telemetry work histograms differed between two replays of the
    /// same deterministic stream.
    TelemetryReplay,
    /// Fleet-merged telemetry work histograms differed across worker
    /// counts, or the histogram merge disagreed with the unsplit stream.
    TelemetryMerge,
    /// A vector run breached per-axis capacity (or coverage) on some
    /// load segment of some axis.
    VectorCapacity,
    /// A vector run's usage fell below the max-axis `⌈S_d(t)⌉` lower
    /// bound (the per-axis Proposition 3 maximum).
    VectorLowerBound,
}

impl CheckId {
    /// Stable identifier used in fixtures and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            CheckId::Coverage => "coverage",
            CheckId::Capacity => "capacity",
            CheckId::BinUsage => "bin-usage",
            CheckId::UsageAccounting => "usage-accounting",
            CheckId::BoundChain => "bound-chain",
            CheckId::TheoremCeiling => "theorem-ceiling",
            CheckId::Differential => "differential",
            CheckId::EngineError => "engine-error",
            CheckId::Panic => "panic",
            CheckId::ChaosAccounting => "chaos-accounting",
            CheckId::ChaosCapacity => "chaos-capacity",
            CheckId::Resume => "resume",
            CheckId::ShardAccounting => "shard-accounting",
            CheckId::ShardMerge => "shard-merge",
            CheckId::TelemetryReplay => "telemetry-replay",
            CheckId::TelemetryMerge => "telemetry-merge",
            CheckId::VectorCapacity => "vector-capacity",
            CheckId::VectorLowerBound => "vector-lower-bound",
        }
    }

    /// Parses the stable identifier back (fixture loading).
    pub fn parse(s: &str) -> Option<CheckId> {
        [
            CheckId::Coverage,
            CheckId::Capacity,
            CheckId::BinUsage,
            CheckId::UsageAccounting,
            CheckId::BoundChain,
            CheckId::TheoremCeiling,
            CheckId::Differential,
            CheckId::EngineError,
            CheckId::Panic,
            CheckId::ChaosAccounting,
            CheckId::ChaosCapacity,
            CheckId::Resume,
            CheckId::ShardAccounting,
            CheckId::ShardMerge,
            CheckId::TelemetryReplay,
            CheckId::TelemetryMerge,
            CheckId::VectorCapacity,
            CheckId::VectorLowerBound,
        ]
        .into_iter()
        .find(|c| c.as_str() == s)
    }
}

impl fmt::Display for CheckId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One violated invariant, with enough detail to act on.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Which invariant failed.
    pub check: CheckId,
    /// Human-readable specifics (values, bin ids, times).
    pub detail: String,
}

impl Violation {
    /// Convenience constructor.
    pub fn new(check: CheckId, detail: impl Into<String>) -> Violation {
        Violation {
            check,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// Item-count ceilings for the exponential exact oracles.
#[derive(Clone, Copy, Debug)]
pub struct ExactLimits {
    /// Max items for [`dbp_algos::exact::opt_total`] (per-segment
    /// branch-and-bound).
    pub opt_total_max: usize,
    /// Max items for [`dbp_algos::exact::min_usage_packing`] (exhaustive
    /// assignment DFS).
    pub min_usage_max: usize,
}

impl Default for ExactLimits {
    fn default() -> Self {
        ExactLimits {
            opt_total_max: 14,
            min_usage_max: 9,
        }
    }
}

/// Exact baselines for one instance, computed once and shared by every
/// algorithm audited on it. `None` means the instance was too large for
/// that oracle.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactBaselines {
    /// `OPT_total(R)` — the §3.2 repacking adversary.
    pub opt_total: Option<u128>,
    /// The exact no-migration optimum (the true MinUsageTime OPT).
    pub min_usage: Option<u128>,
}

/// Computes the affordable exact baselines for an instance.
pub fn exact_baselines(inst: &Instance, limits: ExactLimits) -> ExactBaselines {
    let n = inst.len();
    ExactBaselines {
        opt_total: (n <= limits.opt_total_max).then(|| dbp_algos::exact::opt_total(inst)),
        min_usage: (n <= limits.min_usage_max).then(|| dbp_algos::exact::min_usage_packing(inst).0),
    }
}

fn coverage_violation(e: &DbpError) -> Violation {
    let check = match e {
        DbpError::CapacityExceeded { .. } => CheckId::Capacity,
        _ => CheckId::Coverage,
    };
    Violation::new(check, e.to_string())
}

/// Checks a bare packing (offline algorithms): coverage, capacity, usage
/// accounting against `claimed_usage` when given, and the bound chain.
pub fn check_packing(
    inst: &Instance,
    packing: &Packing,
    claimed_usage: Option<u128>,
    exact: &ExactBaselines,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if let Err(e) = packing.validate(inst) {
        out.push(coverage_violation(&e));
        // A broken placement makes usage numbers meaningless; stop here.
        return out;
    }
    let total = packing.total_usage(inst);
    if let Some(claimed) = claimed_usage {
        if claimed != total {
            out.push(Violation::new(
                CheckId::UsageAccounting,
                format!("claimed usage {claimed} != recomputed Σ span(R_k) = {total}"),
            ));
        }
    }
    check_bound_chain(inst, total, exact, &mut out);
    out
}

/// Checks an online run: everything [`check_packing`] checks, plus the
/// per-bin lifetime records against the packing they claim to describe.
pub fn check_run(inst: &Instance, run: &OnlineRun, exact: &ExactBaselines) -> Vec<Violation> {
    let mut out = check_packing(inst, &run.packing, Some(run.usage), exact);

    let index: HashMap<ItemId, &Item> = inst.items().iter().map(|r| (r.id(), r)).collect();
    let mut from_records: u128 = 0;
    for rec in &run.bins {
        from_records += rec.usage();
        // Record membership must equal the packing's bin, in placement order.
        let placed = run.packing.bin(rec.id);
        if placed != rec.items.as_slice() {
            out.push(Violation::new(
                CheckId::BinUsage,
                format!(
                    "bin {} record lists items {:?} but packing holds {:?}",
                    rec.id.0, rec.items, placed
                ),
            ));
            continue;
        }
        let members: Vec<&Item> = match rec.items.iter().map(|id| index.get(id).copied()).collect()
        {
            Some(m) => m,
            None => continue, // unknown item already reported as Coverage
        };
        let span = span_of(members.iter().map(|m| m.interval())) as u128;
        if rec.usage() != span {
            out.push(Violation::new(
                CheckId::BinUsage,
                format!(
                    "bin {} lifetime {} != span of members {}",
                    rec.id.0,
                    rec.usage(),
                    span
                ),
            ));
        }
        let hull_open = members.iter().map(|m| m.arrival()).min();
        let hull_close = members.iter().map(|m| m.departure()).max();
        if hull_open != Some(rec.opened_at) || hull_close != Some(rec.closed_at) {
            out.push(Violation::new(
                CheckId::BinUsage,
                format!(
                    "bin {} open/close [{}, {}) != member hull [{:?}, {:?})",
                    rec.id.0, rec.opened_at, rec.closed_at, hull_open, hull_close
                ),
            ));
        }
    }
    if from_records != run.usage {
        out.push(Violation::new(
            CheckId::UsageAccounting,
            format!(
                "Σ bin-record lifetimes {} != claimed usage {}",
                from_records, run.usage
            ),
        ));
    }
    out
}

/// The Proposition 1–3 ordering and, when exact oracles are affordable,
/// the full `LB3 ≤ OPT_total ≤ min_usage ≤ usage` chain.
pub fn check_bound_chain(
    inst: &Instance,
    usage: u128,
    exact: &ExactBaselines,
    out: &mut Vec<Violation>,
) {
    let lb = lower_bounds(inst);
    if lb.demand.ticks_ceil() > lb.lb3 {
        out.push(Violation::new(
            CheckId::BoundChain,
            format!(
                "demand {} exceeds LB3 {} (Prop 3 must dominate Prop 1)",
                lb.demand.ticks_ceil(),
                lb.lb3
            ),
        ));
    }
    if lb.span > lb.lb3 {
        out.push(Violation::new(
            CheckId::BoundChain,
            format!(
                "span {} exceeds LB3 {} (Prop 3 must dominate Prop 2)",
                lb.span, lb.lb3
            ),
        ));
    }
    let mut floor = lb.best();
    let mut floor_name = "max(LB1..LB3)";
    if let Some(opt) = exact.opt_total {
        if lb.lb3 > opt {
            out.push(Violation::new(
                CheckId::BoundChain,
                format!("LB3 {} exceeds OPT_total {}", lb.lb3, opt),
            ));
        }
        floor = floor.max(opt);
        floor_name = "OPT_total";
        if let Some(mu) = exact.min_usage {
            if opt > mu {
                out.push(Violation::new(
                    CheckId::BoundChain,
                    format!("OPT_total {opt} exceeds no-migration optimum {mu}"),
                ));
            }
        }
    }
    if let Some(min_usage) = exact.min_usage {
        floor = floor.max(min_usage);
        floor_name = "min_usage";
    }
    if usage < floor {
        out.push(Violation::new(
            CheckId::BoundChain,
            format!("usage {usage} is below the {floor_name} lower bound {floor}"),
        ));
    }
}

/// The Theorem 4/5 competitive-ratio ceiling for a roster algorithm with
/// parameters derived from the instance the way the registry derives them,
/// or `None` when no proven ceiling applies.
pub fn theorem_ceiling(algo: &str, inst: &Instance) -> Option<(f64, &'static str)> {
    if inst.is_empty() {
        return None;
    }
    let params = AlgoParams::from_instance(inst);
    match algo {
        "cbdt" => {
            // Mirror ClassifyByDepartureTime::with_known_durations exactly:
            // ρ = round(√μ·Δ) clamped to ≥ 1, then the general Theorem 4
            // form ρ/Δ + μΔ/ρ + 3 (the rounded ρ makes the optimized
            // 2√μ + 3 form slightly off).
            let rho = ((params.mu.sqrt() * params.delta as f64).round() as i64).max(1);
            Some((
                dbp_theory::ratios::cbdt_bound(rho as f64, params.delta as f64, params.mu),
                "Theorem 4",
            ))
        }
        "cbd" => {
            // with_known_durations picks n = argmin μ^{1/n} + n + 3 and
            // α = μ^{1/n}; cbd_best_known computes the same minimum.
            Some((dbp_theory::ratios::cbd_best_known(params.mu).0, "Theorem 5"))
        }
        _ => None,
    }
}

/// Checks `usage ≤ ceiling · OPT_total` for algorithms with a proven
/// ceiling, when `OPT_total` is exactly known.
pub fn check_theorem_ceiling(
    algo: &str,
    inst: &Instance,
    usage: u128,
    exact: &ExactBaselines,
    out: &mut Vec<Violation>,
) {
    let (Some((ceiling, theorem)), Some(opt)) = (theorem_ceiling(algo, inst), exact.opt_total)
    else {
        return;
    };
    if opt == 0 {
        return;
    }
    // A hair of relative slack for the f64 products; the theorems
    // themselves are strict.
    let allowed = ceiling * opt as f64 * (1.0 + 1e-9);
    if usage as f64 > allowed {
        out.push(Violation::new(
            CheckId::TheoremCeiling,
            format!(
                "{algo} usage {usage} exceeds {theorem} ceiling {ceiling:.4} × OPT_total {opt} = {allowed:.2}"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::OnlineEngine;

    fn inst() -> Instance {
        Instance::from_triples(&[(0.6, 0, 10), (0.6, 2, 12), (0.3, 5, 7), (0.9, 20, 30)])
    }

    #[test]
    fn clean_run_has_no_violations() {
        let inst = inst();
        let exact = exact_baselines(&inst, ExactLimits::default());
        assert!(exact.opt_total.is_some() && exact.min_usage.is_some());
        let mut ff = dbp_algos::online::AnyFit::first_fit();
        let run = OnlineEngine::non_clairvoyant().run(&inst, &mut ff).unwrap();
        let v = check_run(&inst, &run, &exact);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn lying_about_usage_is_caught() {
        let inst = inst();
        let exact = ExactBaselines::default();
        let mut ff = dbp_algos::online::AnyFit::first_fit();
        let mut run = OnlineEngine::non_clairvoyant().run(&inst, &mut ff).unwrap();
        run.usage += 1;
        let v = check_run(&inst, &run, &exact);
        assert!(v.iter().any(|v| v.check == CheckId::UsageAccounting));
    }

    #[test]
    fn usage_below_lower_bound_is_caught() {
        let inst = inst();
        let exact = exact_baselines(&inst, ExactLimits::default());
        let mut out = Vec::new();
        check_bound_chain(&inst, 1, &exact, &mut out);
        assert!(out.iter().any(|v| v.check == CheckId::BoundChain));
    }

    #[test]
    fn overfull_packing_is_caught_as_capacity() {
        let inst = Instance::from_triples(&[(0.7, 0, 10), (0.7, 0, 10)]);
        let packing = Packing::from_bins(vec![vec![ItemId(0), ItemId(1)]]);
        let v = check_packing(&inst, &packing, None, &ExactBaselines::default());
        assert!(v.iter().any(|v| v.check == CheckId::Capacity));
    }

    #[test]
    fn check_id_round_trips() {
        for c in [
            CheckId::Coverage,
            CheckId::Capacity,
            CheckId::BinUsage,
            CheckId::UsageAccounting,
            CheckId::BoundChain,
            CheckId::TheoremCeiling,
            CheckId::Differential,
            CheckId::EngineError,
            CheckId::Panic,
            CheckId::ChaosAccounting,
            CheckId::ChaosCapacity,
            CheckId::Resume,
            CheckId::ShardAccounting,
            CheckId::ShardMerge,
            CheckId::TelemetryReplay,
            CheckId::TelemetryMerge,
            CheckId::VectorCapacity,
            CheckId::VectorLowerBound,
        ] {
            assert_eq!(CheckId::parse(c.as_str()), Some(c));
        }
        assert_eq!(CheckId::parse("nope"), None);
    }

    #[test]
    fn theorem_ceilings_exist_only_for_classify_algos() {
        let inst = inst();
        assert!(theorem_ceiling("cbdt", &inst).is_some());
        assert!(theorem_ceiling("cbd", &inst).is_some());
        assert!(theorem_ceiling("first-fit", &inst).is_none());
        assert!(theorem_ceiling("combined", &inst).is_none());
    }
}
