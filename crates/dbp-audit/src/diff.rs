//! The differential harness: one algorithm, one instance, four
//! independently-implemented execution paths that must agree bit-for-bit.
//!
//! 1. **batch** — [`OnlineEngine::run`] (the production path);
//! 2. **stream** — a hand-driven [`StreamingSession`] that calls
//!    [`StreamingSession::advance_to`] before each arrival, exercising the
//!    explicit clock-advance path the batch wrapper never takes;
//! 3. **replay** — [`OnlineEngine::run_observed`] into an
//!    [`EventLog`], reconstructed by `dbp-obs` replay and re-verified —
//!    an oracle that recomputes the packing and usage from the event
//!    stream alone;
//! 4. **reference** — for `next-fit` only, the seed-style linear
//!    engine in [`dbp_bench::reference`], a fully independent
//!    implementation of the same semantics.
//!
//! Disagreement anywhere is a [`CheckId::Differential`] violation; an
//! engine error (the packer made an illegal decision) is
//! [`CheckId::EngineError`]. On top of the cross-checks, path 1's run goes
//! through the full invariant checker ([`check_run`]) and the Theorem 4/5
//! ceilings.

use crate::invariants::{
    check_packing, check_run, check_theorem_ceiling, CheckId, ExactBaselines, Violation,
};
use dbp_bench::reference::reference_next_fit;
use dbp_bench::registry::{offline_packer, online_packer, online_packer_linear, AlgoParams};
use dbp_core::observe::EventLog;
use dbp_core::stream::StreamingSession;
use dbp_core::{ClairvoyanceMode, Instance, OnlineEngine, OnlinePacker, OnlineRun};
use dbp_obs::replay::replay_events;

/// The clairvoyance mode each roster algorithm is audited under — the
/// same mapping the CLI's `compare` uses: classification strategies need
/// departure times, Any Fit variants are run honestly without them.
pub fn clairvoyance_for(algo: &str) -> ClairvoyanceMode {
    if matches!(algo, "cbdt" | "cbd" | "combined") {
        ClairvoyanceMode::Clairvoyant
    } else {
        ClairvoyanceMode::NonClairvoyant
    }
}

/// Field-by-field run equality ([`OnlineRun`] carries no `PartialEq`):
/// placements, total usage, and every bin-lifetime record.
pub fn runs_equal(a: &OnlineRun, b: &OnlineRun) -> Result<(), String> {
    if a.packing != b.packing {
        return Err("placements differ".into());
    }
    if a.usage != b.usage {
        return Err(format!("usage {} != {}", a.usage, b.usage));
    }
    if a.bins.len() != b.bins.len() {
        return Err(format!("bin count {} != {}", a.bins.len(), b.bins.len()));
    }
    for (x, y) in a.bins.iter().zip(&b.bins) {
        if (x.id, x.opened_at, x.closed_at, x.tag, &x.items)
            != (y.id, y.opened_at, y.closed_at, y.tag, &y.items)
        {
            return Err(format!(
                "bin {} lifetime record differs: [{}, {}) tag {} items {:?} \
                 vs [{}, {}) tag {} items {:?}",
                x.id.0,
                x.opened_at,
                x.closed_at,
                x.tag,
                x.items,
                y.opened_at,
                y.closed_at,
                y.tag,
                y.items
            ));
        }
    }
    Ok(())
}

/// Audits one online packer on one instance through all applicable paths.
///
/// `algo` is only used for labeling and for the Theorem 4/5 ceiling and
/// reference-engine cross-checks (pass a non-roster name for custom
/// packers); `fresh` must return an identically-configured packer each
/// call, since every path needs untouched state.
pub fn audit_online_with<F>(
    inst: &Instance,
    algo: &str,
    mode: ClairvoyanceMode,
    exact: &ExactBaselines,
    mut fresh: F,
) -> Vec<Violation>
where
    F: FnMut() -> Box<dyn OnlinePacker + Send>,
{
    let engine = OnlineEngine::new(mode.clone());
    let mut out = Vec::new();

    let batch = match engine.run(inst, fresh().as_mut()) {
        Ok(run) => run,
        Err(e) => {
            out.push(Violation::new(
                CheckId::EngineError,
                format!("{algo}: batch run failed: {e}"),
            ));
            return out;
        }
    };

    out.extend(check_run(inst, &batch, exact));
    check_theorem_ceiling(algo, inst, batch.usage, exact, &mut out);

    // Path 2: hand-driven streaming with explicit clock advances.
    let mut packer = fresh();
    let mut session = StreamingSession::new(mode.clone(), packer.as_mut());
    let streamed = (|| -> Result<OnlineRun, dbp_core::DbpError> {
        for item in inst.items() {
            session.advance_to(item.arrival())?;
            session.arrive(item)?;
        }
        session.finish()
    })();
    match streamed {
        Ok(run) => {
            if let Err(why) = runs_equal(&batch, &run) {
                out.push(Violation::new(
                    CheckId::Differential,
                    format!("{algo}: stream vs batch: {why}"),
                ));
            }
        }
        Err(e) => out.push(Violation::new(
            CheckId::Differential,
            format!("{algo}: streaming path failed where batch succeeded: {e}"),
        )),
    }

    // Path 3: observe, replay from events, re-verify.
    let mut log = EventLog::new();
    match engine.run_observed(inst, fresh().as_mut(), &mut log) {
        Ok(observed) => {
            if let Err(why) = runs_equal(&batch, &observed) {
                out.push(Violation::new(
                    CheckId::Differential,
                    format!("{algo}: observed vs batch: {why}"),
                ));
            }
            match replay_events(&log.events) {
                Ok(replay) => {
                    if let Err(e) = replay.verify() {
                        out.push(Violation::new(
                            CheckId::Differential,
                            format!("{algo}: replay self-verification failed: {e}"),
                        ));
                    }
                    if replay.instance != *inst {
                        out.push(Violation::new(
                            CheckId::Differential,
                            format!("{algo}: replay reconstructed a different instance"),
                        ));
                    }
                    if let Err(why) = runs_equal(&batch, &replay.run) {
                        out.push(Violation::new(
                            CheckId::Differential,
                            format!("{algo}: replay vs batch: {why}"),
                        ));
                    }
                }
                Err(e) => out.push(Violation::new(
                    CheckId::Differential,
                    format!("{algo}: event stream does not replay: {e}"),
                )),
            }
        }
        Err(e) => out.push(Violation::new(
            CheckId::Differential,
            format!("{algo}: observed path failed where batch succeeded: {e}"),
        )),
    }

    // Path 4: the independent linear reference engine (Next Fit only).
    if algo == "next-fit" {
        let reference = reference_next_fit(inst);
        if reference.usage != batch.usage || reference.bins.len() != batch.bins.len() {
            out.push(Violation::new(
                CheckId::Differential,
                format!(
                    "{algo}: reference engine usage {} / {} bins vs batch {} / {}",
                    reference.usage,
                    reference.bins.len(),
                    batch.usage,
                    batch.bins.len()
                ),
            ));
        } else {
            for (rec, refbin) in batch.bins.iter().zip(&reference.bins) {
                if rec.opened_at != refbin.opened_at
                    || rec.closed_at != refbin.closed_at
                    || rec.items != refbin.items
                {
                    out.push(Violation::new(
                        CheckId::Differential,
                        format!("{algo}: reference engine bin {} differs", rec.id.0),
                    ));
                    break;
                }
            }
        }
    }

    out
}

/// Audits one online roster algorithm by name.
pub fn audit_online_algo(inst: &Instance, algo: &str, exact: &ExactBaselines) -> Vec<Violation> {
    let params = AlgoParams::from_instance(inst);
    let mode = clairvoyance_for(algo);
    let mut out = audit_online_with(inst, algo, mode.clone(), exact, || {
        online_packer(algo, params)
    });

    // Path 5: the linear-scan foil. Roster packers answer placements
    // from the OpenBins fit index; the seed's linear walk is kept as a
    // selectable differential witness, and every audited instance proves
    // the two paths bit-identical — packing, usage, and bin lifetime
    // records alike.
    let engine = OnlineEngine::new(mode);
    match (
        engine.run(inst, online_packer(algo, params).as_mut()),
        engine.run(inst, online_packer_linear(algo, params).as_mut()),
    ) {
        (Ok(indexed), Ok(linear)) => {
            if let Err(why) = runs_equal(&indexed, &linear) {
                out.push(Violation::new(
                    CheckId::Differential,
                    format!("{algo}: indexed vs linear scan: {why}"),
                ));
            }
        }
        (Err(e), _) | (_, Err(e)) => out.push(Violation::new(
            CheckId::Differential,
            format!("{algo}: indexed-vs-linear comparison failed to run: {e}"),
        )),
    }
    out
}

/// Audits one offline roster algorithm by name: packing invariants plus
/// the bound chain.
pub fn audit_offline_algo(inst: &Instance, algo: &str, exact: &ExactBaselines) -> Vec<Violation> {
    let packer = offline_packer(algo);
    let packing = packer.pack(inst);
    let usage = packing.total_usage(inst);
    check_packing(inst, &packing, Some(usage), exact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::{exact_baselines, ExactLimits};
    use dbp_bench::registry::{OFFLINE_ALGOS, ONLINE_ALGOS};

    #[test]
    fn full_roster_passes_on_a_structured_instance() {
        let inst = Instance::from_triples(&[
            (0.6, 0, 10),
            (0.6, 2, 12),
            (0.3, 5, 7),
            (0.45, 6, 40),
            (0.9, 20, 30),
        ]);
        let exact = exact_baselines(&inst, ExactLimits::default());
        for algo in ONLINE_ALGOS {
            let v = audit_online_algo(&inst, algo, &exact);
            assert!(v.is_empty(), "{algo}: {v:?}");
        }
        for algo in OFFLINE_ALGOS {
            let v = audit_offline_algo(&inst, algo, &exact);
            assert!(v.is_empty(), "{algo}: {v:?}");
        }
    }

    #[test]
    fn runs_equal_spots_usage_drift() {
        let inst = Instance::from_triples(&[(0.5, 0, 10), (0.5, 1, 8)]);
        let mut ff = dbp_algos::online::AnyFit::first_fit();
        let a = OnlineEngine::non_clairvoyant().run(&inst, &mut ff).unwrap();
        let mut b = a.clone();
        b.usage += 3;
        assert!(runs_equal(&a, &b).is_err());
        assert!(runs_equal(&a, &a.clone()).is_ok());
    }
}
