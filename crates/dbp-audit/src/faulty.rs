//! Deliberately broken packers: the audit subsystem's own test fixtures.
//!
//! These exist to prove the pipeline end to end — a real bug must be
//! *caught* (as a violation, not a crash), *shrunk* to a minimal witness,
//! and *persisted* as a replayable fixture, all without aborting the
//! surrounding sweep. They are exported (not `#[cfg(test)]`) so the CLI's
//! `audit --self-test` can run the same proof on demand, but they must
//! never appear in the real roster.

use dbp_core::online::{Decision, ItemView, OpenBins};
use dbp_core::{OnlinePacker, VecItemView, VecOnlinePacker, VecOpenBins};

/// First Fit with the capacity check ignored: places into the first open
/// bin with *any* headroom, even when the item does not fit. The engine
/// rejects the overfull placement ([`dbp_core::DbpError::BadDecision`]),
/// which the audit reports as an engine-error violation. Minimal witness:
/// two overlapping items whose sizes sum past capacity.
#[derive(Clone, Copy, Debug, Default)]
pub struct OverfullFirstFit;

impl OnlinePacker for OverfullFirstFit {
    fn name(&self) -> String {
        "faulty-overfull-ff".into()
    }

    fn place(&mut self, _item: &ItemView, open_bins: &OpenBins) -> Decision {
        for b in open_bins {
            if b.level() < dbp_core::Size::CAPACITY {
                return Decision::Existing(b.id());
            }
        }
        Decision::New { tag: 0 }
    }
}

/// Vector First Fit that checks feasibility on **axis 0 only** — the
/// classic scalar-brained bug a vector packer can have. With two or more
/// dimensions it happily overfills any later axis; the engine rejects the
/// placement ([`dbp_core::DbpError::BadDecision`]), which the vector
/// audit reports as an engine-error violation. Minimal witness: two
/// overlapping items light on axis 0 and heavy on axis 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct AxisBlindFirstFit;

impl VecOnlinePacker for AxisBlindFirstFit {
    fn name(&self) -> String {
        "faulty-axis-blind-ff".into()
    }

    fn place(&mut self, item: &VecItemView, open_bins: &VecOpenBins) -> Decision {
        for b in open_bins {
            if item.size.axis(0) <= b.gap().axis(0) {
                return Decision::Existing(b.id());
            }
        }
        Decision::New { tag: 0 }
    }
}

/// Panics on its `n`-th placement (1-based): exercises panic isolation in
/// the sweep and in the shrinker's predicate. Minimal witness: `n` items.
#[derive(Clone, Copy, Debug)]
pub struct PanicOnNth {
    n: usize,
    placed: usize,
}

impl PanicOnNth {
    /// Panics when asked to place the `n`-th item (`n ≥ 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        PanicOnNth { n, placed: 0 }
    }
}

impl OnlinePacker for PanicOnNth {
    fn name(&self) -> String {
        format!("faulty-panic-on-{}", self.n)
    }

    fn reset(&mut self) {
        self.placed = 0;
    }

    fn place(&mut self, item: &ItemView, _open_bins: &OpenBins) -> Decision {
        self.placed += 1;
        if self.placed >= self.n {
            panic!("injected fault: refusing to place item {}", item.id);
        }
        Decision::New { tag: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::{
        DbpError, Instance, OnlineEngine, SizeVec, VecInstance, VecItem, VecOnlineEngine,
    };

    #[test]
    fn axis_blind_ff_is_rejected_by_the_engine() {
        // Axis 0 has room, axis 1 does not: the blind packer reuses the
        // bin and the engine refuses.
        let items = vec![
            VecItem::new(0, SizeVec::from_f64s(&[0.2, 0.8]), 0, 10),
            VecItem::new(1, SizeVec::from_f64s(&[0.2, 0.8]), 1, 9),
        ];
        let inst = VecInstance::from_items(items).unwrap();
        let err = VecOnlineEngine::non_clairvoyant()
            .run(&inst, &mut AxisBlindFirstFit)
            .unwrap_err();
        assert!(matches!(err, DbpError::BadDecision { .. }));
    }

    #[test]
    fn overfull_ff_is_rejected_by_the_engine() {
        let inst = Instance::from_triples(&[(0.7, 0, 10), (0.7, 1, 9)]);
        let err = OnlineEngine::non_clairvoyant()
            .run(&inst, &mut OverfullFirstFit)
            .unwrap_err();
        assert!(matches!(err, DbpError::BadDecision { .. }));
    }

    #[test]
    fn panic_on_nth_fires_exactly_at_n() {
        let inst = Instance::from_triples(&[(0.2, 0, 5), (0.2, 1, 6), (0.2, 2, 7)]);
        let _quiet = crate::QuietPanics::new();
        let result = crate::fuzz::isolated(|| {
            OnlineEngine::non_clairvoyant().run(&inst, &mut PanicOnNth::new(3))
        });
        let msg = result.unwrap_err();
        assert!(msg.contains("injected fault"));
        // n larger than the instance never fires.
        let ok = OnlineEngine::non_clairvoyant()
            .run(&inst, &mut PanicOnNth::new(4))
            .unwrap();
        assert_eq!(ok.packing.num_bins(), 3);
    }
}
