//! The chaos audit family: seeded fault-injected sweeps over the online
//! roster, checking the resilience layer's three promises on every case:
//!
//! 1. **No job lost silently** — [`ChaosReport::verify`]'s exactly-once
//!    accounting ([`CheckId::ChaosAccounting`]).
//! 2. **Capacity never exceeded post-recovery** — the effective-interval
//!    capacity sweep ([`CheckId::ChaosCapacity`]).
//! 3. **Resumed runs are bit-identical** — a mid-stream checkpoint,
//!    round-tripped through the JSON encoding and restored into a fresh
//!    packer, must finish exactly like the uninterrupted session
//!    ([`CheckId::Resume`]).
//!
//! Cases reuse [`crate::fuzz::case_instance`], so a chaos failure
//! reproduces from `(seed, case)` exactly like a plain audit failure;
//! the fault plan, recovery policy, fleet cap, and admission policy are
//! all derived from the same two numbers.

use crate::fuzz::{case_instance, isolated, Failure};
use crate::invariants::{CheckId, Violation};
use crate::shrink::{shrink_instance, ShrinkBudget};
use crate::AuditSummary;
use dbp_bench::grid::{run_grid_checked, GridCell};
use dbp_bench::registry::{online_packer, AlgoParams, ONLINE_ALGOS};
use dbp_core::{ClairvoyanceMode, DbpError, Instance, StreamingSession};
use dbp_resilience::chaos::{run_chaos, ChaosConfig, ChaosReport};
use dbp_resilience::checkpoint::{snapshot_from_json, snapshot_to_json};
use dbp_resilience::fault::{AdmissionPolicy, FaultPlan, RecoveryPolicy};

/// Chaos-sweep configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChaosAuditConfig {
    /// Number of generated cases.
    pub cases: u64,
    /// Master seed; instances, fault plans, and policies derive from it.
    pub seed: u64,
    /// Upper bound on generated instance size.
    pub max_items: usize,
    /// Worker threads (`None` = available parallelism).
    pub threads: Option<usize>,
}

impl Default for ChaosAuditConfig {
    fn default() -> Self {
        ChaosAuditConfig {
            cases: 50,
            seed: 0,
            max_items: 24,
            threads: None,
        }
    }
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic chaos configuration for `(seed, case_idx)` on a
/// given instance: fault count, recovery policy, fleet cap, and
/// admission policy all rotate with the case.
pub fn case_chaos_config(seed: u64, case_idx: u64, inst: &Instance) -> ChaosConfig {
    let s = mix(seed ^ mix(case_idx).rotate_left(17));
    let horizon = inst.last_departure().unwrap_or(1).max(1);
    let plan = FaultPlan::seeded(s, horizon, (s % 5) as usize);
    let policy = match (s >> 8) % 3 {
        0 => RecoveryPolicy::Immediate,
        1 => RecoveryPolicy::Backoff {
            base: 1 + ((s >> 16) % 4) as i64,
            cap: 32,
            max_retries: 1 + ((s >> 24) % 3) as u32,
        },
        _ => RecoveryPolicy::DropAfter {
            max_retries: ((s >> 16) % 3) as u32,
        },
    };
    let fleet_cap = match (s >> 32) % 3 {
        0 => None,
        1 => Some(1 + ((s >> 40) % 4) as usize),
        _ => Some(2 + ((s >> 40) % 8) as usize),
    };
    let admission = if (s >> 48).is_multiple_of(2) {
        AdmissionPolicy::Queue
    } else {
        AdmissionPolicy::Reject
    };
    ChaosConfig {
        plan,
        policy,
        fleet_cap,
        admission,
    }
}

fn mode_for(algo: &str) -> ClairvoyanceMode {
    if matches!(algo, "cbdt" | "cbd" | "combined") {
        ClairvoyanceMode::Clairvoyant
    } else {
        ClairvoyanceMode::NonClairvoyant
    }
}

fn classify(err: &DbpError) -> CheckId {
    match err {
        DbpError::CapacityExceeded { .. } => CheckId::ChaosCapacity,
        DbpError::PackingCoverage { .. } => CheckId::ChaosAccounting,
        _ => CheckId::EngineError,
    }
}

/// Runs one algorithm's chaos audit on one instance: the fault-injected
/// run plus its oracle, and a mid-stream checkpoint/resume bit-identity
/// check on the fault-free stream.
pub fn audit_chaos_algo(inst: &Instance, algo: &str, cfg: &ChaosConfig) -> Vec<Violation> {
    let params = AlgoParams::from_instance(inst);
    let mut out = Vec::new();

    let mut packer = online_packer(algo, params);
    match run_chaos(inst, &mut *packer, mode_for(algo), cfg) {
        Ok(report) => {
            if let Err(e) = report.verify(inst) {
                out.push(Violation::new(classify(&e), format!("{algo}: {e}")));
            }
            out.extend(check_ledger_sums(algo, &report));
        }
        Err(e) => out.push(Violation::new(
            CheckId::EngineError,
            format!("{algo}: chaos run failed: {e}"),
        )),
    }

    out.extend(check_resume(inst, algo, params));
    out
}

/// Cross-checks the report's scalar counters against its own ledger.
fn check_ledger_sums(algo: &str, report: &ChaosReport) -> Vec<Violation> {
    let c = report.retry_counters();
    let total = c.jobs_completed + c.jobs_retried + c.jobs_dropped + c.jobs_rejected;
    if total != report.outcomes.len() as u64 {
        return vec![Violation::new(
            CheckId::ChaosAccounting,
            format!(
                "{algo}: outcome counters sum to {total} for {} jobs",
                report.outcomes.len()
            ),
        )];
    }
    Vec::new()
}

/// The resume invariant: checkpoint after half the arrivals (through the
/// JSON encoding) and finish in a fresh session — bit-identical run.
fn check_resume(inst: &Instance, algo: &str, params: AlgoParams) -> Vec<Violation> {
    let mut items = inst.items().to_vec();
    items.sort_by_key(|i| (i.arrival(), i.id()));

    let run_full = (|| {
        let mut p = online_packer(algo, params);
        let mut s = StreamingSession::new(mode_for(algo), &mut *p);
        for item in &items {
            s.arrive(item)?;
        }
        s.finish()
    })();
    let full = match run_full {
        Ok(r) => r,
        Err(e) => {
            return vec![Violation::new(
                CheckId::EngineError,
                format!("{algo}: streaming run failed: {e}"),
            )]
        }
    };

    let cut = items.len() / 2;
    let resumed = (|| {
        let mut p = online_packer(algo, params);
        let mut s = StreamingSession::new(mode_for(algo), &mut *p);
        for item in &items[..cut] {
            s.arrive(item)?;
        }
        let snap = snapshot_from_json(&snapshot_to_json(&s.snapshot()))?;
        drop(s);
        let mut p2 = online_packer(algo, params);
        let mut s2 = StreamingSession::restore(mode_for(algo), &mut *p2, &snap)?;
        for item in &items[cut..] {
            s2.arrive(item)?;
        }
        s2.finish()
    })();
    match resumed {
        Ok(r) if r == full => Vec::new(),
        Ok(_) => vec![Violation::new(
            CheckId::Resume,
            format!("{algo}: resumed run diverged from uninterrupted run at cut {cut}"),
        )],
        Err(e) => vec![Violation::new(
            CheckId::Resume,
            format!("{algo}: checkpoint/resume failed at cut {cut}: {e}"),
        )],
    }
}

/// Audits one instance against the online roster under one chaos
/// configuration, each algorithm panic-isolated.
pub fn audit_chaos_instance(inst: &Instance, cfg: &ChaosConfig) -> Vec<(String, Vec<Violation>)> {
    ONLINE_ALGOS
        .iter()
        .map(|algo| {
            let v = match isolated(|| audit_chaos_algo(inst, algo, cfg)) {
                Ok(v) => v,
                Err(msg) => vec![Violation::new(CheckId::Panic, format!("{algo}: {msg}"))],
            };
            (algo.to_string(), v)
        })
        .collect()
}

/// Runs the chaos sweep. Same containment guarantees as
/// [`crate::fuzz::run_audit`]: any panic is confined to its cell.
pub fn run_chaos_audit(cfg: &ChaosAuditConfig) -> AuditSummary {
    let cells: Vec<GridCell<u64>> = (0..cfg.cases)
        .map(|i| GridCell {
            label: format!("chaos{i}"),
            input: i,
        })
        .collect();
    let (seed, max_items) = (cfg.seed, cfg.max_items);

    let results = run_grid_checked(cells, cfg.threads, move |&case_idx| {
        let (family, inst) = case_instance(seed, case_idx, max_items);
        let chaos = case_chaos_config(seed, case_idx, &inst);
        let per_algo = audit_chaos_instance(&inst, &chaos);
        (family, per_algo)
    });

    let mut summary = AuditSummary {
        cases: cfg.cases,
        ..Default::default()
    };
    for (case_idx, res) in results.into_iter().enumerate() {
        match res.output {
            Ok((family, per_algo)) => {
                summary.cells += per_algo.len();
                for (algo, violations) in per_algo {
                    if !violations.is_empty() {
                        summary.failures.push(Failure {
                            case: case_idx as u64,
                            family: format!("chaos:{family}"),
                            algo,
                            violations,
                        });
                    }
                }
            }
            Err(p) => summary.failures.push(Failure {
                case: case_idx as u64,
                family: "chaos:<generation>".into(),
                algo: "<cell>".into(),
                violations: vec![Violation::new(CheckId::Panic, p.message)],
            }),
        }
    }
    summary
}

/// Shrinks a chaos failure to a minimal instance that still fails the
/// same algorithm under the *same* `(seed, case)`-derived chaos
/// configuration (re-derived per candidate so the fault plan tracks the
/// shrinking horizon).
pub fn shrink_chaos_failure(
    inst: &Instance,
    algo: &str,
    seed: u64,
    case_idx: u64,
    budget: ShrinkBudget,
) -> Instance {
    let algo = algo.to_string();
    shrink_instance(
        inst,
        move |candidate| {
            let chaos = case_chaos_config(seed, case_idx, candidate);
            match isolated(|| audit_chaos_algo(candidate, &algo, &chaos)) {
                Ok(v) => !v.is_empty(),
                Err(_) => true,
            }
        },
        budget,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_configs_are_deterministic_and_varied() {
        let (_, inst) = case_instance(3, 2, 24);
        let a = case_chaos_config(3, 2, &inst);
        let b = case_chaos_config(3, 2, &inst);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.fleet_cap, b.fleet_cap);
        assert_eq!(a.admission, b.admission);
        // Across cases, the knobs actually move.
        let mut caps = std::collections::HashSet::new();
        for case in 0..24 {
            let (_, inst) = case_instance(3, case, 24);
            caps.insert(case_chaos_config(3, case, &inst).fleet_cap);
        }
        assert!(caps.len() >= 2, "fleet caps never varied");
    }

    #[test]
    fn small_chaos_sweep_is_clean() {
        let cfg = ChaosAuditConfig {
            cases: 12,
            seed: 5,
            ..Default::default()
        };
        let summary = run_chaos_audit(&cfg);
        assert_eq!(summary.cases, 12);
        assert_eq!(summary.cells, 12 * ONLINE_ALGOS.len());
        assert!(
            summary.ok(),
            "chaos violations on a clean roster: {:?}",
            summary.failures
        );
    }

    #[test]
    fn shrink_preserves_a_chaos_failure_predicate() {
        // Shrinking against an always-true predicate must terminate and
        // return a (possibly empty) sub-instance; with the real predicate
        // on a clean roster there is nothing to shrink. Use a synthetic
        // predicate: "at least 2 items" — the shrinker should land near 2.
        let (_, inst) = case_instance(1, 3, 24);
        if inst.len() < 3 {
            return;
        }
        let shrunk = shrink_instance(&inst, |c| c.len() >= 2, ShrinkBudget::default());
        assert_eq!(shrunk.len(), 2);
    }
}
