//! The differential fuzzer: a seeded stream of random and adversarial
//! instances, each driven through the full roster with every invariant
//! checked, panic-isolated at two levels.
//!
//! Case generation is a pure function of `(seed, case_index)`: every
//! failure reproduces from the two numbers alone (see
//! `docs/auditing.md`). The outer sweep runs on
//! [`dbp_bench::grid::run_grid_checked`], so a case whose *generation*
//! panics still only poisons its own cell; inside a case, each
//! (algorithm, instance) audit is additionally wrapped in
//! [`isolated`], so one misbehaving packer cannot hide the others'
//! results.

use crate::diff::{audit_offline_algo, audit_online_algo};
use crate::invariants::{exact_baselines, CheckId, ExactLimits, Violation};
use crate::shrink::{shrink_instance, ShrinkBudget};
use dbp_bench::grid::{run_grid_checked, GridCell};
use dbp_bench::registry::{OFFLINE_ALGOS, ONLINE_ALGOS};
use dbp_core::Instance;
use dbp_workloads::adversarial::{
    any_fit_staircase, best_fit_cascade, ff_tail_trap, short_long_pairs,
};
use dbp_workloads::random::{
    DurationDist, MuSweepWorkload, PoissonWorkload, SizeDist, UniformWorkload,
};
use dbp_workloads::Workload;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Fuzzer configuration.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// Number of generated cases.
    pub cases: u64,
    /// Master seed; all case randomness derives from it.
    pub seed: u64,
    /// Upper bound on generated instance size (random families).
    pub max_items: usize,
    /// Worker threads (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Exact-oracle item-count ceilings.
    pub limits: ExactLimits,
    /// Also audit the offline roster.
    pub offline: bool,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            cases: 100,
            seed: 0,
            max_items: 24,
            threads: None,
            limits: ExactLimits::default(),
            offline: true,
        }
    }
}

/// One failed (case, algorithm) audit.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The case index (regenerate with [`case_instance`]).
    pub case: u64,
    /// The generator family label.
    pub family: String,
    /// The failing algorithm (roster name).
    pub algo: String,
    /// Everything that went wrong.
    pub violations: Vec<Violation>,
}

/// Sweep outcome.
#[derive(Clone, Debug, Default)]
pub struct AuditSummary {
    /// Cases executed.
    pub cases: u64,
    /// (case × algorithm) audits executed.
    pub cells: usize,
    /// All failures, in case order.
    pub failures: Vec<Failure>,
}

impl AuditSummary {
    /// Whether the sweep was violation-free.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Total violation count across failures.
    pub fn violations(&self) -> usize {
        self.failures.iter().map(|f| f.violations.len()).sum()
    }
}

/// splitmix64 — derives stream-independent sub-seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates the instance for `(seed, case_idx)` — a deterministic mix of
/// eight families cycling with the case index. Returns the family label
/// with the instance.
pub fn case_instance(seed: u64, case_idx: u64, max_items: usize) -> (String, Instance) {
    if case_idx == 0 {
        // The empty instance is a permanent member of the sweep.
        return (
            "empty".into(),
            Instance::from_items(Vec::new()).expect("empty instance"),
        );
    }
    let s = mix(seed ^ mix(case_idx));
    let max_items = max_items.max(6);
    let n = 6 + (s % (max_items as u64 - 5)) as usize;
    match case_idx % 8 {
        1 => (
            format!("uniform(n={n})"),
            UniformWorkload::new(n).generate_seeded(s),
        ),
        2 => {
            let w = UniformWorkload::new(n)
                .with_sizes(SizeDist::bimodal(0.7, 0.12, 0.85).expect("valid bimodal"));
            (format!("bimodal(n={n})"), w.generate_seeded(s))
        }
        3 => {
            let w = PoissonWorkload::new(0.4, (n as i64 * 8).max(20)).with_durations(
                DurationDist::exponential(30.0, 1, 400).expect("valid exponential"),
            );
            ("poisson".into(), w.generate_seeded(s))
        }
        4 => {
            let mu = [1.0, 2.0, 8.0, 64.0][(s >> 8) as usize % 4];
            let w = MuSweepWorkload::new(n.max(2), 1 + (s % 7) as i64, mu);
            (format!("mu-sweep(mu={mu})"), w.generate_seeded(s))
        }
        5 => {
            // Tiny instances with chunky sizes: full exact-oracle coverage.
            let n = 2 + (s % 7) as usize; // 2..=8
            let w = UniformWorkload {
                n,
                sizes: SizeDist::uniform(0.3, 1.0).expect("valid uniform"),
                durations: DurationDist::uniform(1, 15).expect("valid uniform"),
                arrival_span: 10,
            };
            (format!("tiny-exact(n={n})"), w.generate_seeded(s))
        }
        6 => {
            let k = 2 + (s % 7) as usize; // 2..=8
            match (s >> 16) % 4 {
                0 => (
                    format!("ff-tail-trap(k={k})"),
                    ff_tail_trap(k, 200 + (s % 800) as i64, 5 + (s % 10) as i64),
                ),
                1 => (
                    format!("staircase(k={k})"),
                    any_fit_staircase(k, 1 + (s % 5) as i64, 200 + (s % 300) as i64),
                ),
                2 => (
                    format!("bf-cascade(k={k})"),
                    best_fit_cascade(k, 1 + (s % 5) as i64, 200 + (s % 300) as i64),
                ),
                _ => (
                    format!("short-long(k={k})"),
                    short_long_pairs(k, 5 + (s % 10) as i64, 100 + (s % 200) as i64),
                ),
            }
        }
        7 => {
            let w = UniformWorkload::new(n).with_sizes(
                SizeDist::catalog(&[1.0 / 3.0, 0.25, 0.5, 2.0 / 3.0, 1.0]).expect("valid catalog"),
            );
            (format!("catalog(n={n})"), w.generate_seeded(s))
        }
        _ => {
            // Dense near-half sizes on a cramped timeline: bin-boundary
            // pressure with exact oracles still affordable.
            let n = 3 + (s % 6) as usize; // 3..=8
            let w = UniformWorkload {
                n,
                sizes: SizeDist::uniform(0.34, 0.67).expect("valid uniform"),
                durations: DurationDist::uniform(1, 6).expect("valid uniform"),
                arrival_span: 4,
            };
            (format!("dense-half(n={n})"), w.generate_seeded(s))
        }
    }
}

/// Runs `f` with panics caught; `Err` carries the panic message.
pub fn isolated<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        }
    })
}

/// Audits one instance against the roster, each algorithm isolated.
/// Returns `(algo, violations)` pairs — empty `violations` means pass.
pub fn audit_instance(
    inst: &Instance,
    limits: ExactLimits,
    offline: bool,
) -> Vec<(String, Vec<Violation>)> {
    let exact = match isolated(|| exact_baselines(inst, limits)) {
        Ok(e) => e,
        Err(msg) => {
            return vec![(
                "exact-oracles".into(),
                vec![Violation::new(
                    CheckId::Panic,
                    format!("exact baselines panicked: {msg}"),
                )],
            )]
        }
    };
    let mut out = Vec::new();
    for algo in ONLINE_ALGOS {
        let v = match isolated(|| audit_online_algo(inst, algo, &exact)) {
            Ok(v) => v,
            Err(msg) => vec![Violation::new(CheckId::Panic, format!("{algo}: {msg}"))],
        };
        out.push((algo.to_string(), v));
    }
    if offline {
        for algo in OFFLINE_ALGOS {
            let v = match isolated(|| audit_offline_algo(inst, algo, &exact)) {
                Ok(v) => v,
                Err(msg) => vec![Violation::new(CheckId::Panic, format!("{algo}: {msg}"))],
            };
            out.push((algo.to_string(), v));
        }
    }
    out
}

/// Runs the full sweep. Panics anywhere — generation, engines, oracles —
/// are contained to their cell and reported as [`CheckId::Panic`]
/// failures; the sweep always completes.
pub fn run_audit(cfg: &AuditConfig) -> AuditSummary {
    let cells: Vec<GridCell<u64>> = (0..cfg.cases)
        .map(|i| GridCell {
            label: format!("case{i}"),
            input: i,
        })
        .collect();
    let limits = cfg.limits;
    let (seed, max_items, offline) = (cfg.seed, cfg.max_items, cfg.offline);

    let results = run_grid_checked(cells, cfg.threads, move |&case_idx| {
        let (family, inst) = case_instance(seed, case_idx, max_items);
        let per_algo = audit_instance(&inst, limits, offline);
        (family, per_algo)
    });

    let mut summary = AuditSummary {
        cases: cfg.cases,
        ..Default::default()
    };
    for (case_idx, res) in results.into_iter().enumerate() {
        match res.output {
            Ok((family, per_algo)) => {
                summary.cells += per_algo.len();
                for (algo, violations) in per_algo {
                    if !violations.is_empty() {
                        summary.failures.push(Failure {
                            case: case_idx as u64,
                            family: family.clone(),
                            algo,
                            violations,
                        });
                    }
                }
            }
            Err(p) => summary.failures.push(Failure {
                case: case_idx as u64,
                family: "<generation>".into(),
                algo: "<cell>".into(),
                violations: vec![Violation::new(CheckId::Panic, p.message)],
            }),
        }
    }
    summary
}

/// Shrinks a roster failure to a minimal instance that still fails the
/// same algorithm (any violation or panic counts), panic-isolated.
pub fn shrink_roster_failure(
    inst: &Instance,
    algo: &str,
    limits: ExactLimits,
    budget: ShrinkBudget,
) -> Instance {
    let offline = OFFLINE_ALGOS.contains(&algo);
    let algo = algo.to_string();
    shrink_instance(
        inst,
        move |candidate| {
            let exact = match isolated(|| exact_baselines(candidate, limits)) {
                Ok(e) => e,
                Err(_) => return true,
            };
            match isolated(|| {
                if offline {
                    audit_offline_algo(candidate, &algo, &exact)
                } else {
                    audit_online_algo(candidate, &algo, &exact)
                }
            }) {
                Ok(v) => !v.is_empty(),
                Err(_) => true,
            }
        },
        budget,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_generation_is_deterministic_and_varied() {
        let mut families = std::collections::HashSet::new();
        for case in 0..16 {
            let (fam_a, inst_a) = case_instance(3, case, 24);
            let (fam_b, inst_b) = case_instance(3, case, 24);
            assert_eq!(fam_a, fam_b);
            assert_eq!(inst_a, inst_b);
            families.insert(fam_a.split('(').next().unwrap().to_string());
        }
        assert!(families.len() >= 6, "family mix too narrow: {families:?}");
        let (_, other_seed) = case_instance(4, 1, 24);
        assert_ne!(case_instance(3, 1, 24).1, other_seed);
    }

    #[test]
    fn small_sweep_is_clean() {
        let cfg = AuditConfig {
            cases: 24,
            seed: 1,
            ..Default::default()
        };
        let summary = run_audit(&cfg);
        assert_eq!(summary.cases, 24);
        assert!(summary.cells >= 24 * ONLINE_ALGOS.len());
        assert!(
            summary.ok(),
            "violations on a clean roster: {:?}",
            summary.failures
        );
    }

    #[test]
    fn isolated_catches_and_renders_panics() {
        assert_eq!(isolated(|| 7).unwrap(), 7);
        let _quiet = crate::QuietPanics::new();
        let msg = isolated(|| -> i32 { panic!("kaboom {}", 3) }).unwrap_err();
        assert!(msg.contains("kaboom 3"));
    }
}
