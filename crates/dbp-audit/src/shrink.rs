//! The counterexample shrinker: greedy reduction of a failing instance to
//! a (locally) minimal one that still fails.
//!
//! `shrink_instance` repeatedly applies four transformation families and
//! keeps any result the caller's predicate still rejects:
//!
//! 1. **drop items** — remove chunks (halves, quarters, …, singletons);
//! 2. **shorten intervals** — halve durations toward 1 tick;
//! 3. **left-shift arrivals** — move arrivals toward 0 (shifting the whole
//!    interval), compacting the timeline;
//! 4. **round sizes** — snap awkward sizes to clean eighths of a bin.
//!
//! Passes repeat to a fixpoint under an evaluation budget; ids are
//! renumbered `0..n` at the end when the predicate allows it. The
//! predicate sees candidate instances only — panic isolation is the
//! caller's job (wrap the audit in `catch_unwind`; see
//! [`crate::fuzz`]).

use dbp_core::{Instance, Item, Size};

/// Caps on the shrink search.
#[derive(Clone, Copy, Debug)]
pub struct ShrinkBudget {
    /// Maximum number of predicate evaluations.
    pub max_evals: usize,
}

impl Default for ShrinkBudget {
    fn default() -> Self {
        ShrinkBudget { max_evals: 400 }
    }
}

struct Shrinker<'a, F> {
    pred: &'a mut F,
    evals_left: usize,
}

impl<F: FnMut(&Instance) -> bool> Shrinker<'_, F> {
    /// Evaluates a candidate item set; `Some(inst)` if it still fails.
    fn still_fails(&mut self, items: &[Item]) -> Option<Instance> {
        if self.evals_left == 0 {
            return None;
        }
        self.evals_left -= 1;
        let inst = Instance::from_items(items.to_vec()).ok()?;
        (self.pred)(&inst).then_some(inst)
    }
}

/// Greedily shrinks `inst` while `pred` keeps returning `true` (= still
/// failing). Returns the smallest instance reached; `inst` itself if
/// nothing smaller fails. `pred` is never called on the original.
pub fn shrink_instance<F>(inst: &Instance, mut pred: F, budget: ShrinkBudget) -> Instance
where
    F: FnMut(&Instance) -> bool,
{
    let mut s = Shrinker {
        pred: &mut pred,
        evals_left: budget.max_evals,
    };
    let mut items: Vec<Item> = inst.items().to_vec();

    loop {
        let mut changed = false;
        changed |= drop_chunks(&mut s, &mut items);
        changed |= shorten_durations(&mut s, &mut items);
        changed |= shift_arrivals(&mut s, &mut items);
        changed |= round_sizes(&mut s, &mut items);
        if !changed || s.evals_left == 0 {
            break;
        }
    }

    // Final cosmetic pass: renumber ids 0..n if the failure survives it.
    let renumbered: Vec<Item> = items
        .iter()
        .enumerate()
        .map(|(i, it)| it.with_id(i as u32))
        .collect();
    if let Some(inst) = s.still_fails(&renumbered) {
        return inst;
    }
    Instance::from_items(items).expect("shrunk items stay valid")
}

/// Removes windows of decreasing size; restarts at the largest window
/// after any success (standard delta-debugging descent).
fn drop_chunks<F: FnMut(&Instance) -> bool>(
    s: &mut Shrinker<'_, F>,
    items: &mut Vec<Item>,
) -> bool {
    let mut changed = false;
    let mut chunk = (items.len() / 2).max(1);
    loop {
        let mut start = 0;
        let mut removed_any = false;
        while start < items.len() && items.len() > 1 {
            let end = (start + chunk).min(items.len());
            let mut candidate = items.clone();
            candidate.drain(start..end);
            if s.still_fails(&candidate).is_some() {
                *items = candidate;
                changed = true;
                removed_any = true;
                // Same start now covers the next window.
            } else {
                start = end;
            }
            if s.evals_left == 0 {
                return changed;
            }
        }
        if removed_any && chunk < items.len() {
            chunk = (items.len() / 2).max(1);
        } else if chunk > 1 {
            chunk /= 2;
        } else {
            return changed;
        }
    }
}

/// Replaces one item and reports whether the failure survives.
fn try_replace<F: FnMut(&Instance) -> bool>(
    s: &mut Shrinker<'_, F>,
    items: &mut [Item],
    idx: usize,
    replacement: Item,
) -> bool {
    let prev = items[idx];
    items[idx] = replacement;
    if s.still_fails(items).is_some() {
        true
    } else {
        items[idx] = prev;
        false
    }
}

fn shorten_durations<F: FnMut(&Instance) -> bool>(
    s: &mut Shrinker<'_, F>,
    items: &mut [Item],
) -> bool {
    let mut changed = false;
    for idx in 0..items.len() {
        // Try 1 tick first (the biggest jump), then successive halvings.
        loop {
            let it = items[idx];
            let dur = it.duration();
            if dur <= 1 || s.evals_left == 0 {
                break;
            }
            let one = it.with_departure(it.arrival() + 1);
            if let Ok(cand) = one {
                if try_replace(s, items, idx, cand) {
                    changed = true;
                    break;
                }
            }
            let half = it.with_departure(it.arrival() + (dur / 2).max(1));
            match half {
                Ok(cand) if try_replace(s, items, idx, cand) => changed = true,
                _ => break,
            }
        }
    }
    changed
}

fn shift_arrivals<F: FnMut(&Instance) -> bool>(
    s: &mut Shrinker<'_, F>,
    items: &mut [Item],
) -> bool {
    let mut changed = false;
    for idx in 0..items.len() {
        loop {
            let it = items[idx];
            let a = it.arrival();
            if a == 0 || s.evals_left == 0 {
                break;
            }
            let dur = it.duration();
            let target = if a > 1 { a / 2 } else { 0 };
            let cand = Item::new(it.id().0, it.size(), target, target + dur);
            if try_replace(s, items, idx, cand) {
                changed = true;
            } else if target != 0 {
                let cand = Item::new(it.id().0, it.size(), 0, dur);
                if try_replace(s, items, idx, cand) {
                    changed = true;
                }
                break;
            } else {
                break;
            }
        }
    }
    changed
}

fn round_sizes<F: FnMut(&Instance) -> bool>(s: &mut Shrinker<'_, F>, items: &mut [Item]) -> bool {
    let eighth = Size::SCALE / 8;
    let mut changed = false;
    for idx in 0..items.len() {
        let it = items[idx];
        if it.size().raw().is_multiple_of(eighth) {
            continue;
        }
        // Prefer the nearest clean eighths, trying downward first (smaller
        // is simpler) then upward (capacity failures need mass).
        let down = (it.size().raw() / eighth) * eighth;
        let up = down + eighth;
        for raw in [down, up] {
            if raw == 0 || raw > Size::SCALE || s.evals_left == 0 {
                continue;
            }
            let cand = Item::new(it.id().0, Size::from_raw(raw), it.arrival(), it.departure());
            if try_replace(s, items, idx, cand) {
                changed = true;
                break;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Failure: "total demand of size-1.0 items ≥ 2 bin-ticks". Minimal
    /// failing instances have very small footprints; the shrinker must
    /// find one.
    fn heavy(inst: &Instance) -> bool {
        inst.items()
            .iter()
            .filter(|r| r.size() == Size::CAPACITY)
            .map(|r| r.duration())
            .sum::<i64>()
            >= 2
    }

    #[test]
    fn shrinks_to_a_minimal_witness() {
        let mut items = vec![];
        for i in 0..30 {
            let size = if i % 3 == 0 {
                Size::CAPACITY
            } else {
                Size::from_f64(0.37)
            };
            items.push(Item::new(i, size, (i as i64) * 5 + 13, (i as i64) * 5 + 90));
        }
        let inst = Instance::from_items(items).unwrap();
        assert!(heavy(&inst));
        let small = shrink_instance(&inst, heavy, ShrinkBudget::default());
        assert!(heavy(&small), "shrunk instance must still fail");
        assert!(small.len() <= 2, "got {} items: {small:?}", small.len());
        // Durations collapsed toward minimal and arrivals toward zero.
        assert!(small.items().iter().all(|r| r.duration() <= 2));
        assert!(small.items().iter().all(|r| r.arrival() == 0));
        // Ids renumbered compactly.
        assert!(small
            .items()
            .iter()
            .all(|r| (r.id().0 as usize) < small.len()));
    }

    #[test]
    fn non_shrinkable_failure_returns_equivalent_instance() {
        let inst = Instance::from_triples(&[(1.0, 0, 1), (1.0, 0, 1)]);
        let small = shrink_instance(&inst, heavy, ShrinkBudget::default());
        assert!(heavy(&small));
        assert_eq!(small.len(), 2);
    }

    #[test]
    fn budget_zero_changes_nothing() {
        let inst = Instance::from_triples(&[(1.0, 5, 50), (1.0, 6, 60), (0.5, 7, 70)]);
        let small = shrink_instance(&inst, heavy, ShrinkBudget { max_evals: 0 });
        assert_eq!(small, inst);
    }
}
