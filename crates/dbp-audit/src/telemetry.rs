//! The telemetry audit family: seeded sweeps proving that the
//! [`dbp_telemetry`] *work* histograms honor their determinism contract:
//!
//! 1. **Replay bit-identity** — two [`profile_stream`] runs over the
//!    same stream produce `==`-identical work histograms, and the
//!    candidate histogram agrees with the scalar counters
//!    ([`CheckId::TelemetryReplay`]).
//! 2. **Merge order-independence** — a sharded fleet's merged work
//!    histograms are identical across worker counts, equal the shard-order
//!    fold of the per-slice snapshots, and (for K = 1) equal the
//!    unsharded profile ([`CheckId::TelemetryMerge`]).
//!
//! Run (wall-clock) histograms are deliberately *not* compared — they
//! vary run to run by design; the audit only asserts the work half,
//! which is the half golden tests and the perf gate rely on.
//!
//! Cases reuse [`crate::fuzz::case_instance`] and the shard family's
//! router rotation, so a telemetry failure reproduces from
//! `(seed, case)` like every other audit failure.

use crate::fuzz::{case_instance, isolated, Failure};
use crate::invariants::{CheckId, Violation};
use crate::shard::{case_router, mode_for, stream_order};
use crate::AuditSummary;
use dbp_bench::grid::{run_grid_checked, GridCell};
use dbp_bench::registry::{online_packer, AlgoParams, ONLINE_ALGOS};
use dbp_core::{DbpError, Instance, Item};
use dbp_shard::{ShardConfig, ShardReport, ShardRouter, ShardedSession};
use dbp_telemetry::{profile_stream, Profile, TelemetrySnapshot};

/// Telemetry-sweep configuration.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryAuditConfig {
    /// Number of generated cases.
    pub cases: u64,
    /// Master seed; instances and routers derive from it.
    pub seed: u64,
    /// Upper bound on generated instance size.
    pub max_items: usize,
    /// Worker threads for the sweep grid (`None` = available
    /// parallelism).
    pub threads: Option<usize>,
}

impl Default for TelemetryAuditConfig {
    fn default() -> Self {
        TelemetryAuditConfig {
            cases: 50,
            seed: 0,
            max_items: 32,
            threads: None,
        }
    }
}

fn run_profile(items: &[Item], algo: &str, params: AlgoParams) -> Result<Profile, DbpError> {
    let mut packer = online_packer(algo, params);
    // Tiny batches exercise the span chunking; sampled timing is fine —
    // the audit only reads work histograms, which timing never touches.
    profile_stream(mode_for(algo), packer.as_mut(), items, 8, false)
}

fn run_sharded_telemetry(
    items: &[Item],
    algo: &str,
    params: AlgoParams,
    router: ShardRouter,
    k: usize,
    workers: usize,
) -> Result<ShardReport, DbpError> {
    let cfg = ShardConfig {
        threads: Some(workers),
        batch: 4, // tiny batches exercise the flush boundaries
        collect_telemetry: true,
        ..ShardConfig::new(k, router)
    };
    let packers = (0..k).map(|_| online_packer(algo, params)).collect();
    let mut fleet = ShardedSession::new(mode_for(algo), packers, cfg)?;
    for item in items {
        fleet.arrive(item)?;
    }
    fleet.finish()
}

/// Extracts the fleet work metrics, reporting a violation when the
/// session failed to attach telemetry despite `collect_telemetry`.
fn fleet_work<'a>(
    report: &'a ShardReport,
    algo: &str,
    k: usize,
    workers: usize,
    out: &mut Vec<Violation>,
) -> Option<&'a dbp_telemetry::WorkMetrics> {
    match &report.telemetry {
        Some(t) => Some(&t.work),
        None => {
            out.push(Violation::new(
                CheckId::TelemetryMerge,
                format!("{algo} k={k} workers={workers}: fleet telemetry missing"),
            ));
            None
        }
    }
}

/// Runs one algorithm's telemetry audit on one instance for one
/// `(router, K)`: the replay bit-identity check plus the fleet merge
/// checks across worker counts 1 and 2.
pub fn audit_telemetry_algo(
    inst: &Instance,
    algo: &str,
    router: ShardRouter,
    k: usize,
) -> Vec<Violation> {
    let params = AlgoParams::from_instance(inst);
    let items = stream_order(inst);
    let mut out = Vec::new();

    // 1. Replay bit-identity of the single-session profile.
    let first = match run_profile(&items, algo, params) {
        Ok(p) => p,
        Err(e) => {
            return vec![Violation::new(
                CheckId::EngineError,
                format!("{algo}: profile run failed: {e}"),
            )]
        }
    };
    match run_profile(&items, algo, params) {
        Ok(second) => {
            if first.telemetry.work != second.telemetry.work {
                out.push(Violation::new(
                    CheckId::TelemetryReplay,
                    format!("{algo}: work histograms differ between two replays"),
                ));
            }
        }
        Err(e) => out.push(Violation::new(
            CheckId::EngineError,
            format!("{algo}: profile replay failed: {e}"),
        )),
    }
    // The candidates histogram strides deterministically: every
    // WORK_SAMPLE_INTERVAL-th placement contributes exactly one sample,
    // so a session that packed n items holds ceil(n / stride) of them.
    let expected_samples = first
        .counters
        .items_packed
        .div_ceil(dbp_telemetry::WORK_SAMPLE_INTERVAL as u64);
    if first.telemetry.work.candidates.count() != expected_samples {
        out.push(Violation::new(
            CheckId::TelemetryReplay,
            format!(
                "{algo}: {} candidate samples for {} placements (expected {})",
                first.telemetry.work.candidates.count(),
                first.counters.items_packed,
                expected_samples
            ),
        ));
    }

    // 2. Fleet merge across worker counts.
    let mut reports = Vec::new();
    for workers in [1usize, 2] {
        match run_sharded_telemetry(&items, algo, params, router, k, workers) {
            Ok(r) => reports.push((workers, r)),
            Err(e) => out.push(Violation::new(
                CheckId::EngineError,
                format!("{algo} k={k} workers={workers}: sharded run failed: {e}"),
            )),
        }
    }
    let works: Vec<_> = reports
        .iter()
        .filter_map(|(w, r)| fleet_work(r, algo, k, *w, &mut out).map(|work| (*w, work)))
        .collect();
    if let [(_, base), rest @ ..] = works.as_slice() {
        for (workers, work) in rest {
            if work != base {
                out.push(Violation::new(
                    CheckId::TelemetryMerge,
                    format!("{algo} k={k}: fleet work histograms differ at {workers} workers"),
                ));
            }
        }
        // The fleet fold must equal merging the per-slice snapshots in
        // shard order — the coordinator adds nothing and loses nothing.
        if let Some((_, report)) = reports.first() {
            let parts: Vec<TelemetrySnapshot> = report
                .slices
                .iter()
                .filter_map(|s| s.telemetry.clone())
                .collect();
            if parts.len() != report.slices.len() {
                out.push(Violation::new(
                    CheckId::TelemetryMerge,
                    format!("{algo} k={k}: a slice is missing its telemetry snapshot"),
                ));
            } else if TelemetrySnapshot::merged(&parts).work != **base {
                out.push(Violation::new(
                    CheckId::TelemetryMerge,
                    format!("{algo} k={k}: fleet work != shard-order fold of slice snapshots"),
                ));
            }
        }
        // A single-shard fleet saw the identical event stream as the
        // unsharded profiled session.
        if k == 1 && **base != first.telemetry.work {
            out.push(Violation::new(
                CheckId::TelemetryMerge,
                format!("{algo}: single-shard fleet work differs from the unsharded profile"),
            ));
        }
    }
    out
}

/// Audits one instance against the online roster for K ∈ {1, 3}, each
/// `(algorithm, K)` cell panic-isolated.
pub fn audit_telemetry_instance(
    inst: &Instance,
    router: ShardRouter,
) -> Vec<(String, Vec<Violation>)> {
    let mut out = Vec::new();
    for algo in ONLINE_ALGOS {
        for k in [1usize, 3] {
            let v = match isolated(|| audit_telemetry_algo(inst, algo, router, k)) {
                Ok(v) => v,
                Err(msg) => vec![Violation::new(
                    CheckId::Panic,
                    format!("{algo} k={k}: {msg}"),
                )],
            };
            out.push((format!("{algo}/k{k}"), v));
        }
    }
    out
}

/// Runs the telemetry sweep. Same containment guarantees as
/// [`crate::fuzz::run_audit`]: any panic is confined to its cell.
pub fn run_telemetry_audit(cfg: &TelemetryAuditConfig) -> AuditSummary {
    let cells: Vec<GridCell<u64>> = (0..cfg.cases)
        .map(|i| GridCell {
            label: format!("telemetry{i}"),
            input: i,
        })
        .collect();
    let (seed, max_items) = (cfg.seed, cfg.max_items);

    let results = run_grid_checked(cells, cfg.threads, move |&case_idx| {
        let (family, inst) = case_instance(seed, case_idx, max_items);
        let router = case_router(seed, case_idx);
        let per_cell = audit_telemetry_instance(&inst, router);
        (family, router.name(), per_cell)
    });

    let mut summary = AuditSummary {
        cases: cfg.cases,
        ..Default::default()
    };
    for (case_idx, res) in results.into_iter().enumerate() {
        match res.output {
            Ok((family, router, per_cell)) => {
                summary.cells += per_cell.len();
                for (algo, violations) in per_cell {
                    if !violations.is_empty() {
                        summary.failures.push(Failure {
                            case: case_idx as u64,
                            family: format!("telemetry[{router}]:{family}"),
                            algo,
                            violations,
                        });
                    }
                }
            }
            Err(p) => summary.failures.push(Failure {
                case: case_idx as u64,
                family: "telemetry:<generation>".into(),
                algo: "<cell>".into(),
                violations: vec![Violation::new(CheckId::Panic, p.message)],
            }),
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_telemetry_sweep_is_clean() {
        let cfg = TelemetryAuditConfig {
            cases: 6,
            seed: 7,
            ..Default::default()
        };
        let summary = run_telemetry_audit(&cfg);
        assert_eq!(summary.cases, 6);
        assert_eq!(summary.cells, 6 * ONLINE_ALGOS.len() * 2);
        assert!(
            summary.ok(),
            "telemetry violations on a clean roster: {:?}",
            summary.failures
        );
    }

    #[test]
    fn indexed_scan_depths_are_probes_not_pool_size() {
        // Regression pin for the `candidates_scanned` contract: a deep
        // fleet of ~600 near-full bins (63/64 items, none ever shares)
        // must leave the scan-depth histogram flat, because indexed
        // packers report the index nodes actually probed — O(1) for
        // best/worst/next fit, O(log B) for first fit — never the size
        // of the pool the index covers. Before the indexed fit queries
        // this histogram scaled with the fleet, and the engine's
        // pool-size fallback would silently re-inflate it if a roster
        // packer ever stopped reporting; alongside the sample-count
        // invariant (also pinned here, the one `telemetry-audit`
        // checks), this is what keeps the histograms honest.
        use dbp_core::{Item, Size};
        let items: Vec<Item> = (0..600)
            .map(|i| {
                Item::new(
                    i,
                    Size::from_ratio(63, 64).unwrap(),
                    i as i64,
                    10_000 + i as i64,
                )
            })
            .collect();
        let params = AlgoParams { delta: 1, mu: 1.0 };
        for algo in ["first-fit", "best-fit", "worst-fit", "next-fit"] {
            let profile = run_profile(&items, algo, params).unwrap();
            let work = &profile.telemetry.work;
            assert_eq!(
                work.candidates.count(),
                profile
                    .counters
                    .items_packed
                    .div_ceil(dbp_telemetry::WORK_SAMPLE_INTERVAL as u64),
                "{algo}: sample-count invariant broken"
            );
            assert!(
                work.candidates.max() <= 16,
                "{algo}: scan-depth histogram max {} on a ~600-bin fleet \
                 looks like pool size, not probes",
                work.candidates.max(),
            );
        }
    }

    #[test]
    fn replay_check_catches_a_seed_that_ran() {
        // One direct cell run: a clean roster must produce no violations
        // and the profile must exercise every histogram family.
        let (_, inst) = case_instance(11, 0, 24);
        let v = audit_telemetry_algo(&inst, "first-fit", ShardRouter::SizeClass, 3);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }
}
