//! The shard audit family: seeded sweeps checking that a
//! [`ShardedSession`] is exactly what it claims to be — K independent
//! plain sessions plus a lossless merge:
//!
//! 1. **Per-shard bit-identity** — each shard's run equals a plain
//!    [`StreamingSession`] fed that shard's router-induced sub-stream,
//!    and a single-shard fleet equals the unsharded session on the full
//!    stream ([`CheckId::ShardMerge`]).
//! 2. **Exactly-once accounting** — every item lands in exactly one
//!    shard, merged totals equal the per-slice sums, and the stitched
//!    [`dbp_shard::ShardReport::merged_run`] passes the full coverage +
//!    capacity sweep against the original instance
//!    ([`CheckId::ShardAccounting`], with capacity breaches classified
//!    as [`CheckId::Capacity`]).
//!
//! Cases reuse [`crate::fuzz::case_instance`], so a shard failure
//! reproduces from `(seed, case)` exactly like a plain audit failure;
//! the router rotates with the case.

use crate::fuzz::{case_instance, isolated, Failure};
use crate::invariants::{CheckId, Violation};
use crate::shrink::{shrink_instance, ShrinkBudget};
use crate::AuditSummary;
use dbp_bench::grid::{run_grid_checked, GridCell};
use dbp_bench::registry::{online_packer, AlgoParams, ONLINE_ALGOS};
use dbp_core::{ClairvoyanceMode, DbpError, Instance, Item, OnlineRun, StreamingSession};
use dbp_shard::{ShardConfig, ShardRouter, ShardedSession};

/// Shard-sweep configuration.
#[derive(Clone, Copy, Debug)]
pub struct ShardAuditConfig {
    /// Number of generated cases.
    pub cases: u64,
    /// Master seed; instances and routers derive from it.
    pub seed: u64,
    /// Upper bound on generated instance size.
    pub max_items: usize,
    /// Worker threads for the sweep grid (`None` = available
    /// parallelism). Each cell's sharded sessions use 2 inner workers.
    pub threads: Option<usize>,
}

impl Default for ShardAuditConfig {
    fn default() -> Self {
        ShardAuditConfig {
            cases: 50,
            seed: 0,
            max_items: 32,
            threads: None,
        }
    }
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic router for `(seed, case_idx)` — the three policies
/// rotate, with hash seeds and tag class widths that move with the case.
pub fn case_router(seed: u64, case_idx: u64) -> ShardRouter {
    let s = mix(seed ^ mix(case_idx).rotate_left(23));
    match s % 3 {
        0 => ShardRouter::SeededHash { seed: s >> 8 },
        1 => ShardRouter::SizeClass,
        _ => ShardRouter::TagAffinity {
            rho: 1 + ((s >> 8) % 40) as i64,
        },
    }
}

pub(crate) fn mode_for(algo: &str) -> ClairvoyanceMode {
    if matches!(algo, "cbdt" | "cbd" | "combined") {
        ClairvoyanceMode::Clairvoyant
    } else {
        ClairvoyanceMode::NonClairvoyant
    }
}

/// Stream-order items: the session contract wants non-decreasing
/// arrivals, which `case_instance` families don't all guarantee.
pub(crate) fn stream_order(inst: &Instance) -> Vec<Item> {
    let mut items = inst.items().to_vec();
    items.sort_by_key(|i| (i.arrival(), i.id()));
    items
}

fn run_reference_shard(
    items: &[Item],
    algo: &str,
    params: AlgoParams,
    router: ShardRouter,
    k: usize,
    shard: usize,
) -> Result<OnlineRun, DbpError> {
    let mut packer = online_packer(algo, params);
    let mut session = StreamingSession::new(mode_for(algo), packer.as_mut());
    for item in items {
        if router.route(item, k) == shard {
            session.arrive(item)?;
        }
    }
    session.finish()
}

/// Runs one algorithm's shard audit on one instance for one `(router, K)`:
/// the sharded run, its per-shard plain-session references, and the
/// merged-run coverage/capacity sweep.
pub fn audit_shard_algo(
    inst: &Instance,
    algo: &str,
    router: ShardRouter,
    k: usize,
) -> Vec<Violation> {
    let params = AlgoParams::from_instance(inst);
    let items = stream_order(inst);
    let mut out = Vec::new();

    let cfg = ShardConfig {
        threads: Some(2),
        batch: 4, // tiny batches exercise the flush boundaries
        collect_metrics: false,
        ..ShardConfig::new(k, router)
    };
    let sharded = (|| {
        let packers = (0..k).map(|_| online_packer(algo, params)).collect();
        let mut fleet = ShardedSession::new(mode_for(algo), packers, cfg)?;
        for item in &items {
            fleet.arrive(item)?;
        }
        fleet.finish()
    })();
    let report = match sharded {
        Ok(r) => r,
        Err(e) => {
            return vec![Violation::new(
                CheckId::EngineError,
                format!("{algo} k={k}: sharded run failed: {e}"),
            )]
        }
    };

    // Exactly-once accounting: coordinator total vs instance vs slices.
    if report.items != inst.len() as u64 {
        out.push(Violation::new(
            CheckId::ShardAccounting,
            format!(
                "{algo} k={k}: {} items routed for an instance of {}",
                report.items,
                inst.len()
            ),
        ));
    }
    let slice_items: u64 = report.slices.iter().map(|s| s.items).sum();
    if slice_items != report.items {
        out.push(Violation::new(
            CheckId::ShardAccounting,
            format!(
                "{algo} k={k}: slices hold {slice_items} items, coordinator routed {}",
                report.items
            ),
        ));
    }
    let slice_usage: u128 = report.slices.iter().map(|s| s.usage()).sum();
    if slice_usage != report.usage {
        out.push(Violation::new(
            CheckId::ShardAccounting,
            format!(
                "{algo} k={k}: merged usage {} but per-shard sum {slice_usage}",
                report.usage
            ),
        ));
    }

    // The stitched run must cover the instance exactly once and respect
    // capacity on every load segment.
    let merged = report.merged_run();
    if let Err(e) = merged.packing.validate(inst) {
        let check = match e {
            DbpError::CapacityExceeded { .. } => CheckId::Capacity,
            _ => CheckId::ShardAccounting,
        };
        out.push(Violation::new(
            check,
            format!("{algo} k={k}: merged run: {e}"),
        ));
    }
    if merged.usage != report.usage {
        out.push(Violation::new(
            CheckId::ShardAccounting,
            format!(
                "{algo} k={k}: merged run usage {} != report usage {}",
                merged.usage, report.usage
            ),
        ));
    }

    // Per-shard differential vs the plain-session reference.
    for slice in &report.slices {
        match run_reference_shard(&items, algo, params, router, k, slice.shard) {
            Ok(reference) => {
                if slice.run != reference {
                    out.push(Violation::new(
                        CheckId::ShardMerge,
                        format!(
                            "{algo} k={k}: shard {} diverges from its plain-session reference",
                            slice.shard
                        ),
                    ));
                }
            }
            Err(e) => out.push(Violation::new(
                CheckId::EngineError,
                format!(
                    "{algo} k={k}: reference run for shard {} failed: {e}",
                    slice.shard
                ),
            )),
        }
    }

    // K = 1 must equal the unsharded session on the full stream.
    if k == 1 {
        match run_reference_shard(&items, algo, params, router, 1, 0) {
            Ok(plain) if report.slices[0].run == plain => {}
            Ok(_) => out.push(Violation::new(
                CheckId::ShardMerge,
                format!("{algo}: single-shard fleet diverges from the unsharded session"),
            )),
            Err(e) => out.push(Violation::new(
                CheckId::EngineError,
                format!("{algo}: unsharded reference failed: {e}"),
            )),
        }
    }
    out
}

/// Audits one instance against the online roster for K ∈ {1, 2, 3},
/// each `(algorithm, K)` cell panic-isolated.
pub fn audit_shard_instance(inst: &Instance, router: ShardRouter) -> Vec<(String, Vec<Violation>)> {
    let mut out = Vec::new();
    for algo in ONLINE_ALGOS {
        for k in [1usize, 2, 3] {
            let v = match isolated(|| audit_shard_algo(inst, algo, router, k)) {
                Ok(v) => v,
                Err(msg) => vec![Violation::new(
                    CheckId::Panic,
                    format!("{algo} k={k}: {msg}"),
                )],
            };
            out.push((format!("{algo}/k{k}"), v));
        }
    }
    out
}

/// Runs the shard sweep. Same containment guarantees as
/// [`crate::fuzz::run_audit`]: any panic is confined to its cell.
pub fn run_shard_audit(cfg: &ShardAuditConfig) -> AuditSummary {
    let cells: Vec<GridCell<u64>> = (0..cfg.cases)
        .map(|i| GridCell {
            label: format!("shard{i}"),
            input: i,
        })
        .collect();
    let (seed, max_items) = (cfg.seed, cfg.max_items);

    let results = run_grid_checked(cells, cfg.threads, move |&case_idx| {
        let (family, inst) = case_instance(seed, case_idx, max_items);
        let router = case_router(seed, case_idx);
        let per_cell = audit_shard_instance(&inst, router);
        (family, router.name(), per_cell)
    });

    let mut summary = AuditSummary {
        cases: cfg.cases,
        ..Default::default()
    };
    for (case_idx, res) in results.into_iter().enumerate() {
        match res.output {
            Ok((family, router, per_cell)) => {
                summary.cells += per_cell.len();
                for (algo, violations) in per_cell {
                    if !violations.is_empty() {
                        summary.failures.push(Failure {
                            case: case_idx as u64,
                            family: format!("shard[{router}]:{family}"),
                            algo,
                            violations,
                        });
                    }
                }
            }
            Err(p) => summary.failures.push(Failure {
                case: case_idx as u64,
                family: "shard:<generation>".into(),
                algo: "<cell>".into(),
                violations: vec![Violation::new(CheckId::Panic, p.message)],
            }),
        }
    }
    summary
}

/// Shrinks a shard failure to a minimal instance that still fails the
/// same `(algorithm, K)` under the same `(seed, case)`-derived router.
pub fn shrink_shard_failure(
    inst: &Instance,
    algo: &str,
    k: usize,
    seed: u64,
    case_idx: u64,
    budget: ShrinkBudget,
) -> Instance {
    let algo = algo.to_string();
    let router = case_router(seed, case_idx);
    shrink_instance(
        inst,
        move |candidate| match isolated(|| audit_shard_algo(candidate, &algo, router, k)) {
            Ok(v) => !v.is_empty(),
            Err(_) => true,
        },
        budget,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_routers_are_deterministic_and_varied() {
        assert_eq!(case_router(3, 2), case_router(3, 2));
        let kinds: std::collections::HashSet<String> = (0..24)
            .map(|case| {
                case_router(3, case)
                    .name()
                    .split(':')
                    .next()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert!(kinds.len() >= 2, "router families never varied: {kinds:?}");
    }

    #[test]
    fn small_shard_sweep_is_clean() {
        let cfg = ShardAuditConfig {
            cases: 8,
            seed: 5,
            ..Default::default()
        };
        let summary = run_shard_audit(&cfg);
        assert_eq!(summary.cases, 8);
        assert_eq!(summary.cells, 8 * ONLINE_ALGOS.len() * 3);
        assert!(
            summary.ok(),
            "shard violations on a clean roster: {:?}",
            summary.failures
        );
    }
}
