//! # dbp-audit — differential fuzzing and invariant auditing
//!
//! The paper's guarantees (Propositions 1–3, Theorems 4–5) are universally
//! quantified over all instances; hand-picked unit tests only sample that
//! space. This crate adversarially drives the repo's ground-truth oracles
//! against the full algorithm roster:
//!
//! * [`invariants`] — the checker: coverage/no-migration, capacity at every
//!   load segment, per-bin usage = span of members, total-usage accounting,
//!   the Proposition/exact-oracle bound chain, and the Theorem 4/5
//!   competitive-ratio ceilings.
//! * [`diff`] — the differential harness: batch engine vs. hand-driven
//!   streaming session vs. obs-trace replay vs. the independent reference
//!   engine, bit-for-bit.
//! * [`fuzz`] — the seeded sweep over random + adversarial instance
//!   families, panic-isolated per cell via
//!   [`dbp_bench::grid::run_grid_checked`] so one poisoned case reports
//!   instead of aborting a million-case run.
//! * [`shrink`] — greedy counterexample reduction (drop items, shorten
//!   intervals, compact arrivals, round sizes) to a minimal failing
//!   instance.
//! * [`fixture`] — JSON persistence of shrunk counterexamples; checked-in
//!   fixtures under `fixtures/` replay through the roster in a regression
//!   test on every build.
//! * [`faulty`] — deliberately broken packers proving the catch → shrink →
//!   persist pipeline end to end (`dbp audit --self-test`).
//! * [`chaos`] — the fault-injection family: seeded [`dbp_resilience`]
//!   sweeps checking exactly-once job accounting, post-recovery capacity,
//!   and checkpoint/resume bit-identity across the roster.
//! * [`shard`] — the sharding family: seeded [`dbp_shard`] sweeps
//!   checking per-shard bit-identity against plain-session references,
//!   exactly-once item accounting, and the merged run's coverage +
//!   capacity against the original instance.
//! * [`vector`] — the dynamic *vector* bin packing family: per-axis
//!   capacity, the max-axis lower bound, indexed-vs-linear and
//!   dim-1-vs-scalar differentials, the streaming-vs-batch foil, plus a
//!   vector shrinker and per-axis JSON fixtures.
//!
//! See `docs/auditing.md` for the invariant list, the shrink loop, the
//! fixture format, and how to reproduce any failure from its seed.

#![warn(missing_docs)]

pub mod chaos;
pub mod diff;
pub mod faulty;
pub mod fixture;
pub mod fuzz;
pub mod invariants;
pub mod shard;
pub mod shrink;
pub mod telemetry;
pub mod vector;

pub use chaos::{run_chaos_audit, ChaosAuditConfig};
pub use fuzz::{run_audit, AuditConfig, AuditSummary};
pub use invariants::{CheckId, Violation};
pub use shard::{run_shard_audit, ShardAuditConfig};
pub use telemetry::{run_telemetry_audit, TelemetryAuditConfig};
pub use vector::{run_vector_audit, VectorAuditConfig};

/// Silences the process-global panic hook for the guard's lifetime and
/// restores the previous hook on drop. Expected panics are the fuzzer's
/// bread and butter — a million-case sweep over `catch_unwind` cells must
/// not spray a million backtraces to stderr.
///
/// The hook is process-global state: overlapping guards restore in drop
/// order, so scope them around whole sweeps, not per-cell.
pub struct QuietPanics {
    prev: Option<PanicHook>,
}

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

impl QuietPanics {
    /// Installs the silent hook.
    pub fn new() -> QuietPanics {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics { prev: Some(prev) }
    }
}

impl Default for QuietPanics {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_panics_restores_the_previous_hook() {
        // Install a marker hook, silence it, drop the guard: the marker
        // must be back.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static HITS: AtomicUsize = AtomicUsize::new(0);

        let original = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {
            HITS.fetch_add(1, Ordering::SeqCst);
        }));
        {
            let _quiet = QuietPanics::new();
            let _ = fuzz::isolated(|| panic!("silenced"));
            assert_eq!(HITS.load(Ordering::SeqCst), 0, "hook was silenced");
        }
        let _ = fuzz::isolated(|| panic!("audible"));
        assert_eq!(HITS.load(Ordering::SeqCst), 1, "hook was restored");
        std::panic::set_hook(original);
    }
}
