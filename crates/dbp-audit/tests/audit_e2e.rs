//! End-to-end audit pipeline tests: a clean sweep stays clean, and an
//! injected fault is caught, shrunk to a tiny witness, and persisted as a
//! replayable fixture — without aborting the surrounding sweep.

use dbp_audit::diff::audit_online_with;
use dbp_audit::faulty::{OverfullFirstFit, PanicOnNth};
use dbp_audit::fixture::Fixture;
use dbp_audit::fuzz::{case_instance, isolated, run_audit};
use dbp_audit::invariants::{exact_baselines, CheckId, ExactLimits};
use dbp_audit::shrink::{shrink_instance, ShrinkBudget};
use dbp_audit::{AuditConfig, QuietPanics};
use dbp_core::online::ClairvoyanceMode;
use dbp_core::Instance;

#[test]
fn clean_sweep_over_both_rosters() {
    let summary = run_audit(&AuditConfig {
        cases: 40,
        seed: 2,
        ..Default::default()
    });
    assert_eq!(summary.cases, 40);
    assert!(summary.ok(), "unexpected failures: {:?}", summary.failures);
}

/// The acceptance scenario: a deliberately faulty packer fed a fuzzer
/// instance is caught as a violation (not a crash), shrunk to a witness
/// of at most 6 items, and round-trips through the fixture format.
#[test]
fn injected_fault_is_caught_shrunk_and_persisted() {
    let _quiet = QuietPanics::new();
    let limits = ExactLimits::default();
    let (_, inst) = case_instance(0, 1, 24);
    assert!(inst.len() >= 2, "need a multi-item instance");

    let fails = |candidate: &Instance| -> bool {
        let exact = match isolated(|| exact_baselines(candidate, limits)) {
            Ok(e) => e,
            Err(_) => return true,
        };
        match isolated(|| {
            audit_online_with(
                candidate,
                "faulty-overfull-ff",
                ClairvoyanceMode::NonClairvoyant,
                &exact,
                || Box::new(OverfullFirstFit),
            )
        }) {
            Ok(v) => !v.is_empty(),
            Err(_) => true,
        }
    };
    assert!(fails(&inst), "faulty packer must be caught");

    let small = shrink_instance(&inst, fails, ShrinkBudget::default());
    assert!(fails(&small), "shrunk witness must still fail");
    assert!(small.len() <= 6, "witness too large: {} items", small.len());

    let fixture = Fixture::from_instance(
        "e2e-overfull-ff",
        "faulty-overfull-ff",
        CheckId::EngineError.as_str(),
        0,
        1,
        "e2e test",
        &small,
    );
    let parsed = Fixture::parse(&fixture.to_json()).expect("round-trip");
    assert_eq!(parsed, fixture);
    assert!(fails(&parsed.instance().expect("valid instance")));
}

/// A packer that panics mid-run poisons only its own audit cell; the rest
/// of the roster still reports.
#[test]
fn panicking_packer_does_not_abort_the_sweep() {
    let _quiet = QuietPanics::new();
    let (_, inst) = case_instance(0, 9, 24);
    assert!(inst.len() >= 3);

    let exact = exact_baselines(&inst, ExactLimits::default());
    let poisoned = isolated(|| {
        audit_online_with(
            &inst,
            "faulty-panic-on-2",
            ClairvoyanceMode::NonClairvoyant,
            &exact,
            || Box::new(PanicOnNth::new(2)),
        )
    });
    assert!(poisoned.unwrap_err().contains("injected fault"));

    // And the real roster still audits cleanly right after.
    let per_algo = dbp_audit::fuzz::audit_instance(&inst, ExactLimits::default(), false);
    assert!(per_algo.iter().all(|(_, v)| v.is_empty()), "{per_algo:?}");
}
