//! Replays every checked-in fixture under `fixtures/` through the full
//! audit: once a counterexample is shrunk and committed, the bug it
//! witnessed can never silently return.

use dbp_audit::fixture::load_dir;
use dbp_audit::fuzz::audit_instance;
use dbp_audit::invariants::ExactLimits;
use std::path::Path;

#[test]
fn all_committed_fixtures_pass_the_full_roster() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let fixtures = load_dir(&dir).expect("fixtures parse");
    assert!(
        !fixtures.is_empty(),
        "no fixtures found in {} — the committed set should never be empty",
        dir.display()
    );
    let mut failures = Vec::new();
    for (path, fixture) in &fixtures {
        let inst = fixture
            .instance()
            .unwrap_or_else(|e| panic!("{path}: invalid instance: {e}"));
        for (algo, violations) in audit_instance(&inst, ExactLimits::default(), true) {
            if !violations.is_empty() {
                failures.push(format!("{path} [{algo}]: {violations:?}"));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "fixture regressions:\n{}",
        failures.join("\n")
    );
}

#[test]
fn fixture_files_round_trip_byte_identically() {
    // `to_json` is the canonical form; committed files must already be in
    // it so regenerated fixtures diff cleanly.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    for (path, fixture) in load_dir(&dir).expect("fixtures parse") {
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            on_disk.trim_end(),
            fixture.to_json(),
            "{path} is not in canonical form"
        );
    }
}
