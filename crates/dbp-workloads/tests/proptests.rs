//! Property tests for workload generators and trace I/O: every generator
//! must produce valid instances for arbitrary parameters, determinism
//! must hold, and traces must round-trip.

use dbp_workloads::adversarial::{any_fit_staircase, ff_tail_trap, short_long_pairs};
use dbp_workloads::random::{
    DurationDist, MuSweepWorkload, PoissonWorkload, SizeDist, UniformWorkload,
};
use dbp_workloads::scenarios::{
    AnalyticsWorkload, CloudGamingWorkload, DiurnalWorkload, SpikeWorkload,
};
use dbp_workloads::{trace, Workload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Uniform generator: any parameterization yields a valid instance of
    /// the requested length, deterministically per seed.
    #[test]
    fn uniform_valid(n in 1usize..200, lo in 1i64..20, extra in 0i64..200, seed: u64) {
        let w = UniformWorkload::new(n)
            .with_durations(DurationDist::Uniform { lo, hi: lo + extra })
            .with_sizes(SizeDist::Uniform { lo: 0.01, hi: 1.0 });
        let a = w.generate_seeded(seed);
        prop_assert_eq!(a.len(), n);
        prop_assert_eq!(a, w.generate_seeded(seed));
    }

    /// Poisson generator: arrivals within the horizon, durations within
    /// the clamp.
    #[test]
    fn poisson_valid(rate in 0.01f64..2.0, horizon in 10i64..2_000, seed: u64) {
        let w = PoissonWorkload::new(rate, horizon)
            .with_durations(DurationDist::Exponential { mean: 30.0, min: 2, max: 300 });
        let inst = w.generate_seeded(seed);
        for r in inst.items() {
            prop_assert!((0..horizon).contains(&r.arrival()));
            prop_assert!((2..=300).contains(&r.duration()));
        }
    }

    /// μ-sweep generator hits the requested duration extremes exactly.
    #[test]
    fn mu_sweep_extremes(n in 2usize..100, delta in 1i64..50, mu in 1.0f64..200.0, seed: u64) {
        let inst = MuSweepWorkload::new(n, delta, mu).generate_seeded(seed);
        prop_assert_eq!(inst.min_duration(), Some(delta));
        let want_max = ((delta as f64) * mu).round().max(delta as f64) as i64;
        prop_assert_eq!(inst.max_duration(), Some(want_max));
    }

    /// Scenario generators always produce valid instances.
    #[test]
    fn scenarios_valid(seed: u64) {
        prop_assert_eq!(CloudGamingWorkload::new(50, 5_000).generate_seeded(seed).len(), 50);
        let a = AnalyticsWorkload::new(7, 600, 5).generate_seeded(seed);
        prop_assert_eq!(a.len(), 35);
        prop_assert_eq!(DiurnalWorkload::new(60, 2_000, 2, 0.5).generate_seeded(seed).len(), 60);
        prop_assert_eq!(SpikeWorkload::new(3, 20, 400).generate_seeded(seed).len(), 60);
    }

    /// Adversarial constructions satisfy their structural contracts.
    #[test]
    fn adversarial_shapes(k in 1usize..=16, step in 1i64..20) {
        let horizon = 10_000;
        let trap = ff_tail_trap(k, horizon, step);
        prop_assert_eq!(trap.len(), 2 * k);
        let stair = any_fit_staircase(k, step, k as i64 * step + 1000);
        prop_assert_eq!(stair.len(), 2 * k);
        let pairs = short_long_pairs(k, step, step + 100);
        prop_assert_eq!(pairs.len(), 2 * k);
    }

    /// Trace text round-trips arbitrary generated instances (including
    /// extreme seeds), and parsing is insensitive to interleaved comments.
    #[test]
    fn trace_round_trip(seed: u64, n in 1usize..150) {
        let inst = UniformWorkload::new(n).generate_seeded(seed);
        let mut text = String::from("# header\n");
        for (i, line) in trace::to_string(&inst).lines().enumerate() {
            text.push_str(line);
            text.push('\n');
            if i % 3 == 0 {
                text.push_str("# interleaved comment\n\n");
            }
        }
        prop_assert_eq!(trace::from_str(&text).unwrap(), inst);
    }
}
