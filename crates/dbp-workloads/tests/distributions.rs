//! Statistical checks on the workload generators: fixed-seed sample
//! moments of every `SizeDist` / `DurationDist` family against their
//! analytic values, plus the hard domain guarantees the packing core
//! relies on — sizes in `(0, 1]` of capacity, durations ≥ 1, generated
//! item intervals half-open and non-degenerate.
//!
//! The seeds are fixed, so these are deterministic regression tests,
//! not flaky hypothesis tests: the tolerances are set for the n used
//! here (≈5σ of the sample-mean error for the tightest family) and a
//! failure means the sampler changed, not that luck ran out.

use dbp_core::Size;
use dbp_workloads::random::{DurationDist, PoissonWorkload, SizeDist, UniformWorkload};
use dbp_workloads::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 200_000;
const SEED: u64 = 0xD15_7A7;

fn size_samples(dist: &SizeDist) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(SEED);
    (0..N).map(|_| dist.sample(&mut rng).as_f64()).collect()
}

fn duration_samples(dist: &DurationDist) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(SEED);
    (0..N).map(|_| dist.sample(&mut rng) as f64).collect()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

#[track_caller]
fn assert_close(what: &str, got: f64, want: f64, rel_tol: f64) {
    let err = (got - want).abs() / want.abs().max(1e-12);
    assert!(
        err <= rel_tol,
        "{what}: sample {got:.6} vs analytic {want:.6} (rel err {err:.4} > {rel_tol})"
    );
}

#[test]
fn size_uniform_moments_match() {
    let (lo, hi) = (0.1, 0.7);
    let xs = size_samples(&SizeDist::uniform(lo, hi).unwrap());
    assert_close("uniform size mean", mean(&xs), (lo + hi) / 2.0, 0.01);
    assert_close(
        "uniform size variance",
        variance(&xs),
        (hi - lo) * (hi - lo) / 12.0,
        0.03,
    );
}

#[test]
fn size_bimodal_moments_match() {
    let (p, small, large) = (0.75, 0.125, 0.875);
    let xs = size_samples(&SizeDist::bimodal(p, small, large).unwrap());
    let m = p * small + (1.0 - p) * large;
    assert_close("bimodal size mean", mean(&xs), m, 0.01);
    // Two-point mixture: Var = p(1-p)(large - small)^2.
    assert_close(
        "bimodal size variance",
        variance(&xs),
        p * (1.0 - p) * (large - small) * (large - small),
        0.03,
    );
}

#[test]
fn size_catalog_mean_matches() {
    let entries = [0.1, 0.25, 0.5, 1.0];
    let xs = size_samples(&SizeDist::catalog(&entries).unwrap());
    let m = entries.iter().sum::<f64>() / entries.len() as f64;
    assert_close("catalog size mean", mean(&xs), m, 0.01);
}

#[test]
fn duration_uniform_moments_match() {
    let (lo, hi) = (5i64, 205i64);
    let xs = duration_samples(&DurationDist::uniform(lo, hi).unwrap());
    assert_close(
        "uniform duration mean",
        mean(&xs),
        (lo + hi) as f64 / 2.0,
        0.01,
    );
    // Discrete uniform on n = hi - lo + 1 points: Var = (n^2 - 1) / 12.
    let n = (hi - lo + 1) as f64;
    assert_close(
        "uniform duration variance",
        variance(&xs),
        (n * n - 1.0) / 12.0,
        0.03,
    );
}

#[test]
fn duration_exponential_mean_matches() {
    // Clamps far out in the tail, so the clamped mean is the plain mean
    // to within rounding.
    let xs = duration_samples(&DurationDist::exponential(50.0, 1, 10_000).unwrap());
    assert_close("exponential duration mean", mean(&xs), 50.0, 0.05);
}

#[test]
fn duration_short_long_moments_match() {
    let (short, long, p) = (3i64, 300i64, 0.9);
    let xs = duration_samples(&DurationDist::short_long(short, long, p).unwrap());
    let m = p * short as f64 + (1.0 - p) * long as f64;
    assert_close("short/long duration mean", mean(&xs), m, 0.02);
    assert_close(
        "short/long duration variance",
        variance(&xs),
        p * (1.0 - p) * ((long - short) as f64).powi(2),
        0.05,
    );
}

#[test]
fn duration_pareto_mean_matches() {
    let (shape, min, max) = (1.5f64, 10i64, 10_000i64);
    let xs = duration_samples(&DurationDist::pareto(shape, min, max).unwrap());
    // Bounded Pareto on [L, H] with tail index a != 1:
    //   E[X] = L^a / (1 - (L/H)^a) * a/(a-1) * (L^{1-a} - H^{1-a}).
    let (l, h) = (min as f64, max as f64);
    let want = l.powf(shape) / (1.0 - (l / h).powf(shape))
        * (shape / (shape - 1.0))
        * (l.powf(1.0 - shape) - h.powf(1.0 - shape));
    assert_close("pareto duration mean", mean(&xs), want, 0.1);
}

#[test]
fn duration_log_normal_mean_matches() {
    let (mu, sigma) = (3.0f64, 0.5f64);
    let xs = duration_samples(&DurationDist::log_normal(mu, sigma, 1, 10_000).unwrap());
    // E[X] = exp(mu + sigma^2 / 2); the clamps sit >5 sigma out.
    assert_close(
        "log-normal duration mean",
        mean(&xs),
        (mu + sigma * sigma / 2.0).exp(),
        0.1,
    );
}

#[test]
fn every_size_family_stays_in_unit_capacity() {
    let families = [
        SizeDist::uniform(1e-9_f64.max(1e-6), 1.0).unwrap(),
        SizeDist::bimodal(0.5, 1e-6, 1.0).unwrap(),
        SizeDist::catalog(&[1e-6, 0.5, 1.0]).unwrap(),
    ];
    let mut rng = StdRng::seed_from_u64(SEED);
    for dist in &families {
        for _ in 0..50_000 {
            let s = dist.sample(&mut rng);
            assert!(
                s > Size::ZERO && s <= Size::CAPACITY,
                "{dist:?} sampled {s:?} outside (0, 1]"
            );
        }
    }
}

#[test]
fn every_duration_family_respects_its_window() {
    let families = [
        DurationDist::uniform(1, 7).unwrap(),
        DurationDist::exponential(2.0, 1, 50).unwrap(),
        DurationDist::short_long(1, 9, 0.5).unwrap(),
        DurationDist::pareto(0.8, 1, 100).unwrap(),
        DurationDist::log_normal(0.0, 1.0, 1, 100).unwrap(),
    ];
    let mut rng = StdRng::seed_from_u64(SEED);
    for dist in &families {
        for _ in 0..50_000 {
            let d = dist.sample(&mut rng);
            assert!(d >= 1, "{dist:?} sampled non-positive duration {d}");
        }
    }
}

#[test]
fn generated_items_have_half_open_non_degenerate_intervals() {
    // Ride the samplers through the actual generators: every item must
    // occupy [arrival, departure) with departure strictly greater.
    let heavy_tail = DurationDist::pareto(1.2, 1, 5_000).unwrap();
    let uniform = UniformWorkload::new(4_000)
        .with_durations(heavy_tail)
        .generate_seeded(9);
    let poisson = PoissonWorkload::new(2.0, 3_000)
        .with_durations(DurationDist::log_normal(2.0, 1.0, 1, 5_000).unwrap())
        .generate_seeded(9);
    for inst in [&uniform, &poisson] {
        assert!(!inst.items().is_empty());
        for item in inst.items() {
            assert!(
                item.departure() > item.arrival(),
                "degenerate interval on item {}: [{}, {})",
                item.id(),
                item.arrival(),
                item.departure()
            );
            assert!(item.size() > Size::ZERO && item.size() <= Size::CAPACITY);
        }
    }
}
