//! Multi-resource workload generation: correlated per-axis demands.
//!
//! Real cloud jobs don't draw CPU, memory, and GPU demands
//! independently — a data-analytics executor that needs more CPU
//! usually needs more memory too, while some families (GPU inference
//! with small host footprints) anti-correlate. The
//! [`CorrelatedVectorWorkload`] family makes that structure a single
//! knob `ρ ∈ [-1, 1]`:
//!
//! * `ρ = 0` — axes are independent.
//! * `ρ → 1` — axes move together (a big item is big everywhere).
//! * `ρ → -1` — axis 0 moves against the others (CPU-heavy items are
//!   memory-light).
//!
//! Each demand is `x_d = mean_d · (1 + width · w_d)` where the
//! fluctuation `w_d = s_d·|ρ|·c + (1-|ρ|)·e_d` mixes one shared draw
//! `c ~ U(-1, 1)` with a per-axis draw `e_d ~ U(-1, 1)`; `s_0 = 1` and
//! `s_d = sign(ρ)` for `d > 0`. Since `|w_d| ≤ 1` the demand always
//! lies in `[mean_d(1-width), mean_d(1+width)]` — the validating
//! constructor requires that window to sit inside `(0, 1]`, so sampling
//! never clamps and the per-axis sample means converge to *exactly*
//! `mean_d` (the fixed-seed moment tests rely on this).

use crate::random::DurationDist;
use crate::Workload;
use dbp_core::{DbpError, Instance, SizeVec, Time, VecInstance, VecItem, MAX_DIMS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic [`VecInstance`] generator (the vector counterpart of
/// [`Workload`]).
pub trait VectorWorkload {
    /// Stable display name (with parameters).
    fn name(&self) -> String;

    /// Generates one vector instance from the RNG.
    fn generate(&self, rng: &mut StdRng) -> VecInstance;

    /// Convenience: generate from a seed.
    fn generate_seeded(&self, seed: u64) -> VecInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        self.generate(&mut rng)
    }
}

/// Every scalar [`Workload`] is a 1-dimensional vector workload.
impl<W: Workload> VectorWorkload for W {
    fn name(&self) -> String {
        Workload::name(self)
    }

    fn generate(&self, rng: &mut StdRng) -> VecInstance {
        VecInstance::lift(&Workload::generate(self, rng), 1)
    }
}

/// Correlated multi-resource demands (CPU/mem/GPU/…): per-axis means, a
/// relative fluctuation width, and one correlation knob `ρ`.
#[derive(Clone, Debug)]
pub struct CorrelatedVectorWorkload {
    n: usize,
    means: Vec<f64>,
    width: f64,
    rho: f64,
    durations: DurationDist,
    arrival_span: Time,
}

impl CorrelatedVectorWorkload {
    /// Creates the family. `means` gives one mean demand per axis
    /// (`1..=MAX_DIMS` of them); `width ∈ [0, 1)` is the relative
    /// fluctuation half-width; `rho ∈ [-1, 1]` is the correlation knob.
    ///
    /// Fails unless every axis window `mean_d·(1 ± width)` lies inside
    /// `(0, 1]` — the no-clamping guarantee behind the analytic moments.
    pub fn new(n: usize, means: &[f64], width: f64, rho: f64) -> Result<Self, DbpError> {
        if means.is_empty() || means.len() > MAX_DIMS {
            return Err(DbpError::InvalidParameter {
                what: format!(
                    "correlated vector workload needs 1..={MAX_DIMS} axis means, got {}",
                    means.len()
                ),
            });
        }
        if !(width.is_finite() && (0.0..1.0).contains(&width)) {
            return Err(DbpError::InvalidParameter {
                what: format!("fluctuation width {width} outside [0, 1)"),
            });
        }
        if !(rho.is_finite() && (-1.0..=1.0).contains(&rho)) {
            return Err(DbpError::InvalidParameter {
                what: format!("correlation rho {rho} outside [-1, 1]"),
            });
        }
        for (d, &m) in means.iter().enumerate() {
            if !(m.is_finite() && m * (1.0 - width) > 0.0 && m * (1.0 + width) <= 1.0) {
                return Err(DbpError::InvalidParameter {
                    what: format!("axis {d} mean {m} with width {width} leaves (0, 1] of capacity"),
                });
            }
        }
        Ok(CorrelatedVectorWorkload {
            n,
            means: means.to_vec(),
            width,
            rho,
            durations: DurationDist::Uniform { lo: 10, hi: 100 },
            arrival_span: (10 * n as i64).max(1),
        })
    }

    /// Overrides the duration distribution.
    pub fn with_durations(mut self, durations: DurationDist) -> Self {
        self.durations = durations;
        self
    }

    /// Overrides the arrival span (arrivals are uniform over it).
    pub fn with_arrival_span(mut self, span: Time) -> Self {
        self.arrival_span = span.max(1);
        self
    }

    /// Number of resource dimensions.
    pub fn dims(&self) -> usize {
        self.means.len()
    }

    /// Draws one demand vector.
    fn sample_demands(&self, rng: &mut StdRng) -> SizeVec {
        let c: f64 = rng.gen_range(-1.0..=1.0);
        let shared = self.rho.abs() * c;
        let axes: Vec<f64> = self
            .means
            .iter()
            .enumerate()
            .map(|(d, &mean)| {
                let e: f64 = rng.gen_range(-1.0..=1.0);
                let sign = if d == 0 { 1.0 } else { self.rho.signum() };
                let w = sign * shared + (1.0 - self.rho.abs()) * e;
                mean * (1.0 + self.width * w)
            })
            .collect();
        SizeVec::from_f64s(&axes)
    }
}

impl VectorWorkload for CorrelatedVectorWorkload {
    fn name(&self) -> String {
        format!(
            "corr-vec(n={},dims={},width={},rho={})",
            self.n,
            self.dims(),
            self.width,
            self.rho
        )
    }

    fn generate(&self, rng: &mut StdRng) -> VecInstance {
        let items = (0..self.n)
            .map(|i| {
                let a = rng.gen_range(0..self.arrival_span);
                let d = self.durations.sample(rng).max(1);
                VecItem::new(i as u32, self.sample_demands(rng), a, a + d)
            })
            .collect();
        VecInstance::from_items(items).expect("generated items are valid")
    }
}

/// Projects a vector instance onto one axis as a scalar [`Instance`] —
/// handy for comparing a vector run against its per-axis shadows.
pub fn project_axis(inst: &VecInstance, axis: usize) -> Result<Instance, DbpError> {
    if axis >= inst.dims() {
        return Err(DbpError::InvalidParameter {
            what: format!("axis {axis} out of range for {}-dim instance", inst.dims()),
        });
    }
    Instance::from_items(
        inst.items()
            .iter()
            .map(|r| {
                dbp_core::Item::try_new(r.id().0, r.size().axis(axis), r.arrival(), r.departure())
            })
            .collect::<Result<Vec<_>, _>>()?,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::Size;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    const MEANS: [f64; 3] = [0.3, 0.2, 0.4];
    const WIDTH: f64 = 0.5;

    fn samples(rho: f64, n: usize) -> Vec<SizeVec> {
        let w = CorrelatedVectorWorkload::new(n, &MEANS, WIDTH, rho).unwrap();
        let mut r = rng();
        (0..n).map(|_| w.sample_demands(&mut r)).collect()
    }

    fn axis_f64(v: &SizeVec, d: usize) -> f64 {
        v.axis(d).as_f64()
    }

    #[test]
    fn per_axis_means_are_analytic() {
        // E[w_d] = 0 with no clamping, so sample means converge to the
        // configured means. n = 20_000 keeps the U(-1,1) standard error
        // (≈ mean·width/√(3n)) well under the 1.5% tolerance.
        for rho in [-0.8, 0.0, 0.9] {
            let xs = samples(rho, 20_000);
            for (d, &m) in MEANS.iter().enumerate() {
                let mean: f64 = xs.iter().map(|v| axis_f64(v, d)).sum::<f64>() / xs.len() as f64;
                assert!(
                    (mean - m).abs() < 0.015 * m.max(0.2),
                    "rho={rho} axis {d}: sample mean {mean} vs analytic {m}"
                );
            }
        }
    }

    fn correlation(xs: &[SizeVec], a: usize, b: usize) -> f64 {
        let n = xs.len() as f64;
        let (ma, mb) = (
            xs.iter().map(|v| axis_f64(v, a)).sum::<f64>() / n,
            xs.iter().map(|v| axis_f64(v, b)).sum::<f64>() / n,
        );
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for v in xs {
            let (da, db) = (axis_f64(v, a) - ma, axis_f64(v, b) - mb);
            cov += da * db;
            va += da * da;
            vb += db * db;
        }
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn correlation_knob_controls_sign_and_strength() {
        let pos = correlation(&samples(0.9, 20_000), 0, 1);
        let neg = correlation(&samples(-0.9, 20_000), 0, 1);
        let ind = correlation(&samples(0.0, 20_000), 0, 1);
        assert!(pos > 0.5, "rho=0.9 sample correlation {pos}");
        assert!(neg < -0.5, "rho=-0.9 sample correlation {neg}");
        assert!(ind.abs() < 0.05, "rho=0 sample correlation {ind}");
        // Off-axis-0 pairs co-move regardless of rho's sign (both carry
        // sign(rho), which cancels).
        let off = correlation(&samples(-0.9, 20_000), 1, 2);
        assert!(off > 0.5, "rho=-0.9 axes 1–2 correlation {off}");
    }

    #[test]
    fn demands_stay_inside_the_configured_window() {
        for rho in [-1.0, -0.3, 0.0, 0.7, 1.0] {
            for v in samples(rho, 5_000) {
                for (d, &m) in MEANS.iter().enumerate() {
                    let x = axis_f64(&v, d);
                    let (lo, hi) = (m * (1.0 - WIDTH), m * (1.0 + WIDTH));
                    assert!(
                        x >= lo - 1e-6 && x <= hi + 1e-6,
                        "rho={rho} axis {d}: {x} outside [{lo}, {hi}]"
                    );
                    assert!(v.axis(d) > Size::ZERO && v.axis(d) <= Size::CAPACITY);
                }
            }
        }
    }

    #[test]
    fn generate_is_deterministic_and_valid() {
        let w = CorrelatedVectorWorkload::new(300, &MEANS, WIDTH, 0.6).unwrap();
        let a = w.generate_seeded(7);
        let b = w.generate_seeded(7);
        assert_eq!(a, b);
        assert_eq!(a.dims(), MEANS.len());
        assert_eq!(a.len(), 300);
        for r in a.items() {
            assert!(r.size().is_valid_item_size());
            assert!(r.duration() >= 1);
        }
    }

    #[test]
    fn constructor_rejects_out_of_domain_parameters() {
        let bad = |r: Result<CorrelatedVectorWorkload, DbpError>| {
            assert!(matches!(r, Err(DbpError::InvalidParameter { .. })), "{r:?}");
        };
        bad(CorrelatedVectorWorkload::new(10, &[], 0.2, 0.0));
        bad(CorrelatedVectorWorkload::new(10, &[0.2; 5], 0.2, 0.0));
        // 0.8·(1+0.5) > 1: the fluctuation window escapes capacity.
        bad(CorrelatedVectorWorkload::new(10, &[0.8, 0.2], 0.5, 0.0));
        bad(CorrelatedVectorWorkload::new(10, &[0.3], 1.0, 0.0));
        bad(CorrelatedVectorWorkload::new(10, &[0.3], -0.1, 0.0));
        bad(CorrelatedVectorWorkload::new(10, &[0.3], 0.2, 1.5));
        assert!(CorrelatedVectorWorkload::new(10, &MEANS, WIDTH, -0.5).is_ok());
    }

    #[test]
    fn scalar_workloads_lift_to_one_dimension() {
        let w = crate::random::UniformWorkload::new(40);
        let vec_inst = VectorWorkload::generate_seeded(&w, 5);
        let scalar = Workload::generate_seeded(&w, 5);
        assert_eq!(vec_inst.dims(), 1);
        assert_eq!(vec_inst.len(), scalar.len());
        assert_eq!(project_axis(&vec_inst, 0).unwrap(), scalar);
        assert!(project_axis(&vec_inst, 1).is_err());
    }
}
