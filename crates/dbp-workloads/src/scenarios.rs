//! Application scenarios from the paper's introduction.
//!
//! * [`CloudGamingWorkload`] — game sessions on cloud servers (the paper's
//!   primary motivation; session end times are predictable for certain
//!   games, which is exactly the clairvoyance assumption).
//! * [`AnalyticsWorkload`] — recurring data-analytics jobs: templates fire
//!   periodically with near-identical durations and demands.
//! * [`DiurnalWorkload`] — day/night arrival intensity, the shape a real
//!   autoscaler sees.
//! * [`SpikeWorkload`] — synchronized bursts (e.g. tournament starts) that
//!   stress bin-opening decisions.

use crate::Workload;
use dbp_core::{Instance, Item, Size, Time};
use rand::rngs::StdRng;
use rand::Rng;

/// A cloud-gaming trace: sessions arrive over a horizon; each session is a
/// game from a small catalog, with a per-game resource demand and a
/// predictable duration band.
#[derive(Clone, Debug)]
pub struct CloudGamingWorkload {
    /// Number of sessions.
    pub sessions: usize,
    /// Arrival horizon in ticks (e.g. one tick = one second).
    pub horizon: Time,
}

/// One game profile: (share of sessions, server share, duration band).
const GAME_CATALOG: &[(f64, f64, (i64, i64))] = &[
    // casual: light, short rounds
    (0.45, 0.125, (600, 1200)),
    // mid-range: moderate demand, medium sessions
    (0.35, 0.25, (1500, 2700)),
    // AAA streaming: heavy, long sessions
    (0.15, 0.5, (2400, 5400)),
    // tournament/spectator: near-dedicated
    (0.05, 0.75, (3600, 7200)),
];

impl CloudGamingWorkload {
    /// Creates the trace generator.
    pub fn new(sessions: usize, horizon: Time) -> Self {
        CloudGamingWorkload { sessions, horizon }
    }
}

impl Workload for CloudGamingWorkload {
    fn name(&self) -> String {
        format!("cloud-gaming(n={})", self.sessions)
    }

    fn generate(&self, rng: &mut StdRng) -> Instance {
        let items = (0..self.sessions)
            .map(|i| {
                let mut pick: f64 = rng.gen_range(0.0..1.0);
                let mut game = GAME_CATALOG.last().unwrap();
                for g in GAME_CATALOG {
                    if pick < g.0 {
                        game = g;
                        break;
                    }
                    pick -= g.0;
                }
                let a = rng.gen_range(0..self.horizon.max(1));
                let d = rng.gen_range(game.2 .0..=game.2 .1);
                Item::new(i as u32, Size::from_f64(game.1), a, a + d)
            })
            .collect();
        Instance::from_items(items).expect("valid sessions")
    }
}

/// Recurring analytics batches: `templates` job templates each fire every
/// `period` ticks over `cycles` cycles, with jittered starts and stable
/// durations — the "jobs are mostly recurring" setting of §1.
#[derive(Clone, Debug)]
pub struct AnalyticsWorkload {
    /// Number of distinct job templates.
    pub templates: usize,
    /// Recurrence period in ticks.
    pub period: Time,
    /// Number of periods to generate.
    pub cycles: usize,
}

impl AnalyticsWorkload {
    /// Creates the generator.
    pub fn new(templates: usize, period: Time, cycles: usize) -> Self {
        AnalyticsWorkload {
            templates,
            period,
            cycles,
        }
    }
}

impl Workload for AnalyticsWorkload {
    fn name(&self) -> String {
        format!(
            "analytics(templates={},period={},cycles={})",
            self.templates, self.period, self.cycles
        )
    }

    fn generate(&self, rng: &mut StdRng) -> Instance {
        // Per-template stable characteristics.
        let profiles: Vec<(Size, i64, Time)> = (0..self.templates)
            .map(|_| {
                let size = Size::from_f64(rng.gen_range(0.05..0.45));
                let dur = rng.gen_range(self.period / 10..self.period / 2).max(1);
                let offset = rng.gen_range(0..self.period);
                (size, dur, offset)
            })
            .collect();
        let mut items = Vec::new();
        let mut id = 0u32;
        for cycle in 0..self.cycles {
            for (size, dur, offset) in &profiles {
                // Small run-to-run jitter: recurring jobs are similar, not
                // identical.
                let jitter = rng.gen_range(-(self.period / 20)..=(self.period / 20).max(1));
                let a = cycle as Time * self.period + offset + jitter;
                let d = (*dur as f64 * rng.gen_range(0.9f64..1.1)).round().max(1.0) as i64;
                items.push(Item::new(id, *size, a, a + d));
                id += 1;
            }
        }
        Instance::from_items(items).expect("valid analytics jobs")
    }
}

/// Diurnal arrivals: intensity follows `1 + amplitude·sin(2πt/day)`,
/// producing realistic load waves for autoscaler experiments.
#[derive(Clone, Debug)]
pub struct DiurnalWorkload {
    /// Total items.
    pub n: usize,
    /// Day length in ticks.
    pub day: Time,
    /// Number of days.
    pub days: usize,
    /// Wave amplitude in `[0, 1)`.
    pub amplitude: f64,
}

impl DiurnalWorkload {
    /// Creates the generator.
    pub fn new(n: usize, day: Time, days: usize, amplitude: f64) -> Self {
        assert!((0.0..1.0).contains(&amplitude));
        DiurnalWorkload {
            n,
            day,
            days,
            amplitude,
        }
    }
}

impl Workload for DiurnalWorkload {
    fn name(&self) -> String {
        format!("diurnal(n={},days={})", self.n, self.days)
    }

    fn generate(&self, rng: &mut StdRng) -> Instance {
        let horizon = self.day * self.days as Time;
        let mut items = Vec::with_capacity(self.n);
        let mut id = 0u32;
        while items.len() < self.n {
            // Rejection-sample arrivals against the diurnal intensity.
            let t = rng.gen_range(0..horizon);
            let phase = 2.0 * std::f64::consts::PI * (t % self.day) as f64 / self.day as f64;
            let intensity = (1.0 + self.amplitude * phase.sin()) / (1.0 + self.amplitude);
            if rng.gen_range(0.0..1.0) > intensity {
                continue;
            }
            let dur = rng.gen_range(self.day / 48..self.day / 6).max(1);
            let size = Size::from_f64(rng.gen_range(0.05..0.4));
            items.push(Item::new(id, size, t, t + dur));
            id += 1;
        }
        Instance::from_items(items).expect("valid diurnal jobs")
    }
}

/// Synchronized bursts: `waves` bursts of `per_wave` near-simultaneous
/// arrivals, `gap` ticks apart — stresses the moment many bins must open.
#[derive(Clone, Debug)]
pub struct SpikeWorkload {
    /// Number of bursts.
    pub waves: usize,
    /// Items per burst.
    pub per_wave: usize,
    /// Ticks between burst starts.
    pub gap: Time,
}

impl SpikeWorkload {
    /// Creates the generator.
    pub fn new(waves: usize, per_wave: usize, gap: Time) -> Self {
        SpikeWorkload {
            waves,
            per_wave,
            gap,
        }
    }
}

impl Workload for SpikeWorkload {
    fn name(&self) -> String {
        format!("spike(waves={},per_wave={})", self.waves, self.per_wave)
    }

    fn generate(&self, rng: &mut StdRng) -> Instance {
        let mut items = Vec::new();
        let mut id = 0u32;
        for w in 0..self.waves {
            let base = w as Time * self.gap;
            for _ in 0..self.per_wave {
                let a = base + rng.gen_range(0..self.gap / 10 + 1);
                let dur = rng.gen_range(self.gap / 4..self.gap * 2).max(1);
                let size = Size::from_f64(rng.gen_range(0.1..0.6));
                items.push(Item::new(id, size, a, a + dur));
                id += 1;
            }
        }
        Instance::from_items(items).expect("valid spikes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn gaming_sessions_have_catalog_sizes() {
        let inst = CloudGamingWorkload::new(300, 36_000).generate(&mut rng());
        assert_eq!(inst.len(), 300);
        let valid: Vec<Size> = GAME_CATALOG.iter().map(|g| Size::from_f64(g.1)).collect();
        assert!(inst.items().iter().all(|r| valid.contains(&r.size())));
        // Durations bounded by the catalog.
        assert!(inst
            .items()
            .iter()
            .all(|r| (600..=7200).contains(&r.duration())));
    }

    #[test]
    fn analytics_is_recurring() {
        let w = AnalyticsWorkload::new(5, 1000, 4);
        let inst = w.generate(&mut rng());
        assert_eq!(inst.len(), 20);
        // Each template contributes one job per cycle with a stable size:
        // exactly 5 distinct sizes.
        let mut sizes: Vec<u64> = inst.items().iter().map(|r| r.size().raw()).collect();
        sizes.sort_unstable();
        sizes.dedup();
        assert_eq!(sizes.len(), 5);
    }

    #[test]
    fn diurnal_generates_requested_count() {
        let inst = DiurnalWorkload::new(500, 8640, 3, 0.8).generate(&mut rng());
        assert_eq!(inst.len(), 500);
        // More arrivals in the peak half-day than the trough half-day.
        let day = 8640i64;
        let peak = inst
            .items()
            .iter()
            .filter(|r| (r.arrival() % day) < day / 2)
            .count();
        assert!(peak > 300, "peak half got {peak} of 500");
    }

    #[test]
    fn spikes_cluster() {
        let inst = SpikeWorkload::new(3, 50, 1000).generate(&mut rng());
        assert_eq!(inst.len(), 150);
        for r in inst.items() {
            let within = r.arrival() % 1000;
            assert!(
                within <= 100,
                "arrival {} not near a wave start",
                r.arrival()
            );
        }
    }
}
