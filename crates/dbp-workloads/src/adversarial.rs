//! Adversarial instance families from the literature.
//!
//! These are deterministic constructions (no RNG) targeting specific
//! algorithms; they are the worst-case shapes behind the lower bounds the
//! paper quotes. The interactive Theorem 3 adversary lives in
//! `dbp_algos::adversary` (it must observe the algorithm mid-game); the
//! instances here are fixed up front.

use dbp_core::{Instance, Item, Size, Time};

/// The First Fit "tail trap": `k` pairs of (tiny long, filler short) items
/// arriving alternately at time 0. First Fit fills each bin exactly
/// (tiny + filler = capacity), so each of the `k` bins is pinned open for
/// the whole `horizon` by its tiny item: usage ≈ `k·horizon`. An optimal
/// packing puts all tinies in one bin: usage ≈ `horizon + k·filler_dur`.
/// This is the engine of the non-clairvoyant `μ`-type lower bounds, and
/// the shape classify-by-departure-time dismantles.
///
/// Requires `k ≤ 16` so all tinies (1/16 each) fit one bin.
pub fn ff_tail_trap(k: usize, horizon: Time, filler_dur: Time) -> Instance {
    assert!((1..=16).contains(&k));
    assert!(horizon > filler_dur && filler_dur >= 1);
    let tiny = Size::from_ratio(1, 16).expect("dyadic");
    let filler = Size::from_ratio(15, 16).expect("dyadic");
    let mut items = Vec::with_capacity(2 * k);
    for i in 0..k {
        items.push(Item::new(2 * i as u32, tiny, 0, horizon));
        items.push(Item::new(2 * i as u32 + 1, filler, 0, filler_dur));
    }
    Instance::from_items(items).expect("valid trap")
}

/// The Any Fit staircase behind the `μ`-type lower bounds (after Li et
/// al.): `k` generations arrive `step` ticks apart; generation `g` brings a
/// tiny item lasting `long` ticks and a filler that stays until just after
/// the *last* generation arrives. During the arrival phase every opened bin
/// is exactly full, so each tiny is forced into a fresh bin; once the
/// fillers depart, `k` bins each stay pinned open by one tiny for ~`long`
/// ticks (usage ≈ `k·long`), while the optimum co-locates all tinies
/// (usage ≈ `long + k·k·step`). As `long/step → ∞` the ratio approaches
/// `k`.
pub fn any_fit_staircase(k: usize, step: Time, long: Time) -> Instance {
    assert!((1..=16).contains(&k) && step >= 1 && long > k as i64 * step + 1);
    let tiny = Size::from_ratio(1, 16).expect("dyadic");
    let filler = Size::from_ratio(15, 16).expect("dyadic");
    let filler_end = k as i64 * step + 1;
    let mut items = Vec::new();
    let mut id = 0u32;
    for g in 0..k as i64 {
        let t = g * step;
        items.push(Item::new(id, tiny, t, t + long));
        id += 1;
        items.push(Item::new(id, filler, t, filler_end));
        id += 1;
    }
    Instance::from_items(items).expect("valid staircase")
}

/// The Best Fit separation cascade (after Li et al., who showed Best
/// Fit's competitive ratio is unbounded for MinUsageTime DBP while First
/// Fit's is `O(μ)`).
///
/// Gadget `g` (of `k`, spaced `2·short` apart) brings a filler of size
/// `1 − 2⁻ᵍ⁻¹` lasting `short` ticks and then a tiny item of size `2⁻ᵍ⁻¹`
/// lasting `long` ticks. The filler fits no earlier bin (every earlier bin
/// holds a *larger* tiny), so it opens a fresh bin; Best Fit then steers
/// the tiny into that fullest bin, where it stays pinning the bin for
/// `long` ticks after the filler leaves — `k` pinned bins in total. First
/// Fit instead returns every tiny to the first bin (all tinies sum below
/// capacity), staying near-optimal. BF pays ≈ `k·long`, FF and OPT pay
/// ≈ `long + k·short`.
///
/// Requires `2 ≤ k ≤ 16` (sizes stay representable) and `long > 2·k·short`.
pub fn best_fit_cascade(k: usize, short: Time, long: Time) -> Instance {
    assert!((2..=16).contains(&k) && short >= 1 && long > 2 * k as i64 * short);
    let mut items = Vec::with_capacity(2 * k);
    let mut id = 0u32;
    for g in 1..=k as u32 {
        let t = (g as i64 - 1) * 2 * short;
        let tiny = Size::from_raw(Size::SCALE >> (g + 1));
        let filler = Size::CAPACITY - tiny;
        items.push(Item::new(id, filler, t, t + short));
        id += 1;
        items.push(Item::new(id, tiny, t, t + long));
        id += 1;
    }
    Instance::from_items(items).expect("valid cascade")
}

/// Items that punish *duration-blind* packing: alternating short/long items
/// of size 1/2 arriving together, so any packer that pairs them leaves
/// half-empty bins open for `long` ticks. Clairvoyant classification pairs
/// shorts with shorts.
pub fn short_long_pairs(pairs: usize, short: Time, long: Time) -> Instance {
    assert!(pairs >= 1 && long > short);
    let half = Size::HALF;
    let mut items = Vec::new();
    let mut id = 0u32;
    for _ in 0..pairs {
        items.push(Item::new(id, half, 0, short));
        id += 1;
        items.push(Item::new(id, half, 0, long));
        id += 1;
    }
    Instance::from_items(items).expect("valid pairs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_algos::online::AnyFit;
    use dbp_core::accounting::lower_bounds;
    use dbp_core::{OnlineEngine, OnlinePacker};

    #[test]
    fn tail_trap_hurts_first_fit() {
        let inst = ff_tail_trap(8, 1000, 10);
        let run = OnlineEngine::non_clairvoyant()
            .run(&inst, &mut AnyFit::first_fit())
            .unwrap();
        run.packing.validate(&inst).unwrap();
        assert_eq!(run.usage, 8 * 1000);
        let lb = lower_bounds(&inst);
        // OPT ≈ 1000 + 8·10; FF ratio ≈ 8 ≫ 1.
        assert!(run.usage as f64 / lb.best() as f64 > 6.0);
    }

    #[test]
    fn staircase_accumulates_open_bins() {
        let inst = any_fit_staircase(8, 10, 2000);
        for mut packer in [AnyFit::first_fit(), AnyFit::best_fit(), AnyFit::worst_fit()] {
            let run = OnlineEngine::non_clairvoyant()
                .run(&inst, &mut packer)
                .unwrap();
            run.packing.validate(&inst).unwrap();
            // Each generation pins a separate bin for ~2000 ticks.
            assert_eq!(run.bins_opened(), 8, "{}", packer.name());
            assert!(run.usage >= 8 * 2000, "{}", packer.name());
            let lb = lower_bounds(&inst);
            assert!(run.usage as f64 / lb.best() as f64 > 5.0);
        }
    }

    #[test]
    fn best_fit_cascade_separates_bf_from_ff() {
        let inst = best_fit_cascade(8, 10, 2000);
        let engine = OnlineEngine::non_clairvoyant();
        let bf = engine.run(&inst, &mut AnyFit::best_fit()).unwrap();
        bf.packing.validate(&inst).unwrap();
        let ff = engine.run(&inst, &mut AnyFit::first_fit()).unwrap();
        ff.packing.validate(&inst).unwrap();
        // BF pins one bin per gadget for the long duration; FF returns
        // every tiny to the first bin.
        assert!(
            bf.usage >= 8 * 2000,
            "BF usage {} should be ~k·long",
            bf.usage
        );
        assert!(
            ff.usage < 2 * 2000,
            "FF usage {} should be ~long + k·short",
            ff.usage
        );
        let lb = lower_bounds(&inst);
        assert!((bf.usage as f64 / lb.best() as f64) > 5.0);
        assert!((ff.usage as f64 / lb.best() as f64) < 1.5);
    }

    #[test]
    fn short_long_pairs_shape() {
        let inst = short_long_pairs(4, 10, 1000);
        assert_eq!(inst.len(), 8);
        assert_eq!(inst.mu(), Some(100.0));
    }
}
