//! Random workload families.
//!
//! The distribution enums carry public fields for struct-literal
//! construction in tests and experiments, but sweep drivers and the fuzz
//! harness should go through the validating constructors
//! ([`SizeDist::uniform`], [`DurationDist::uniform`], …): a bad parameter
//! then surfaces as a [`DbpError::InvalidParameter`] at configuration time
//! instead of panicking inside `gen_range` (or silently clamping sizes)
//! thousands of cells into a sweep.

use crate::Workload;
use dbp_core::{DbpError, Instance, Item, Size, Time};
use rand::rngs::StdRng;
use rand::Rng;

/// A size distribution over `(0, 1]` of capacity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SizeDist {
    /// Uniform in `[lo, hi]` (fractions of capacity).
    Uniform {
        /// Lower bound (fraction of capacity), > 0.
        lo: f64,
        /// Upper bound (fraction of capacity), ≤ 1.
        hi: f64,
    },
    /// Two-point mixture: `p_small` chance of a `small` item, else `large`.
    Bimodal {
        /// Probability of the small size.
        p_small: f64,
        /// The small size.
        small: f64,
        /// The large size.
        large: f64,
    },
    /// A fixed catalog of flavors (like cloud instance types), sampled
    /// uniformly. Mirrors how real fleets see a handful of discrete
    /// shapes rather than a continuum.
    Catalog {
        /// The available sizes as fractions of capacity (≤ 8 entries).
        sizes: [f64; 8],
        /// How many leading entries of `sizes` are in use.
        len: usize,
    },
}

impl SizeDist {
    /// A validated `Uniform` distribution: requires `0 < lo ≤ hi ≤ 1`.
    pub fn uniform(lo: f64, hi: f64) -> Result<SizeDist, DbpError> {
        let dist = SizeDist::Uniform { lo, hi };
        dist.validate()?;
        Ok(dist)
    }

    /// A validated `Bimodal` distribution: sizes in `(0, 1]`, probability
    /// in `[0, 1]`.
    pub fn bimodal(p_small: f64, small: f64, large: f64) -> Result<SizeDist, DbpError> {
        let dist = SizeDist::Bimodal {
            p_small,
            small,
            large,
        };
        dist.validate()?;
        Ok(dist)
    }

    /// A validated `Catalog` distribution from 1–8 sizes in `(0, 1]`.
    pub fn catalog(entries: &[f64]) -> Result<SizeDist, DbpError> {
        if entries.is_empty() || entries.len() > 8 {
            return Err(DbpError::InvalidParameter {
                what: format!("catalog needs 1..=8 sizes, got {}", entries.len()),
            });
        }
        let mut sizes = [0.0f64; 8];
        sizes[..entries.len()].copy_from_slice(entries);
        let dist = SizeDist::Catalog {
            sizes,
            len: entries.len(),
        };
        dist.validate()?;
        Ok(dist)
    }

    /// Checks every parameter is inside its documented domain, so
    /// [`SizeDist::sample`]'s clamp never has to correct anything.
    pub fn validate(&self) -> Result<(), DbpError> {
        let check = |name: &str, f: f64| {
            if f.is_finite() && f > 0.0 && f <= 1.0 {
                Ok(())
            } else {
                Err(DbpError::InvalidParameter {
                    what: format!("{name} size {f} outside (0, 1] of capacity"),
                })
            }
        };
        match *self {
            SizeDist::Uniform { lo, hi } => {
                check("uniform lo", lo)?;
                check("uniform hi", hi)?;
                if lo > hi {
                    return Err(DbpError::InvalidParameter {
                        what: format!("uniform size bounds inverted: lo {lo} > hi {hi}"),
                    });
                }
                Ok(())
            }
            SizeDist::Bimodal {
                p_small,
                small,
                large,
            } => {
                if !(0.0..=1.0).contains(&p_small) {
                    return Err(DbpError::InvalidParameter {
                        what: format!("bimodal p_small {p_small} outside [0, 1]"),
                    });
                }
                check("bimodal small", small)?;
                check("bimodal large", large)
            }
            SizeDist::Catalog { sizes, len } => {
                if len == 0 || len > sizes.len() {
                    return Err(DbpError::InvalidParameter {
                        what: format!("catalog len {len} outside 1..=8"),
                    });
                }
                for &s in &sizes[..len] {
                    check("catalog entry", s)?;
                }
                Ok(())
            }
        }
    }

    /// Draws one size. Always a valid item size: whatever the raw draw,
    /// the result is clamped into `(0, 1]` of capacity (so statistical
    /// tests may assert the domain unconditionally).
    pub fn sample(&self, rng: &mut StdRng) -> Size {
        let f = match *self {
            SizeDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            SizeDist::Bimodal {
                p_small,
                small,
                large,
            } => {
                if rng.gen_bool(p_small) {
                    small
                } else {
                    large
                }
            }
            SizeDist::Catalog { sizes, len } => {
                assert!(len >= 1 && len <= sizes.len());
                sizes[rng.gen_range(0..len)]
            }
        };
        // Clamp into a valid item size.
        let s = Size::from_f64(f.clamp(1e-6, 1.0));
        if s == Size::ZERO {
            Size::EPSILON
        } else {
            s
        }
    }
}

/// A duration distribution over positive tick counts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DurationDist {
    /// Uniform integer in `[lo, hi]`.
    Uniform {
        /// Minimum duration in ticks (≥ 1).
        lo: i64,
        /// Maximum duration in ticks.
        hi: i64,
    },
    /// Geometric-ish exponential with the given mean, clamped to
    /// `[min, max]`. Heavy-ish tail like real batch jobs.
    Exponential {
        /// Mean duration in ticks.
        mean: f64,
        /// Clamp floor (≥ 1).
        min: i64,
        /// Clamp ceiling.
        max: i64,
    },
    /// Two-point mixture of short and long jobs — maximizes the duration
    /// ratio stress on Any Fit algorithms.
    ShortLong {
        /// Short duration in ticks.
        short: i64,
        /// Long duration in ticks.
        long: i64,
        /// Probability of a short job.
        p_short: f64,
    },
    /// Bounded Pareto (heavy tail): survival `P(D > d) ∝ d^{-shape}` on
    /// `[min, max]` — the classic batch-job duration shape where a few
    /// stragglers dominate total demand.
    Pareto {
        /// Tail index (> 0); smaller = heavier tail.
        shape: f64,
        /// Minimum duration (≥ 1).
        min: i64,
        /// Maximum duration (truncation).
        max: i64,
    },
    /// Log-normal durations: `ln D ~ N(mu_ln, sigma_ln²)`, clamped to
    /// `[min, max]`. A good fit for interactive session lengths.
    LogNormal {
        /// Mean of `ln D`.
        mu_ln: f64,
        /// Std-dev of `ln D` (> 0).
        sigma_ln: f64,
        /// Clamp floor (≥ 1).
        min: i64,
        /// Clamp ceiling.
        max: i64,
    },
}

impl DurationDist {
    /// A validated `Uniform` distribution: requires `1 ≤ lo ≤ hi`.
    pub fn uniform(lo: i64, hi: i64) -> Result<DurationDist, DbpError> {
        let dist = DurationDist::Uniform { lo, hi };
        dist.validate()?;
        Ok(dist)
    }

    /// A validated `Exponential` distribution: `mean > 0`, `1 ≤ min ≤ max`.
    pub fn exponential(mean: f64, min: i64, max: i64) -> Result<DurationDist, DbpError> {
        let dist = DurationDist::Exponential { mean, min, max };
        dist.validate()?;
        Ok(dist)
    }

    /// A validated `ShortLong` mixture: positive durations, `p_short` in
    /// `[0, 1]`.
    pub fn short_long(short: i64, long: i64, p_short: f64) -> Result<DurationDist, DbpError> {
        let dist = DurationDist::ShortLong {
            short,
            long,
            p_short,
        };
        dist.validate()?;
        Ok(dist)
    }

    /// A validated bounded `Pareto`: `shape > 0`, `1 ≤ min ≤ max`.
    pub fn pareto(shape: f64, min: i64, max: i64) -> Result<DurationDist, DbpError> {
        let dist = DurationDist::Pareto { shape, min, max };
        dist.validate()?;
        Ok(dist)
    }

    /// A validated `LogNormal`: `sigma_ln > 0`, `1 ≤ min ≤ max`.
    pub fn log_normal(
        mu_ln: f64,
        sigma_ln: f64,
        min: i64,
        max: i64,
    ) -> Result<DurationDist, DbpError> {
        let dist = DurationDist::LogNormal {
            mu_ln,
            sigma_ln,
            min,
            max,
        };
        dist.validate()?;
        Ok(dist)
    }

    /// Checks every parameter is inside its documented domain.
    pub fn validate(&self) -> Result<(), DbpError> {
        let clamp_range = |min: i64, max: i64| {
            if min >= 1 && max >= min {
                Ok(())
            } else {
                Err(DbpError::InvalidParameter {
                    what: format!("duration clamp [{min}, {max}] needs 1 <= min <= max"),
                })
            }
        };
        match *self {
            DurationDist::Uniform { lo, hi } => clamp_range(lo, hi),
            DurationDist::Exponential { mean, min, max } => {
                if !(mean.is_finite() && mean > 0.0) {
                    return Err(DbpError::InvalidParameter {
                        what: format!("exponential mean {mean} must be positive"),
                    });
                }
                clamp_range(min, max)
            }
            DurationDist::ShortLong {
                short,
                long,
                p_short,
            } => {
                if short < 1 || long < 1 {
                    return Err(DbpError::InvalidParameter {
                        what: format!("short/long durations ({short}, {long}) must be >= 1"),
                    });
                }
                if !(0.0..=1.0).contains(&p_short) {
                    return Err(DbpError::InvalidParameter {
                        what: format!("p_short {p_short} outside [0, 1]"),
                    });
                }
                Ok(())
            }
            DurationDist::Pareto { shape, min, max } => {
                if !(shape.is_finite() && shape > 0.0) {
                    return Err(DbpError::InvalidParameter {
                        what: format!("pareto shape {shape} must be positive"),
                    });
                }
                clamp_range(min, max)
            }
            DurationDist::LogNormal {
                sigma_ln, min, max, ..
            } => {
                if !(sigma_ln.is_finite() && sigma_ln > 0.0) {
                    return Err(DbpError::InvalidParameter {
                        what: format!("log-normal sigma {sigma_ln} must be positive"),
                    });
                }
                clamp_range(min, max)
            }
        }
    }

    /// Draws one duration in ticks, always ≥ 1 (every family either
    /// draws from or clamps into its positive `[min, max]` window), so
    /// `arrival + duration` is a non-degenerate half-open interval.
    pub fn sample(&self, rng: &mut StdRng) -> i64 {
        match *self {
            DurationDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            DurationDist::Exponential { mean, min, max } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let d = (-mean * u.ln()).round() as i64;
                d.clamp(min, max)
            }
            DurationDist::ShortLong {
                short,
                long,
                p_short,
            } => {
                if rng.gen_bool(p_short) {
                    short
                } else {
                    long
                }
            }
            DurationDist::Pareto { shape, min, max } => {
                assert!(shape > 0.0 && min >= 1 && max >= min);
                // Inverse-CDF sampling of the bounded Pareto.
                let (l, h) = (min as f64, max as f64);
                let u: f64 = rng.gen_range(0.0..1.0);
                let la = l.powf(shape);
                let ha = h.powf(shape);
                let d = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / shape);
                (d.round() as i64).clamp(min, max)
            }
            DurationDist::LogNormal {
                mu_ln,
                sigma_ln,
                min,
                max,
            } => {
                assert!(sigma_ln > 0.0 && min >= 1 && max >= min);
                // Box–Muller for a standard normal.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let d = (mu_ln + sigma_ln * z).exp();
                (d.round() as i64).clamp(min, max)
            }
        }
    }
}

/// `n` items with uniform sizes, durations, and arrivals — the baseline
/// random family.
#[derive(Clone, Debug)]
pub struct UniformWorkload {
    /// Number of items.
    pub n: usize,
    /// Size distribution.
    pub sizes: SizeDist,
    /// Duration distribution.
    pub durations: DurationDist,
    /// Arrivals are uniform in `[0, arrival_span)`.
    pub arrival_span: Time,
}

impl UniformWorkload {
    /// A reasonable default: sizes U[0.05, 0.5], durations U[10, 100],
    /// arrivals over `10·n` ticks.
    pub fn new(n: usize) -> Self {
        UniformWorkload {
            n,
            sizes: SizeDist::Uniform { lo: 0.05, hi: 0.5 },
            durations: DurationDist::Uniform { lo: 10, hi: 100 },
            arrival_span: (10 * n as i64).max(1),
        }
    }

    /// Overrides the size distribution.
    pub fn with_sizes(mut self, sizes: SizeDist) -> Self {
        self.sizes = sizes;
        self
    }

    /// Overrides the duration distribution.
    pub fn with_durations(mut self, durations: DurationDist) -> Self {
        self.durations = durations;
        self
    }

    /// Overrides the arrival span.
    pub fn with_arrival_span(mut self, span: Time) -> Self {
        self.arrival_span = span.max(1);
        self
    }
}

impl Workload for UniformWorkload {
    fn name(&self) -> String {
        format!("uniform(n={})", self.n)
    }

    fn generate(&self, rng: &mut StdRng) -> Instance {
        let items = (0..self.n)
            .map(|i| {
                let a = rng.gen_range(0..self.arrival_span);
                let d = self.durations.sample(rng).max(1);
                Item::new(i as u32, self.sizes.sample(rng), a, a + d)
            })
            .collect();
        Instance::from_items(items).expect("generated items are valid")
    }
}

/// Poisson arrivals at `rate` items/tick over `horizon` ticks.
#[derive(Clone, Debug)]
pub struct PoissonWorkload {
    /// Mean arrivals per tick.
    pub rate: f64,
    /// Generation horizon in ticks.
    pub horizon: Time,
    /// Size distribution.
    pub sizes: SizeDist,
    /// Duration distribution.
    pub durations: DurationDist,
}

impl PoissonWorkload {
    /// Default: rate jobs/tick with exponential durations (mean 50) and
    /// uniform sizes in [0.05, 0.5].
    pub fn new(rate: f64, horizon: Time) -> Self {
        PoissonWorkload {
            rate,
            horizon,
            sizes: SizeDist::Uniform { lo: 0.05, hi: 0.5 },
            durations: DurationDist::Exponential {
                mean: 50.0,
                min: 1,
                max: 1000,
            },
        }
    }

    /// Overrides the duration distribution.
    pub fn with_durations(mut self, durations: DurationDist) -> Self {
        self.durations = durations;
        self
    }

    /// Overrides the size distribution.
    pub fn with_sizes(mut self, sizes: SizeDist) -> Self {
        self.sizes = sizes;
        self
    }
}

impl Workload for PoissonWorkload {
    fn name(&self) -> String {
        format!("poisson(rate={},horizon={})", self.rate, self.horizon)
    }

    fn generate(&self, rng: &mut StdRng) -> Instance {
        let mut items = Vec::new();
        let mut t = 0.0f64;
        let mut id = 0u32;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / self.rate;
            let a = t.floor() as Time;
            if a >= self.horizon {
                break;
            }
            let d = self.durations.sample(rng).max(1);
            items.push(Item::new(id, self.sizes.sample(rng), a, a + d));
            id += 1;
        }
        Instance::from_items(items).expect("generated items are valid")
    }
}

/// A family with an exactly controlled duration ratio `μ`: durations are
/// log-uniform over `[Δ, μΔ]` with the endpoints always present, so the
/// instance's measured `μ` equals the requested one. Used for the E2/E3
/// `μ`-sweeps.
#[derive(Clone, Debug)]
pub struct MuSweepWorkload {
    /// Number of items (≥ 2).
    pub n: usize,
    /// Minimum duration `Δ` in ticks.
    pub delta: i64,
    /// Target duration ratio `μ ≥ 1`.
    pub mu: f64,
    /// Arrivals uniform over this span.
    pub arrival_span: Time,
    /// Size distribution.
    pub sizes: SizeDist,
}

impl MuSweepWorkload {
    /// Creates the family with default sizes U[0.05, 0.5] and an arrival
    /// span that keeps several items concurrently active.
    pub fn new(n: usize, delta: i64, mu: f64) -> Self {
        assert!(n >= 2 && delta >= 1 && mu >= 1.0);
        MuSweepWorkload {
            n,
            delta,
            mu,
            arrival_span: (n as i64 * delta / 4).max(1),
            sizes: SizeDist::Uniform { lo: 0.05, hi: 0.5 },
        }
    }

    /// Overrides the size distribution.
    pub fn with_sizes(mut self, sizes: SizeDist) -> Self {
        self.sizes = sizes;
        self
    }
}

impl Workload for MuSweepWorkload {
    fn name(&self) -> String {
        format!("mu-sweep(n={},delta={},mu={})", self.n, self.delta, self.mu)
    }

    fn generate(&self, rng: &mut StdRng) -> Instance {
        let max_dur = ((self.delta as f64) * self.mu)
            .round()
            .max(self.delta as f64) as i64;
        let items = (0..self.n)
            .map(|i| {
                let a = rng.gen_range(0..self.arrival_span);
                // Pin the extremes so measured μ is exact.
                let d = match i {
                    0 => self.delta,
                    1 => max_dur,
                    _ => {
                        let log_lo = (self.delta as f64).ln();
                        let log_hi = (max_dur as f64).ln();
                        let x: f64 = rng.gen_range(log_lo..=log_hi);
                        (x.exp().round() as i64).clamp(self.delta, max_dur)
                    }
                };
                Item::new(i as u32, self.sizes.sample(rng), a, a + d)
            })
            .collect();
        Instance::from_items(items).expect("generated items are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_respects_bounds() {
        let w = UniformWorkload::new(200);
        let inst = w.generate(&mut rng());
        assert_eq!(inst.len(), 200);
        for r in inst.items() {
            assert!(r.size() >= Size::from_f64(0.05) - Size::EPSILON);
            assert!(r.size() <= Size::HALF + Size::EPSILON);
            assert!((10..=100).contains(&r.duration()));
        }
    }

    #[test]
    fn poisson_generates_over_horizon() {
        let w = PoissonWorkload::new(0.5, 1000);
        let inst = w.generate(&mut rng());
        assert!(inst.len() > 300, "expected ~500 items, got {}", inst.len());
        assert!(inst.items().iter().all(|r| r.arrival() < 1000));
    }

    #[test]
    fn mu_sweep_exact_ratio() {
        for mu in [1.0, 2.0, 16.0, 100.0] {
            let w = MuSweepWorkload::new(100, 10, mu);
            let inst = w.generate(&mut rng());
            let measured = inst.mu().unwrap();
            assert!(
                (measured - mu).abs() / mu < 0.05,
                "mu {measured} vs requested {mu}"
            );
            assert_eq!(inst.min_duration(), Some(10));
        }
    }

    #[test]
    fn exponential_durations_clamped() {
        let d = DurationDist::Exponential {
            mean: 50.0,
            min: 5,
            max: 200,
        };
        let mut r = rng();
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((5..=200).contains(&x));
        }
    }

    #[test]
    fn pareto_durations_heavy_tailed() {
        let d = DurationDist::Pareto {
            shape: 1.2,
            min: 10,
            max: 10_000,
        };
        let mut r = rng();
        let samples: Vec<i64> = (0..5_000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| (10..=10_000).contains(&x)));
        // Heavy tail: the top percentile should dwarf the median.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let p99 = sorted[sorted.len() * 99 / 100];
        assert!(p99 > 10 * median, "median {median}, p99 {p99}");
    }

    #[test]
    fn lognormal_durations_clamped_and_centered() {
        let d = DurationDist::LogNormal {
            mu_ln: 4.0, // median ≈ e^4 ≈ 55
            sigma_ln: 0.5,
            min: 1,
            max: 100_000,
        };
        let mut r = rng();
        let samples: Vec<i64> = (0..5_000).map(|_| d.sample(&mut r)).collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        assert!((40..=75).contains(&median), "median {median}");
    }

    #[test]
    fn catalog_sizes_only_from_catalog() {
        let s = SizeDist::Catalog {
            sizes: [0.125, 0.25, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0],
            len: 3,
        };
        let valid: Vec<Size> = [0.125, 0.25, 0.5]
            .iter()
            .map(|&f| Size::from_f64(f))
            .collect();
        let mut r = rng();
        for _ in 0..500 {
            assert!(valid.contains(&s.sample(&mut r)));
        }
    }

    #[test]
    fn validating_constructors_reject_bad_parameters() {
        use dbp_core::DbpError;
        let bad = |r: Result<SizeDist, DbpError>| {
            assert!(matches!(r, Err(DbpError::InvalidParameter { .. })), "{r:?}");
        };
        // Inverted bounds used to panic inside gen_range mid-sweep.
        bad(SizeDist::uniform(0.9, 0.1));
        // Out-of-range sizes used to be silently clamped at sample time.
        bad(SizeDist::uniform(0.0, 0.5));
        bad(SizeDist::uniform(0.5, 1.5));
        bad(SizeDist::bimodal(1.5, 0.1, 0.9));
        bad(SizeDist::bimodal(0.5, -0.1, 0.9));
        bad(SizeDist::catalog(&[]));
        bad(SizeDist::catalog(&[0.5, 2.0]));
        assert!(SizeDist::uniform(0.05, 0.5).is_ok());
        assert!(SizeDist::catalog(&[0.125, 0.25, 0.5]).is_ok());

        let bad_d = |r: Result<DurationDist, DbpError>| {
            assert!(matches!(r, Err(DbpError::InvalidParameter { .. })), "{r:?}");
        };
        bad_d(DurationDist::uniform(0, 10));
        bad_d(DurationDist::uniform(20, 10));
        bad_d(DurationDist::exponential(-1.0, 1, 10));
        bad_d(DurationDist::exponential(50.0, 5, 4));
        bad_d(DurationDist::short_long(0, 100, 0.5));
        bad_d(DurationDist::short_long(1, 100, 1.5));
        bad_d(DurationDist::pareto(0.0, 1, 10));
        bad_d(DurationDist::log_normal(4.0, 0.0, 1, 10));
        assert!(DurationDist::uniform(10, 100).is_ok());
        assert!(DurationDist::pareto(1.2, 10, 10_000).is_ok());
    }

    #[test]
    fn bimodal_sizes() {
        let s = SizeDist::Bimodal {
            p_small: 0.5,
            small: 0.1,
            large: 0.9,
        };
        let mut r = rng();
        let mut small = 0;
        for _ in 0..1000 {
            if s.sample(&mut r) <= Size::from_f64(0.1) {
                small += 1;
            }
        }
        assert!((300..700).contains(&small));
    }
}
