//! # dbp-workloads — seedable workload generators and trace I/O
//!
//! The paper motivates MinUsageTime DBP with cloud job scheduling: cloud
//! gaming sessions whose ending times are predictable (§1, citation \[18\]) and
//! recurring data-analytics jobs (§1, [21, 12]). This crate provides
//! deterministic, seedable generators for those scenarios plus the random
//! and adversarial families used in the experiments:
//!
//! * [`random`] — uniform random items, Poisson arrivals with pluggable
//!   duration/size distributions, and a duration-ratio-controlled family
//!   for sweeping `μ`.
//! * [`scenarios`] — cloud gaming sessions, recurring analytics batches,
//!   diurnal load, and bursty spikes.
//! * [`adversarial`] — instances that attack specific algorithms: the
//!   Any Fit `μ+1` staircase and the First Fit tail-trap that the
//!   classification strategies dismantle.
//! * [`trace`] — a plain-text (CSV) trace format so instances can be saved,
//!   diffed, and replayed; no external format crates needed.
//! * [`fit`] — fit a generative model to a real trace and synthesize
//!   look-alike workloads at any volume ("last Tuesday, but 3×").
//! * [`vector`] — multi-resource demand vectors with a one-knob
//!   correlation structure ([`vector::CorrelatedVectorWorkload`]), for
//!   the dynamic *vector* bin packing stack.
//!
//! Every generator implements [`Workload`]; generation is a pure function
//! of the seed, so experiments are reproducible run-to-run.

#![warn(missing_docs)]

pub mod adversarial;
pub mod fit;
pub mod random;
pub mod scenarios;
pub mod trace;
pub mod vector;

use dbp_core::Instance;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic instance generator.
pub trait Workload {
    /// Stable display name (with parameters).
    fn name(&self) -> String;

    /// Generates one instance from the RNG.
    fn generate(&self, rng: &mut StdRng) -> Instance;

    /// Convenience: generate from a seed.
    fn generate_seeded(&self, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        self.generate(&mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::random::UniformWorkload;
    use super::Workload;

    #[test]
    fn seeding_is_deterministic() {
        let w = UniformWorkload::new(50);
        let a = w.generate_seeded(7);
        let b = w.generate_seeded(7);
        let c = w.generate_seeded(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
