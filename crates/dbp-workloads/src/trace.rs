//! Plain-text trace format.
//!
//! One item per line: `id,size_raw,arrival,departure` with a `#`-comment
//! header. `size_raw` is the exact fixed-point value so round-trips are
//! lossless. The format is deliberately trivial — shareable, diffable, no
//! dependencies — so downstream users can export traces from their own
//! schedulers.

use dbp_core::{DbpError, Instance, Item, Size};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Serializes an instance to the trace text format.
pub fn to_string(inst: &Instance) -> String {
    let mut out = String::with_capacity(inst.len() * 32 + 64);
    out.push_str("# clairvoyant-dbp trace v1\n");
    out.push_str("# id,size_raw,arrival,departure\n");
    for r in inst.items() {
        writeln!(
            out,
            "{},{},{},{}",
            r.id().0,
            r.size().raw(),
            r.arrival(),
            r.departure()
        )
        .expect("string write");
    }
    out
}

/// Parses the trace text format.
pub fn from_str(text: &str) -> Result<Instance, DbpError> {
    let mut items = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let mut field = |name: &str| {
            parts
                .next()
                .ok_or_else(|| DbpError::Trace {
                    line: lineno + 1,
                    what: format!("missing field {name}"),
                })
                .and_then(|s| {
                    s.trim().parse::<i64>().map_err(|e| DbpError::Trace {
                        line: lineno + 1,
                        what: format!("bad {name}: {e}"),
                    })
                })
        };
        let id = field("id")?;
        let size_raw = field("size_raw")?;
        let arrival = field("arrival")?;
        let departure = field("departure")?;
        if id < 0 || id > u32::MAX as i64 {
            return Err(DbpError::Trace {
                line: lineno + 1,
                what: format!("id {id} out of range"),
            });
        }
        if size_raw < 0 {
            return Err(DbpError::Trace {
                line: lineno + 1,
                what: "negative size".into(),
            });
        }
        items.push(Item::try_new(
            id as u32,
            Size::from_raw(size_raw as u64),
            arrival,
            departure,
        )?);
    }
    Instance::from_items(items)
}

/// Writes an instance to a file.
pub fn save(inst: &Instance, path: impl AsRef<Path>) -> std::io::Result<()> {
    fs::write(path, to_string(inst))
}

/// Reads an instance from a file.
pub fn load(path: impl AsRef<Path>) -> Result<Instance, DbpError> {
    let text = fs::read_to_string(path.as_ref()).map_err(|e| DbpError::Trace {
        line: 0,
        what: format!("cannot read {}: {e}", path.as_ref().display()),
    })?;
    from_str(&text)
}

/// Restricts an instance to the items whose intervals intersect
/// `[from, to)`, clipping nothing (items keep their full intervals) —
/// the standard way to cut a daily window out of a longer trace for
/// replay. Ids are preserved.
pub fn window(inst: &Instance, from: dbp_core::Time, to: dbp_core::Time) -> Instance {
    let keep: Vec<Item> = inst
        .items()
        .iter()
        .filter(|r| r.arrival() < to && r.departure() > from)
        .copied()
        .collect();
    Instance::from_items(keep).expect("subset of a valid instance is valid")
}

/// Uniformly rescales all times by `num/den` (e.g. compress a day trace
/// into an hour for faster simulation). Durations are kept ≥ 1 tick.
pub fn scale_time(inst: &Instance, num: i64, den: i64) -> Instance {
    assert!(num >= 1 && den >= 1);
    let items = inst
        .items()
        .iter()
        .map(|r| {
            let a = r.arrival() * num / den;
            let d = (r.departure() * num / den).max(a + 1);
            Item::new(r.id().0, r.size(), a, d)
        })
        .collect();
    Instance::from_items(items).expect("rescaled items are valid")
}

/// Interleaves several traces into one, offsetting each by `gap` ticks
/// after the previous trace's last departure (sequential composition) and
/// reassigning ids.
pub fn concat_with_gap(parts: &[Instance], gap: i64) -> Instance {
    assert!(gap >= 0);
    let mut shifted = Vec::new();
    let mut offset = 0i64;
    for p in parts {
        shifted.push(p.shifted(offset - p.first_arrival().unwrap_or(0)));
        offset = shifted
            .last()
            .and_then(|s| s.last_departure())
            .unwrap_or(offset)
            + gap;
    }
    Instance::concat(&shifted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::UniformWorkload;
    use crate::Workload;

    #[test]
    fn round_trip_is_lossless() {
        let inst = UniformWorkload::new(100).generate_seeded(3);
        let text = to_string(&inst);
        let back = from_str(&text).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# hi\n\n0,8388608,0,10\n# mid\n1,8388608,5,15\n";
        let inst = from_str(text).unwrap();
        assert_eq!(inst.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "0,8388608,0,10\nbogus line\n";
        let err = from_str(text).unwrap_err();
        assert!(matches!(err, DbpError::Trace { line: 2, .. }));
    }

    #[test]
    fn invalid_item_rejected() {
        // departure before arrival
        let err = from_str("0,8388608,10,5\n").unwrap_err();
        assert!(matches!(err, DbpError::EmptyInterval { .. }));
        // zero size
        let err = from_str("0,0,0,5\n").unwrap_err();
        assert!(matches!(err, DbpError::InvalidSize { .. }));
    }

    #[test]
    fn window_selects_intersecting_items() {
        let inst = Instance::from_triples(&[(0.5, 0, 10), (0.5, 5, 25), (0.5, 30, 40)]);
        let w = window(&inst, 8, 30);
        assert_eq!(w.len(), 2); // first two intersect [8,30); third starts at 30
        let all = window(&inst, 0, 100);
        assert_eq!(all.len(), 3);
        let none = window(&inst, 41, 50);
        assert!(none.is_empty());
    }

    #[test]
    fn scale_time_halves_and_keeps_durations_positive() {
        let inst = Instance::from_triples(&[(0.5, 0, 1), (0.5, 10, 30)]);
        let s = scale_time(&inst, 1, 2);
        assert_eq!(s.items()[0].arrival(), 0);
        assert_eq!(s.items()[0].duration(), 1); // clamped from 0.5
        assert_eq!(s.items()[1].arrival(), 5);
        assert_eq!(s.items()[1].departure(), 15);
    }

    #[test]
    fn concat_with_gap_sequences_traces() {
        let a = Instance::from_triples(&[(0.5, 5, 15)]);
        let b = Instance::from_triples(&[(0.5, 100, 120)]);
        let c = concat_with_gap(&[a, b], 50);
        assert_eq!(c.len(), 2);
        assert_eq!(c.items()[0].arrival(), 0); // re-anchored
        assert_eq!(c.items()[1].arrival(), 10 + 50); // 0+10 dep, +50 gap
                                                     // Ids unique after concat.
        let ids: std::collections::HashSet<_> = c.items().iter().map(|r| r.id()).collect();
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn file_round_trip() {
        let inst = UniformWorkload::new(20).generate_seeded(9);
        let dir = std::env::temp_dir().join("dbp-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        save(&inst, &path).unwrap();
        assert_eq!(load(&path).unwrap(), inst);
    }
}
