//! Trace fitting: estimate a generative model from a real trace and
//! synthesize look-alike workloads at any scale.
//!
//! Operators rarely want to replay one fixed trace; they want "traffic
//! like last Tuesday, but 3× the volume". [`TraceModel::fit`] extracts a
//! Poisson arrival rate and the *empirical* duration/size distributions
//! from an instance; [`TraceModel::synthesize`] bootstrap-resamples those
//! distributions under fresh Poisson arrivals, preserving the marginal
//! statistics (mean duration, size mix, `μ`) without copying the trace.

use crate::Workload;
use dbp_core::{Instance, Item, Size, Time};
use rand::rngs::StdRng;
use rand::Rng;

/// A generative model fitted from a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceModel {
    /// Mean arrivals per tick over the observed arrival window.
    pub rate: f64,
    /// The observed durations (bootstrap-resampled at synthesis).
    pub durations: Vec<i64>,
    /// The observed sizes (bootstrap-resampled at synthesis).
    pub sizes: Vec<Size>,
    /// Length of the observed arrival window in ticks.
    pub observed_window: Time,
}

impl TraceModel {
    /// Fits the model to an instance. Returns `None` for an empty trace.
    pub fn fit(inst: &Instance) -> Option<TraceModel> {
        if inst.is_empty() {
            return None;
        }
        let first = inst.first_arrival()?;
        let last = inst
            .items()
            .iter()
            .map(|r| r.arrival())
            .max()
            .expect("nonempty");
        let window = (last - first).max(1);
        Some(TraceModel {
            rate: inst.len() as f64 / window as f64,
            durations: inst.items().iter().map(|r| r.duration()).collect(),
            sizes: inst.items().iter().map(|r| r.size()).collect(),
            observed_window: window,
        })
    }

    /// The fitted mean duration.
    pub fn mean_duration(&self) -> f64 {
        self.durations.iter().sum::<i64>() as f64 / self.durations.len().max(1) as f64
    }

    /// The fitted mean size (fraction of capacity).
    pub fn mean_size(&self) -> f64 {
        self.sizes.iter().map(|s| s.as_f64()).sum::<f64>() / self.sizes.len().max(1) as f64
    }

    /// A workload that synthesizes traces over `horizon` ticks with the
    /// fitted rate scaled by `volume` (1.0 = observed intensity).
    pub fn scaled(&self, horizon: Time, volume: f64) -> SynthesizedWorkload {
        assert!(horizon >= 1 && volume > 0.0);
        SynthesizedWorkload {
            model: self.clone(),
            horizon,
            volume,
        }
    }

    /// Synthesizes one trace at the observed window length and intensity.
    pub fn synthesize(&self, rng: &mut StdRng) -> Instance {
        self.scaled(self.observed_window, 1.0).generate(rng)
    }
}

/// A [`Workload`] wrapping a fitted [`TraceModel`].
#[derive(Clone, Debug)]
pub struct SynthesizedWorkload {
    model: TraceModel,
    horizon: Time,
    volume: f64,
}

impl Workload for SynthesizedWorkload {
    fn name(&self) -> String {
        format!(
            "fitted(rate={:.4},x{:.1},horizon={})",
            self.model.rate, self.volume, self.horizon
        )
    }

    fn generate(&self, rng: &mut StdRng) -> Instance {
        let rate = self.model.rate * self.volume;
        let mut items = Vec::new();
        let mut t = 0.0f64;
        let mut id = 0u32;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / rate;
            let a = t.floor() as Time;
            if a >= self.horizon {
                break;
            }
            let dur = self.model.durations[rng.gen_range(0..self.model.durations.len())];
            let size = self.model.sizes[rng.gen_range(0..self.model.sizes.len())];
            items.push(Item::new(id, size, a, a + dur.max(1)));
            id += 1;
        }
        Instance::from_items(items).expect("synthesized items are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::CloudGamingWorkload;

    #[test]
    fn fit_reports_observed_statistics() {
        let inst = Instance::from_triples(&[(0.25, 0, 100), (0.5, 50, 250), (0.75, 100, 400)]);
        let m = TraceModel::fit(&inst).unwrap();
        assert_eq!(m.observed_window, 100);
        assert!((m.rate - 0.03).abs() < 1e-12);
        assert!((m.mean_duration() - (100.0 + 200.0 + 300.0) / 3.0).abs() < 1e-9);
        assert!((m.mean_size() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn fit_empty_is_none() {
        let inst = Instance::from_items(vec![]).unwrap();
        assert!(TraceModel::fit(&inst).is_none());
    }

    #[test]
    fn synthesis_preserves_marginals() {
        let original = CloudGamingWorkload::new(2_000, 40_000).generate_seeded(5);
        let model = TraceModel::fit(&original).unwrap();
        let synth = model.scaled(40_000, 1.0).generate_seeded(99);
        // Count within 15% of the original.
        let ratio = synth.len() as f64 / original.len() as f64;
        assert!((0.85..1.15).contains(&ratio), "count ratio {ratio}");
        // Mean duration and size within 10%.
        let m2 = TraceModel::fit(&synth).unwrap();
        assert!((m2.mean_duration() / model.mean_duration() - 1.0).abs() < 0.1);
        assert!((m2.mean_size() / model.mean_size() - 1.0).abs() < 0.1);
        // Sizes are drawn from the observed catalog only.
        let catalog: std::collections::HashSet<u64> =
            original.items().iter().map(|r| r.size().raw()).collect();
        assert!(synth
            .items()
            .iter()
            .all(|r| catalog.contains(&r.size().raw())));
    }

    #[test]
    fn volume_scaling_scales_counts() {
        let original = CloudGamingWorkload::new(1_000, 20_000).generate_seeded(6);
        let model = TraceModel::fit(&original).unwrap();
        let x1 = model.scaled(20_000, 1.0).generate_seeded(7).len() as f64;
        let x3 = model.scaled(20_000, 3.0).generate_seeded(7).len() as f64;
        let ratio = x3 / x1;
        assert!((2.5..3.5).contains(&ratio), "volume ratio {ratio}");
    }
}
