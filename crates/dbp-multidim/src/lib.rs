//! # dbp-multidim — multi-resource MinUsageTime DBP (§6 future work)
//!
//! The paper's concluding remarks propose extending MinUsageTime DBP to
//! multiple resource dimensions (CPU, memory, bandwidth, …). This crate
//! implements that extension: items carry a demand vector, bins have unit
//! capacity in every dimension, and an item fits a bin iff it fits in
//! *all* dimensions simultaneously.
//!
//! The classification strategies of §5 apply unchanged — they constrain
//! *which* bins an item may share by time structure, not by size — so
//! [`pack_online`] exposes First Fit with optional classify-by-departure-
//! time / classify-by-duration / combined classification, mirroring the
//! 1-D algorithms. The per-dimension Proposition 3 bound
//! `max_d ∫⌈S_d(t)⌉dt` is provided by [`multi_lower_bound`].
//!
//! ```
//! use dbp_core::Size;
//! use dbp_multidim::{pack_online, validate, Classification, MultiInstance, MultiItem};
//!
//! // CPU-compatible but memory-incompatible items must split.
//! let inst = MultiInstance::new(vec![
//!     MultiItem::new(0, vec![Size::from_f64(0.2), Size::from_f64(0.8)], 0, 10),
//!     MultiItem::new(1, vec![Size::from_f64(0.2), Size::from_f64(0.8)], 0, 10),
//! ]);
//! let run = pack_online(&inst, Classification::None);
//! validate(&inst, &run).unwrap();
//! assert_eq!(run.bins.len(), 2);
//! ```

#![warn(missing_docs)]

use dbp_core::interval::{Interval, Time};
use dbp_core::{DbpError, Size, SizeVec, VecInstance, VecItem};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A multi-resource item: one demand per dimension, all in `(0, 1]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiItem {
    /// Unique id.
    pub id: u32,
    /// Demand per dimension (fraction of that dimension's capacity).
    pub demands: Vec<Size>,
    /// Active interval.
    pub interval: Interval,
}

impl MultiItem {
    /// Creates an item; panics if any demand is outside `(0, 1]` or the
    /// interval is empty.
    ///
    /// Use [`MultiItem::try_new`] for fallible construction from
    /// untrusted input.
    #[track_caller]
    pub fn new(id: u32, demands: Vec<Size>, arrival: Time, departure: Time) -> MultiItem {
        MultiItem::try_new(id, demands, arrival, departure).expect("invalid multi-item")
    }

    /// Fallible construction: requires at least one dimension, every
    /// demand in `(0, 1]`, and `arrival < departure`.
    pub fn try_new(
        id: u32,
        demands: Vec<Size>,
        arrival: Time,
        departure: Time,
    ) -> Result<MultiItem, DbpError> {
        if demands.is_empty() {
            return Err(DbpError::InvalidParameter {
                what: format!("item {id}: need at least one dimension"),
            });
        }
        if !demands.iter().all(|d| d.is_valid_item_size()) {
            return Err(DbpError::InvalidSize {
                what: format!("item {id}: demands must lie in (0, 1]"),
            });
        }
        Ok(MultiItem {
            id,
            demands,
            interval: Interval::new(arrival, departure)?,
        })
    }

    /// Item duration.
    pub fn duration(&self) -> i64 {
        self.interval.len()
    }
}

/// A multi-dimensional instance (validated dimension consistency).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiInstance {
    dims: usize,
    items: Vec<MultiItem>,
}

impl MultiInstance {
    /// Builds an instance; all items must share the same dimensionality.
    ///
    /// Use [`MultiInstance::try_new`] for fallible construction.
    #[track_caller]
    pub fn new(items: Vec<MultiItem>) -> MultiInstance {
        MultiInstance::try_new(items).expect("invalid multi-instance")
    }

    /// Fallible construction: every item must share the first item's
    /// dimensionality.
    pub fn try_new(items: Vec<MultiItem>) -> Result<MultiInstance, DbpError> {
        let dims = items.first().map(|r| r.demands.len()).unwrap_or(1);
        if let Some(bad) = items.iter().find(|r| r.demands.len() != dims) {
            return Err(DbpError::InvalidParameter {
                what: format!(
                    "inconsistent dimensionality: item {} has {} axes, expected {dims}",
                    bad.id,
                    bad.demands.len()
                ),
            });
        }
        let mut items = items;
        items.sort_by_key(|r| (r.interval.start(), r.id));
        Ok(MultiInstance { dims, items })
    }

    /// Converts a fixed-dimension streaming [`VecInstance`] into the
    /// batch representation, demand by demand. Both sort items by
    /// `(arrival, id)`, so item order — and therefore the epoch
    /// [`pack_online`] anchors classification to — is preserved exactly;
    /// the streaming-vs-batch differential suite relies on this.
    pub fn from_vector(inst: &VecInstance) -> MultiInstance {
        let dims = inst.dims();
        let items = inst
            .items()
            .iter()
            .map(|r| MultiItem {
                id: r.id().0,
                demands: (0..dims).map(|d| r.size().axis(d)).collect(),
                interval: r.interval(),
            })
            .collect();
        MultiInstance { dims, items }
    }

    /// Converts this instance into a streaming [`VecInstance`]; fails if
    /// the dimensionality exceeds [`dbp_core::MAX_DIMS`] or ids collide.
    pub fn to_vector(&self) -> Result<VecInstance, DbpError> {
        let items = self
            .items
            .iter()
            .map(|r| {
                let size = SizeVec::try_new(&r.demands)?;
                VecItem::try_new(r.id, size, r.interval.start(), r.interval.end())
            })
            .collect::<Result<Vec<_>, _>>()?;
        VecInstance::from_items(items)
    }

    /// Number of resource dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Items in arrival order.
    pub fn items(&self) -> &[MultiItem] {
        &self.items
    }

    /// Max/min duration ratio.
    pub fn mu(&self) -> Option<f64> {
        let min = self.items.iter().map(|r| r.duration()).min()?;
        let max = self.items.iter().map(|r| r.duration()).max()?;
        Some(max as f64 / min as f64)
    }
}

/// How items are grouped before First Fit packing (the §5 strategies).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Classification {
    /// No classification: plain First Fit.
    None,
    /// Classify by departure-time window of length `ρ` (§5.2).
    ByDepartureTime {
        /// Window length in ticks.
        rho: i64,
    },
    /// Classify by duration class of ratio `α` over base `b` (§5.3).
    ByDuration {
        /// Base duration in ticks.
        base: i64,
        /// Intra-class duration ratio.
        alpha: f64,
    },
}

/// Result of a multi-dimensional online packing run.
#[derive(Clone, Debug)]
pub struct MultiRun {
    /// Per-bin item ids, in bin-opening order.
    pub bins: Vec<Vec<u32>>,
    /// Total usage time in ticks.
    pub usage: u128,
}

struct OpenBin {
    idx: usize,
    tag: u64,
    levels: Vec<Size>,
    occupants: usize,
}

/// Online First Fit over multi-resource items, with optional
/// classification. Bins close when their last item departs, as in 1-D.
pub fn pack_online(inst: &MultiInstance, classify: Classification) -> MultiRun {
    let _dims = inst.dims();
    let epoch = inst
        .items()
        .first()
        .map(|r| r.interval.start())
        .unwrap_or(0);

    let tag_of = |item: &MultiItem| -> u64 {
        match classify {
            Classification::None => 0,
            Classification::ByDepartureTime { rho } => {
                let off = item.interval.end() - epoch;
                ((off + rho - 1) / rho) as u64
            }
            Classification::ByDuration { base, alpha } => {
                let ratio = item.duration() as f64 / base as f64;
                let mut i = (ratio.ln() / alpha.ln()).floor() as i64;
                while base as f64 * alpha.powi(i as i32) > item.duration() as f64 {
                    i -= 1;
                }
                while base as f64 * alpha.powi(i as i32 + 1) <= item.duration() as f64 {
                    i += 1;
                }
                (i + (1 << 32)) as u64
            }
        }
    };

    let mut bins: Vec<Vec<u32>> = Vec::new();
    let mut opened_at: Vec<Time> = Vec::new();
    let mut usage: u128 = 0;
    let mut open: Vec<OpenBin> = Vec::new();
    // (departure, bin idx, demands index into inst) for level release.
    let mut departures: BinaryHeap<Reverse<(Time, usize, usize)>> = BinaryHeap::new();

    for (item_pos, item) in inst.items().iter().enumerate() {
        let now = item.interval.start();
        // Process departures before arrivals at the same instant.
        while let Some(&Reverse((dt, bidx, ipos))) = departures.peek() {
            if dt > now {
                break;
            }
            departures.pop();
            if let Some(ob) = open.iter_mut().find(|b| b.idx == bidx) {
                for (lvl, dem) in ob.levels.iter_mut().zip(&inst.items()[ipos].demands) {
                    *lvl -= *dem;
                }
                ob.occupants -= 1;
                if ob.occupants == 0 {
                    usage += (dt - opened_at[bidx]) as u128;
                    open.retain(|b| b.idx != bidx);
                }
            }
        }

        let tag = tag_of(item);
        let fits = |b: &OpenBin| {
            b.tag == tag
                && b.levels
                    .iter()
                    .zip(&item.demands)
                    .all(|(lvl, dem)| *lvl + *dem <= Size::CAPACITY)
        };
        match open.iter_mut().find(|b| fits(b)) {
            Some(b) => {
                for (lvl, dem) in b.levels.iter_mut().zip(&item.demands) {
                    *lvl += *dem;
                }
                b.occupants += 1;
                bins[b.idx].push(item.id);
                departures.push(Reverse((item.interval.end(), b.idx, item_pos)));
            }
            None => {
                let idx = bins.len();
                bins.push(vec![item.id]);
                opened_at.push(now);
                open.push(OpenBin {
                    idx,
                    tag,
                    levels: item.demands.clone(),
                    occupants: 1,
                });
                departures.push(Reverse((item.interval.end(), idx, item_pos)));
            }
        }
    }
    // Drain: close remaining bins at their final departures.
    while let Some(Reverse((dt, bidx, ipos))) = departures.pop() {
        if let Some(pos) = open.iter().position(|b| b.idx == bidx) {
            let ob = &mut open[pos];
            for (lvl, dem) in ob.levels.iter_mut().zip(&inst.items()[ipos].demands) {
                *lvl -= *dem;
            }
            ob.occupants -= 1;
            if ob.occupants == 0 {
                usage += (dt - opened_at[bidx]) as u128;
                open.remove(pos);
            }
        }
    }
    debug_assert!(open.is_empty());
    MultiRun { bins, usage }
}

/// Offline Duration Descending First Fit generalized to `d` dimensions:
/// items sorted longest-first; each goes into the lowest-indexed bin whose
/// level stays within capacity over the item's whole interval in *every*
/// dimension. The natural multi-resource analogue of the paper's Theorem 1
/// algorithm (no approximation bound is claimed for d > 1 — vector packing
/// is strictly harder).
pub fn pack_offline_ddff(inst: &MultiInstance) -> MultiRun {
    use dbp_core::profile::{BTreeProfile, LevelProfile};
    let mut sorted: Vec<&MultiItem> = inst.items().iter().collect();
    sorted.sort_by_key(|r| (std::cmp::Reverse(r.duration()), r.interval.start(), r.id));
    // One profile per dimension per bin.
    let mut bins: Vec<Vec<u32>> = Vec::new();
    let mut profiles: Vec<Vec<BTreeProfile>> = Vec::new();
    for item in sorted {
        let fits = |ps: &Vec<BTreeProfile>| {
            ps.iter()
                .zip(&item.demands)
                .all(|(p, d)| p.fits(item.interval, *d, Size::CAPACITY))
        };
        let idx = match profiles.iter().position(fits) {
            Some(i) => i,
            None => {
                profiles.push(vec![BTreeProfile::new(); inst.dims()]);
                bins.push(Vec::new());
                profiles.len() - 1
            }
        };
        for (p, d) in profiles[idx].iter_mut().zip(&item.demands) {
            p.add(item.interval, *d);
        }
        bins[idx].push(item.id);
    }
    // Usage = per-bin span of member intervals.
    let by_id: std::collections::HashMap<u32, &MultiItem> =
        inst.items().iter().map(|r| (r.id, r)).collect();
    let usage: u128 = bins
        .iter()
        .map(|b| dbp_core::interval::span_of(b.iter().map(|id| by_id[id].interval)) as u128)
        .sum();
    MultiRun { bins, usage }
}

/// Validates a multi-run: every item placed once, and per-bin levels within
/// capacity in every dimension at every time.
pub fn validate(inst: &MultiInstance, run: &MultiRun) -> Result<(), String> {
    let mut seen = std::collections::HashSet::new();
    for bin in &run.bins {
        for id in bin {
            if !seen.insert(*id) {
                return Err(format!("item {id} placed twice"));
            }
        }
    }
    if seen.len() != inst.items().len() {
        return Err("coverage mismatch".into());
    }
    let by_id: std::collections::HashMap<u32, &MultiItem> =
        inst.items().iter().map(|r| (r.id, r)).collect();
    for (bi, bin) in run.bins.iter().enumerate() {
        let members: Vec<&MultiItem> = bin.iter().map(|id| by_id[id]).collect();
        let mut times: Vec<Time> = members.iter().map(|r| r.interval.start()).collect();
        times.sort_unstable();
        for t in times {
            for d in 0..inst.dims() {
                let level: u64 = members
                    .iter()
                    .filter(|r| r.interval.contains(t))
                    .map(|r| r.demands[d].raw())
                    .sum();
                if level > Size::SCALE {
                    return Err(format!("bin {bi} dim {d} over capacity at t={t}"));
                }
            }
        }
    }
    Ok(())
}

/// Per-dimension Proposition 3 bound: `max_d ∫ ⌈S_d(t)⌉ dt`, plus the span
/// bound. Any valid packing's usage is at least this.
pub fn multi_lower_bound(inst: &MultiInstance) -> u128 {
    let mut best: u128 = 0;
    for d in 0..inst.dims() {
        let mut events: Vec<(Time, i128)> = Vec::new();
        for r in inst.items() {
            events.push((r.interval.start(), r.demands[d].raw() as i128));
            events.push((r.interval.end(), -(r.demands[d].raw() as i128)));
        }
        events.sort_unstable_by_key(|e| e.0);
        let mut lb: u128 = 0;
        let mut level: i128 = 0;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            while i < events.len() && events[i].0 == t {
                level += events[i].1;
                i += 1;
            }
            if i < events.len() && level > 0 {
                let len = (events[i].0 - t) as u128;
                lb += (level as u128).div_ceil(Size::SCALE as u128) * len;
            }
        }
        best = best.max(lb);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(id: u32, cpu: f64, mem: f64, a: Time, d: Time) -> MultiItem {
        MultiItem::new(id, vec![Size::from_f64(cpu), Size::from_f64(mem)], a, d)
    }

    #[test]
    fn fits_requires_all_dimensions() {
        // Item 0 and 1 are CPU-compatible but memory-incompatible.
        let inst = MultiInstance::new(vec![item(0, 0.2, 0.8, 0, 10), item(1, 0.2, 0.8, 0, 10)]);
        let run = pack_online(&inst, Classification::None);
        validate(&inst, &run).unwrap();
        assert_eq!(run.bins.len(), 2);
    }

    #[test]
    fn compatible_items_share() {
        let inst = MultiInstance::new(vec![item(0, 0.5, 0.3, 0, 10), item(1, 0.5, 0.3, 0, 10)]);
        let run = pack_online(&inst, Classification::None);
        validate(&inst, &run).unwrap();
        assert_eq!(run.bins.len(), 1);
        assert_eq!(run.usage, 10);
    }

    #[test]
    fn usage_at_least_multi_lb() {
        let inst = MultiInstance::new(vec![
            item(0, 0.6, 0.1, 0, 10),
            item(1, 0.6, 0.1, 2, 12),
            item(2, 0.1, 0.9, 5, 20),
            item(3, 0.4, 0.4, 7, 9),
        ]);
        for c in [
            Classification::None,
            Classification::ByDepartureTime { rho: 5 },
            Classification::ByDuration {
                base: 2,
                alpha: 2.0,
            },
        ] {
            let run = pack_online(&inst, c);
            validate(&inst, &run).unwrap();
            assert!(run.usage >= multi_lower_bound(&inst), "{c:?}");
        }
    }

    #[test]
    fn classification_separates_tags() {
        // Same demands, very different departures: CBDT splits them.
        let inst = MultiInstance::new(vec![item(0, 0.1, 0.1, 0, 5), item(1, 0.1, 0.1, 0, 500)]);
        let none = pack_online(&inst, Classification::None);
        assert_eq!(none.bins.len(), 1);
        let cbdt = pack_online(&inst, Classification::ByDepartureTime { rho: 10 });
        validate(&inst, &cbdt).unwrap();
        assert_eq!(cbdt.bins.len(), 2);
    }

    #[test]
    fn one_dimension_matches_core_first_fit() {
        // d=1 multi packing must agree with the 1-D engine's First Fit.
        use dbp_algos::online::AnyFit;
        use dbp_core::{Instance, OnlineEngine};
        let triples = [
            (0.5, 0i64, 10i64),
            (0.5, 2, 8),
            (0.3, 3, 14),
            (0.8, 5, 9),
            (0.2, 11, 30),
        ];
        let multi = MultiInstance::new(
            triples
                .iter()
                .enumerate()
                .map(|(i, &(s, a, d))| MultiItem::new(i as u32, vec![Size::from_f64(s)], a, d))
                .collect(),
        );
        let inst = Instance::from_triples(&triples);
        let mrun = pack_online(&multi, Classification::None);
        let orun = OnlineEngine::clairvoyant()
            .run(&inst, &mut AnyFit::first_fit())
            .unwrap();
        assert_eq!(mrun.usage, orun.usage);
        assert_eq!(mrun.bins.len(), orun.bins_opened());
    }

    #[test]
    fn offline_ddff_valid_and_not_worse_than_online() {
        let inst = MultiInstance::new(vec![
            item(0, 0.6, 0.1, 0, 100),
            item(1, 0.6, 0.1, 2, 120),
            item(2, 0.1, 0.9, 5, 200),
            item(3, 0.4, 0.4, 7, 90),
            item(4, 0.3, 0.3, 50, 300),
            item(5, 0.5, 0.2, 60, 160),
        ]);
        let off = pack_offline_ddff(&inst);
        let run = MultiRun {
            bins: off.bins.clone(),
            usage: off.usage,
        };
        validate(&inst, &run).unwrap();
        assert!(off.usage >= multi_lower_bound(&inst));
        // Offline (with bin reuse) should not be dramatically worse than
        // online FF; allow a 2x envelope for the heuristic.
        let online = pack_online(&inst, Classification::None);
        assert!(off.usage <= online.usage * 2);
    }

    #[test]
    fn offline_ddff_reuses_bins_across_gaps() {
        let inst = MultiInstance::new(vec![item(0, 0.9, 0.9, 0, 10), item(1, 0.9, 0.9, 20, 30)]);
        let off = pack_offline_ddff(&inst);
        assert_eq!(off.bins.len(), 1);
        assert_eq!(off.usage, 20);
    }

    #[test]
    #[should_panic(expected = "inconsistent dimensionality")]
    fn dims_must_match() {
        let _ = MultiInstance::new(vec![
            item(0, 0.5, 0.5, 0, 10),
            MultiItem::new(1, vec![Size::HALF], 0, 10),
        ]);
    }

    #[test]
    fn empty_instance() {
        let inst = MultiInstance::new(vec![]);
        let run = pack_online(&inst, Classification::None);
        assert_eq!(run.usage, 0);
        assert_eq!(multi_lower_bound(&inst), 0);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        use dbp_core::DbpError;
        assert!(matches!(
            MultiItem::try_new(3, vec![], 0, 10),
            Err(DbpError::InvalidParameter { .. })
        ));
        assert!(matches!(
            MultiItem::try_new(3, vec![Size::ZERO], 0, 10),
            Err(DbpError::InvalidSize { .. })
        ));
        assert!(matches!(
            MultiItem::try_new(3, vec![Size::HALF], 10, 10),
            Err(DbpError::EmptyInterval { .. })
        ));
        assert!(MultiItem::try_new(3, vec![Size::HALF], 0, 10).is_ok());
        assert!(matches!(
            MultiInstance::try_new(vec![
                item(0, 0.5, 0.5, 0, 10),
                MultiItem::new(1, vec![Size::HALF], 0, 10),
            ]),
            Err(DbpError::InvalidParameter { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "demands must lie in (0, 1]")]
    fn new_still_panics_on_bad_demand() {
        let _ = MultiItem::new(0, vec![Size::ZERO], 0, 10);
    }

    #[test]
    fn vector_round_trip_preserves_items_and_order() {
        let inst = MultiInstance::new(vec![
            item(2, 0.6, 0.1, 5, 30),
            item(0, 0.2, 0.8, 0, 10),
            item(1, 0.4, 0.4, 0, 20),
        ]);
        let vec_inst = inst.to_vector().unwrap();
        assert_eq!(vec_inst.dims(), 2);
        let back = MultiInstance::from_vector(&vec_inst);
        assert_eq!(back, inst);
        // Too many axes for the fixed-dimension streaming type.
        let wide = MultiInstance::new(vec![MultiItem::new(
            0,
            vec![Size::HALF; dbp_core::MAX_DIMS + 1],
            0,
            10,
        )]);
        assert!(wide.to_vector().is_err());
    }
}
