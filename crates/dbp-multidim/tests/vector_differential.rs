//! Differential proofs for the streaming vector stack.
//!
//! Three equivalences, each a proptest family:
//!
//! 1. **Streaming vs batch foil** — the event-driven
//!    [`VecStreamingSession`] path (vector First Fit + classification
//!    packers over [`VecOpenBins`]) must produce bit-identical bin
//!    contents and usage to the original batch [`pack_online`] reference
//!    for every [`Classification`] variant. The batch foil never clamps
//!    duration categories, so the streaming side uses the unclamped
//!    `VecClassifyByDuration::new` constructor here.
//! 2. **dim-1 ≡ scalar** — lifting a scalar instance to one-dimensional
//!    vectors and running the vector roster must reproduce the scalar
//!    [`StreamingSession`] roster run for run, as full [`OnlineRun`]
//!    equality.
//! 3. **Indexed ≡ linear** — every indexed vector packer must choose the
//!    same bins as its `with_linear_scan()` foil on every input, at
//!    every dimensionality.

use dbp_algos::online::{
    AnyFit, ClassifyByDepartureTime, ClassifyByDuration, VecAnyFit, VecClassifyByDepartureTime,
    VecClassifyByDuration,
};
use dbp_core::{
    Instance, Item, OnlineEngine, OnlinePacker, OnlineRun, Scalarization, Size, SizeVec,
    VecInstance, VecItem, VecOnlineEngine, VecOnlinePacker,
};
use dbp_multidim::{pack_online, Classification, MultiInstance};
use proptest::prelude::*;

/// Random vector instance: `dims` axes, demands on a 1/64 grid so axis
/// sums hit capacity exactly sometimes.
fn arb_vec_instance(dims: usize, max_items: usize) -> impl Strategy<Value = VecInstance> {
    let demand = (1u64..=64).prop_map(|s| Size::from_ratio(s, 64).unwrap());
    let item = (
        proptest::collection::vec(demand, dims..=dims),
        0i64..80,
        1i64..40,
    );
    proptest::collection::vec(item, 1..=max_items).prop_map(|specs| {
        VecInstance::from_items(
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (dem, a, len))| VecItem::new(i as u32, SizeVec::new(&dem), a, a + len))
                .collect(),
        )
        .unwrap()
    })
}

fn arb_scalar_instance(max_items: usize) -> impl Strategy<Value = Instance> {
    let item = (1u64..=64, 0i64..80, 1i64..40);
    proptest::collection::vec(item, 1..=max_items).prop_map(|specs| {
        Instance::from_items(
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (s, a, len))| {
                    Item::new(i as u32, Size::from_ratio(s, 64).unwrap(), a, a + len)
                })
                .collect(),
        )
        .unwrap()
    })
}

fn stream(inst: &VecInstance, packer: &mut dyn VecOnlinePacker) -> OnlineRun {
    VecOnlineEngine::clairvoyant().run(inst, packer).unwrap()
}

/// Per-bin item ids in opening order — the batch foil's result shape.
fn bin_ids(run: &OnlineRun) -> Vec<Vec<u32>> {
    run.bins
        .iter()
        .map(|b| b.items.iter().map(|r| r.0).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Streaming vector First Fit ≡ the batch foil, under every
    /// classification the foil supports.
    #[test]
    fn streaming_matches_batch_foil(
        (inst, rho, base) in (1usize..=4)
            .prop_flat_map(|d| (arb_vec_instance(d, 24), 1i64..30, 1i64..6))
    ) {
        let multi = MultiInstance::from_vector(&inst);
        let cases: Vec<(Classification, Box<dyn VecOnlinePacker>)> = vec![
            (Classification::None, Box::new(VecAnyFit::first_fit())),
            (
                Classification::ByDepartureTime { rho },
                Box::new(VecClassifyByDepartureTime::new(rho)),
            ),
            (
                Classification::ByDuration { base, alpha: 2.0 },
                Box::new(VecClassifyByDuration::new(base, 2.0)),
            ),
        ];
        for (classify, mut packer) in cases {
            let batch = pack_online(&multi, classify);
            let streamed = stream(&inst, packer.as_mut());
            prop_assert_eq!(
                bin_ids(&streamed),
                batch.bins.clone(),
                "bin contents diverged under {:?}",
                classify
            );
            prop_assert_eq!(
                streamed.usage,
                batch.usage,
                "usage diverged under {:?}",
                classify
            );
        }
    }

    /// At one dimension, every vector roster packer reproduces its
    /// scalar twin's run exactly (full `OnlineRun` equality: packing,
    /// usage, and per-bin lifetime records).
    #[test]
    fn dim1_roster_matches_scalar_roster(inst in arb_scalar_instance(24)) {
        let lifted = VecInstance::lift(&inst, 1);
        let cases: Vec<(Box<dyn VecOnlinePacker>, Box<dyn OnlinePacker>)> = vec![
            (Box::new(VecAnyFit::first_fit()), Box::new(AnyFit::first_fit())),
            (Box::new(VecAnyFit::best_fit()), Box::new(AnyFit::best_fit())),
            (Box::new(VecAnyFit::worst_fit()), Box::new(AnyFit::worst_fit())),
            (Box::new(VecAnyFit::next_fit()), Box::new(AnyFit::next_fit())),
            (
                Box::new(VecClassifyByDepartureTime::new(7)),
                Box::new(ClassifyByDepartureTime::new(7)),
            ),
            (
                Box::new(VecClassifyByDuration::new(1, 2.0)),
                Box::new(ClassifyByDuration::new(1, 2.0)),
            ),
        ];
        for (mut vp, mut sp) in cases {
            let name = vp.name();
            let v = stream(&lifted, vp.as_mut());
            let s = OnlineEngine::clairvoyant().run(&inst, sp.as_mut()).unwrap();
            prop_assert_eq!(v, s, "dim-1 {} diverged from scalar", name);
        }
    }

    /// Indexed fit queries ≡ the linear category walk across the whole
    /// vector roster and every dimensionality.
    #[test]
    fn indexed_matches_linear(
        inst in (1usize..=4).prop_flat_map(|d| arb_vec_instance(d, 24))
    ) {
        let pairs: Vec<(Box<dyn VecOnlinePacker>, Box<dyn VecOnlinePacker>)> = vec![
            (
                Box::new(VecAnyFit::first_fit()),
                Box::new(VecAnyFit::first_fit().with_linear_scan()),
            ),
            (
                Box::new(VecAnyFit::best_fit()),
                Box::new(VecAnyFit::best_fit().with_linear_scan()),
            ),
            (
                Box::new(VecAnyFit::worst_fit()),
                Box::new(VecAnyFit::worst_fit().with_linear_scan()),
            ),
            (
                Box::new(VecAnyFit::best_fit().with_scalarization(Scalarization::MaxAxis)),
                Box::new(
                    VecAnyFit::best_fit()
                        .with_scalarization(Scalarization::MaxAxis)
                        .with_linear_scan(),
                ),
            ),
            (
                Box::new(VecAnyFit::worst_fit().with_scalarization(Scalarization::MaxAxis)),
                Box::new(
                    VecAnyFit::worst_fit()
                        .with_scalarization(Scalarization::MaxAxis)
                        .with_linear_scan(),
                ),
            ),
            (
                Box::new(VecClassifyByDepartureTime::new(9)),
                Box::new(VecClassifyByDepartureTime::new(9).with_linear_scan()),
            ),
            (
                Box::new(VecClassifyByDuration::new(2, 1.7)),
                Box::new(VecClassifyByDuration::new(2, 1.7).with_linear_scan()),
            ),
        ];
        for (mut indexed, mut linear) in pairs {
            let name = indexed.name();
            let a = stream(&inst, indexed.as_mut());
            let b = stream(&inst, linear.as_mut());
            prop_assert_eq!(a, b, "indexed vs linear diverged for {}", name);
        }
    }

    /// The streaming run also satisfies the per-axis validator and the
    /// max-axis lower bound — tying the differential layer back to the
    /// paper's Proposition 3.
    #[test]
    fn streaming_run_is_valid_and_bounded(
        inst in (2usize..=4).prop_flat_map(|d| arb_vec_instance(d, 24))
    ) {
        let run = stream(&inst, &mut VecAnyFit::first_fit());
        inst.validate_packing(&run.packing).unwrap();
        prop_assert!(run.usage >= inst.vector_lower_bound());
    }
}
