//! Property tests for the multi-resource extension.

use dbp_core::Size;
use dbp_multidim::{
    multi_lower_bound, pack_online, validate, Classification, MultiInstance, MultiItem, MultiRun,
};
use proptest::prelude::*;

fn arb_multi(dims: usize, max_items: usize) -> impl Strategy<Value = MultiInstance> {
    let demand = (1u64..=64).prop_map(|s| Size::from_ratio(s, 64).unwrap());
    let item = (
        proptest::collection::vec(demand, dims..=dims),
        0i64..80,
        1i64..40,
    );
    proptest::collection::vec(item, 1..=max_items).prop_map(|specs| {
        MultiInstance::new(
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (dem, a, len))| MultiItem::new(i as u32, dem, a, a + len))
                .collect(),
        )
    })
}

fn check(inst: &MultiInstance, run: &MultiRun) {
    validate(inst, run).expect("valid");
    assert!(run.usage >= multi_lower_bound(inst));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Validity + lower bound for all classifications, 1–3 dimensions.
    #[test]
    fn pack_online_valid(
        (inst, rho) in (1usize..=3).prop_flat_map(|d| (arb_multi(d, 20), 1i64..30))
    ) {
        for c in [
            Classification::None,
            Classification::ByDepartureTime { rho },
            Classification::ByDuration { base: 1, alpha: 2.0 },
        ] {
            let run = pack_online(&inst, c);
            check(&inst, &run);
        }
    }

    /// Adding a dimension of slack-1 demands can only *increase* usage
    /// relative to ignoring it never decreases feasibility... concretely:
    /// a 2-D instance whose second dimension duplicates the first packs
    /// exactly like the 1-D projection.
    #[test]
    fn duplicated_dimension_is_inert(inst1 in arb_multi(1, 16)) {
        let doubled = MultiInstance::new(
            inst1
                .items()
                .iter()
                .map(|r| {
                    MultiItem::new(
                        r.id,
                        vec![r.demands[0], r.demands[0]],
                        r.interval.start(),
                        r.interval.end(),
                    )
                })
                .collect(),
        );
        let a = pack_online(&inst1, Classification::None);
        let b = pack_online(&doubled, Classification::None);
        prop_assert_eq!(a.usage, b.usage);
        prop_assert_eq!(a.bins, b.bins);
        prop_assert_eq!(multi_lower_bound(&inst1), multi_lower_bound(&doubled));
    }

    /// The multi lower bound is the max of the per-dimension 1-D bounds:
    /// dropping a dimension never raises it.
    #[test]
    fn lower_bound_monotone_in_dims(inst in arb_multi(3, 16)) {
        let lb3 = multi_lower_bound(&inst);
        for keep in 0..3usize {
            let proj = MultiInstance::new(
                inst.items()
                    .iter()
                    .map(|r| {
                        MultiItem::new(
                            r.id,
                            vec![r.demands[keep]],
                            r.interval.start(),
                            r.interval.end(),
                        )
                    })
                    .collect(),
            );
            prop_assert!(multi_lower_bound(&proj) <= lb3);
        }
    }
}
