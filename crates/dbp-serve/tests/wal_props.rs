//! Property tests for the WAL frame codec and segment recovery: encode
//! ⇄ decode round-trips for arbitrary decisions, and no truncation or
//! single-bit corruption of a segment file can ever surface a decision
//! that was not written — damage is either truncated away (a clean
//! prefix survives) or refused with a typed error.

use dbp_serve::protocol::RejectReason;
use dbp_serve::wal::{
    self, crc32, decode_payload, encode_frame, encode_payload, DecisionFrame, FrameOutcome,
    FsyncPolicy, WalWriter,
};
use proptest::prelude::*;
use std::path::PathBuf;

/// splitmix64: deterministic per-case variety without an RNG dep.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn arb_outcome(state: &mut u64) -> FrameOutcome {
    match mix(state) % 3 {
        0 => FrameOutcome::Placed {
            shard: (mix(state) % 7) as u32,
            bin: (mix(state) % 1000) as u32,
        },
        1 => FrameOutcome::Shed {
            shard: (mix(state) % 7) as u32,
        },
        _ => FrameOutcome::Rejected(match mix(state) % 4 {
            0 => RejectReason::FleetCapacity,
            1 => RejectReason::DuplicateJob,
            2 => RejectReason::ArrivalOutOfOrder,
            _ => RejectReason::InvalidJob,
        }),
    }
}

/// A deterministic frame with `seq`, exercising every outcome kind,
/// both size encodings, negative times, and odd tenant strings.
fn arb_frame(seq: u64, stream: u32, state: &mut u64) -> DecisionFrame {
    let tenants = ["t", "", "tenant-ü™", "a b\"c\\d", "0123456789abcdef"];
    let size_is_raw = mix(state).is_multiple_of(2);
    DecisionFrame {
        seq,
        stream,
        tenant: tenants[(mix(state) % tenants.len() as u64) as usize].to_string(),
        job: mix(state) as u32,
        size_is_raw,
        size_bits: if size_is_raw {
            mix(state)
        } else {
            f64::to_bits((mix(state) % 1000) as f64 / 1000.0)
        },
        arrival: mix(state) as i64 % 1_000_000,
        departure: mix(state) as i64 % 1_000_000,
        outcome: arb_outcome(state),
    }
}

/// Writes `frames` into a fresh WAL dir and returns (dir, segment path).
fn write_segment(name: &str, frames: &[DecisionFrame]) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("dbp-wal-props-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    let mut w = WalWriter::open(&dir, 1, 0, FsyncPolicy::Never).unwrap();
    for f in frames {
        w.append(f).unwrap();
    }
    w.sync().unwrap();
    drop(w);
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| wal::parse_segment_name(n).is_some())
        })
        .expect("one segment written")
        .path();
    (dir, seg)
}

/// Recovery after damage must yield a bit-exact prefix of what was
/// written — or a typed refusal. Never a decision that wasn't logged.
fn assert_prefix_or_typed_error(dir: &PathBuf, originals: &[DecisionFrame]) {
    match wal::recover_wal(dir, 1, 0) {
        Ok(rec) => {
            assert!(rec.frames.len() <= originals.len());
            for (got, want) in rec.frames.iter().zip(originals) {
                assert_eq!(got, want, "recovered frame differs from what was written");
            }
            // Recovery truncated the damage away: a second scan is clean
            // and agrees.
            let again = wal::recover_wal(dir, 1, 0).unwrap();
            assert_eq!(again.frames, rec.frames);
            assert!(again.truncated.is_empty(), "recovery must be idempotent");
        }
        Err(e) => {
            let msg = e.to_string();
            assert!(!msg.is_empty(), "refusals carry a typed message");
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Frame payloads round-trip exactly, and the framing's length and
    /// CRC cover the payload.
    #[test]
    fn payload_round_trip(seq in 1u64..u64::MAX / 2, stream in 0u32..8, seed: u64) {
        let mut state = seed;
        let frame = arb_frame(seq, stream, &mut state);
        let payload = encode_payload(&frame);
        prop_assert_eq!(&decode_payload(&payload).unwrap(), &frame);
        let framed = encode_frame(&frame);
        let plen = u32::from_le_bytes(framed[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(framed[4..8].try_into().unwrap());
        prop_assert_eq!(plen, payload.len());
        prop_assert_eq!(framed.len(), 8 + plen);
        prop_assert_eq!(crc, crc32(&framed[8..]));
        prop_assert_eq!(&framed[8..], &payload[..]);
    }

    /// Any truncation of a segment file recovers a clean prefix: the
    /// surviving frames are bit-identical to what was written, in
    /// order, with nothing invented past the cut.
    #[test]
    fn arbitrary_truncation_recovers_a_clean_prefix(
        n in 1usize..24, cut_frac in 0.0f64..1.0, seed: u64,
    ) {
        let mut state = seed;
        let frames: Vec<DecisionFrame> =
            (1..=n as u64).map(|s| arb_frame(s, 0, &mut state)).collect();
        let (dir, seg) = write_segment(&format!("trunc-{seed}-{n}"), &frames);
        let len = std::fs::metadata(&seg).unwrap().len();
        let cut = (len as f64 * cut_frac) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut).unwrap();
        drop(f);
        // Truncation is what a real crash does; it can never look like
        // anything worse than a torn tail, so recovery must succeed.
        let rec = wal::recover_wal(&dir, 1, 0).unwrap();
        prop_assert!(rec.frames.len() <= frames.len());
        for (got, want) in rec.frames.iter().zip(&frames) {
            prop_assert_eq!(got, want);
        }
        if cut >= len {
            prop_assert_eq!(rec.frames.len(), frames.len(), "no cut, no loss");
        }
        let again = wal::recover_wal(&dir, 1, 0).unwrap();
        prop_assert_eq!(again.frames.len(), rec.frames.len());
        prop_assert!(again.truncated.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A single flipped bit anywhere in a segment — header, framing, or
    /// payload — is either truncated away (clean prefix) or refused
    /// with a typed error. It never changes a recovered decision.
    #[test]
    fn single_bit_corruption_never_rewrites_a_decision(
        n in 1usize..24, pos_frac in 0.0f64..1.0, bit in 0u32..8, seed: u64,
    ) {
        let mut state = seed;
        let frames: Vec<DecisionFrame> =
            (1..=n as u64).map(|s| arb_frame(s, 0, &mut state)).collect();
        let (dir, seg) = write_segment(&format!("flip-{seed}-{n}-{bit}"), &frames);
        let mut bytes = std::fs::read(&seg).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&seg, &bytes).unwrap();
        // The flipped frame's CRC (or the header/framing checks) must
        // catch the damage; everything recovered is a written frame.
        assert_prefix_or_typed_error(&dir, &frames);
    }
}
