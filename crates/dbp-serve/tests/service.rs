//! Service-level behaviour: differential equivalence with a plain
//! streaming session, typed rejects, and multi-tenant accounting.

use dbp_bench::registry::{online_packer, AlgoParams};
use dbp_core::stream::{Admission, StreamingSession};
use dbp_core::{ClairvoyanceMode, Item, Size};
use dbp_serve::protocol::{RejectReason, Request, Response, Submit};
use dbp_serve::{ServeConfig, Service};

fn submit(tenant: &str, job: u32, size: f64, arrival: i64, departure: i64) -> Request {
    Request::Submit(Submit {
        tenant: tenant.into(),
        job,
        size: None,
        size_raw: Some(Size::from_f64(size).raw()),
        arrival,
        departure,
    })
}

/// A deterministic pseudo-random job stream (no RNG dependency).
fn stream(n: u32) -> Vec<(u32, f64, i64, i64)> {
    (0..n)
        .map(|i| {
            let size = 0.1 + 0.5 * f64::from(i.wrapping_mul(2_654_435_761) % 1000) / 1000.0;
            let arrival = i64::from(i);
            (i, size, arrival, arrival + 5 + i64::from(i % 37))
        })
        .collect()
}

#[test]
fn single_shard_service_matches_a_plain_streaming_session() {
    let service = Service::start(ServeConfig::new(1, "best-fit")).unwrap();
    let mut packer = online_packer("best-fit", AlgoParams { delta: 1, mu: 1.0 });
    let mut session = StreamingSession::new(ClairvoyanceMode::Clairvoyant, packer.as_mut());
    for (id, size, arrival, departure) in stream(300) {
        let resp = service.handle(&submit("t", id, size, arrival, departure));
        let item = Item::new(id, Size::from_f64(size), arrival, departure);
        let expect = match session.arrive_capped(&item, usize::MAX).unwrap() {
            Admission::Placed(bin) => bin,
            Admission::Shed => panic!("uncapped session shed item {id}"),
        };
        match resp {
            Response::Placed { shard, bin, .. } => {
                assert_eq!(shard, 0);
                assert_eq!(bin, expect.0, "job {id} diverged from the plain session");
            }
            other => panic!("job {id}: service answered {other:?}"),
        }
    }
    session.finish().unwrap();
}

#[test]
fn fleet_cap_sheds_with_typed_rejects_then_recovers() {
    let mut cfg = ServeConfig::new(1, "first-fit");
    cfg.fleet_cap = Some(2);
    let service = Service::start(cfg).unwrap();
    // Three capacity-hogging jobs: two fill the fleet, the third is shed.
    for (job, expect_placed) in [(0u32, true), (1, true), (2, false)] {
        match service.handle(&submit("t", job, 0.9, 0, 50)) {
            Response::Placed { .. } => assert!(expect_placed, "job {job} should have been shed"),
            Response::Rejected { reason, .. } => {
                assert!(!expect_placed, "job {job} should have been placed");
                assert_eq!(reason, RejectReason::FleetCapacity);
            }
            other => panic!("job {job}: {other:?}"),
        }
    }
    // A shed is a *decision*: re-presenting the id is a duplicate.
    match service.handle(&submit("t", 2, 0.9, 10, 60)) {
        Response::Rejected { reason, .. } => assert_eq!(reason, RejectReason::DuplicateJob),
        other => panic!("{other:?}"),
    }
    // After the first two depart, capacity frees up and new jobs place.
    match service.handle(&submit("t", 3, 0.9, 100, 150)) {
        Response::Placed { .. } => {}
        other => panic!("job 3 should place after departures: {other:?}"),
    }
    // Sheds and placements both count; nothing surfaced as an error.
    match service.handle(&Request::Status) {
        Response::Status(s) => {
            assert_eq!(s.placed, 3);
            assert_eq!(s.shed, 1);
            assert_eq!(s.rejected, 1);
            assert_eq!(s.watermark, 4, "ids 0..4 are all decided");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn invalid_duplicate_and_stale_submissions_get_typed_rejects() {
    let service = Service::start(ServeConfig::new(2, "first-fit")).unwrap();
    let reject_of = |resp: Response| match resp {
        Response::Rejected { reason, .. } => reason,
        other => panic!("expected a reject, got {other:?}"),
    };
    assert!(matches!(
        service.handle(&submit("t", 0, 0.5, 10, 20)),
        Response::Placed { .. }
    ));
    // Duplicate id.
    assert_eq!(
        reject_of(service.handle(&submit("t", 0, 0.5, 11, 21))),
        RejectReason::DuplicateJob
    );
    // Arrival behind the stream clock.
    assert_eq!(
        reject_of(service.handle(&submit("t", 1, 0.5, 5, 20))),
        RejectReason::ArrivalOutOfOrder
    );
    // Sizes outside (0, 1] and an empty interval.
    assert_eq!(
        reject_of(service.handle(&submit("t", 2, 0.0, 12, 20))),
        RejectReason::InvalidJob
    );
    assert_eq!(
        reject_of(service.handle(&submit("t", 2, 1.5, 12, 20))),
        RejectReason::InvalidJob
    );
    assert_eq!(
        reject_of(service.handle(&submit("t", 2, 0.5, 12, 12))),
        RejectReason::InvalidJob
    );
    // Rejects are not decisions: the same ids, corrected, still work.
    assert!(matches!(
        service.handle(&submit("t", 1, 0.5, 12, 22)),
        Response::Placed { .. }
    ));
    assert!(matches!(
        service.handle(&submit("t", 2, 0.5, 13, 23)),
        Response::Placed { .. }
    ));
}

#[test]
fn tenants_are_accounted_separately_and_exposed_in_metrics() {
    let mut cfg = ServeConfig::new(1, "first-fit");
    cfg.fleet_cap = Some(1);
    let service = Service::start(cfg).unwrap();
    assert!(matches!(
        service.handle(&submit("alpha", 0, 0.9, 0, 50)),
        Response::Placed { .. }
    ));
    // beta's job needs a second server: shed, charged to beta.
    assert!(matches!(
        service.handle(&submit("beta", 1, 0.9, 1, 50)),
        Response::Rejected {
            reason: RejectReason::FleetCapacity,
            ..
        }
    ));
    // beta also sends a duplicate.
    assert!(matches!(
        service.handle(&submit("beta", 1, 0.9, 2, 50)),
        Response::Rejected {
            reason: RejectReason::DuplicateJob,
            ..
        }
    ));
    let text = match service.handle(&Request::Metrics) {
        Response::Metrics { text } => text,
        other => panic!("{other:?}"),
    };
    assert!(text.contains("dbp_serve_jobs_total{tenant=\"alpha\",outcome=\"placed\"} 1"));
    assert!(text.contains("dbp_serve_jobs_total{tenant=\"alpha\",outcome=\"shed\"} 0"));
    assert!(text.contains("dbp_serve_jobs_total{tenant=\"beta\",outcome=\"shed\"} 1"));
    assert!(text.contains("dbp_serve_jobs_total{tenant=\"beta\",outcome=\"rejected\"} 1"));
    assert!(text.contains("dbp_serve_jobs_total{tenant=\"beta\",outcome=\"submitted\"} 2"));
    assert!(text.contains("dbp_serve_open_bins{shard=\"0\"} 1"));
    assert!(text.contains("# TYPE dbp_serve_place_ns histogram"));
    // Only decided submissions (placed or shed) time a placement; the
    // duplicate was rejected before reaching a shard.
    assert!(text.contains("dbp_serve_place_ns_count{algo=\"first-fit\"} 2"));
}

#[test]
fn config_validation_catches_bad_parameters() {
    assert!(Service::start(ServeConfig::new(0, "first-fit")).is_err());
    assert!(Service::start(ServeConfig::new(1, "no-such-algo")).is_err());
    let mut cfg = ServeConfig::new(1, "first-fit");
    cfg.fleet_cap = Some(0);
    assert!(Service::start(cfg).is_err());
    let mut cfg = ServeConfig::new(1, "first-fit");
    cfg.checkpoint_every = 0;
    assert!(Service::start(cfg).is_err());
}

#[test]
fn a_poisoned_state_lock_degrades_to_typed_errors() {
    let service = Service::start(ServeConfig::new(1, "first-fit")).unwrap();
    assert!(matches!(
        service.handle(&submit("t", 0, 0.4, 0, 9)),
        Response::Placed { .. }
    ));
    // A handler panicking while holding the state lock poisons it. Every
    // later request must get a typed error — no panic, no unwrap crash —
    // and dropping the service must still join its engines cleanly.
    service.poison_for_tests();
    for req in [
        submit("t", 1, 0.4, 1, 9),
        Request::Status,
        Request::Metrics,
        Request::Checkpoint,
    ] {
        match service.handle(&req) {
            Response::Error { what } => assert!(what.contains("poisoned"), "got: {what}"),
            other => panic!("expected a typed error, got {other:?}"),
        }
    }
    match service.handle(&Request::Shutdown) {
        Response::Error { what } => assert!(what.contains("poisoned")),
        other => panic!("expected a typed error, got {other:?}"),
    }
}
