//! Restart semantics: kill-and-resume bit-identity, torn-checkpoint
//! fallback, and config-fingerprint validation.

use dbp_core::Size;
use dbp_serve::protocol::{render_response, Request, Response, Submit};
use dbp_serve::{ServeConfig, Service};
use std::path::{Path, PathBuf};

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbp-serve-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic 200-job stream that exercises placements *and*
/// fleet-cap sheds.
fn stream() -> Vec<Request> {
    (0..200u32)
        .map(|i| {
            let size = 0.15 + 0.6 * f64::from(i.wrapping_mul(2_654_435_761) % 997) / 997.0;
            let arrival = i64::from(i / 2);
            Request::Submit(Submit {
                tenant: format!("tenant-{}", i % 3),
                job: i,
                size: None,
                size_raw: Some(Size::from_f64(size).raw()),
                arrival,
                departure: arrival + 4 + i64::from(i % 23),
            })
        })
        .collect()
}

fn cfg_with_dir(dir: &Path) -> ServeConfig {
    let mut cfg = ServeConfig::new(2, "first-fit");
    cfg.fleet_cap = Some(6);
    cfg.checkpoint_dir = Some(dir.to_path_buf());
    cfg.checkpoint_every = 25;
    cfg
}

#[test]
fn kill_and_restore_replays_bit_identically() {
    let jobs = stream();

    // Reference: one uninterrupted service over the whole stream.
    let full_dir = fresh_dir("restart-full");
    let reference: Vec<String> = {
        let service = Service::start(cfg_with_dir(&full_dir)).unwrap();
        assert_eq!(service.restored_seq(), None);
        jobs.iter()
            .map(|req| render_response(&service.handle(req)))
            .collect()
    };
    assert!(
        reference.iter().any(|r| r.contains("\"placed\":true"))
            && reference.iter().any(|r| r.contains("fleet_capacity")),
        "the stream must exercise both placements and sheds"
    );

    // Interrupted run: submit 137 jobs, then die without a graceful
    // shutdown — the newest auto-checkpoint (125 decisions) survives.
    let kill_dir = fresh_dir("restart-kill");
    let part1: Vec<String> = {
        let service = Service::start(cfg_with_dir(&kill_dir)).unwrap();
        jobs[..137]
            .iter()
            .map(|req| render_response(&service.handle(req)))
            .collect()
    };
    assert_eq!(&part1[..], &reference[..137]);

    // Restart from the surviving checkpoint and resume from the
    // watermark, replaying the tail of the same stream.
    let service = Service::start(cfg_with_dir(&kill_dir)).unwrap();
    assert_eq!(service.restored_seq(), Some(5), "5 × 25 decisions survived");
    let watermark = match service.handle(&Request::Status) {
        Response::Status(s) => s.watermark as usize,
        other => panic!("{other:?}"),
    };
    assert_eq!(watermark, 125, "the watermark is the last checkpoint's");
    let part2: Vec<String> = jobs[watermark..]
        .iter()
        .map(|req| render_response(&service.handle(req)))
        .collect();

    // Jobs 125..137 were decided twice (before the kill and after the
    // restore); both runs — and the uninterrupted reference — agree bit
    // for bit, and the union covers every job exactly once.
    assert_eq!(&part2[..], &reference[watermark..]);
    assert_eq!(&part1[watermark..], &part2[..137 - watermark]);
    match service.handle(&Request::Status) {
        Response::Status(s) => assert_eq!(s.watermark, 200),
        other => panic!("{other:?}"),
    }
}

#[test]
fn torn_newest_checkpoint_falls_back_to_the_previous_good_one() {
    let dir = fresh_dir("restart-torn");
    let jobs = stream();
    // Explicit checkpoints only, so exactly two files exist.
    let mut cfg = cfg_with_dir(&dir);
    cfg.checkpoint_every = 1_000_000;
    let (first_seq, watermark_at_first) = {
        let service = Service::start(cfg.clone()).unwrap();
        for req in &jobs[..40] {
            service.handle(req);
        }
        let seq = match service.handle(&Request::Checkpoint) {
            Response::Checkpointed { seq } => seq,
            other => panic!("{other:?}"),
        };
        let watermark = match service.handle(&Request::Status) {
            Response::Status(s) => s.watermark,
            other => panic!("{other:?}"),
        };
        for req in &jobs[40..80] {
            service.handle(req);
        }
        match service.handle(&Request::Checkpoint) {
            Response::Checkpointed { seq: s2 } => assert!(s2 > seq),
            other => panic!("{other:?}"),
        }
        (seq, watermark)
    };

    // Tear the newest checkpoint mid-file, as a crash mid-write would.
    let newest = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
        .max()
        .unwrap();
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

    let service = Service::start(cfg).unwrap();
    assert_eq!(service.restored_seq(), Some(first_seq));
    assert_eq!(service.skipped_checkpoints(), &[newest]);
    match service.handle(&Request::Status) {
        Response::Status(s) => assert_eq!(s.watermark, watermark_at_first),
        other => panic!("{other:?}"),
    }
    // The restored service keeps serving from that point.
    for req in &jobs[watermark_at_first as usize..] {
        assert!(
            !matches!(service.handle(req), Response::Error { .. }),
            "restored service must keep serving"
        );
    }
}

#[test]
fn restore_refuses_a_mismatched_config_fingerprint() {
    let dir = fresh_dir("restart-mismatch");
    {
        let service = Service::start(cfg_with_dir(&dir)).unwrap();
        for req in &stream()[..30] {
            service.handle(req);
        }
        assert!(matches!(
            service.handle(&Request::Checkpoint),
            Response::Checkpointed { .. }
        ));
    }
    let mut other_algo = cfg_with_dir(&dir);
    other_algo.algo = "best-fit".into();
    assert!(Service::start(other_algo).is_err());
    let mut other_shards = cfg_with_dir(&dir);
    other_shards.shards = 3;
    assert!(Service::start(other_shards).is_err());
    let mut other_cap = cfg_with_dir(&dir);
    other_cap.fleet_cap = None;
    assert!(Service::start(other_cap).is_err());
    // The matching config still restores.
    assert!(Service::start(cfg_with_dir(&dir))
        .unwrap()
        .restored_seq()
        .is_some());
}

fn cfg_with_wal(dir: &Path) -> ServeConfig {
    let mut cfg = ServeConfig::new(2, "first-fit");
    cfg.fleet_cap = Some(6);
    cfg.checkpoint_dir = Some(dir.join("ckpt"));
    cfg.checkpoint_every = 25;
    cfg.wal_dir = Some(dir.join("wal"));
    cfg.fsync = dbp_serve::FsyncPolicy::Never; // the tests kill in-process
    cfg
}

#[test]
fn wal_replay_recovers_every_decision_past_the_checkpoint() {
    let jobs = stream();
    let full_dir = fresh_dir("restart-wal-full");
    let reference: Vec<String> = {
        let service = Service::start(cfg_with_wal(&full_dir)).unwrap();
        jobs.iter()
            .map(|req| render_response(&service.handle(req)))
            .collect()
    };

    // Die at 137 decisions: the newest checkpoint holds 125, the WAL
    // holds the other 12.
    let kill_dir = fresh_dir("restart-wal-kill");
    {
        let service = Service::start(cfg_with_wal(&kill_dir)).unwrap();
        let part1: Vec<String> = jobs[..137]
            .iter()
            .map(|req| render_response(&service.handle(req)))
            .collect();
        assert_eq!(&part1[..], &reference[..137]);
    }

    let service = Service::start(cfg_with_wal(&kill_dir)).unwrap();
    assert_eq!(service.restored_seq(), Some(5), "checkpoint restore first");
    let rec = service.recovery().expect("recovery stats with a WAL");
    assert_eq!(rec.replayed_frames, 12, "125 checkpointed + 12 replayed");
    assert_eq!(rec.truncated_files, 0);
    let watermark = match service.handle(&Request::Status) {
        Response::Status(s) => {
            assert_eq!(s.decision_seq, 137, "every decision survived");
            s.watermark as usize
        }
        other => panic!("{other:?}"),
    };
    assert_eq!(watermark, 137, "nothing to resubmit below 137");

    // Resuming from the watermark reproduces the reference exactly...
    let part2: Vec<String> = jobs[watermark..]
        .iter()
        .map(|req| render_response(&service.handle(req)))
        .collect();
    assert_eq!(&part2[..], &reference[watermark..]);
    // ...and replayed jobs are duplicate-rejected, not re-decided.
    let replayed = match &jobs[136] {
        Request::Submit(s) => s.clone(),
        other => panic!("{other:?}"),
    };
    match service.handle(&Request::Submit(replayed)) {
        Response::Rejected { reason, .. } => {
            assert_eq!(reason, dbp_serve::RejectReason::DuplicateJob)
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn wal_tolerates_a_torn_tail_but_refuses_a_rewritten_outcome() {
    let jobs = stream();
    let dir = fresh_dir("restart-wal-torn");
    // No auto-checkpoints: every decision lives in the WAL alone.
    let mut cfg = cfg_with_wal(&dir);
    cfg.checkpoint_every = 1_000_000;
    {
        let service = Service::start(cfg.clone()).unwrap();
        for req in &jobs[..60] {
            assert!(!matches!(service.handle(req), Response::Error { .. }));
        }
    }
    // Tear a few bytes off the fattest segment, as a mid-append crash
    // would: recovery truncates the tail and keeps serving.
    let seg = std::fs::read_dir(dir.join("wal"))
        .unwrap()
        .filter_map(|e| e.ok())
        .max_by_key(|e| e.metadata().unwrap().len())
        .unwrap()
        .path();
    let len = std::fs::metadata(&seg).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);
    let watermark = {
        let service = Service::start(cfg.clone()).unwrap();
        let rec = service.recovery().unwrap();
        assert!(rec.truncated_files >= 1, "the torn tail must be detected");
        match service.handle(&Request::Status) {
            Response::Status(s) => {
                assert!(s.watermark < 60, "the torn decision is forgotten");
                s.watermark
            }
            other => panic!("{other:?}"),
        }
    };

    // Now rewrite a surviving frame's outcome byte and fix its CRC: the
    // log is internally consistent but lies about what was acknowledged.
    // Recovery must refuse to boot rather than serve diverged state.
    let mut bytes = std::fs::read(&seg).unwrap();
    let mut at = dbp_serve::wal::WAL_HEADER_LEN as usize;
    let mut last = None;
    while at + 8 <= bytes.len() {
        let plen = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        if at + 8 + plen > bytes.len() {
            break;
        }
        last = Some((at, plen));
        at += 8 + plen;
    }
    let (at, plen) = last.expect("frames survive the truncation");
    let outcome_off = at + 8 + 42;
    bytes[outcome_off] = 1 - bytes[outcome_off]; // Placed <-> Shed
    let crc = dbp_serve::wal::crc32(&bytes[at + 8..at + 8 + plen]);
    bytes[at + 4..at + 8].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(&seg, &bytes).unwrap();
    let err = match Service::start(cfg) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("a rewritten outcome must refuse to boot"),
    };
    assert!(err.contains("diverged"), "got: {err}");
    let _ = watermark;
}

#[test]
fn checkpoints_prune_replayed_wal_segments() {
    let dir = fresh_dir("restart-wal-prune");
    let jobs = stream();
    let cfg = cfg_with_wal(&dir);
    {
        let service = Service::start(cfg.clone()).unwrap();
        for req in &jobs {
            service.handle(req);
        }
        // 8 auto-checkpoints happened; rotation + pruning must have
        // dropped segments fully covered by the kept checkpoints.
        let segments = std::fs::read_dir(dir.join("wal")).unwrap().count();
        assert!(
            segments <= 3 * 2 + 1,
            "pruning must bound the segment count, found {segments}"
        );
    }
    // And the pruned log still recovers to the full watermark.
    let service = Service::start(cfg).unwrap();
    match service.handle(&Request::Status) {
        Response::Status(s) => assert_eq!(s.watermark, 200),
        other => panic!("{other:?}"),
    }
}

#[test]
fn boot_without_checkpoints_is_fresh_and_checkpoint_requests_fail_typed() {
    let service = Service::start(ServeConfig::new(1, "first-fit")).unwrap();
    assert_eq!(service.restored_seq(), None);
    // No checkpoint dir configured: an explicit checkpoint request is a
    // protocol-level error, not a panic.
    assert!(matches!(
        service.handle(&Request::Checkpoint),
        Response::Error { .. }
    ));
}
