//! The crash-point torture harness, run in-tree: a strided sweep plus
//! every corruption drill. CI's torture-smoke job runs the full
//! stride-1 sweep (`dbp serve-torture --self-test`); this test keeps
//! the same machinery honest on every `cargo test` at a lower stride.

use dbp_serve::torture::{run, TortureConfig};

#[test]
fn strided_crash_sweep_and_drills_pass() {
    let mut cfg = TortureConfig::quick("test-strided");
    cfg.stride = 7;
    let report = run(&cfg).unwrap();
    assert!(
        report.io_ops_total > 50,
        "the sweep must cover a real crash-point space, got {}",
        report.io_ops_total
    );
    assert!(report.crash_points >= 8);
    assert_eq!(report.drills, 5);
    assert!(
        report.passed(),
        "torture violations:\n{}",
        report.violations.join("\n")
    );
}
