//! End-to-end over a real socket: line protocol, the HTTP metrics
//! shim, malformed-input handling, and graceful shutdown.

use dbp_serve::protocol::{parse_response, render_request, Request, Response, Submit};
use dbp_serve::{server, ServeConfig, Service};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

fn submit_line(job: u32, arrival: i64) -> String {
    render_request(&Request::Submit(Submit {
        tenant: "t".into(),
        job,
        size: Some(0.5),
        size_raw: None,
        arrival,
        departure: arrival + 10,
    }))
}

#[test]
fn tcp_round_trip_metrics_scrape_and_graceful_shutdown() {
    let service = Arc::new(Service::start(ServeConfig::new(2, "first-fit")).unwrap());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server_thread = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || server::run(service, listener, 2))
    };

    // Line protocol: two placements, a blank line (ignored), a
    // malformed line (typed protocol error), then status.
    {
        let conn = TcpStream::connect(addr).unwrap();
        let mut writer = conn.try_clone().unwrap();
        let mut reader = BufReader::new(conn);
        let mut line = String::new();
        let mut exchange = |req: &str| {
            writer.write_all(format!("{req}\n").as_bytes()).unwrap();
            writer.flush().unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        };
        let resp = parse_response(&exchange(&submit_line(0, 0))).unwrap();
        assert!(matches!(resp, Response::Placed { .. }), "{resp:?}");
        // A blank line is skipped, so the next real request still gets
        // exactly one response.
        let resp = parse_response(&exchange(&format!("\n{}", submit_line(1, 1)))).unwrap();
        assert!(matches!(resp, Response::Placed { .. }), "{resp:?}");
        let resp = parse_response(&exchange("this is not json")).unwrap();
        assert!(matches!(resp, Response::Error { .. }), "{resp:?}");
        match parse_response(&exchange("{\"op\":\"status\"}")).unwrap() {
            Response::Status(s) => {
                assert_eq!(s.placed, 2);
                assert_eq!(s.watermark, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    // HTTP shim: a plain GET scrapes the Prometheus exposition.
    {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n")
            .unwrap();
        let mut body = String::new();
        conn.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 200 OK\r\n"), "{body}");
        assert!(body.contains("dbp_serve_jobs_total{tenant=\"t\",outcome=\"placed\"} 2"));
        assert!(body.contains("# TYPE dbp_serve_place_ns histogram"));
    }
    {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
        let mut body = String::new();
        conn.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 404"), "{body}");
    }

    // Graceful shutdown: ack, then the accept loop drains and joins.
    {
        let conn = TcpStream::connect(addr).unwrap();
        let mut writer = conn.try_clone().unwrap();
        let mut reader = BufReader::new(conn);
        writer.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(matches!(
            parse_response(line.trim_end()).unwrap(),
            Response::ShuttingDown
        ));
    }
    server_thread.join().unwrap().unwrap();
    assert!(service.is_shutting_down());
}

#[test]
fn oversized_request_lines_get_a_typed_error_not_unbounded_memory() {
    let service = Arc::new(Service::start(ServeConfig::new(1, "first-fit")).unwrap());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server_thread = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || server::run(service, listener, 1))
    };

    // A line past the cap — sent without its terminator, the way an
    // attacker (or a runaway client) would grow the server's buffer.
    {
        let conn = TcpStream::connect(addr).unwrap();
        let mut writer = conn.try_clone().unwrap();
        let mut reader = BufReader::new(conn);
        let huge = vec![b'x'; server::MAX_LINE + 1024];
        writer.write_all(&huge).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        match parse_response(line.trim_end()).unwrap() {
            Response::Error { what } => {
                assert!(what.contains("exceeds"), "got: {what}")
            }
            other => panic!("{other:?}"),
        }
        // The server hung up after the reject.
        let mut rest = String::new();
        assert_eq!(reader.read_to_string(&mut rest).unwrap(), 0);
    }

    // A non-UTF-8 line is also a typed error, then close.
    {
        let conn = TcpStream::connect(addr).unwrap();
        let mut writer = conn.try_clone().unwrap();
        let mut reader = BufReader::new(conn);
        writer.write_all(&[0xff, 0xfe, b'{', b'\n']).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        match parse_response(line.trim_end()).unwrap() {
            Response::Error { what } => assert!(what.contains("UTF-8"), "got: {what}"),
            other => panic!("{other:?}"),
        }
    }

    // The service survived both abuses and still serves new clients.
    {
        let conn = TcpStream::connect(addr).unwrap();
        let mut writer = conn.try_clone().unwrap();
        let mut reader = BufReader::new(conn);
        writer
            .write_all(format!("{}\n", submit_line(0, 0)).as_bytes())
            .unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = parse_response(line.trim_end()).unwrap();
        assert!(matches!(resp, Response::Placed { .. }), "{resp:?}");
        writer.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
    }
    server_thread.join().unwrap().unwrap();
}
