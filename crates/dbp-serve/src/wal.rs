//! The write-ahead decision log: checksummed frames, segment files,
//! torn-tail-tolerant recovery.
//!
//! Every admission decision the service makes — placed, shed, or a
//! typed reject — is appended to a per-stream segment file *before* the
//! response is externalized, as one length-prefixed frame:
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload]
//! ```
//!
//! The payload carries the global decision sequence number, the full
//! submission (tenant, job id, exact size bits, arrival, departure) and
//! the decision outcome, so replaying a frame against the restored
//! pre-state must reproduce the logged outcome bit for bit — recovery
//! verifies that and refuses to boot on a divergence rather than serve
//! a state that disagrees with what clients were told.
//!
//! **Streams.** Engine-routed decisions log to stream *s* (the routed
//! shard); submissions rejected before routing (duplicate, out-of-order,
//! invalid) log to the coordinator stream (index = shard count). Frames
//! are merged by sequence number at recovery, so the per-stream split is
//! purely an IO-parallelism/rotation concern.
//!
//! **Segments.** Each stream appends to a segment file named
//! `wal-<stream>-<first_seq>.wal` whose name records the first sequence
//! number written to it. Rotation (triggered by every durable
//! checkpoint) closes the current segments; the next append opens a
//! fresh one. Because a segment's name equals its first frame's
//! sequence and frames only ever disappear from the *end* (tail
//! truncation), `successor.first_seq <= floor + 1` proves every frame
//! in the predecessor is `<= floor` — which makes pruning old segments
//! a pure file-name computation, no content reads.
//!
//! **Recovery.** [`recover_wal`] scans every segment, stops each file at
//! the first torn or checksum-failing frame, merges the survivors by
//! sequence, keeps only the contiguous run starting at
//! `checkpoint floor + 1` (an unsynced OS cache can persist appends out
//! of order across files, so a gap means everything after it is
//! unreliable), and *physically truncates* every file back to its last
//! kept frame so the next writer's appends keep in-file sequences
//! monotonic. Corruption is detected and cut, never consumed.

use dbp_core::DbpError;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::protocol::RejectReason;
use dbp_resilience::failpoint;

/// Magic bytes opening every segment file.
pub const WAL_MAGIC: &[u8; 8] = b"DBPWAL1\n";
/// Segment header length: magic + stream + first_seq + ckpt_seq.
pub const WAL_HEADER_LEN: u64 = 8 + 4 + 8 + 8;
/// Upper bound on a frame payload; anything larger is torn garbage.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

fn bad(what: impl Into<String>) -> DbpError {
    DbpError::Trace {
        line: 0,
        what: what.into(),
    }
}

/// CRC-32 (IEEE 802.3, reflected, poly `0xEDB88320`) over `bytes` —
/// the frame checksum. Table-driven, built at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// When appended frames are flushed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every appended frame; an acknowledged decision
    /// survives `kill -9` and power loss.
    Always,
    /// Sync all dirty segments at most every this-many milliseconds; a
    /// crash can lose at most the last window of acknowledged decisions
    /// (clients resubmit them from the watermark).
    Interval(u64),
    /// Never sync explicitly; durability is whatever the OS page cache
    /// got around to. Fastest, weakest.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, `interval` (default 20 ms) or
    /// `interval:<ms>`.
    pub fn parse(s: &str) -> Result<FsyncPolicy, DbpError> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "interval" => Ok(FsyncPolicy::Interval(20)),
            other => match other.strip_prefix("interval:") {
                Some(ms) => match ms.parse::<u64>() {
                    Ok(ms) if ms >= 1 => Ok(FsyncPolicy::Interval(ms)),
                    _ => Err(DbpError::InvalidParameter {
                        what: format!("fsync interval must be an integer >= 1 ms, got {ms:?}"),
                    }),
                },
                None => Err(DbpError::InvalidParameter {
                    what: format!(
                        "unknown fsync policy {other:?} (always | interval[:ms] | never)"
                    ),
                }),
            },
        }
    }

    /// The canonical spelling `parse` accepts back.
    pub fn name(self) -> String {
        match self {
            FsyncPolicy::Always => "always".into(),
            FsyncPolicy::Interval(ms) => format!("interval:{ms}"),
            FsyncPolicy::Never => "never".into(),
        }
    }
}

/// The decision a frame records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameOutcome {
    /// Admitted and placed into `bin` on `shard`.
    Placed {
        /// Owning shard.
        shard: u32,
        /// Bin id within the shard.
        bin: u32,
    },
    /// Shed by admission control after routing to `shard`.
    Shed {
        /// The shard that refused to open a server.
        shard: u32,
    },
    /// Rejected before reaching an engine.
    Rejected(RejectReason),
}

fn reason_code(r: RejectReason) -> u8 {
    match r {
        RejectReason::FleetCapacity => 0,
        RejectReason::DuplicateJob => 1,
        RejectReason::ArrivalOutOfOrder => 2,
        RejectReason::InvalidJob => 3,
    }
}

fn reason_from_code(c: u8) -> Option<RejectReason> {
    Some(match c {
        0 => RejectReason::FleetCapacity,
        1 => RejectReason::DuplicateJob,
        2 => RejectReason::ArrivalOutOfOrder,
        3 => RejectReason::InvalidJob,
        _ => return None,
    })
}

/// One logged decision: the submission that caused it plus the outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionFrame {
    /// Global decision sequence number (1-based, dense).
    pub seq: u64,
    /// The stream (routed shard, or shard-count for coordinator rejects)
    /// this frame was appended to.
    pub stream: u32,
    /// Tenant label, echoed from the submission.
    pub tenant: String,
    /// Job id.
    pub job: u32,
    /// True when `size_bits` is the exact fixed-point raw size; false
    /// when it is an `f64`'s bit pattern (the client sent a float).
    pub size_is_raw: bool,
    /// Size payload, interpreted per `size_is_raw`.
    pub size_bits: u64,
    /// Arrival tick.
    pub arrival: i64,
    /// Departure-estimate tick.
    pub departure: i64,
    /// The decision.
    pub outcome: FrameOutcome,
}

impl DecisionFrame {
    /// Reconstructs the submission this frame recorded, for replay.
    pub fn to_submit(&self) -> crate::protocol::Submit {
        crate::protocol::Submit {
            tenant: self.tenant.clone(),
            job: self.job,
            size: if self.size_is_raw {
                None
            } else {
                Some(f64::from_bits(self.size_bits))
            },
            size_raw: if self.size_is_raw {
                Some(self.size_bits)
            } else {
                None
            },
            arrival: self.arrival,
            departure: self.departure,
        }
    }
}

/// Frame payload version tag.
const FRAME_VERSION: u8 = 1;

/// Encodes a frame payload (without the length/CRC prefix).
pub fn encode_payload(f: &DecisionFrame) -> Vec<u8> {
    let mut p = Vec::with_capacity(64 + f.tenant.len());
    p.push(FRAME_VERSION);
    p.extend_from_slice(&f.seq.to_le_bytes());
    p.extend_from_slice(&f.stream.to_le_bytes());
    p.extend_from_slice(&f.job.to_le_bytes());
    p.push(u8::from(f.size_is_raw));
    p.extend_from_slice(&f.size_bits.to_le_bytes());
    p.extend_from_slice(&f.arrival.to_le_bytes());
    p.extend_from_slice(&f.departure.to_le_bytes());
    match f.outcome {
        FrameOutcome::Placed { shard, bin } => {
            p.push(0);
            p.extend_from_slice(&shard.to_le_bytes());
            p.extend_from_slice(&bin.to_le_bytes());
        }
        FrameOutcome::Shed { shard } => {
            p.push(1);
            p.extend_from_slice(&shard.to_le_bytes());
            p.extend_from_slice(&0u32.to_le_bytes());
        }
        FrameOutcome::Rejected(r) => {
            p.push(2);
            p.extend_from_slice(&u32::from(reason_code(r)).to_le_bytes());
            p.extend_from_slice(&0u32.to_le_bytes());
        }
    }
    let tenant = f.tenant.as_bytes();
    p.extend_from_slice(&(tenant.len() as u32).to_le_bytes());
    p.extend_from_slice(tenant);
    p
}

/// Encodes a full frame: `[len][crc][payload]`.
pub fn encode_frame(f: &DecisionFrame) -> Vec<u8> {
    let payload = encode_payload(f);
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

struct Cursor<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DbpError> {
        if self.at + n > self.b.len() {
            return Err(bad("frame payload shorter than its fields"));
        }
        let s = &self.b[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DbpError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DbpError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DbpError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, DbpError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Decodes a frame payload whose CRC already verified. Errors here mean
/// a version/layout problem (or a 2^-32 CRC collision) — recovery
/// refuses to boot on them rather than guess.
pub fn decode_payload(payload: &[u8]) -> Result<DecisionFrame, DbpError> {
    let mut c = Cursor { b: payload, at: 0 };
    let version = c.u8()?;
    if version != FRAME_VERSION {
        return Err(bad(format!(
            "unsupported WAL frame version {version} (this build reads {FRAME_VERSION})"
        )));
    }
    let seq = c.u64()?;
    let stream = c.u32()?;
    let job = c.u32()?;
    let size_is_raw = match c.u8()? {
        0 => false,
        1 => true,
        other => return Err(bad(format!("bad size-kind byte {other}"))),
    };
    let size_bits = c.u64()?;
    let arrival = c.i64()?;
    let departure = c.i64()?;
    let kind = c.u8()?;
    let a = c.u32()?;
    let b = c.u32()?;
    let outcome = match kind {
        0 => FrameOutcome::Placed { shard: a, bin: b },
        1 => FrameOutcome::Shed { shard: a },
        2 => FrameOutcome::Rejected(
            u8::try_from(a)
                .ok()
                .and_then(reason_from_code)
                .ok_or_else(|| bad(format!("bad reject-reason code {a}")))?,
        ),
        other => return Err(bad(format!("bad outcome kind {other}"))),
    };
    let tenant_len = c.u32()? as usize;
    let tenant = String::from_utf8(c.take(tenant_len)?.to_vec())
        .map_err(|_| bad("frame tenant is not UTF-8"))?;
    if c.at != payload.len() {
        return Err(bad("trailing bytes after frame payload"));
    }
    Ok(DecisionFrame {
        seq,
        stream,
        tenant,
        job,
        size_is_raw,
        size_bits,
        arrival,
        departure,
        outcome,
    })
}

/// The canonical segment file name for `stream` starting at `first_seq`.
pub fn segment_file_name(stream: u32, first_seq: u64) -> String {
    format!("wal-{stream:03}-{first_seq:020}.wal")
}

/// Parses a segment file name back to `(stream, first_seq)`.
pub fn parse_segment_name(name: &str) -> Option<(u32, u64)> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".wal")?;
    let (stream, first) = rest.split_once('-')?;
    Some((stream.parse().ok()?, first.parse().ok()?))
}

fn encode_header(stream: u32, first_seq: u64, ckpt_seq: u64) -> [u8; WAL_HEADER_LEN as usize] {
    let mut h = [0u8; WAL_HEADER_LEN as usize];
    h[..8].copy_from_slice(WAL_MAGIC);
    h[8..12].copy_from_slice(&stream.to_le_bytes());
    h[12..20].copy_from_slice(&first_seq.to_le_bytes());
    h[20..28].copy_from_slice(&ckpt_seq.to_le_bytes());
    h
}

struct StreamState {
    /// Open segment: the file handle plus its path (prune skips it).
    current: Option<(File, PathBuf)>,
    /// Checkpoint sequence stamped into the next segment's header.
    pending_ckpt: u64,
    /// Unsynced appends exist.
    dirty: bool,
}

/// The append side of the WAL: one lazily created segment per stream.
pub struct WalWriter {
    dir: PathBuf,
    policy: FsyncPolicy,
    streams: Vec<StreamState>,
    last_sync: Instant,
    frames: u64,
    bytes: u64,
}

impl WalWriter {
    /// Opens a writer over `dir` with `n_streams` streams. Existing
    /// segments are left untouched (recovery already truncated them);
    /// every stream starts a fresh segment on its first append, stamped
    /// with `ckpt_anchor`.
    pub fn open(
        dir: &Path,
        n_streams: usize,
        ckpt_anchor: u64,
        policy: FsyncPolicy,
    ) -> std::io::Result<WalWriter> {
        failpoint::io_op("wal_mkdir")?;
        std::fs::create_dir_all(dir)?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            policy,
            streams: (0..n_streams)
                .map(|_| StreamState {
                    current: None,
                    pending_ckpt: ckpt_anchor,
                    dirty: false,
                })
                .collect(),
            last_sync: Instant::now(),
            frames: 0,
            bytes: 0,
        })
    }

    /// Frames appended through this writer.
    pub fn frames_appended(&self) -> u64 {
        self.frames
    }

    /// Bytes appended through this writer (headers included).
    pub fn bytes_appended(&self) -> u64 {
        self.bytes
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Appends one frame to its stream, honouring the fsync policy.
    /// On success under [`FsyncPolicy::Always`] the frame is on stable
    /// storage when this returns.
    pub fn append(&mut self, frame: &DecisionFrame) -> std::io::Result<()> {
        let idx = frame.stream as usize;
        let n_streams = self.streams.len();
        let st = self.streams.get_mut(idx).ok_or_else(|| {
            std::io::Error::other(format!(
                "frame stream {} out of range (writer has {n_streams} streams)",
                frame.stream
            ))
        })?;
        if st.current.is_none() {
            let path = self.dir.join(segment_file_name(frame.stream, frame.seq));
            failpoint::io_op("wal_open")?;
            let file = OpenOptions::new().create(true).append(true).open(&path)?;
            // A crash can leave a header-only segment whose first seq is
            // exactly the seq being retried now; appending continues it,
            // so only write the header into an empty file.
            if file.metadata()?.len() == 0 {
                failpoint::io_op("wal_header")?;
                let header = encode_header(frame.stream, frame.seq, st.pending_ckpt);
                (&file).write_all(&header)?;
                self.bytes += header.len() as u64;
            }
            st.current = Some((file, path));
        }
        let buf = encode_frame(frame);
        failpoint::io_op("wal_append")?;
        let (file, _) = st.current.as_mut().expect("segment opened above");
        file.write_all(&buf)?;
        st.dirty = true;
        self.frames += 1;
        self.bytes += buf.len() as u64;
        match self.policy {
            FsyncPolicy::Always => {
                failpoint::io_op("wal_fsync")?;
                let (file, _) = self.streams[idx].current.as_mut().expect("open");
                file.sync_data()?;
                self.streams[idx].dirty = false;
            }
            FsyncPolicy::Interval(ms) => {
                if self.last_sync.elapsed().as_millis() >= u128::from(ms) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Syncs every dirty segment now.
    pub fn sync(&mut self) -> std::io::Result<()> {
        for st in &mut self.streams {
            if st.dirty {
                if let Some((file, _)) = st.current.as_mut() {
                    failpoint::io_op("wal_fsync")?;
                    file.sync_data()?;
                }
                st.dirty = false;
            }
        }
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Rotates after checkpoint `ckpt_seq` became durable: syncs and
    /// closes every open segment; the next append per stream starts a
    /// fresh one.
    pub fn rotate(&mut self, ckpt_seq: u64) -> std::io::Result<()> {
        for st in &mut self.streams {
            if let Some((file, _)) = st.current.as_mut() {
                if st.dirty {
                    failpoint::io_op("wal_rotate_sync")?;
                    file.sync_data()?;
                }
            }
            st.current = None;
            st.dirty = false;
            st.pending_ckpt = ckpt_seq;
        }
        Ok(())
    }

    /// Deletes segments fully covered by the oldest kept checkpoint:
    /// a segment whose *successor* (same stream, by first-seq order)
    /// starts at or below `floor + 1` holds only frames `<= floor`.
    /// Currently open segments are never deleted.
    pub fn prune(&mut self, floor: u64) -> std::io::Result<()> {
        let segments = list_segments(&self.dir)?;
        for (stream_idx, st) in self.streams.iter().enumerate() {
            let mine: Vec<&(u32, u64, PathBuf)> = segments
                .iter()
                .filter(|(s, _, _)| *s as usize == stream_idx)
                .collect();
            for pair in mine.windows(2) {
                let (_, _, path) = pair[0];
                let (_, succ_first, _) = pair[1];
                let open_here = st
                    .current
                    .as_ref()
                    .is_some_and(|(_, open_path)| open_path == path);
                if *succ_first <= floor.saturating_add(1) && !open_here {
                    failpoint::io_op("wal_prune")?;
                    std::fs::remove_file(path)?;
                }
            }
        }
        Ok(())
    }
}

/// Segment files in `dir`, sorted by `(stream, first_seq)`.
fn list_segments(dir: &Path) -> std::io::Result<Vec<(u32, u64, PathBuf)>> {
    let mut found = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if let Some((stream, first)) = entry.file_name().to_str().and_then(parse_segment_name) {
            found.push((stream, first, entry.path()));
        }
    }
    found.sort();
    Ok(found)
}

/// One scanned segment: its intact frames and where the intact prefix
/// ends.
struct SegmentScan {
    path: PathBuf,
    /// Byte length of the file as read.
    len: u64,
    /// End of the intact prefix: header + all frames that verified.
    valid_len: u64,
    /// Why the scan stopped early, if it did.
    torn: Option<String>,
    /// Intact frames, with each frame's start offset.
    frames: Vec<(u64, DecisionFrame)>,
}

/// Scans one segment file. Torn tails and checksum failures end the
/// scan (they become truncation work), but a CRC-valid frame that
/// violates the format's invariants — wrong stream, non-monotonic
/// sequence, undecodable payload — is a typed error: that is not a
/// crashed write, it is a log that cannot be trusted.
fn scan_segment(path: &Path) -> Result<SegmentScan, DbpError> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or_default();
    let (stream, first_seq) =
        parse_segment_name(name).ok_or_else(|| bad(format!("not a segment name: {name:?}")))?;
    let bytes =
        std::fs::read(path).map_err(|e| bad(format!("cannot read {}: {e}", path.display())))?;
    let len = bytes.len() as u64;
    let mut scan = SegmentScan {
        path: path.to_path_buf(),
        len,
        valid_len: 0,
        torn: None,
        frames: Vec::new(),
    };
    let hdr = WAL_HEADER_LEN as usize;
    if bytes.len() < hdr
        || &bytes[..8] != WAL_MAGIC
        || bytes[8..12] != stream.to_le_bytes()
        || bytes[12..20] != first_seq.to_le_bytes()
    {
        if !bytes.is_empty() {
            scan.torn = Some("segment header torn or corrupt".into());
        }
        return Ok(scan);
    }
    let mut at = hdr;
    let mut last_seq: Option<u64> = None;
    scan.valid_len = at as u64;
    loop {
        if at == bytes.len() {
            break;
        }
        if at + 8 > bytes.len() {
            scan.torn = Some(format!("torn frame header at offset {at}"));
            break;
        }
        let plen = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        if plen > MAX_FRAME_LEN {
            scan.torn = Some(format!("frame length {plen} at offset {at} exceeds cap"));
            break;
        }
        let end = at + 8 + plen as usize;
        if end > bytes.len() {
            scan.torn = Some(format!("torn frame payload at offset {at}"));
            break;
        }
        let payload = &bytes[at + 8..end];
        if crc32(payload) != crc {
            scan.torn = Some(format!("frame checksum mismatch at offset {at}"));
            break;
        }
        let frame = decode_payload(payload)
            .map_err(|e| bad(format!("{}: offset {at}: {e}", path.display())))?;
        if frame.stream != stream {
            return Err(bad(format!(
                "{}: frame at offset {at} claims stream {} in a stream-{stream} segment",
                path.display(),
                frame.stream
            )));
        }
        if frame.seq < first_seq || last_seq.is_some_and(|l| frame.seq <= l) {
            return Err(bad(format!(
                "{}: frame sequence {} at offset {at} breaks in-file monotonicity",
                path.display(),
                frame.seq
            )));
        }
        last_seq = Some(frame.seq);
        scan.frames.push((at as u64, frame));
        at = end;
        scan.valid_len = at as u64;
    }
    Ok(scan)
}

/// What [`recover_wal`] found and did.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// Replayable frames: the contiguous run `floor+1, floor+2, ...`,
    /// in sequence order.
    pub frames: Vec<DecisionFrame>,
    /// Total segment bytes scanned.
    pub bytes_scanned: u64,
    /// Files cut back, as `(path, new_len, reason)`.
    pub truncated: Vec<(PathBuf, u64, String)>,
    /// CRC-valid frames dropped because a sequence gap preceded them.
    pub dropped_after_gap: u64,
}

/// Scans every segment under `dir`, verifies and merges frames, and
/// returns the replayable contiguous run after `floor` (the restored
/// checkpoint's decision sequence). Torn tails, checksum failures, and
/// post-gap frames are physically truncated away so the next writer's
/// appends keep every in-file sequence monotonic.
pub fn recover_wal(dir: &Path, n_streams: usize, floor: u64) -> Result<WalRecovery, DbpError> {
    let mut out = WalRecovery::default();
    let segments = list_segments(dir).map_err(|e| bad(format!("cannot list WAL dir: {e}")))?;
    let mut scans = Vec::with_capacity(segments.len());
    for (stream, _, path) in &segments {
        if *stream as usize >= n_streams {
            return Err(bad(format!(
                "segment {} belongs to stream {stream}, but the service runs {n_streams} \
                 streams — refusing a WAL written by a different topology",
                path.display()
            )));
        }
        let scan = scan_segment(path)?;
        out.bytes_scanned += scan.len;
        scans.push(scan);
    }
    // Merge all intact frames by global sequence; duplicates mean two
    // files both claim a decision, which no crash can produce.
    let mut all: Vec<(u64, usize, usize)> = Vec::new();
    for (si, scan) in scans.iter().enumerate() {
        for (fi, (_, frame)) in scan.frames.iter().enumerate() {
            all.push((frame.seq, si, fi));
        }
    }
    all.sort_unstable();
    for pair in all.windows(2) {
        if pair[0].0 == pair[1].0 {
            let (seq, si, _) = pair[1];
            return Err(bad(format!(
                "duplicate WAL sequence {seq} (second copy in {})",
                scans[si].path.display()
            )));
        }
    }
    // Keep the contiguous run starting right after the checkpoint
    // floor; anything past the first gap may have been persisted out of
    // order relative to lost frames, so it cannot be trusted.
    let mut last_kept = floor;
    for &(seq, si, fi) in all.iter().skip_while(|&&(seq, _, _)| seq <= floor) {
        if seq != last_kept + 1 {
            break;
        }
        last_kept = seq;
        out.frames.push(scans[si].frames[fi].1.clone());
    }
    let kept = out.frames.len();
    let total_past_floor = all.iter().filter(|&&(seq, _, _)| seq > floor).count();
    out.dropped_after_gap = (total_past_floor - kept) as u64;
    // Physically cut every file back to its last kept frame: torn
    // tails, corrupt bytes, and post-gap frames all disappear so future
    // appends cannot interleave with stale sequences.
    for scan in &scans {
        let keep_until = scan
            .frames
            .iter()
            .find(|(_, f)| f.seq > last_kept)
            .map(|(off, _)| *off)
            .unwrap_or(scan.valid_len);
        let cut = keep_until.min(scan.valid_len);
        if cut < scan.len {
            let reason = match &scan.torn {
                Some(t) if cut == scan.valid_len => t.clone(),
                _ => format!("dropping frames past sequence {last_kept}"),
            };
            failpoint::io_op("wal_truncate").map_err(|e| bad(e.to_string()))?;
            let file = OpenOptions::new()
                .write(true)
                .open(&scan.path)
                .map_err(|e| {
                    bad(format!(
                        "cannot open {} to truncate: {e}",
                        scan.path.display()
                    ))
                })?;
            file.set_len(cut)
                .map_err(|e| bad(format!("cannot truncate {}: {e}", scan.path.display())))?;
            file.sync_all()
                .map_err(|e| bad(format!("cannot sync {}: {e}", scan.path.display())))?;
            out.truncated.push((scan.path.clone(), cut, reason));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(seq: u64, stream: u32, job: u32) -> DecisionFrame {
        DecisionFrame {
            seq,
            stream,
            tenant: format!("t-{}", job % 3),
            job,
            size_is_raw: true,
            size_bits: 1 << 22,
            arrival: i64::from(job),
            departure: i64::from(job) + 7,
            outcome: FrameOutcome::Placed {
                shard: stream,
                bin: job % 5,
            },
        }
    }

    fn fresh_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dbp-wal-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fsync_policy_parses_and_round_trips() {
        for s in ["always", "never", "interval:5"] {
            assert_eq!(FsyncPolicy::parse(s).unwrap().name(), s);
        }
        assert_eq!(
            FsyncPolicy::parse("interval").unwrap(),
            FsyncPolicy::Interval(20)
        );
        assert!(FsyncPolicy::parse("interval:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn frame_round_trips_through_the_codec() {
        for outcome in [
            FrameOutcome::Placed { shard: 1, bin: 9 },
            FrameOutcome::Shed { shard: 0 },
            FrameOutcome::Rejected(RejectReason::DuplicateJob),
            FrameOutcome::Rejected(RejectReason::InvalidJob),
        ] {
            let mut f = frame(42, 1, 7);
            f.outcome = outcome;
            f.size_is_raw = false;
            f.size_bits = f64::to_bits(0.375);
            let enc = encode_frame(&f);
            let plen = u32::from_le_bytes(enc[..4].try_into().unwrap()) as usize;
            assert_eq!(plen + 8, enc.len());
            let dec = decode_payload(&enc[8..]).unwrap();
            assert_eq!(dec, f);
        }
    }

    #[test]
    fn write_recover_round_trip_and_floor() {
        let dir = fresh_dir("roundtrip");
        let mut w = WalWriter::open(&dir, 3, 0, FsyncPolicy::Always).unwrap();
        for seq in 1..=20u64 {
            w.append(&frame(seq, (seq % 3) as u32, seq as u32)).unwrap();
        }
        drop(w);
        let rec = recover_wal(&dir, 3, 0).unwrap();
        assert_eq!(rec.frames.len(), 20);
        assert_eq!(rec.frames[0].seq, 1);
        assert_eq!(rec.frames[19].seq, 20);
        assert!(rec.truncated.is_empty());
        // A floor skips the covered prefix.
        let rec = recover_wal(&dir, 3, 12).unwrap();
        assert_eq!(rec.frames.first().map(|f| f.seq), Some(13));
        assert_eq!(rec.frames.len(), 8);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = fresh_dir("torn");
        let mut w = WalWriter::open(&dir, 1, 0, FsyncPolicy::Never).unwrap();
        for seq in 1..=10u64 {
            w.append(&frame(seq, 0, seq as u32)).unwrap();
        }
        drop(w);
        let seg = list_segments(&dir).unwrap().remove(0).2;
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let rec = recover_wal(&dir, 1, 0).unwrap();
        assert_eq!(rec.frames.len(), 9, "the torn 10th frame is cut");
        assert_eq!(rec.truncated.len(), 1);
        // Recovery is idempotent: the truncated file now scans clean.
        let rec2 = recover_wal(&dir, 1, 0).unwrap();
        assert_eq!(rec2.frames.len(), 9);
        assert!(rec2.truncated.is_empty());
    }

    #[test]
    fn bit_flip_is_detected_and_cut() {
        let dir = fresh_dir("flip");
        let mut w = WalWriter::open(&dir, 1, 0, FsyncPolicy::Never).unwrap();
        for seq in 1..=10u64 {
            w.append(&frame(seq, 0, seq as u32)).unwrap();
        }
        drop(w);
        let seg = list_segments(&dir).unwrap().remove(0).2;
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&seg, &bytes).unwrap();
        let rec = recover_wal(&dir, 1, 0).unwrap();
        assert!(rec.frames.len() < 10, "frames at/after the flip are gone");
        assert_eq!(rec.truncated.len(), 1);
        for (i, f) in rec.frames.iter().enumerate() {
            assert_eq!(f.seq, i as u64 + 1, "surviving prefix is contiguous");
        }
    }

    #[test]
    fn seq_gap_drops_and_truncates_the_far_side() {
        let dir = fresh_dir("gap");
        // Stream 0 gets seqs 1..=4 and 8..=9; stream 1 gets 5 only —
        // pretend 6 and 7 were lost in an unsynced cache.
        let mut w = WalWriter::open(&dir, 2, 0, FsyncPolicy::Never).unwrap();
        for seq in 1..=4u64 {
            w.append(&frame(seq, 0, seq as u32)).unwrap();
        }
        w.append(&frame(5, 1, 5)).unwrap();
        for seq in 8..=9u64 {
            w.append(&frame(seq, 0, seq as u32)).unwrap();
        }
        drop(w);
        let rec = recover_wal(&dir, 2, 0).unwrap();
        assert_eq!(rec.frames.len(), 5, "1..=5 replay; 8..9 are post-gap");
        assert_eq!(rec.dropped_after_gap, 2);
        assert_eq!(rec.truncated.len(), 1, "stream 0's file is cut at seq 8");
        // After truncation a re-scan finds exactly the replayable run.
        let rec2 = recover_wal(&dir, 2, 0).unwrap();
        assert_eq!(rec2.frames.len(), 5);
        assert_eq!(rec2.dropped_after_gap, 0);
        assert!(rec2.truncated.is_empty());
    }

    #[test]
    fn rotation_and_prune_keep_exactly_the_needed_segments() {
        let dir = fresh_dir("prune");
        let mut w = WalWriter::open(&dir, 1, 0, FsyncPolicy::Never).unwrap();
        for seq in 1..=5u64 {
            w.append(&frame(seq, 0, seq as u32)).unwrap();
        }
        w.rotate(1).unwrap();
        for seq in 6..=10u64 {
            w.append(&frame(seq, 0, seq as u32)).unwrap();
        }
        w.rotate(2).unwrap();
        for seq in 11..=12u64 {
            w.append(&frame(seq, 0, seq as u32)).unwrap();
        }
        assert_eq!(list_segments(&dir).unwrap().len(), 3);
        // Oldest kept checkpoint covers decisions <= 5: the first
        // segment (1..=5) is prunable, the second (6..=10) is not.
        w.prune(5).unwrap();
        let left = list_segments(&dir).unwrap();
        assert_eq!(left.len(), 2);
        assert_eq!(left[0].1, 6);
        let rec = recover_wal(&dir, 1, 5).unwrap();
        assert_eq!(rec.frames.len(), 7, "6..=12 still replay");
    }

    #[test]
    fn wrong_topology_is_refused() {
        let dir = fresh_dir("topology");
        let mut w = WalWriter::open(&dir, 3, 0, FsyncPolicy::Never).unwrap();
        w.append(&frame(1, 2, 1)).unwrap();
        drop(w);
        let err = recover_wal(&dir, 2, 0).unwrap_err();
        assert!(err.to_string().contains("different topology"));
    }

    #[test]
    fn crc_valid_outcome_mutation_still_decodes_for_replay_to_catch() {
        // A frame whose payload was maliciously rewritten with a fixed
        // CRC decodes fine — the *replay* comparison is what catches it.
        // Here we only prove the codec is not the line of defence.
        let f = frame(3, 0, 3);
        let mut payload = encode_payload(&f);
        let off = 1 + 8 + 4 + 4 + 1 + 8 + 8 + 8; // outcome kind byte
        payload[off] = 1; // Placed -> Shed
        let dec = decode_payload(&payload).unwrap();
        assert_eq!(dec.outcome, FrameOutcome::Shed { shard: 0 });
        assert_ne!(dec.outcome, f.outcome);
    }
}
