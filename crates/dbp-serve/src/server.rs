//! The TCP front end: line-delimited JSON plus a tiny HTTP shim.
//!
//! [`run`] drives an accept loop over a caller-provided
//! [`TcpListener`] and a fixed pool of connection workers — plain
//! `std::net` blocking I/O, no async runtime, matching the workspace's
//! hermetic no-external-deps rule. Each connection speaks the
//! [`crate::protocol`] line protocol; as a convenience, a connection
//! whose first line starts with `GET ` or `HEAD ` is served as a
//! one-shot HTTP exchange so `curl`/Prometheus can scrape
//! `/metrics` without a custom client.
//!
//! Shutdown: when any connection receives the `shutdown` ack, it pokes
//! the listener with a throwaway connection so the accept loop (blocked
//! in `accept`) observes the flag, stops accepting, and joins the
//! workers. In-flight connections finish their current request first.

use crate::protocol::{parse_request, render_response, Request, Response};
use crate::service::Service;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long a connection worker waits on a quiet socket before checking
/// the shutdown flag again.
const READ_POLL: Duration = Duration::from_millis(200);

/// Longest request line a connection may send. A line protocol with an
/// unbounded `read_line` lets one client grow a `String` until the
/// allocator gives out; past this cap the connection gets a typed
/// error and is closed.
pub const MAX_LINE: usize = 64 * 1024;

/// Most header bytes the HTTP shim will drain before answering; beyond
/// this the request is answered from the request line alone (the shim
/// never reads header values anyway) and the connection closes.
const MAX_HTTP_HEADER: usize = 256 * 1024;

/// Serves `service` on `listener` with `conn_workers` connection
/// threads, returning once a `shutdown` request has been acknowledged
/// and all workers have drained.
pub fn run(
    service: Arc<Service>,
    listener: TcpListener,
    conn_workers: usize,
) -> std::io::Result<()> {
    let workers = conn_workers.max(1);
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut handles = Vec::with_capacity(workers);
    for w in 0..workers {
        let rx = Arc::clone(&rx);
        let service = Arc::clone(&service);
        handles.push(
            std::thread::Builder::new()
                .name(format!("dbp-serve-conn-{w}"))
                .spawn(move || loop {
                    let conn = match rx.lock().unwrap().recv() {
                        Ok(c) => c,
                        Err(_) => return,
                    };
                    if let Err(e) = handle_conn(&service, conn) {
                        // Client went away mid-exchange; their loss.
                        if e.kind() != ErrorKind::BrokenPipe {
                            eprintln!("dbp-serve: connection error: {e}");
                        }
                    }
                })?,
        );
    }
    loop {
        match listener.accept() {
            Ok((conn, _)) => {
                if service.is_shutting_down() {
                    break;
                }
                // Workers exited ⇒ send fails ⇒ nothing left to do.
                if tx.send(conn).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => {
                if service.is_shutting_down() {
                    break;
                }
                return Err(e);
            }
        }
    }
    drop(tx);
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

/// What one capped line read produced.
enum LineRead {
    /// The peer closed the socket (possibly mid-line; nothing more will
    /// complete it).
    Eof,
    /// `buf` holds a whole line, terminator included.
    Complete,
    /// The line outgrew the cap before its terminator arrived.
    Overflow,
}

/// Reads one `\n`-terminated line into `buf`, never holding more than
/// `max` bytes. Unlike `read_line`, a single call cannot allocate
/// unboundedly: bytes are taken from the `BufReader`'s fixed internal
/// buffer chunk by chunk, and the accumulated line is checked against
/// the cap per chunk. A timeout surfaces as `WouldBlock`/`TimedOut`
/// with the partial line left in `buf`, so slow writers still work.
fn read_capped_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineRead> {
    loop {
        let (taken, complete) = {
            let available = reader.fill_buf()?;
            if available.is_empty() {
                return Ok(LineRead::Eof);
            }
            let (chunk, complete) = match available.iter().position(|&b| b == b'\n') {
                Some(i) => (&available[..=i], true),
                None => (available, false),
            };
            if buf.len() + chunk.len() > max {
                let n = chunk.len();
                reader.consume(n);
                return Ok(LineRead::Overflow);
            }
            buf.extend_from_slice(chunk);
            (chunk.len(), complete)
        };
        reader.consume(taken);
        if complete {
            return Ok(LineRead::Complete);
        }
    }
}

/// Writes one protocol response line.
fn write_response(writer: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    writer.write_all(render_response(resp).as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Serves one connection until EOF or shutdown.
fn handle_conn(service: &Arc<Service>, conn: TcpStream) -> std::io::Result<()> {
    conn.set_read_timeout(Some(READ_POLL))?;
    // One response line per request line: never let Nagle hold an ack
    // hostage to the next request.
    conn.set_nodelay(true)?;
    let mut writer = conn.try_clone()?;
    let mut reader = BufReader::new(conn);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        // A timeout mid-line leaves the partial line in `buf`; the next
        // read appends the rest, so lines survive slow writers.
        match read_capped_line(&mut reader, &mut buf, MAX_LINE) {
            Ok(LineRead::Eof) => return Ok(()),
            Ok(LineRead::Overflow) => {
                // A typed reject, then hang up: the rest of the
                // oversized line is undelimited garbage.
                write_response(
                    &mut writer,
                    &Response::Error {
                        what: format!("request line exceeds {MAX_LINE} bytes"),
                    },
                )?;
                return Ok(());
            }
            Ok(LineRead::Complete) => {
                let bytes = std::mem::take(&mut buf);
                let Ok(line) = std::str::from_utf8(&bytes) else {
                    write_response(
                        &mut writer,
                        &Response::Error {
                            what: "request line is not valid UTF-8".into(),
                        },
                    )?;
                    return Ok(());
                };
                let line = line.trim_end();
                if line.is_empty() {
                    continue;
                }
                if line.starts_with("GET ") || line.starts_with("HEAD ") {
                    return serve_http(service, &mut reader, &mut writer, line);
                }
                let resp = match parse_request(line) {
                    Ok(req) => service.handle(&req),
                    Err(what) => Response::Error { what },
                };
                write_response(&mut writer, &resp)?;
                if matches!(resp, Response::ShuttingDown) {
                    poke_acceptor(&writer);
                    return Ok(());
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if service.is_shutting_down() {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// One-shot HTTP: `GET /metrics` returns the Prometheus exposition.
fn serve_http(
    service: &Arc<Service>,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request_line: &str,
) -> std::io::Result<()> {
    // Drain the header block; we only key off the request line, so the
    // drain is bounded — past the cap we just answer and close.
    let mut line: Vec<u8> = Vec::new();
    let mut drained = 0usize;
    while drained < MAX_HTTP_HEADER {
        line.clear();
        match read_capped_line(reader, &mut line, MAX_LINE) {
            Ok(LineRead::Eof) => break,
            Ok(LineRead::Overflow) => {
                drained += MAX_LINE;
                continue;
            }
            Ok(LineRead::Complete) => {
                if line.iter().all(|b| b.is_ascii_whitespace()) {
                    break;
                }
                drained += line.len();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                break;
            }
            Err(e) => return Err(e),
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/");
    let (status, body) = if path == "/metrics" || path.starts_with("/metrics?") {
        match service.handle(&Request::Metrics) {
            Response::Metrics { text } => ("200 OK", text),
            other => ("500 Internal Server Error", render_response(&other)),
        }
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    if method != "HEAD" {
        writer.write_all(body.as_bytes())?;
    }
    writer.flush()
}

/// Unblocks the accept loop after shutdown by dialing the listener.
fn poke_acceptor(conn: &TcpStream) {
    if let Ok(local) = conn.local_addr() {
        let _ = TcpStream::connect_timeout(&local, Duration::from_millis(500));
    }
}
