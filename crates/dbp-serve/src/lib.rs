//! `dbp-serve` — a long-running multi-tenant scheduling service.
//!
//! The crate turns the repo's streaming MinUsageTime machinery into a
//! network-facing service: tenants submit jobs with clairvoyant
//! departure estimates over line-delimited JSON, and get back placement
//! decisions (or typed rejects) computed by the bench roster's online
//! packers behind a sharded engine pool.
//!
//! The layering keeps every policy decision out of the transport:
//!
//! - [`protocol`] — the wire format, transport-agnostic (pure
//!   line ⇄ value mapping; an async front-end could reuse it as-is).
//! - [`service`] — shard engines, admission control (global fleet cap
//!   with typed `fleet_capacity` rejects), exactly-once job ids via a
//!   dense watermark, and periodic checkpointing.
//! - [`state`] — the checkpoint codec: one manifest line plus one
//!   `dbp-resilience` session snapshot per shard, written durably
//!   (temp file + fsync + rename + directory fsync), restored
//!   newest-good-first so torn files fall back instead of failing the
//!   boot.
//! - [`wal`] — the write-ahead decision log: CRC-checked frames,
//!   per-stream segments rotated at checkpoints, torn-tail-tolerant
//!   recovery. With a WAL, restart = newest good checkpoint + replay,
//!   and acknowledged decisions survive `kill -9`.
//! - [`torture`] — the deterministic crash-point harness: injects an
//!   IO failure (or a real `abort`) at every WAL/checkpoint IO
//!   boundary in turn and proves recovery from each prefix.
//! - [`bench`] — fsync-policy throughput/latency cells for
//!   `BENCH_serve.json`, re-runnable under `dbp bench --check`.
//! - [`metrics`] — the Prometheus exposition (per-tenant counters,
//!   open-bin gauges, placement latency histogram).
//! - [`server`] — the blocking TCP front end and its tiny HTTP shim
//!   for `GET /metrics`.
//!
//! Determinism is the contract throughout: restarting from a checkpoint
//! and replaying the same submissions yields bit-identical responses,
//! which the kill-and-resume differential test (and the CI smoke job's
//! `kill -9` drill) verify end to end.

#![warn(missing_docs)]

pub mod bench;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod service;
pub mod state;
pub mod torture;
pub mod wal;

pub use protocol::{parse_request, render_response, RejectReason, Request, Response};
pub use service::{RecoveryStats, ServeConfig, Service};
pub use state::{latest_good_checkpoint, ServeCheckpoint};
pub use wal::FsyncPolicy;
