//! Prometheus exposition for the serving layer.
//!
//! Rendered on demand for `GET /metrics` (and the in-band `metrics`
//! request). Per-tenant job outcomes share one `dbp_serve_jobs_total`
//! counter family with `tenant` and `outcome` labels; fleet totals,
//! per-shard open-bin gauges, the checkpoint cursor, and the placement
//! latency histogram ride along. Histogram buckets come from
//! [`dbp_telemetry::prom::render_histogram`], so the serving layer's
//! latency series has the exact same bucket layout as the bench
//! harness's — dashboards can overlay them directly.

use crate::state::TenantCounters;
use dbp_obs::json::escape;
use dbp_telemetry::prom::{render_counter, render_histogram};
use dbp_telemetry::Histogram;
use std::fmt::Write as _;

/// Renders the full exposition text.
#[allow(clippy::too_many_arguments)]
pub fn render_metrics(
    algo: &str,
    tenants: &[TenantCounters],
    placed: u64,
    shed: u64,
    rejected: u64,
    open_bins: &[usize],
    checkpoint_seq: u64,
    place_ns: &Histogram,
) -> String {
    let mut out = String::with_capacity(1024);
    let algo_label = format!("{{algo=\"{}\"}}", escape(algo));

    let _ = writeln!(
        out,
        "# HELP dbp_serve_jobs_total Job submissions by tenant and outcome"
    );
    let _ = writeln!(out, "# TYPE dbp_serve_jobs_total counter");
    for t in tenants {
        let tenant = escape(&t.tenant);
        for (outcome, value) in [
            ("submitted", t.submitted),
            ("placed", t.placed),
            ("shed", t.shed),
            ("rejected", t.rejected),
        ] {
            let _ = writeln!(
                out,
                "dbp_serve_jobs_total{{tenant=\"{tenant}\",outcome=\"{outcome}\"}} {value}"
            );
        }
    }

    for (name, help, value) in [
        ("dbp_serve_placed_total", "Jobs placed", placed),
        ("dbp_serve_shed_total", "Jobs shed by the fleet cap", shed),
        (
            "dbp_serve_rejected_total",
            "Jobs rejected (duplicate / out-of-order / invalid)",
            rejected,
        ),
        (
            "dbp_serve_checkpoint_seq",
            "Sequence number of the newest checkpoint written",
            checkpoint_seq,
        ),
    ] {
        render_counter(&mut out, name, help, &algo_label, value);
    }

    let _ = writeln!(
        out,
        "# HELP dbp_serve_open_bins Open bins per shard, as of its last placement"
    );
    let _ = writeln!(out, "# TYPE dbp_serve_open_bins gauge");
    for (shard, n) in open_bins.iter().enumerate() {
        let _ = writeln!(out, "dbp_serve_open_bins{{shard=\"{shard}\"}} {n}");
    }

    render_histogram(
        &mut out,
        "dbp_serve_place_ns",
        "Wall-clock nanoseconds per placement decision",
        &[("algo", algo)],
        place_ns,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_covers_tenants_totals_and_latency() {
        let tenants = vec![
            TenantCounters {
                tenant: "a".into(),
                submitted: 3,
                placed: 2,
                shed: 1,
                rejected: 0,
            },
            TenantCounters {
                tenant: "b".into(),
                submitted: 1,
                placed: 1,
                shed: 0,
                rejected: 0,
            },
        ];
        let mut h = Histogram::new();
        h.record(1_000);
        h.record(2_000);
        let text = render_metrics("first-fit", &tenants, 3, 1, 0, &[2, 1], 4, &h);
        assert!(text.contains("# TYPE dbp_serve_jobs_total counter"));
        assert!(text.contains("dbp_serve_jobs_total{tenant=\"a\",outcome=\"placed\"} 2"));
        assert!(text.contains("dbp_serve_jobs_total{tenant=\"b\",outcome=\"submitted\"} 1"));
        assert!(text.contains("dbp_serve_placed_total{algo=\"first-fit\"} 3"));
        assert!(text.contains("dbp_serve_open_bins{shard=\"0\"} 2"));
        assert!(text.contains("dbp_serve_open_bins{shard=\"1\"} 1"));
        assert!(text.contains("dbp_serve_checkpoint_seq{algo=\"first-fit\"} 4"));
        assert!(text.contains("dbp_serve_place_ns_count{algo=\"first-fit\"} 2"));
        assert!(text.contains("le=\"+Inf\""));
        // Exactly one TYPE header per metric family.
        let headers = text
            .lines()
            .filter(|l| l.starts_with("# TYPE dbp_serve_jobs_total"))
            .count();
        assert_eq!(headers, 1);
    }
}
