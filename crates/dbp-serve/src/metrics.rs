//! Prometheus exposition for the serving layer.
//!
//! Rendered on demand for `GET /metrics` (and the in-band `metrics`
//! request). Per-tenant job outcomes share one `dbp_serve_jobs_total`
//! counter family with `tenant` and `outcome` labels; fleet totals,
//! per-shard open-bin gauges, the checkpoint and decision cursors, the
//! placement and WAL-append latency histograms, and the boot-recovery
//! scalars ride along. Histogram buckets come from
//! [`dbp_telemetry::prom::render_histogram`], so the serving layer's
//! latency series has the exact same bucket layout as the bench
//! harness's — dashboards can overlay them directly.

use crate::service::RecoveryStats;
use crate::state::TenantCounters;
use dbp_obs::json::escape;
use dbp_telemetry::prom::{render_counter, render_histogram};
use dbp_telemetry::Histogram;
use std::fmt::Write as _;

/// The write-ahead-log slice of the exposition.
pub struct WalView<'a> {
    /// Frames appended since boot.
    pub frames: u64,
    /// Bytes appended since boot (segment headers included).
    pub bytes: u64,
    /// Append latency (encode + write + policy sync).
    pub append_ns: &'a Histogram,
}

/// Everything [`render_metrics`] reads, borrowed from the coordinator.
pub struct MetricsView<'a> {
    /// Packer roster name.
    pub algo: &'a str,
    /// Per-tenant counters.
    pub tenants: &'a [TenantCounters],
    /// Jobs placed.
    pub placed: u64,
    /// Jobs shed by the fleet cap.
    pub shed: u64,
    /// Jobs rejected.
    pub rejected: u64,
    /// Open bins per shard.
    pub open_bins: &'a [usize],
    /// Newest checkpoint sequence.
    pub checkpoint_seq: u64,
    /// Global decision sequence.
    pub decision_seq: u64,
    /// Placement latency.
    pub place_ns: &'a Histogram,
    /// WAL counters, when a WAL is configured.
    pub wal: Option<WalView<'a>>,
    /// Boot recovery stats, when a WAL is configured.
    pub recovery: Option<&'a RecoveryStats>,
}

/// Renders the full exposition text.
pub fn render_metrics(v: &MetricsView<'_>) -> String {
    let mut out = String::with_capacity(1024);
    let algo_label = format!("{{algo=\"{}\"}}", escape(v.algo));

    let _ = writeln!(
        out,
        "# HELP dbp_serve_jobs_total Job submissions by tenant and outcome"
    );
    let _ = writeln!(out, "# TYPE dbp_serve_jobs_total counter");
    for t in v.tenants {
        let tenant = escape(&t.tenant);
        for (outcome, value) in [
            ("submitted", t.submitted),
            ("placed", t.placed),
            ("shed", t.shed),
            ("rejected", t.rejected),
        ] {
            let _ = writeln!(
                out,
                "dbp_serve_jobs_total{{tenant=\"{tenant}\",outcome=\"{outcome}\"}} {value}"
            );
        }
    }

    for (name, help, value) in [
        ("dbp_serve_placed_total", "Jobs placed", v.placed),
        ("dbp_serve_shed_total", "Jobs shed by the fleet cap", v.shed),
        (
            "dbp_serve_rejected_total",
            "Jobs rejected (duplicate / out-of-order / invalid)",
            v.rejected,
        ),
        (
            "dbp_serve_checkpoint_seq",
            "Sequence number of the newest checkpoint written",
            v.checkpoint_seq,
        ),
        (
            "dbp_serve_decision_seq",
            "Global decision sequence (placed + shed + rejected)",
            v.decision_seq,
        ),
    ] {
        render_counter(&mut out, name, help, &algo_label, value);
    }

    let _ = writeln!(
        out,
        "# HELP dbp_serve_open_bins Open bins per shard, as of its last placement"
    );
    let _ = writeln!(out, "# TYPE dbp_serve_open_bins gauge");
    for (shard, n) in v.open_bins.iter().enumerate() {
        let _ = writeln!(out, "dbp_serve_open_bins{{shard=\"{shard}\"}} {n}");
    }

    render_histogram(
        &mut out,
        "dbp_serve_place_ns",
        "Wall-clock nanoseconds per placement decision",
        &[("algo", v.algo)],
        v.place_ns,
    );

    if let Some(wal) = &v.wal {
        for (name, help, value) in [
            (
                "dbp_serve_wal_frames_total",
                "WAL frames appended since boot",
                wal.frames,
            ),
            (
                "dbp_serve_wal_bytes_total",
                "WAL bytes appended since boot",
                wal.bytes,
            ),
        ] {
            render_counter(&mut out, name, help, &algo_label, value);
        }
        render_histogram(
            &mut out,
            "dbp_serve_wal_append_ns",
            "Wall-clock nanoseconds per WAL append (write + policy sync)",
            &[("algo", v.algo)],
            wal.append_ns,
        );
    }

    if let Some(rec) = v.recovery {
        for (name, help, value) in [
            (
                "dbp_serve_recovery_duration_ns",
                "Boot recovery wall-clock (checkpoint restore + WAL replay)",
                rec.duration_ns,
            ),
            (
                "dbp_serve_recovery_replayed_frames",
                "WAL frames replayed at boot",
                rec.replayed_frames,
            ),
            (
                "dbp_serve_recovery_wal_bytes",
                "WAL bytes scanned at boot",
                rec.wal_bytes,
            ),
            (
                "dbp_serve_recovery_truncated_files",
                "WAL segments cut back at boot (torn tails, corruption, post-gap frames)",
                rec.truncated_files,
            ),
            (
                "dbp_serve_recovery_dropped_frames",
                "Intact WAL frames dropped at boot because a sequence gap preceded them",
                rec.dropped_after_gap,
            ),
        ] {
            render_counter(&mut out, name, help, &algo_label, value);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_covers_tenants_totals_and_latency() {
        let tenants = vec![
            TenantCounters {
                tenant: "a".into(),
                submitted: 3,
                placed: 2,
                shed: 1,
                rejected: 0,
            },
            TenantCounters {
                tenant: "b".into(),
                submitted: 1,
                placed: 1,
                shed: 0,
                rejected: 0,
            },
        ];
        let mut h = Histogram::new();
        h.record(1_000);
        h.record(2_000);
        let text = render_metrics(&MetricsView {
            algo: "first-fit",
            tenants: &tenants,
            placed: 3,
            shed: 1,
            rejected: 0,
            open_bins: &[2, 1],
            checkpoint_seq: 4,
            decision_seq: 4,
            place_ns: &h,
            wal: None,
            recovery: None,
        });
        assert!(text.contains("# TYPE dbp_serve_jobs_total counter"));
        assert!(text.contains("dbp_serve_jobs_total{tenant=\"a\",outcome=\"placed\"} 2"));
        assert!(text.contains("dbp_serve_jobs_total{tenant=\"b\",outcome=\"submitted\"} 1"));
        assert!(text.contains("dbp_serve_placed_total{algo=\"first-fit\"} 3"));
        assert!(text.contains("dbp_serve_open_bins{shard=\"0\"} 2"));
        assert!(text.contains("dbp_serve_open_bins{shard=\"1\"} 1"));
        assert!(text.contains("dbp_serve_checkpoint_seq{algo=\"first-fit\"} 4"));
        assert!(text.contains("dbp_serve_decision_seq{algo=\"first-fit\"} 4"));
        assert!(text.contains("dbp_serve_place_ns_count{algo=\"first-fit\"} 2"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(
            !text.contains("dbp_serve_wal_"),
            "no WAL series without a WAL"
        );
        // Exactly one TYPE header per metric family.
        let headers = text
            .lines()
            .filter(|l| l.starts_with("# TYPE dbp_serve_jobs_total"))
            .count();
        assert_eq!(headers, 1);
    }

    #[test]
    fn wal_and_recovery_series_render_when_present() {
        let mut append = Histogram::new();
        append.record(500);
        let rec = RecoveryStats {
            duration_ns: 1_234,
            replayed_frames: 17,
            wal_bytes: 2_048,
            truncated_files: 1,
            dropped_after_gap: 2,
        };
        let text = render_metrics(&MetricsView {
            algo: "first-fit",
            tenants: &[],
            placed: 17,
            shed: 0,
            rejected: 0,
            open_bins: &[1],
            checkpoint_seq: 1,
            decision_seq: 17,
            place_ns: &Histogram::new(),
            wal: Some(WalView {
                frames: 17,
                bytes: 2_048,
                append_ns: &append,
            }),
            recovery: Some(&rec),
        });
        assert!(text.contains("dbp_serve_wal_frames_total{algo=\"first-fit\"} 17"));
        assert!(text.contains("dbp_serve_wal_bytes_total{algo=\"first-fit\"} 2048"));
        assert!(text.contains("dbp_serve_wal_append_ns_count{algo=\"first-fit\"} 1"));
        assert!(text.contains("dbp_serve_recovery_replayed_frames{algo=\"first-fit\"} 17"));
        assert!(text.contains("dbp_serve_recovery_duration_ns{algo=\"first-fit\"} 1234"));
        assert!(text.contains("dbp_serve_recovery_truncated_files{algo=\"first-fit\"} 1"));
        assert!(text.contains("dbp_serve_recovery_dropped_frames{algo=\"first-fit\"} 2"));
    }
}
