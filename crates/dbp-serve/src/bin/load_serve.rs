//! `load_serve` — seeded load generator and differential checker for
//! the `dbp-serve` service.
//!
//! Run mode drives a service over TCP with a deterministic job stream
//! (Poisson background + bursty spikes from `dbp-workloads`, all
//! derived from `--seed`), pipelining up to `--window` outstanding
//! requests, and records every placement decision as one JSON line.
//! `--resume` reads the service's id watermark from `status` and
//! replays the same stream from there — the kill-and-restore drill in
//! CI is exactly `run; kill -9; restart; run --resume; diff`.
//!
//! Diff mode (`--diff ref part1 [part2 ...]`) overlays the parts of an
//! interrupted run and checks them against an uninterrupted reference:
//! overlapping decisions must be bit-identical, every job must be
//! decided exactly once, and the union must match the reference — the
//! service's determinism contract, enforced end to end.
//!
//! Exit codes follow the repo convention: 0 ok, 2 usage, 3 I/O,
//! 4 runtime/protocol, 5 differential mismatch.

use dbp_core::Time;
use dbp_obs::json::{parse, Json};
use dbp_serve::protocol::{
    parse_response, render_request, RejectReason, Request, Response, Submit,
};
use dbp_telemetry::Histogram;
use dbp_workloads::random::PoissonWorkload;
use dbp_workloads::scenarios::SpikeWorkload;
use dbp_workloads::Workload;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Instant;

const USAGE: &str = "\
load_serve — seeded load generator / differential checker for dbp-serve

USAGE:
  load_serve --addr HOST:PORT [OPTIONS]
  load_serve --diff REF PART [PART ...] --jobs N

OPTIONS (run mode):
  --addr HOST:PORT     service address (required)
  --jobs N             total jobs in the seeded stream   [default: 1000]
  --seed S             stream seed                       [default: 42]
  --tenants T          tenant labels to spread over      [default: 4]
  --rate R             Poisson arrivals per tick         [default: 2.0]
  --window W           max outstanding requests          [default: 64]
  --stop-after M       stop after submitting job id M-1 (simulates a
                       client that dies mid-stream)
  --resume             start from the service's id watermark instead
                       of job 0 (same seed ⇒ same stream)
  --out FILE           write one JSON line per decision
  --bench-out FILE     write throughput/latency summary JSON
  --status-out FILE    write the service's final status response JSON
                       (watermark + totals, for CI accounting checks)
  --checkpoint         request a checkpoint after the last job
  --shutdown           request service shutdown after the last job

DIFF MODE:
  --diff REF PART...   overlay PARTs (later parts may replay decisions
                       already present — they must match bit for bit),
                       then require the overlay to cover jobs 0..N
                       exactly and equal REF

EXIT CODES:
  0 ok   2 usage   3 I/O   4 runtime/protocol   5 differential mismatch
";

enum Fail {
    Usage(String),
    Io(String),
    Runtime(String),
    Mismatch(String),
}

impl Fail {
    fn report(&self) -> ExitCode {
        let (tag, what, code) = match self {
            Fail::Usage(w) => ("usage", w, 2),
            Fail::Io(w) => ("i/o", w, 3),
            Fail::Runtime(w) => ("runtime", w, 4),
            Fail::Mismatch(w) => ("mismatch", w, 5),
        };
        eprintln!("load_serve: {tag} error: {what}");
        if code == 2 {
            eprintln!("{USAGE}");
        }
        ExitCode::from(code)
    }
}

fn io_err(e: std::io::Error, what: &str) -> Fail {
    Fail::Io(format!("{what}: {e}"))
}

/// One generated job, already assigned its dense id and tenant.
struct Job {
    id: u32,
    tenant: String,
    size_raw: u64,
    arrival: Time,
    departure: Time,
}

/// The seeded stream: Poisson background merged with bursty spikes,
/// truncated to `jobs` and re-identified densely in arrival order. The
/// exact fixed-point sizes travel as `size_raw`, so an interrupted and
/// a resumed client submit byte-identical request lines.
fn generate_stream(jobs: usize, seed: u64, tenants: usize, rate: f64) -> Vec<Job> {
    let horizon = ((jobs as f64 / rate.max(0.001)).ceil() as Time).max(10);
    let background = PoissonWorkload::new(rate, horizon).generate_seeded(seed);
    let spikes =
        SpikeWorkload::new(3, (jobs / 10).max(1), (horizon / 4).max(4)).generate_seeded(seed ^ 1);
    let mut triples: Vec<(Time, u64, Time)> = background
        .items()
        .iter()
        .chain(spikes.items().iter())
        .map(|it| (it.arrival(), it.size().raw(), it.departure()))
        .collect();
    triples.sort_unstable();
    triples.truncate(jobs);
    triples
        .into_iter()
        .enumerate()
        .map(|(i, (arrival, size_raw, departure))| Job {
            id: i as u32,
            tenant: format!("tenant-{}", i % tenants.max(1)),
            size_raw,
            arrival,
            departure,
        })
        .collect()
}

/// One decision record, as written to `--out` and compared by diff
/// mode. `detail` strings are deliberately excluded — they are
/// human-facing and not part of the determinism contract.
#[derive(Clone, PartialEq, Eq, Debug)]
struct DecisionRecord {
    tenant: String,
    outcome: String,
    shard: u64,
    bin: u64,
    reason: String,
}

impl DecisionRecord {
    fn render(&self, job: u32) -> String {
        let mut out = format!(
            "{{\"job\":{job},\"tenant\":\"{}\",\"outcome\":\"{}\"",
            dbp_obs::json::escape(&self.tenant),
            self.outcome
        );
        if self.outcome == "placed" {
            out.push_str(&format!(",\"shard\":{},\"bin\":{}", self.shard, self.bin));
        }
        if !self.reason.is_empty() {
            out.push_str(&format!(",\"reason\":\"{}\"", self.reason));
        }
        out.push('}');
        out
    }

    fn from_response(resp: &Response) -> Result<(u32, DecisionRecord), String> {
        match resp {
            Response::Placed {
                tenant,
                job,
                shard,
                bin,
            } => Ok((
                *job,
                DecisionRecord {
                    tenant: tenant.clone(),
                    outcome: "placed".into(),
                    shard: *shard as u64,
                    bin: u64::from(*bin),
                    reason: String::new(),
                },
            )),
            Response::Rejected {
                tenant,
                job,
                reason,
                ..
            } => Ok((
                *job,
                DecisionRecord {
                    tenant: tenant.clone(),
                    outcome: if *reason == RejectReason::FleetCapacity {
                        "shed".into()
                    } else {
                        "rejected".into()
                    },
                    shard: 0,
                    bin: 0,
                    reason: reason.code().into(),
                },
            )),
            Response::Error { what } => Err(format!("service error: {what}")),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    fn from_line(line: &str) -> Result<(u32, DecisionRecord), String> {
        let doc = parse(line)?;
        let job = doc
            .get("job")
            .and_then(Json::as_u64)
            .and_then(|j| u32::try_from(j).ok())
            .ok_or("missing job id")?;
        let field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .unwrap_or_default()
        };
        let num = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
        Ok((
            job,
            DecisionRecord {
                tenant: field("tenant"),
                outcome: field("outcome"),
                shard: num("shard"),
                bin: num("bin"),
                reason: field("reason"),
            },
        ))
    }
}

struct RunOpts {
    addr: String,
    jobs: usize,
    seed: u64,
    tenants: usize,
    rate: f64,
    window: usize,
    stop_after: Option<usize>,
    resume: bool,
    out: Option<String>,
    bench_out: Option<String>,
    status_out: Option<String>,
    checkpoint: bool,
    shutdown: bool,
}

/// One request/response exchange on a fresh connection.
fn one_shot(addr: &str, req: &Request) -> Result<Response, Fail> {
    let stream = TcpStream::connect(addr).map_err(|e| io_err(e, "connect"))?;
    let mut writer = stream.try_clone().map_err(|e| io_err(e, "clone socket"))?;
    let mut reader = BufReader::new(stream);
    writer
        .write_all(format!("{}\n", render_request(req)).as_bytes())
        .map_err(|e| io_err(e, "send"))?;
    writer.flush().map_err(|e| io_err(e, "send"))?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| io_err(e, "recv"))?;
    parse_response(line.trim_end()).map_err(Fail::Runtime)
}

fn run(opts: &RunOpts) -> Result<(), Fail> {
    let stream = generate_stream(opts.jobs, opts.seed, opts.tenants, opts.rate);
    let start_from = if opts.resume {
        match one_shot(&opts.addr, &Request::Status)? {
            Response::Status(s) => s.watermark as usize,
            other => return Err(Fail::Runtime(format!("bad status response: {other:?}"))),
        }
    } else {
        0
    };
    let stop = opts.stop_after.unwrap_or(usize::MAX);
    let to_send: Vec<&Job> = stream
        .iter()
        .filter(|j| (j.id as usize) >= start_from && (j.id as usize) < stop)
        .collect();

    let conn = TcpStream::connect(&opts.addr).map_err(|e| io_err(e, "connect"))?;
    conn.set_nodelay(true).map_err(|e| io_err(e, "nodelay"))?;
    let mut writer = BufWriter::new(conn.try_clone().map_err(|e| io_err(e, "clone socket"))?);
    let reader = BufReader::new(conn);

    let mut out_file = match &opts.out {
        Some(path) => Some(BufWriter::new(
            std::fs::File::create(path).map_err(|e| io_err(e, path))?,
        )),
        None => None,
    };

    // The in-flight channel is both the pipelining window (bounded
    // capacity blocks the sender at `window` outstanding) and the
    // request→response pairing: the service answers one line per line,
    // in order, so the reader matches front to front.
    let (inflight_tx, inflight_rx) = mpsc::sync_channel::<(u32, Instant)>(opts.window.max(1));
    let reader_thread = std::thread::spawn(move || -> Result<ReaderStats, String> {
        let mut reader = reader;
        let mut stats = ReaderStats::default();
        let mut line = String::new();
        while let Ok((job, sent_at)) = inflight_rx.recv() {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("recv: {e}"))?;
            if n == 0 {
                return Err(format!("connection closed with job {job} outstanding"));
            }
            let resp = parse_response(line.trim_end())?;
            let (echoed, record) = DecisionRecord::from_response(&resp)?;
            if echoed != job {
                return Err(format!("response for job {echoed}, expected {job}"));
            }
            stats
                .latency_ns
                .record(u64::try_from(sent_at.elapsed().as_nanos()).unwrap_or(u64::MAX));
            match record.outcome.as_str() {
                "placed" => stats.placed += 1,
                "shed" => stats.shed += 1,
                _ => stats.rejected += 1,
            }
            stats.records.push((job, record));
        }
        Ok(stats)
    });

    let started = Instant::now();
    let mut send_err = None;
    for job in &to_send {
        let req = Request::Submit(Submit {
            tenant: job.tenant.clone(),
            job: job.id,
            size: None,
            size_raw: Some(job.size_raw),
            arrival: job.arrival,
            departure: job.departure,
        });
        if inflight_tx.send((job.id, Instant::now())).is_err() {
            break; // reader died; its error wins below
        }
        let line = format!("{}\n", render_request(&req));
        if let Err(e) = writer.write_all(line.as_bytes()).and_then(|()| {
            // Flush per line: the generator is open-loop, not batchy.
            writer.flush()
        }) {
            send_err = Some(io_err(e, "send"));
            break;
        }
    }
    drop(inflight_tx);
    let stats = match reader_thread.join() {
        Ok(Ok(stats)) => stats,
        Ok(Err(what)) => return Err(Fail::Runtime(what)),
        Err(_) => return Err(Fail::Runtime("reader thread panicked".into())),
    };
    if let Some(e) = send_err {
        return Err(e);
    }
    let elapsed = started.elapsed();

    if let Some(f) = out_file.as_mut() {
        for (job, record) in &stats.records {
            writeln!(f, "{}", record.render(*job)).map_err(|e| io_err(e, "decision log"))?;
        }
        f.flush().map_err(|e| io_err(e, "decision log"))?;
    }

    if let Some(path) = &opts.bench_out {
        let h = &stats.latency_ns;
        let us = |ns: u64| ns as f64 / 1_000.0;
        let elapsed_s = elapsed.as_secs_f64().max(1e-9);
        let body = format!(
            "{{\n  \"format\": \"dbp-serve/bench-v1\",\n  \"seed\": {},\n  \"jobs\": {},\n  \
             \"sent\": {},\n  \"tenants\": {},\n  \"window\": {},\n  \"elapsed_s\": {:.6},\n  \
             \"req_per_sec\": {:.1},\n  \"placed\": {},\n  \"shed\": {},\n  \"rejected\": {},\n  \
             \"latency_us\": {{\n    \"p50\": {:.1},\n    \"p90\": {:.1},\n    \"p99\": {:.1},\n    \
             \"max\": {:.1},\n    \"mean\": {:.1}\n  }}\n}}\n",
            opts.seed,
            opts.jobs,
            to_send.len(),
            opts.tenants,
            opts.window,
            elapsed_s,
            to_send.len() as f64 / elapsed_s,
            stats.placed,
            stats.shed,
            stats.rejected,
            us(h.quantile(0.50)),
            us(h.quantile(0.90)),
            us(h.quantile(0.99)),
            us(h.max()),
            h.mean() / 1_000.0,
        );
        std::fs::write(path, body).map_err(|e| io_err(e, path))?;
    }

    eprintln!(
        "load_serve: {} sent in {:.3}s ({:.0} req/s): {} placed, {} shed, {} rejected \
         (p50 {}µs, p99 {}µs)",
        to_send.len(),
        elapsed.as_secs_f64(),
        to_send.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        stats.placed,
        stats.shed,
        stats.rejected,
        stats.latency_ns.quantile(0.50) / 1_000,
        stats.latency_ns.quantile(0.99) / 1_000,
    );

    if let Some(path) = &opts.status_out {
        match one_shot(&opts.addr, &Request::Status)? {
            resp @ Response::Status(_) => {
                std::fs::write(
                    path,
                    format!("{}\n", dbp_serve::protocol::render_response(&resp)),
                )
                .map_err(|e| io_err(e, path))?;
            }
            other => return Err(Fail::Runtime(format!("bad status response: {other:?}"))),
        }
    }
    if opts.checkpoint {
        match one_shot(&opts.addr, &Request::Checkpoint)? {
            Response::Checkpointed { seq } => eprintln!("load_serve: checkpoint {seq} written"),
            other => return Err(Fail::Runtime(format!("checkpoint failed: {other:?}"))),
        }
    }
    if opts.shutdown {
        match one_shot(&opts.addr, &Request::Shutdown)? {
            Response::ShuttingDown => eprintln!("load_serve: service shutting down"),
            other => return Err(Fail::Runtime(format!("shutdown failed: {other:?}"))),
        }
    }
    Ok(())
}

#[derive(Default)]
struct ReaderStats {
    records: Vec<(u32, DecisionRecord)>,
    placed: u64,
    shed: u64,
    rejected: u64,
    latency_ns: Histogram,
}

fn read_decisions(path: &str) -> Result<Vec<(u32, DecisionRecord)>, Fail> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(e, path))?;
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = DecisionRecord::from_line(line)
            .map_err(|e| Fail::Runtime(format!("{path}:{}: {e}", ln + 1)))?;
        out.push(rec);
    }
    Ok(out)
}

/// Diff mode: overlay `parts` and compare against `reference`.
fn diff(reference: &str, parts: &[String], jobs: usize) -> Result<(), Fail> {
    let ref_map: BTreeMap<u32, DecisionRecord> = read_decisions(reference)?.into_iter().collect();
    let mut overlay: BTreeMap<u32, (DecisionRecord, String)> = BTreeMap::new();
    let mut replayed = 0usize;
    for part in parts {
        for (job, rec) in read_decisions(part)? {
            match overlay.get(&job) {
                // A later part may re-decide jobs the service forgot
                // between its last checkpoint and the kill — but only
                // with the exact same outcome.
                Some((prev, from)) if *prev != rec => {
                    return Err(Fail::Mismatch(format!(
                        "job {job}: {part} decided {rec:?} but {from} decided {prev:?}"
                    )));
                }
                Some(_) => replayed += 1,
                None => {
                    overlay.insert(job, (rec, part.clone()));
                }
            }
        }
    }
    for job in 0..jobs as u32 {
        let Some((rec, _)) = overlay.get(&job) else {
            return Err(Fail::Mismatch(format!(
                "job {job}: lost (no part decided it)"
            )));
        };
        match ref_map.get(&job) {
            None => {
                return Err(Fail::Mismatch(format!(
                    "job {job}: missing from reference {reference}"
                )))
            }
            Some(expect) if expect != rec => {
                return Err(Fail::Mismatch(format!(
                    "job {job}: parts decided {rec:?}, reference decided {expect:?}"
                )));
            }
            Some(_) => {}
        }
    }
    if overlay.len() != jobs {
        return Err(Fail::Mismatch(format!(
            "parts decided {} jobs, expected exactly {jobs}",
            overlay.len()
        )));
    }
    eprintln!(
        "load_serve: diff ok — {jobs} jobs decided exactly once, {replayed} replayed \
         decision(s) bit-identical, overlay matches {reference}"
    );
    Ok(())
}

fn parse_args(args: &[String]) -> Result<Mode, Fail> {
    let usage = |what: String| Fail::Usage(what);
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(Mode::Help);
    }
    if let Some(pos) = args.iter().position(|a| a == "--diff") {
        let mut files = Vec::new();
        let mut i = pos + 1;
        while i < args.len() && !args[i].starts_with("--") {
            files.push(args[i].clone());
            i += 1;
        }
        if files.len() < 2 {
            return Err(usage(
                "--diff needs a reference and at least one part".into(),
            ));
        }
        let mut jobs = None;
        while i < args.len() {
            match args[i].as_str() {
                "--jobs" => {
                    i += 1;
                    jobs = Some(parse_num(args.get(i), "--jobs")?);
                }
                other => return Err(usage(format!("unknown diff-mode flag {other:?}"))),
            }
            i += 1;
        }
        let jobs = jobs.ok_or_else(|| usage("--diff requires --jobs N".into()))?;
        let reference = files.remove(0);
        return Ok(Mode::Diff {
            reference,
            parts: files,
            jobs: jobs as usize,
        });
    }
    let mut opts = RunOpts {
        addr: String::new(),
        jobs: 1000,
        seed: 42,
        tenants: 4,
        rate: 2.0,
        window: 64,
        stop_after: None,
        resume: false,
        out: None,
        bench_out: None,
        status_out: None,
        checkpoint: false,
        shutdown: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                opts.addr = args
                    .get(i)
                    .ok_or_else(|| usage("--addr needs a value".into()))?
                    .clone();
            }
            "--jobs" => {
                i += 1;
                opts.jobs = parse_num(args.get(i), "--jobs")? as usize;
            }
            "--seed" => {
                i += 1;
                opts.seed = parse_num(args.get(i), "--seed")?;
            }
            "--tenants" => {
                i += 1;
                opts.tenants = (parse_num(args.get(i), "--tenants")? as usize).max(1);
            }
            "--rate" => {
                i += 1;
                opts.rate = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|r: &f64| *r > 0.0)
                    .ok_or_else(|| usage("--rate needs a positive number".into()))?;
            }
            "--window" => {
                i += 1;
                opts.window = (parse_num(args.get(i), "--window")? as usize).max(1);
            }
            "--stop-after" => {
                i += 1;
                opts.stop_after = Some(parse_num(args.get(i), "--stop-after")? as usize);
            }
            "--resume" => opts.resume = true,
            "--out" => {
                i += 1;
                opts.out = Some(
                    args.get(i)
                        .ok_or_else(|| usage("--out needs a path".into()))?
                        .clone(),
                );
            }
            "--bench-out" => {
                i += 1;
                opts.bench_out = Some(
                    args.get(i)
                        .ok_or_else(|| usage("--bench-out needs a path".into()))?
                        .clone(),
                );
            }
            "--status-out" => {
                i += 1;
                opts.status_out = Some(
                    args.get(i)
                        .ok_or_else(|| usage("--status-out needs a path".into()))?
                        .clone(),
                );
            }
            "--checkpoint" => opts.checkpoint = true,
            "--shutdown" => opts.shutdown = true,
            other => return Err(usage(format!("unknown flag {other:?}"))),
        }
        i += 1;
    }
    if opts.addr.is_empty() {
        return Err(usage("--addr is required in run mode".into()));
    }
    if opts.jobs == 0 {
        return Err(usage("--jobs must be >= 1".into()));
    }
    Ok(Mode::Run(Box::new(opts)))
}

fn parse_num(arg: Option<&String>, flag: &str) -> Result<u64, Fail> {
    arg.and_then(|v| v.parse().ok())
        .ok_or_else(|| Fail::Usage(format!("{flag} needs an unsigned integer")))
}

enum Mode {
    Help,
    Run(Box<RunOpts>),
    Diff {
        reference: String,
        parts: Vec<String>,
        jobs: usize,
    },
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match parse_args(&args) {
        Ok(m) => m,
        Err(f) => return f.report(),
    };
    let result = match mode {
        Mode::Help => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Mode::Run(opts) => run(&opts),
        Mode::Diff {
            reference,
            parts,
            jobs,
        } => diff(&reference, &parts, jobs),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => f.report(),
    }
}
