//! Service checkpoints: one manifest line plus K session snapshot lines.
//!
//! A serve checkpoint is a text file:
//!
//! ```text
//! line 1      {"format":"dbp-serve-checkpoint","version":1,"seq":3,...}
//! line 2..K+1 one dbp-resilience checkpoint document per shard, in
//!             shard-index order
//! ```
//!
//! The manifest records the coordinator state a restart needs — id
//! watermark + overflow set, stream clock, per-tenant counters, config
//! fingerprint (algo/router/shards/fleet cap) — and the per-shard lines
//! reuse [`dbp_resilience::snapshot_to_json`] verbatim, so every
//! bit-identity guarantee the resilience layer proves carries over.
//!
//! Files are written to `serve-<seq>.ckpt` via a temp file + rename, so
//! a crash mid-write leaves a torn *temp* file, never a torn checkpoint
//! under the canonical name. A kill between `write` and `rename`, or a
//! filesystem that reorders the rename, can still surface a torn file —
//! which is why [`latest_good_checkpoint`] walks candidates newest-first
//! and falls back to the previous good snapshot on any decode error
//! (the torn-checkpoint regression tests drive this path).

use dbp_core::stream::SessionSnapshot;
use dbp_core::{DbpError, Time};
use dbp_obs::json::{escape, parse, Json};
use dbp_resilience::{snapshot_from_json, snapshot_to_json};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The `format` tag of the manifest line.
pub const SERVE_CHECKPOINT_FORMAT: &str = "dbp-serve-checkpoint";
/// Current manifest layout version.
pub const SERVE_CHECKPOINT_VERSION: u32 = 1;
/// Checkpoint files kept on disk (newest N; older ones are pruned).
pub const KEPT_CHECKPOINTS: usize = 3;

fn bad(what: impl Into<String>) -> DbpError {
    DbpError::Trace {
        line: 0,
        what: what.into(),
    }
}

/// Per-tenant accounting, checkpointed with the service state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Tenant label.
    pub tenant: String,
    /// Submissions seen (including rejected ones).
    pub submitted: u64,
    /// Jobs placed.
    pub placed: u64,
    /// Jobs shed by the fleet cap.
    pub shed: u64,
    /// Jobs rejected (duplicate / out-of-order / invalid).
    pub rejected: u64,
}

/// Everything a service restart needs to resume bit-identically.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeCheckpoint {
    /// Monotonic checkpoint sequence number (1-based).
    pub seq: u64,
    /// Packer roster name.
    pub algo: String,
    /// Router spec (`ShardRouter::name()`).
    pub router: String,
    /// Global fleet cap, if admission control is on.
    pub fleet_cap: Option<u64>,
    /// The stream clock at checkpoint time.
    pub last_arrival: Option<Time>,
    /// Global id watermark (every id below it was decided).
    pub watermark: u32,
    /// Decided ids at or above the watermark, sorted.
    pub above: Vec<u32>,
    /// Jobs placed.
    pub placed: u64,
    /// Jobs shed.
    pub shed: u64,
    /// Jobs rejected.
    pub rejected: u64,
    /// Global decision sequence as of this checkpoint: the WAL replay
    /// floor. Absent in pre-WAL checkpoints, which decode as 0 (those
    /// directories hold no WAL, so an empty replay is exactly right).
    pub decision_seq: u64,
    /// Per-tenant counters, sorted by tenant label.
    pub tenants: Vec<TenantCounters>,
    /// One session snapshot per shard, in shard-index order.
    pub sessions: Vec<SessionSnapshot>,
}

/// Encodes a checkpoint as its multi-line document.
pub fn encode(ck: &ServeCheckpoint) -> String {
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"format\":\"{SERVE_CHECKPOINT_FORMAT}\",\"version\":{SERVE_CHECKPOINT_VERSION},\
         \"seq\":{},\"algo\":\"{}\",\"router\":\"{}\",\"shards\":{}",
        ck.seq,
        escape(&ck.algo),
        escape(&ck.router),
        ck.sessions.len()
    );
    match ck.fleet_cap {
        Some(c) => {
            let _ = write!(out, ",\"fleet_cap\":{c}");
        }
        None => out.push_str(",\"fleet_cap\":null"),
    }
    match ck.last_arrival {
        Some(t) => {
            let _ = write!(out, ",\"last_arrival\":{t}");
        }
        None => out.push_str(",\"last_arrival\":null"),
    }
    let _ = write!(
        out,
        ",\"watermark\":{},\"placed\":{},\"shed\":{},\"rejected\":{},\"decision_seq\":{}",
        ck.watermark, ck.placed, ck.shed, ck.rejected, ck.decision_seq
    );
    out.push_str(",\"above\":[");
    for (i, id) in ck.above.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{id}");
    }
    out.push_str("],\"tenants\":[");
    for (i, t) in ck.tenants.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"tenant\":\"{}\",\"submitted\":{},\"placed\":{},\"shed\":{},\"rejected\":{}}}",
            escape(&t.tenant),
            t.submitted,
            t.placed,
            t.shed,
            t.rejected
        );
    }
    out.push_str("]}\n");
    for snap in &ck.sessions {
        out.push_str(&snapshot_to_json(snap));
        out.push('\n');
    }
    out
}

fn u64_field(v: &Json, key: &str) -> Result<u64, DbpError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(format!("manifest field {key:?} missing or not an integer")))
}

fn str_field(v: &Json, key: &str) -> Result<String, DbpError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("manifest field {key:?} missing or not a string")))
}

/// Decodes a checkpoint document.
pub fn decode(text: &str) -> Result<ServeCheckpoint, DbpError> {
    let mut lines = text.lines();
    let manifest = lines.next().ok_or_else(|| bad("empty checkpoint file"))?;
    let doc = parse(manifest).map_err(|e| bad(format!("manifest: {e}")))?;
    let format = str_field(&doc, "format")?;
    if format != SERVE_CHECKPOINT_FORMAT {
        return Err(bad(format!(
            "not a serve checkpoint: format {format:?} (expected {SERVE_CHECKPOINT_FORMAT:?})"
        )));
    }
    let version = u64_field(&doc, "version")?;
    if version != u64::from(SERVE_CHECKPOINT_VERSION) {
        return Err(bad(format!(
            "unsupported serve checkpoint version {version} (this build reads \
             {SERVE_CHECKPOINT_VERSION})"
        )));
    }
    let shards = u64_field(&doc, "shards")? as usize;
    let fleet_cap = match doc.get("fleet_cap") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| bad("manifest field \"fleet_cap\" is not an unsigned integer"))?,
        ),
    };
    let last_arrival = match doc.get("last_arrival") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_i64()
                .ok_or_else(|| bad("manifest field \"last_arrival\" is not an integer"))?,
        ),
    };
    let watermark = u64_field(&doc, "watermark")?
        .try_into()
        .map_err(|_| bad("manifest field \"watermark\" overflows u32"))?;
    let mut above = Vec::new();
    if let Some(Json::Arr(ids)) = doc.get("above") {
        for v in ids {
            above.push(
                v.as_u64()
                    .and_then(|x| u32::try_from(x).ok())
                    .ok_or_else(|| bad("entry in \"above\" is not a u32"))?,
            );
        }
    } else {
        return Err(bad("manifest field \"above\" missing or not an array"));
    }
    let mut tenants = Vec::new();
    if let Some(Json::Arr(ts)) = doc.get("tenants") {
        for t in ts {
            tenants.push(TenantCounters {
                tenant: str_field(t, "tenant")?,
                submitted: u64_field(t, "submitted")?,
                placed: u64_field(t, "placed")?,
                shed: u64_field(t, "shed")?,
                rejected: u64_field(t, "rejected")?,
            });
        }
    } else {
        return Err(bad("manifest field \"tenants\" missing or not an array"));
    }
    let mut sessions = Vec::with_capacity(shards);
    for i in 0..shards {
        let line = lines
            .next()
            .ok_or_else(|| bad(format!("truncated checkpoint: shard {i} snapshot missing")))?;
        sessions
            .push(snapshot_from_json(line.trim_end()).map_err(|e| bad(format!("shard {i}: {e}")))?);
    }
    Ok(ServeCheckpoint {
        seq: u64_field(&doc, "seq")?,
        algo: str_field(&doc, "algo")?,
        router: str_field(&doc, "router")?,
        fleet_cap,
        last_arrival,
        watermark,
        above,
        placed: u64_field(&doc, "placed")?,
        shed: u64_field(&doc, "shed")?,
        rejected: u64_field(&doc, "rejected")?,
        decision_seq: doc.get("decision_seq").and_then(Json::as_u64).unwrap_or(0),
        tenants,
        sessions,
    })
}

/// The canonical file name of checkpoint `seq`.
pub fn checkpoint_file_name(seq: u64) -> String {
    format!("serve-{seq:010}.ckpt")
}

/// Parses a `serve-<seq>.ckpt` file name back to its sequence number.
fn seq_of(name: &str) -> Option<u64> {
    name.strip_prefix("serve-")?
        .strip_suffix(".ckpt")?
        .parse()
        .ok()
}

/// Writes checkpoint `ck` into `dir` durably — temp file, `sync_all`,
/// rename, parent-directory fsync (via
/// [`dbp_resilience::durable_write`]) — and prunes all but the newest
/// [`KEPT_CHECKPOINTS`] files. Returns the final path.
pub fn write_serve_checkpoint(dir: &Path, ck: &ServeCheckpoint) -> Result<PathBuf, DbpError> {
    let mkdir =
        dbp_resilience::failpoint::io_op("ckpt_mkdir").and_then(|()| std::fs::create_dir_all(dir));
    mkdir.map_err(|e| bad(format!("cannot create {}: {e}", dir.display())))?;
    let path = dir.join(checkpoint_file_name(ck.seq));
    dbp_resilience::durable_write(&path, encode(ck).as_bytes())
        .map_err(|e| bad(format!("committing {}: {e}", path.display())))?;
    // Prune: keep the newest KEPT_CHECKPOINTS by sequence.
    let mut all = list_checkpoints(dir)?;
    while all.len() > KEPT_CHECKPOINTS {
        let (_, oldest) = all.remove(0);
        if dbp_resilience::failpoint::io_op("ckpt_prune").is_ok() {
            let _ = std::fs::remove_file(oldest);
        }
    }
    Ok(path)
}

/// The WAL replay floor of the *oldest* checkpoint still on disk: every
/// decision at or below it is covered by every restorable checkpoint,
/// so WAL segments that only hold such decisions are prunable.
pub fn kept_checkpoint_floor(dir: &Path) -> Result<Option<u64>, DbpError> {
    let all = list_checkpoints(dir)?;
    match all.first() {
        Some((_, path)) => Ok(Some(read_serve_checkpoint(path)?.decision_seq)),
        None => Ok(None),
    }
}

/// Reads a checkpoint file; torn or corrupt files surface as typed
/// errors, never panics.
pub fn read_serve_checkpoint(path: &Path) -> Result<ServeCheckpoint, DbpError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| bad(format!("cannot read checkpoint {}: {e}", path.display())))?;
    decode(&text)
}

/// Checkpoint files in `dir`, sorted by ascending sequence number.
fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DbpError> {
    let mut found = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(bad(format!("cannot list {}: {e}", dir.display()))),
    };
    for entry in entries {
        let entry = entry.map_err(|e| bad(format!("cannot list {}: {e}", dir.display())))?;
        if let Some(seq) = entry.file_name().to_str().and_then(seq_of) {
            found.push((seq, entry.path()));
        }
    }
    found.sort();
    Ok(found)
}

/// Walks the checkpoints in `dir` newest-first and loads the first one
/// that decodes — the restart path's torn-file fallback. Returns the
/// loaded checkpoint plus the (newer) corrupt files that were skipped,
/// or `None` when the directory holds no loadable checkpoint.
pub fn latest_good_checkpoint(
    dir: &Path,
) -> Result<Option<(ServeCheckpoint, Vec<PathBuf>)>, DbpError> {
    let mut all = list_checkpoints(dir)?;
    let mut skipped = Vec::new();
    while let Some((_, path)) = all.pop() {
        match read_serve_checkpoint(&path) {
            Ok(ck) => return Ok(Some((ck, skipped))),
            Err(_) => skipped.push(path),
        }
    }
    Ok(None)
}
