//! The scheduling service: shard engines, admission, checkpoints.
//!
//! A [`Service`] owns one engine thread per shard. Each engine holds a
//! packer from the bench roster and a [`StreamingSession`] built on its
//! own stack (the session *borrows* the packer, so neither can live in a
//! shared struct), and answers `Place`/`Snapshot` commands over a
//! channel. A single coordinator lock serialises submissions, which
//! keeps the global invariants trivial to state:
//!
//! - **Exactly-once ids.** A dense id watermark plus an overflow set
//!   records every decided job — placed *or* shed, because a shed is a
//!   final admission-control decision. Clients resume after a crash by
//!   reading the watermark from `status` and resubmitting from there.
//! - **Global fleet cap.** The cap a shard sees on each placement is its
//!   own open-bin count plus whatever headroom the whole fleet has left,
//!   so the *sum* of open bins never exceeds the configured cap while
//!   reuse of already-open bins is never refused.
//! - **Deterministic restarts.** All coordinator state lives in the
//!   checkpoint next to the per-shard session snapshots; replaying the
//!   same submissions after a restore reproduces the same responses
//!   bit for bit (the kill-and-resume differential test proves it).
//! - **Write-ahead decisions.** With a [`ServeConfig::wal_dir`], every
//!   decision is appended to the [`crate::wal`] before the response is
//!   externalized; recovery becomes newest-good-checkpoint + WAL
//!   replay, and acknowledged decisions survive `kill -9` with zero
//!   client resubmission beyond the watermark (under
//!   [`FsyncPolicy::Always`]; weaker policies trade a bounded window
//!   of resubmission for throughput).

use crate::protocol::{RejectReason, Request, Response, StatusBody, Submit};
use crate::state::{
    kept_checkpoint_floor, latest_good_checkpoint, write_serve_checkpoint, ServeCheckpoint,
    TenantCounters,
};
use crate::wal::{self, DecisionFrame, FrameOutcome, FsyncPolicy, WalWriter};
use dbp_bench::registry::{online_packer, AlgoParams, ONLINE_ALGOS};
use dbp_core::stream::{Admission, SessionSnapshot, StreamingSession};
use dbp_core::{ClairvoyanceMode, DbpError, Item, Size, Time};
use dbp_shard::ShardRouter;
use dbp_telemetry::Histogram;
use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender, SyncSender};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::Instant;

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Shard (engine thread) count.
    pub shards: usize,
    /// Packer roster name ([`ONLINE_ALGOS`]).
    pub algo: String,
    /// Item-to-shard router.
    pub router: ShardRouter,
    /// Max open bins across the whole fleet; `None` = uncapped.
    pub fleet_cap: Option<usize>,
    /// Where checkpoints live; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Auto-checkpoint after this many placement decisions.
    pub checkpoint_every: u64,
    /// Where write-ahead decision-log segments live; `None` disables
    /// the WAL (recovery then leans on checkpoints + resubmission).
    pub wal_dir: Option<PathBuf>,
    /// When WAL appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Minimum item duration `Δ` (cbdt/cbd classification).
    pub delta: i64,
    /// Max/min duration ratio `μ` (cbdt/cbd classification).
    pub mu: f64,
}

impl ServeConfig {
    /// A config with the roster defaults (`Δ = 1`, `μ = 1`), hash
    /// routing, no cap, and no checkpointing.
    pub fn new(shards: usize, algo: &str) -> ServeConfig {
        ServeConfig {
            shards,
            algo: algo.to_string(),
            router: ShardRouter::hash(),
            fleet_cap: None,
            checkpoint_dir: None,
            checkpoint_every: 1_000,
            wal_dir: None,
            fsync: FsyncPolicy::Always,
            delta: 1,
            mu: 1.0,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), DbpError> {
        let bad = |what: String| DbpError::InvalidParameter { what };
        if self.shards == 0 {
            return Err(bad("shards must be >= 1".into()));
        }
        if !ONLINE_ALGOS.contains(&self.algo.as_str()) {
            return Err(bad(format!(
                "unknown algo {:?} (roster: {})",
                self.algo,
                ONLINE_ALGOS.join(", ")
            )));
        }
        self.router.validate()?;
        if self.fleet_cap == Some(0) {
            return Err(bad("fleet cap must be >= 1 (use no cap to disable)".into()));
        }
        if self.checkpoint_every == 0 {
            return Err(bad("checkpoint interval must be >= 1".into()));
        }
        Ok(())
    }
}

/// Commands the coordinator sends a shard engine.
enum ShardCmd {
    /// Place one item under an open-bin cap; reply with the admission
    /// and the shard's open-bin count after the arrival sweep.
    Place {
        item: Item,
        cap: usize,
        resp: SyncSender<Result<(Admission, usize), DbpError>>,
    },
    /// Reply with a session snapshot.
    Snapshot { resp: SyncSender<SessionSnapshot> },
    /// Exit the engine loop.
    Shutdown,
}

struct Engine {
    tx: Sender<ShardCmd>,
    handle: Option<JoinHandle<()>>,
}

impl Engine {
    fn spawn(
        shard: usize,
        algo: &str,
        params: AlgoParams,
        snap: Option<SessionSnapshot>,
    ) -> Result<Engine, DbpError> {
        let (tx, rx) = mpsc::channel::<ShardCmd>();
        let (ready_tx, ready_rx) = mpsc::sync_channel::<Result<(), DbpError>>(1);
        let algo = algo.to_string();
        let handle = std::thread::Builder::new()
            .name(format!("dbp-serve-{shard}"))
            .spawn(move || {
                let mut packer = online_packer(&algo, params);
                let mut session = match snap {
                    Some(s) => {
                        match StreamingSession::restore(
                            ClairvoyanceMode::Clairvoyant,
                            packer.as_mut(),
                            &s,
                        ) {
                            Ok(sess) => {
                                let _ = ready_tx.send(Ok(()));
                                sess
                            }
                            Err(e) => {
                                let _ = ready_tx.send(Err(e));
                                return;
                            }
                        }
                    }
                    None => {
                        let _ = ready_tx.send(Ok(()));
                        StreamingSession::new(ClairvoyanceMode::Clairvoyant, packer.as_mut())
                    }
                };
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        ShardCmd::Place { item, cap, resp } => {
                            let out = session
                                .arrive_capped(&item, cap)
                                .map(|adm| (adm, session.open_bins()));
                            let failed = out.is_err();
                            let _ = resp.send(out);
                            if failed {
                                // The session may be inconsistent after a
                                // packer error; stop rather than serve
                                // wrong placements.
                                return;
                            }
                        }
                        ShardCmd::Snapshot { resp } => {
                            let _ = resp.send(session.snapshot());
                        }
                        ShardCmd::Shutdown => return,
                    }
                }
            })
            .map_err(|e| DbpError::Internal {
                what: format!("cannot spawn shard engine {shard}: {e}"),
            })?;
        let mut engine = Engine {
            tx,
            handle: Some(handle),
        };
        match ready_rx.recv() {
            Ok(Ok(())) => Ok(engine),
            Ok(Err(e)) => {
                engine.join();
                Err(e)
            }
            Err(_) => {
                engine.join();
                Err(DbpError::Internal {
                    what: format!("shard engine {shard} died before reporting ready"),
                })
            }
        }
    }

    fn join(&mut self) {
        let _ = self.tx.send(ShardCmd::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Totals {
    submitted: u64,
    placed: u64,
    shed: u64,
    rejected: u64,
}

struct Core {
    engines: Vec<Engine>,
    /// Open bins per shard, as of that shard's last placement reply.
    open_bins: Vec<usize>,
    last_arrival: Option<Time>,
    /// Every id below this was decided (placed or shed).
    watermark: u32,
    /// Decided ids at or above the watermark.
    above: HashSet<u32>,
    placed: u64,
    shed: u64,
    rejected: u64,
    tenants: BTreeMap<String, Totals>,
    decided_since_ckpt: u64,
    ckpt_seq: u64,
    /// Global decision sequence: every decision (placed, shed, or
    /// rejected) gets the next number; the WAL frame carrying it is
    /// appended before the response is externalized.
    decision_seq: u64,
    /// The write-ahead decision log, when `cfg.wal_dir` is set.
    wal: Option<WalWriter>,
    /// Wall-clock placement latency; observability only — never
    /// checkpointed, so it cannot perturb deterministic restarts.
    place_ns: Histogram,
    /// WAL append latency (encode + write + policy sync); observability
    /// only.
    wal_append_ns: Histogram,
    /// A shard engine failure poisons the whole service.
    failed: Option<DbpError>,
}

impl Core {
    fn is_decided(&self, id: u32) -> bool {
        id < self.watermark || self.above.contains(&id)
    }

    /// Records a decided id and advances the dense watermark.
    fn note_id(&mut self, id: u32) {
        self.above.insert(id);
        while self.above.remove(&self.watermark) {
            self.watermark += 1;
        }
    }

    fn tenant_counters(&self) -> Vec<TenantCounters> {
        self.tenants
            .iter()
            .map(|(tenant, t)| TenantCounters {
                tenant: tenant.clone(),
                submitted: t.submitted,
                placed: t.placed,
                shed: t.shed,
                rejected: t.rejected,
            })
            .collect()
    }
}

/// What recovery found and did at boot, for metrics and the torture
/// harness.
#[derive(Clone, Debug, Default)]
pub struct RecoveryStats {
    /// Wall-clock boot recovery duration (checkpoint restore + WAL
    /// scan + replay).
    pub duration_ns: u64,
    /// WAL frames replayed on top of the restored checkpoint.
    pub replayed_frames: u64,
    /// WAL bytes scanned during recovery.
    pub wal_bytes: u64,
    /// Segment files physically cut back (torn tails, corrupt bytes,
    /// post-gap frames).
    pub truncated_files: u64,
    /// Intact frames dropped because a sequence gap preceded them.
    pub dropped_after_gap: u64,
}

/// A running multi-tenant scheduling service. See the module docs.
pub struct Service {
    cfg: ServeConfig,
    core: Mutex<Core>,
    shutdown: AtomicBool,
    restored_seq: Option<u64>,
    skipped_checkpoints: Vec<PathBuf>,
    recovery: Option<RecoveryStats>,
}

impl Service {
    /// Boots the service: validates `cfg`, restores the newest good
    /// checkpoint when a checkpoint directory is configured (walking
    /// past torn files), and spawns one engine per shard.
    pub fn start(cfg: ServeConfig) -> Result<Service, DbpError> {
        let boot = Instant::now();
        cfg.validate()?;
        let (restored, skipped) = match &cfg.checkpoint_dir {
            Some(dir) => match latest_good_checkpoint(dir)? {
                Some((ck, skipped)) => (Some(ck), skipped),
                None => (None, Vec::new()),
            },
            None => (None, Vec::new()),
        };
        if let Some(ck) = &restored {
            let bad = |what: String| DbpError::InvalidParameter { what };
            if ck.algo != cfg.algo {
                return Err(bad(format!(
                    "checkpoint was written by algo {:?}, service runs {:?}",
                    ck.algo, cfg.algo
                )));
            }
            if ck.router != cfg.router.name() {
                return Err(bad(format!(
                    "checkpoint was written with router {:?}, service runs {:?}",
                    ck.router,
                    cfg.router.name()
                )));
            }
            if ck.sessions.len() != cfg.shards {
                return Err(bad(format!(
                    "checkpoint has {} shards, service runs {}",
                    ck.sessions.len(),
                    cfg.shards
                )));
            }
            if ck.fleet_cap != cfg.fleet_cap.map(|c| c as u64) {
                return Err(bad(format!(
                    "checkpoint was written with fleet cap {:?}, service runs {:?}",
                    ck.fleet_cap, cfg.fleet_cap
                )));
            }
        }
        let params = AlgoParams {
            delta: cfg.delta,
            mu: cfg.mu,
        };
        let mut engines = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let snap = restored.as_ref().map(|ck| ck.sessions[shard].clone());
            match Engine::spawn(shard, &cfg.algo, params, snap) {
                Ok(e) => engines.push(e),
                Err(e) => {
                    for mut eng in engines {
                        eng.join();
                    }
                    return Err(e);
                }
            }
        }
        let mut core = match &restored {
            Some(ck) => Core {
                open_bins: ck.sessions.iter().map(|s| s.open_bins.len()).collect(),
                engines,
                last_arrival: ck.last_arrival,
                watermark: ck.watermark,
                above: ck.above.iter().copied().collect(),
                placed: ck.placed,
                shed: ck.shed,
                rejected: ck.rejected,
                tenants: ck
                    .tenants
                    .iter()
                    .map(|t| {
                        (
                            t.tenant.clone(),
                            Totals {
                                submitted: t.submitted,
                                placed: t.placed,
                                shed: t.shed,
                                rejected: t.rejected,
                            },
                        )
                    })
                    .collect(),
                decided_since_ckpt: 0,
                ckpt_seq: ck.seq,
                decision_seq: ck.decision_seq,
                wal: None,
                place_ns: Histogram::new(),
                wal_append_ns: Histogram::new(),
                failed: None,
            },
            None => Core {
                open_bins: vec![0; cfg.shards],
                engines,
                last_arrival: None,
                watermark: 0,
                above: HashSet::new(),
                placed: 0,
                shed: 0,
                rejected: 0,
                tenants: BTreeMap::new(),
                decided_since_ckpt: 0,
                ckpt_seq: 0,
                decision_seq: 0,
                wal: None,
                place_ns: Histogram::new(),
                wal_append_ns: Histogram::new(),
                failed: None,
            },
        };
        let mut recovery = None;
        if let Some(wal_dir) = &cfg.wal_dir {
            match Self::recover_from_wal(&cfg, wal_dir, &mut core, boot) {
                Ok(stats) => recovery = Some(stats),
                Err(e) => {
                    for engine in &mut core.engines {
                        engine.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(Service {
            cfg,
            core: Mutex::new(core),
            shutdown: AtomicBool::new(false),
            restored_seq: restored.as_ref().map(|ck| ck.seq),
            skipped_checkpoints: skipped,
            recovery,
        })
    }

    /// Replays the WAL tail on top of the restored checkpoint and opens
    /// the writer. Every replayed frame must reproduce its logged
    /// outcome bit for bit; a divergence refuses the boot — serving a
    /// state that disagrees with what clients were told is worse than
    /// not serving.
    fn recover_from_wal(
        cfg: &ServeConfig,
        wal_dir: &Path,
        core: &mut Core,
        boot: Instant,
    ) -> Result<RecoveryStats, DbpError> {
        let floor = core.decision_seq;
        let rec = wal::recover_wal(wal_dir, cfg.shards + 1, floor)?;
        for frame in &rec.frames {
            let submit = frame.to_submit();
            let (resp, routed) = Self::decide(cfg, core, &submit);
            let outcome = match Self::outcome_of(&resp, routed) {
                Some(o) => o,
                None => {
                    return Err(DbpError::Internal {
                        what: format!(
                            "WAL replay of decision {} (job {}) failed: {resp:?}",
                            frame.seq, frame.job
                        ),
                    })
                }
            };
            if outcome != frame.outcome {
                return Err(DbpError::Internal {
                    what: format!(
                        "WAL replay diverged at decision {}: log says {:?}, replay produced \
                         {outcome:?} — refusing to serve a state that disagrees with \
                         acknowledged responses",
                        frame.seq, frame.outcome
                    ),
                });
            }
            core.decision_seq = frame.seq;
        }
        let writer =
            WalWriter::open(wal_dir, cfg.shards + 1, core.ckpt_seq, cfg.fsync).map_err(|e| {
                DbpError::Internal {
                    what: format!("cannot open WAL dir {}: {e}", wal_dir.display()),
                }
            })?;
        core.wal = Some(writer);
        Ok(RecoveryStats {
            duration_ns: u64::try_from(boot.elapsed().as_nanos()).unwrap_or(u64::MAX),
            replayed_frames: rec.frames.len() as u64,
            wal_bytes: rec.bytes_scanned,
            truncated_files: rec.truncated.len() as u64,
            dropped_after_gap: rec.dropped_after_gap,
        })
    }

    /// The configuration the service runs.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The checkpoint sequence the service restored from, if any.
    pub fn restored_seq(&self) -> Option<u64> {
        self.restored_seq
    }

    /// Corrupt (torn) checkpoint files skipped during restore, newest
    /// first.
    pub fn skipped_checkpoints(&self) -> &[PathBuf] {
        &self.skipped_checkpoints
    }

    /// Boot-time recovery statistics; `None` when no WAL is configured.
    pub fn recovery(&self) -> Option<&RecoveryStats> {
        self.recovery.as_ref()
    }

    /// Locks the coordinator. A poisoned lock (a handler panicked while
    /// holding it) degrades to a typed error on every caller instead of
    /// cascading the panic across worker threads.
    fn lock_core(&self) -> Result<std::sync::MutexGuard<'_, Core>, Response> {
        self.core.lock().map_err(|_| Response::Error {
            what: "service state lock poisoned by a panicked handler; restart the service".into(),
        })
    }

    /// Poisons the coordinator lock, exactly as a handler panicking
    /// mid-request would. Test-only by design: proves lock poisoning
    /// degrades to typed errors.
    #[doc(hidden)]
    pub fn poison_for_tests(&self) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.core.lock().unwrap();
            panic!("poisoning the coordinator lock for a test");
        }));
    }

    /// True once a `shutdown` request was acknowledged.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Handles one request. Never panics; internal failures surface as
    /// [`Response::Error`].
    pub fn handle(&self, req: &Request) -> Response {
        match req {
            Request::Submit(s) => self.handle_submit(s),
            Request::Status => {
                let core = match self.lock_core() {
                    Ok(core) => core,
                    Err(resp) => return resp,
                };
                Response::Status(StatusBody {
                    algo: self.cfg.algo.clone(),
                    shards: self.cfg.shards,
                    watermark: core.watermark,
                    placed: core.placed,
                    shed: core.shed,
                    rejected: core.rejected,
                    open_bins: core.open_bins.iter().sum(),
                    checkpoint_seq: core.ckpt_seq,
                    decision_seq: core.decision_seq,
                })
            }
            Request::Checkpoint => {
                let mut core = match self.lock_core() {
                    Ok(core) => core,
                    Err(resp) => return resp,
                };
                match self.checkpoint_locked(&mut core) {
                    Ok(seq) => Response::Checkpointed { seq },
                    Err(e) => Response::Error {
                        what: format!("checkpoint failed: {e}"),
                    },
                }
            }
            Request::Metrics => {
                let core = match self.lock_core() {
                    Ok(core) => core,
                    Err(resp) => return resp,
                };
                Response::Metrics {
                    text: crate::metrics::render_metrics(&crate::metrics::MetricsView {
                        algo: &self.cfg.algo,
                        tenants: &core.tenant_counters(),
                        placed: core.placed,
                        shed: core.shed,
                        rejected: core.rejected,
                        open_bins: &core.open_bins,
                        checkpoint_seq: core.ckpt_seq,
                        decision_seq: core.decision_seq,
                        place_ns: &core.place_ns,
                        wal: core.wal.as_ref().map(|w| crate::metrics::WalView {
                            frames: w.frames_appended(),
                            bytes: w.bytes_appended(),
                            append_ns: &core.wal_append_ns,
                        }),
                        recovery: self.recovery.as_ref(),
                    }),
                }
            }
            Request::Shutdown => {
                let mut core = match self.lock_core() {
                    Ok(core) => core,
                    Err(resp) => return resp,
                };
                if core.failed.is_none() {
                    if let Some(w) = core.wal.as_mut() {
                        // Push any interval/never-policy tail to disk
                        // while we still can; failure is survivable
                        // (recovery replays what did make it).
                        if let Err(e) = w.sync() {
                            eprintln!("dbp-serve: final WAL sync failed: {e}");
                        }
                    }
                }
                if self.cfg.checkpoint_dir.is_some() && core.failed.is_none() {
                    // Best-effort final checkpoint; shutdown proceeds
                    // regardless (the previous good one still restores).
                    if let Err(e) = self.checkpoint_locked(&mut core) {
                        eprintln!("dbp-serve: final checkpoint failed: {e}");
                    }
                }
                self.shutdown.store(true, Ordering::SeqCst);
                Response::ShuttingDown
            }
        }
    }

    /// Makes the admission decision for one submission against the
    /// coordinator state — shared verbatim between live handling and
    /// WAL replay, which is what makes replay bit-identical by
    /// construction. Returns the response plus the shard the submission
    /// was routed to (`None` for pre-routing rejects).
    fn decide(cfg: &ServeConfig, core: &mut Core, s: &Submit) -> (Response, Option<usize>) {
        core.tenants.entry(s.tenant.clone()).or_default().submitted += 1;
        let reject = |core: &mut Core, reason: RejectReason, detail: String| {
            core.rejected += 1;
            core.tenants.entry(s.tenant.clone()).or_default().rejected += 1;
            Response::Rejected {
                tenant: s.tenant.clone(),
                job: s.job,
                reason,
                detail,
            }
        };
        if core.is_decided(s.job) {
            return (
                reject(
                    core,
                    RejectReason::DuplicateJob,
                    format!("job {} was already decided", s.job),
                ),
                None,
            );
        }
        let size = match s.size_raw {
            Some(raw) => Size::from_raw(raw),
            None => Size::from_f64(s.size.unwrap_or(0.0)),
        };
        let item = match Item::try_new(s.job, size, s.arrival, s.departure) {
            Ok(item) => item,
            Err(e) => return (reject(core, RejectReason::InvalidJob, e.to_string()), None),
        };
        if let Some(last) = core.last_arrival {
            if s.arrival < last {
                return (
                    reject(
                        core,
                        RejectReason::ArrivalOutOfOrder,
                        format!("arrival {} is behind the stream clock {last}", s.arrival),
                    ),
                    None,
                );
            }
        }
        let shard = cfg.router.route(&item, cfg.shards);
        let cap = match cfg.fleet_cap {
            None => usize::MAX,
            Some(fleet) => {
                // This shard may keep its open bins and claim whatever
                // headroom the fleet as a whole has left.
                let total: usize = core.open_bins.iter().sum();
                core.open_bins[shard] + fleet.saturating_sub(total)
            }
        };
        let (resp_tx, resp_rx) = mpsc::sync_channel(1);
        let sent = core.engines[shard].tx.send(ShardCmd::Place {
            item,
            cap,
            resp: resp_tx,
        });
        let reply = match sent {
            Ok(()) => resp_rx.recv().map_err(|_| DbpError::Internal {
                what: format!("shard engine {shard} died mid-placement"),
            }),
            Err(_) => Err(DbpError::Internal {
                what: format!("shard engine {shard} is gone"),
            }),
        };
        let (admission, open_now) = match reply.and_then(|r| r) {
            Ok(out) => out,
            Err(e) => {
                core.failed = Some(e.clone());
                return (
                    Response::Error {
                        what: format!("shard {shard}: {e}"),
                    },
                    None,
                );
            }
        };
        core.open_bins[shard] = open_now;
        core.last_arrival = Some(s.arrival);
        // Both outcomes are final decisions: record the id either way so
        // a resumed client never replays them.
        core.note_id(s.job);
        core.decided_since_ckpt += 1;
        let out = match admission {
            Admission::Placed(bin) => {
                core.placed += 1;
                core.tenants.entry(s.tenant.clone()).or_default().placed += 1;
                Response::Placed {
                    tenant: s.tenant.clone(),
                    job: s.job,
                    shard,
                    bin: bin.0,
                }
            }
            Admission::Shed => {
                core.shed += 1;
                core.tenants.entry(s.tenant.clone()).or_default().shed += 1;
                Response::Rejected {
                    tenant: s.tenant.clone(),
                    job: s.job,
                    reason: RejectReason::FleetCapacity,
                    detail: match cfg.fleet_cap {
                        Some(c) => format!("fleet cap {c} reached"),
                        None => "fleet cap reached".to_string(),
                    },
                }
            }
        };
        (out, Some(shard))
    }

    /// Maps a decision response to its WAL outcome. `None` for
    /// [`Response::Error`], which is a service failure, not a decision.
    fn outcome_of(resp: &Response, routed: Option<usize>) -> Option<FrameOutcome> {
        match resp {
            Response::Placed { shard, bin, .. } => Some(FrameOutcome::Placed {
                shard: *shard as u32,
                bin: *bin,
            }),
            Response::Rejected {
                reason: RejectReason::FleetCapacity,
                ..
            } => Some(FrameOutcome::Shed {
                shard: routed.unwrap_or(0) as u32,
            }),
            Response::Rejected { reason, .. } => Some(FrameOutcome::Rejected(*reason)),
            _ => None,
        }
    }

    fn handle_submit(&self, s: &Submit) -> Response {
        let start = Instant::now();
        let mut core = match self.lock_core() {
            Ok(core) => core,
            Err(resp) => return resp,
        };
        if let Some(e) = &core.failed {
            return Response::Error {
                what: format!("service is failed: {e}"),
            };
        }
        let (resp, routed) = Self::decide(&self.cfg, &mut core, s);
        let outcome = match Self::outcome_of(&resp, routed) {
            Some(outcome) => outcome,
            // An engine failure is not a decision: nothing to log.
            None => return resp,
        };
        // Write-ahead discipline: the decision is durable (per the
        // fsync policy) before the response is externalized. A crash
        // in between loses only an unacknowledged decision, which the
        // client resubmits and determinism re-derives identically.
        let seq = core.decision_seq + 1;
        if core.wal.is_some() {
            let stream = routed.unwrap_or(self.cfg.shards) as u32;
            let frame = DecisionFrame {
                seq,
                stream,
                tenant: s.tenant.clone(),
                job: s.job,
                size_is_raw: s.size_raw.is_some(),
                size_bits: match s.size_raw {
                    Some(raw) => raw,
                    None => f64::to_bits(s.size.unwrap_or(0.0)),
                },
                arrival: s.arrival,
                departure: s.departure,
                outcome,
            };
            let wal_start = Instant::now();
            let appended = core.wal.as_mut().expect("checked above").append(&frame);
            core.wal_append_ns
                .record(u64::try_from(wal_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            if let Err(e) = appended {
                // The in-memory decision exists but cannot be made
                // durable: fail the service rather than acknowledge a
                // decision a restart could forget.
                let err = DbpError::Internal {
                    what: format!("WAL append for decision {seq} (job {}) failed: {e}", s.job),
                };
                core.failed = Some(err.clone());
                return Response::Error {
                    what: format!("durability: {err}"),
                };
            }
        }
        core.decision_seq = seq;
        if self.cfg.checkpoint_dir.is_some() && core.decided_since_ckpt >= self.cfg.checkpoint_every
        {
            // Auto-checkpoint failures must not fail the placement that
            // triggered them: the decision already happened.
            if let Err(e) = self.checkpoint_locked(&mut core) {
                eprintln!("dbp-serve: auto-checkpoint failed: {e}");
            }
        }
        if routed.is_some() {
            core.place_ns
                .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        resp
    }

    /// Snapshots every shard and writes checkpoint `ckpt_seq + 1`.
    fn checkpoint_locked(&self, core: &mut Core) -> Result<u64, DbpError> {
        let dir = self
            .cfg
            .checkpoint_dir
            .as_ref()
            .ok_or_else(|| DbpError::InvalidParameter {
                what: "no checkpoint directory configured".into(),
            })?;
        let mut sessions = Vec::with_capacity(core.engines.len());
        for (shard, engine) in core.engines.iter().enumerate() {
            let (resp_tx, resp_rx) = mpsc::sync_channel(1);
            let gone = || DbpError::Internal {
                what: format!("shard engine {shard} is gone"),
            };
            engine
                .tx
                .send(ShardCmd::Snapshot { resp: resp_tx })
                .map_err(|_| gone())?;
            sessions.push(resp_rx.recv().map_err(|_| gone())?);
        }
        let mut above: Vec<u32> = core.above.iter().copied().collect();
        above.sort_unstable();
        let seq = core.ckpt_seq + 1;
        let ck = ServeCheckpoint {
            seq,
            algo: self.cfg.algo.clone(),
            router: self.cfg.router.name(),
            fleet_cap: self.cfg.fleet_cap.map(|c| c as u64),
            last_arrival: core.last_arrival,
            watermark: core.watermark,
            above,
            placed: core.placed,
            shed: core.shed,
            rejected: core.rejected,
            decision_seq: core.decision_seq,
            tenants: core.tenant_counters(),
            sessions,
        };
        write_serve_checkpoint(dir, &ck)?;
        core.ckpt_seq = seq;
        core.decided_since_ckpt = 0;
        // The checkpoint is durable: rotate the WAL so frames it covers
        // stop accumulating, and drop segments the oldest *kept*
        // checkpoint no longer needs. Both are hygiene, not
        // correctness — failures are logged and the checkpoint stands.
        if let Some(w) = core.wal.as_mut() {
            match w.rotate(seq) {
                Ok(()) => match kept_checkpoint_floor(dir) {
                    Ok(Some(floor)) => {
                        if let Err(e) = w.prune(floor) {
                            eprintln!("dbp-serve: WAL prune failed: {e}");
                        }
                    }
                    Ok(None) => {}
                    Err(e) => eprintln!("dbp-serve: cannot read oldest kept checkpoint: {e}"),
                },
                Err(e) => eprintln!("dbp-serve: WAL rotation failed: {e}"),
            }
        }
        Ok(seq)
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Join engines even through a poisoned lock: the coordinator
        // state may be suspect, but the engine threads still need their
        // shutdown command.
        let mut core = match self.core.lock() {
            Ok(core) => core,
            Err(poisoned) => poisoned.into_inner(),
        };
        for engine in &mut core.engines {
            engine.join();
        }
    }
}
