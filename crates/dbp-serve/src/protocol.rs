//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, in order. The
//! module is transport-agnostic — it maps text lines to [`Request`] and
//! [`Response`] values and back, and knows nothing about sockets — so an
//! async front-end can be swapped in later without touching the
//! scheduling semantics.
//!
//! # Requests
//!
//! ```json
//! {"op":"submit","tenant":"t1","job":42,"size":0.5,"arrival":100,"departure":220}
//! {"op":"status"}
//! {"op":"checkpoint"}
//! {"op":"metrics"}
//! {"op":"shutdown"}
//! ```
//!
//! `submit` carries the job's size as either `size` (a fraction of
//! server capacity in `(0, 1]`) or `size_raw` (the exact fixed-point
//! value, `raw / 2^24`; takes precedence when both are present — the
//! load generator uses it so request content round-trips bit-exactly).
//! `departure` is the tenant's departure *estimate*: the clairvoyant
//! input the paper's setting is built on.
//!
//! # Responses
//!
//! Every response carries `"ok"`. Placement decisions are **not**
//! errors either way — a shed or invalid job is a typed reject:
//!
//! ```json
//! {"ok":true,"op":"submit","tenant":"t1","job":42,"placed":true,"shard":1,"bin":7,"bin_id":4294967303}
//! {"ok":true,"op":"submit","tenant":"t1","job":43,"placed":false,"reject":"fleet_capacity","detail":"..."}
//! {"ok":false,"error":"..."}
//! ```
//!
//! `bin_id` is the fleet-global bin identity `shard << 32 | bin`, so
//! tenants can correlate placements without knowing the shard layout.
//! Protocol errors (`"ok":false`) are reserved for malformed requests
//! and internal failures.

use dbp_core::Time;
use dbp_obs::json::{escape, parse, Json};
use std::fmt::Write as _;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit one job for placement.
    Submit(Submit),
    /// Service counters and restart cursor.
    Status,
    /// Write a checkpoint now.
    Checkpoint,
    /// The Prometheus exposition, JSON-wrapped.
    Metrics,
    /// Stop accepting connections (a final checkpoint is written first).
    Shutdown,
}

/// One job submission: the clairvoyant arrival the paper's model feeds
/// an online packer, tagged with the tenant it belongs to.
#[derive(Clone, Debug, PartialEq)]
pub struct Submit {
    /// Accounting dimension; free-form non-empty label.
    pub tenant: String,
    /// Globally unique job id (the client owns the id space; the
    /// service enforces uniqueness via its id watermark).
    pub job: u32,
    /// Size as a fraction of server capacity; `None` when the request
    /// carried the exact `size_raw` instead.
    pub size: Option<f64>,
    /// Exact fixed-point size (`raw / 2^24`); takes precedence.
    pub size_raw: Option<u64>,
    /// Arrival tick; must be non-decreasing across all submissions.
    pub arrival: Time,
    /// Departure-estimate tick; must exceed `arrival`.
    pub departure: Time,
}

/// Why a submission was turned away (a decision, not an error).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Placing the job would have opened a server beyond the fleet cap;
    /// the job was shed by admission control.
    FleetCapacity,
    /// The job id was already decided (placed or shed) earlier.
    DuplicateJob,
    /// The arrival tick is older than the stream clock.
    ArrivalOutOfOrder,
    /// Size or interval outside the model's domain.
    InvalidJob,
}

impl RejectReason {
    /// The stable wire code.
    pub fn code(self) -> &'static str {
        match self {
            RejectReason::FleetCapacity => "fleet_capacity",
            RejectReason::DuplicateJob => "duplicate_job",
            RejectReason::ArrivalOutOfOrder => "arrival_out_of_order",
            RejectReason::InvalidJob => "invalid_job",
        }
    }

    /// Parses a wire code.
    pub fn from_code(code: &str) -> Option<RejectReason> {
        Some(match code {
            "fleet_capacity" => RejectReason::FleetCapacity,
            "duplicate_job" => RejectReason::DuplicateJob,
            "arrival_out_of_order" => RejectReason::ArrivalOutOfOrder,
            "invalid_job" => RejectReason::InvalidJob,
            _ => return None,
        })
    }
}

/// The `status` response body.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatusBody {
    /// Packer roster name the service runs.
    pub algo: String,
    /// Shard count.
    pub shards: usize,
    /// Id watermark: every job id below it has been decided. A resuming
    /// load generator continues from here.
    pub watermark: u32,
    /// Jobs placed since the state the service booted from.
    pub placed: u64,
    /// Jobs shed by the fleet cap.
    pub shed: u64,
    /// Jobs rejected (duplicate / out-of-order / invalid).
    pub rejected: u64,
    /// Open bins across the fleet, as of the last placement per shard.
    pub open_bins: usize,
    /// Sequence number of the newest checkpoint written (0 = none).
    pub checkpoint_seq: u64,
    /// Global decision sequence: decisions made since genesis,
    /// including ones recovered from the write-ahead log.
    pub decision_seq: u64,
}

/// A response line.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The job was admitted and placed.
    Placed {
        /// Echoed tenant.
        tenant: String,
        /// Echoed job id.
        job: u32,
        /// Shard that owns the placement.
        shard: usize,
        /// Bin id within the shard.
        bin: u32,
    },
    /// The job was turned away with a typed reason.
    Rejected {
        /// Echoed tenant.
        tenant: String,
        /// Echoed job id.
        job: u32,
        /// The typed reason.
        reason: RejectReason,
        /// Human-readable specifics.
        detail: String,
    },
    /// `status` body.
    Status(StatusBody),
    /// A checkpoint was written with this sequence number.
    Checkpointed {
        /// The checkpoint's sequence number.
        seq: u64,
    },
    /// The Prometheus exposition text.
    Metrics {
        /// The exposition body (newline-separated inside one JSON string).
        text: String,
    },
    /// The service acknowledged shutdown.
    ShuttingDown,
    /// A protocol or internal error (`"ok":false`).
    Error {
        /// What went wrong.
        what: String,
    },
}

impl Response {
    /// The fleet-global bin identity `shard << 32 | bin` for placements.
    pub fn global_bin_id(shard: usize, bin: u32) -> u64 {
        ((shard as u64) << 32) | u64::from(bin)
    }
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn time_field(v: &Json, key: &str) -> Result<Time, String> {
    v.get(key)
        .and_then(Json::as_i64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = parse(line)?;
    let op = str_field(&doc, "op")?;
    match op.as_str() {
        "submit" => {
            let tenant = str_field(&doc, "tenant")?;
            if tenant.is_empty() {
                return Err("tenant must be non-empty".into());
            }
            let job = u64_field(&doc, "job")?;
            let job = u32::try_from(job).map_err(|_| format!("job id {job} overflows u32"))?;
            let size_raw = doc.get("size_raw").and_then(Json::as_u64);
            let size = doc.get("size").and_then(Json::as_f64);
            if size.is_none() && size_raw.is_none() {
                return Err("submit needs \"size\" or \"size_raw\"".into());
            }
            Ok(Request::Submit(Submit {
                tenant,
                job,
                size,
                size_raw,
                arrival: time_field(&doc, "arrival")?,
                departure: time_field(&doc, "departure")?,
            }))
        }
        "status" => Ok(Request::Status),
        "checkpoint" => Ok(Request::Checkpoint),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Renders one request as its wire line (without the newline).
pub fn render_request(req: &Request) -> String {
    match req {
        Request::Submit(s) => {
            let mut out = format!(
                "{{\"op\":\"submit\",\"tenant\":\"{}\",\"job\":{}",
                escape(&s.tenant),
                s.job
            );
            if let Some(raw) = s.size_raw {
                let _ = write!(out, ",\"size_raw\":{raw}");
            } else if let Some(f) = s.size {
                let _ = write!(out, ",\"size\":{f}");
            }
            let _ = write!(
                out,
                ",\"arrival\":{},\"departure\":{}}}",
                s.arrival, s.departure
            );
            out
        }
        Request::Status => "{\"op\":\"status\"}".into(),
        Request::Checkpoint => "{\"op\":\"checkpoint\"}".into(),
        Request::Metrics => "{\"op\":\"metrics\"}".into(),
        Request::Shutdown => "{\"op\":\"shutdown\"}".into(),
    }
}

/// Renders one response as its wire line (without the newline).
pub fn render_response(resp: &Response) -> String {
    match resp {
        Response::Placed {
            tenant,
            job,
            shard,
            bin,
        } => format!(
            "{{\"ok\":true,\"op\":\"submit\",\"tenant\":\"{}\",\"job\":{job},\"placed\":true,\
             \"shard\":{shard},\"bin\":{bin},\"bin_id\":{}}}",
            escape(tenant),
            Response::global_bin_id(*shard, *bin)
        ),
        Response::Rejected {
            tenant,
            job,
            reason,
            detail,
        } => format!(
            "{{\"ok\":true,\"op\":\"submit\",\"tenant\":\"{}\",\"job\":{job},\"placed\":false,\
             \"reject\":\"{}\",\"detail\":\"{}\"}}",
            escape(tenant),
            reason.code(),
            escape(detail)
        ),
        Response::Status(s) => format!(
            "{{\"ok\":true,\"op\":\"status\",\"algo\":\"{}\",\"shards\":{},\"watermark\":{},\
             \"placed\":{},\"shed\":{},\"rejected\":{},\"open_bins\":{},\"checkpoint_seq\":{},\
             \"decision_seq\":{}}}",
            escape(&s.algo),
            s.shards,
            s.watermark,
            s.placed,
            s.shed,
            s.rejected,
            s.open_bins,
            s.checkpoint_seq,
            s.decision_seq
        ),
        Response::Checkpointed { seq } => {
            format!("{{\"ok\":true,\"op\":\"checkpoint\",\"seq\":{seq}}}")
        }
        Response::Metrics { text } => format!(
            "{{\"ok\":true,\"op\":\"metrics\",\"text\":\"{}\"}}",
            escape(text)
        ),
        Response::ShuttingDown => "{\"ok\":true,\"op\":\"shutdown\"}".into(),
        Response::Error { what } => format!("{{\"ok\":false,\"error\":\"{}\"}}", escape(what)),
    }
}

/// Parses one response line (the client half of the protocol; the load
/// generator and the differential tests live on this).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let doc = parse(line)?;
    let ok = match doc.get("ok") {
        Some(Json::Bool(b)) => *b,
        _ => return Err("missing boolean field \"ok\"".into()),
    };
    if !ok {
        return Ok(Response::Error {
            what: str_field(&doc, "error")?,
        });
    }
    let op = str_field(&doc, "op")?;
    match op.as_str() {
        "submit" => {
            let tenant = str_field(&doc, "tenant")?;
            let job = u64_field(&doc, "job")?;
            let job = u32::try_from(job).map_err(|_| "job id overflows u32".to_string())?;
            let placed = matches!(doc.get("placed"), Some(Json::Bool(true)));
            if placed {
                Ok(Response::Placed {
                    tenant,
                    job,
                    shard: u64_field(&doc, "shard")? as usize,
                    bin: u64_field(&doc, "bin")?
                        .try_into()
                        .map_err(|_| "bin overflows u32".to_string())?,
                })
            } else {
                let code = str_field(&doc, "reject")?;
                Ok(Response::Rejected {
                    tenant,
                    job,
                    reason: RejectReason::from_code(&code)
                        .ok_or_else(|| format!("unknown reject code {code:?}"))?,
                    detail: str_field(&doc, "detail").unwrap_or_default(),
                })
            }
        }
        "status" => Ok(Response::Status(StatusBody {
            algo: str_field(&doc, "algo")?,
            shards: u64_field(&doc, "shards")? as usize,
            watermark: u64_field(&doc, "watermark")?
                .try_into()
                .map_err(|_| "watermark overflows u32".to_string())?,
            placed: u64_field(&doc, "placed")?,
            shed: u64_field(&doc, "shed")?,
            rejected: u64_field(&doc, "rejected")?,
            open_bins: u64_field(&doc, "open_bins")? as usize,
            checkpoint_seq: u64_field(&doc, "checkpoint_seq")?,
            // Absent when talking to a pre-WAL server.
            decision_seq: doc.get("decision_seq").and_then(Json::as_u64).unwrap_or(0),
        })),
        "checkpoint" => Ok(Response::Checkpointed {
            seq: u64_field(&doc, "seq")?,
        }),
        "metrics" => Ok(Response::Metrics {
            text: str_field(&doc, "text")?,
        }),
        "shutdown" => Ok(Response::ShuttingDown),
        other => Err(format!("unknown response op {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let reqs = [
            Request::Submit(Submit {
                tenant: "t1".into(),
                job: 42,
                size: None,
                size_raw: Some(8_388_608),
                arrival: 100,
                departure: 220,
            }),
            Request::Status,
            Request::Checkpoint,
            Request::Metrics,
            Request::Shutdown,
        ];
        for r in reqs {
            let line = render_request(&r);
            assert_eq!(parse_request(&line).unwrap(), r, "{line}");
        }
        // Fractional size also round-trips.
        let r = parse_request(
            r#"{"op":"submit","tenant":"a","job":1,"size":0.5,"arrival":0,"departure":9}"#,
        )
        .unwrap();
        match r {
            Request::Submit(s) => {
                assert_eq!(s.size, Some(0.5));
                assert_eq!(s.size_raw, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn response_lines_round_trip() {
        let resps = [
            Response::Placed {
                tenant: "t1".into(),
                job: 7,
                shard: 1,
                bin: 7,
            },
            Response::Rejected {
                tenant: "t1".into(),
                job: 8,
                reason: RejectReason::FleetCapacity,
                detail: "fleet cap 4 reached".into(),
            },
            Response::Status(StatusBody {
                algo: "first-fit".into(),
                shards: 2,
                watermark: 9,
                placed: 7,
                shed: 1,
                rejected: 1,
                open_bins: 3,
                checkpoint_seq: 2,
                decision_seq: 9,
            }),
            Response::Checkpointed { seq: 3 },
            Response::Metrics {
                text: "dbp_serve_jobs_total 1\n".into(),
            },
            Response::ShuttingDown,
            Response::Error {
                what: "bad line".into(),
            },
        ];
        for r in resps {
            let line = render_response(&r);
            assert_eq!(parse_response(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{}").is_err());
        assert!(parse_request(r#"{"op":"teleport"}"#).is_err());
        // submit with a missing size
        assert!(
            parse_request(r#"{"op":"submit","tenant":"a","job":1,"arrival":0,"departure":9}"#)
                .is_err()
        );
        // empty tenant
        assert!(parse_request(
            r#"{"op":"submit","tenant":"","job":1,"size":0.5,"arrival":0,"departure":9}"#
        )
        .is_err());
        // job id past u32
        assert!(parse_request(
            r#"{"op":"submit","tenant":"a","job":4294967296,"size":0.5,"arrival":0,"departure":9}"#
        )
        .is_err());
    }

    #[test]
    fn global_bin_ids_are_injective_across_shards() {
        assert_eq!(Response::global_bin_id(0, 7), 7);
        assert_eq!(Response::global_bin_id(1, 7), (1 << 32) | 7);
        assert_ne!(Response::global_bin_id(1, 0), Response::global_bin_id(0, 1));
    }
}
