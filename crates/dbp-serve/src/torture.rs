//! The crash-point torture harness: crash at every IO boundary, prove
//! recovery from every prefix.
//!
//! The harness leans on [`dbp_resilience::failpoint`]: every WAL and
//! checkpoint IO operation in the serving stack calls the failpoint
//! hook first, so the op index space *is* the crash-point space. One
//! sweep:
//!
//! 1. **Reference run** — a fresh service over a deterministic job
//!    stream, responses recorded, total IO ops `T` counted.
//! 2. **For every crash point `k <= T`** (at a configurable stride):
//!    fresh directories, arm the thread so IO op `k` and everything
//!    after it fails, drive the same stream until the service poisons
//!    itself, then disarm and boot a recovery service from whatever the
//!    "crashed" one left on disk. The recovered watermark must cover
//!    every acknowledged decision (under `fsync=always`), resuming the
//!    stream from the watermark must reproduce the reference responses
//!    **bit for bit**, already-decided ids must come back as typed
//!    `duplicate_job` rejects (exactly-once), and the completed run
//!    must end at the reference watermark.
//! 3. **Corruption drills** — torn WAL tails, mid-file bit flips, a
//!    CRC-consistent outcome rewrite (must *refuse* to boot: the log
//!    disagrees with what was acknowledged), a torn newest checkpoint
//!    with the WAL subsuming it, and a cold empty-directory boot.
//!
//! Error injection models a dying disk, not lost page cache: an
//! in-process "crash" keeps bytes that were written but not synced, so
//! the sweep proves IO-failure handling plus recovery correctness for
//! every prefix. The *kill-grade* claim — unsynced bytes actually
//! vanish — is covered by the subprocess `DBP_CRASH_AT_IO` abort mode
//! (a real `SIGABRT` mid-stream) driven from CI's torture-smoke job.

use crate::protocol::{render_response, RejectReason, Request, Response, Submit};
use crate::service::{ServeConfig, Service};
use crate::wal::{self, crc32, FsyncPolicy};
use dbp_core::{DbpError, Size};
use dbp_resilience::failpoint;
use std::path::{Path, PathBuf};

/// What a torture run exercises.
#[derive(Clone, Debug)]
pub struct TortureConfig {
    /// Jobs in the deterministic stream.
    pub jobs: u32,
    /// Shard count.
    pub shards: usize,
    /// Packer roster name.
    pub algo: String,
    /// Fleet cap (exercises sheds).
    pub fleet_cap: Option<usize>,
    /// Auto-checkpoint cadence for the sweep.
    pub checkpoint_every: u64,
    /// WAL fsync policy under test.
    pub fsync: FsyncPolicy,
    /// Exercise every `stride`-th crash point (1 = all of them).
    pub stride: u64,
    /// Scratch root; defaults to a tagged directory under the system
    /// temp dir. Kept on disk when violations are found.
    pub scratch: Option<PathBuf>,
    /// Tag namespacing the default scratch root.
    pub tag: String,
}

impl TortureConfig {
    /// A small sweep that still crosses several checkpoints: the
    /// `--self-test` configuration.
    pub fn quick(tag: &str) -> TortureConfig {
        TortureConfig {
            jobs: 60,
            shards: 2,
            algo: "first-fit".into(),
            fleet_cap: Some(5),
            checkpoint_every: 20,
            fsync: FsyncPolicy::Always,
            stride: 1,
            scratch: None,
            tag: tag.to_string(),
        }
    }
}

/// The sweep's verdict.
#[derive(Debug, Default)]
pub struct TortureReport {
    /// IO ops the uncrashed reference run performed — the size of the
    /// crash-point space.
    pub io_ops_total: u64,
    /// Crash points actually exercised.
    pub crash_points: u64,
    /// Corruption drills run.
    pub drills: u64,
    /// Every violated invariant, with its crash point.
    pub violations: Vec<String>,
    /// Where the failing fixtures live (kept when violations exist).
    pub scratch: PathBuf,
}

impl TortureReport {
    /// True when every crash point recovered cleanly.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The deterministic torture stream: placements and sheds, three
/// tenants, exact fixed-point sizes.
pub fn torture_stream(n: u32) -> Vec<Submit> {
    (0..n)
        .map(|i| {
            let size = 0.15 + 0.6 * f64::from(i.wrapping_mul(2_654_435_761) % 997) / 997.0;
            let arrival = i64::from(i / 2);
            Submit {
                tenant: format!("tenant-{}", i % 3),
                job: i,
                size: None,
                size_raw: Some(Size::from_f64(size).raw()),
                arrival,
                departure: arrival + 4 + i64::from(i % 23),
            }
        })
        .collect()
}

fn serve_cfg(t: &TortureConfig, dir: &Path, checkpoint_every: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(t.shards, &t.algo);
    cfg.fleet_cap = t.fleet_cap;
    cfg.checkpoint_dir = Some(dir.join("ckpt"));
    cfg.checkpoint_every = checkpoint_every;
    cfg.wal_dir = Some(dir.join("wal"));
    cfg.fsync = t.fsync;
    cfg
}

fn fresh_dir(root: &Path, name: &str) -> Result<PathBuf, DbpError> {
    let dir = root.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| DbpError::Internal {
        what: format!("cannot create scratch {}: {e}", dir.display()),
    })?;
    Ok(dir)
}

fn watermark_of(service: &Service) -> Result<u32, String> {
    match service.handle(&Request::Status) {
        Response::Status(s) => Ok(s.watermark),
        other => Err(format!("status failed: {other:?}")),
    }
}

/// Runs `jobs` through `service`, recording rendered responses; stops
/// at the first `Response::Error` (the injected crash) and reports how
/// many decisions were acknowledged before it.
fn drive(service: &Service, jobs: &[Submit]) -> (Vec<String>, bool) {
    let mut acked = Vec::with_capacity(jobs.len());
    for s in jobs {
        let resp = service.handle(&Request::Submit(s.clone()));
        if matches!(resp, Response::Error { .. }) {
            return (acked, true);
        }
        acked.push(render_response(&resp));
    }
    (acked, false)
}

/// One full torture run: determinism check, crash-point sweep,
/// corruption drills.
pub fn run(t: &TortureConfig) -> Result<TortureReport, DbpError> {
    let scratch = match &t.scratch {
        Some(p) => p.clone(),
        None => std::env::temp_dir().join(format!("dbp-torture-{}", t.tag)),
    };
    let _ = std::fs::remove_dir_all(&scratch);
    let jobs = torture_stream(t.jobs);
    let mut report = TortureReport {
        scratch: scratch.clone(),
        ..TortureReport::default()
    };

    // Reference run: count the crash-point space and pin the expected
    // responses. A second run must agree bit for bit before any crash
    // testing means anything.
    failpoint::reset_thread();
    let reference = {
        let dir = fresh_dir(&scratch, "reference")?;
        let service = Service::start(serve_cfg(t, &dir, t.checkpoint_every))?;
        let (acked, errored) = drive(&service, &jobs);
        if errored {
            return Err(DbpError::Internal {
                what: "reference torture run failed with no injection armed".into(),
            });
        }
        acked
    };
    report.io_ops_total = failpoint::thread_ops();
    {
        let dir = fresh_dir(&scratch, "determinism")?;
        let service = Service::start(serve_cfg(t, &dir, t.checkpoint_every))?;
        let (again, _) = drive(&service, &jobs);
        if again != reference {
            report
                .violations
                .push("determinism: two uncrashed runs disagree".into());
        }
    }

    // The crash-point sweep.
    let stride = t.stride.max(1);
    let mut k = 1;
    while k <= report.io_ops_total {
        if let Err(v) = crash_point_case(t, &scratch, &jobs, &reference, k) {
            report.violations.push(format!("crash point {k}: {v}"));
        }
        report.crash_points += 1;
        k += stride;
    }

    // Corruption drills.
    for (name, drill) in DRILLS {
        report.drills += 1;
        if let Err(v) = drill(t, &scratch, &jobs, &reference) {
            report.violations.push(format!("drill {name}: {v}"));
        }
    }

    failpoint::reset_thread();
    if report.passed() {
        let _ = std::fs::remove_dir_all(&scratch);
    }
    Ok(report)
}

/// One crash point: fail every IO op from `k` on, then recover and
/// verify every durability invariant.
fn crash_point_case(
    t: &TortureConfig,
    scratch: &Path,
    jobs: &[Submit],
    reference: &[String],
    k: u64,
) -> Result<(), String> {
    let dir =
        fresh_dir(scratch, &format!("crash-{k:06}")).map_err(|e| format!("scratch setup: {e}"))?;
    let cfg = serve_cfg(t, &dir, t.checkpoint_every);
    let guard = failpoint::FailGuard::fail_from(k);
    let (acked, errored) = match Service::start(cfg.clone()) {
        Ok(service) => {
            let out = drive(&service, jobs);
            drop(service);
            out
        }
        // Crashed during boot: nothing was acknowledged.
        Err(_) => (Vec::new(), true),
    };
    drop(guard);

    if acked.iter().zip(reference.iter()).any(|(a, b)| a != b) {
        return Err("responses diverged from the reference BEFORE the crash".into());
    }

    // Recovery must always boot...
    let service = Service::start(cfg).map_err(|e| format!("recovery boot failed: {e}"))?;
    let watermark = watermark_of(&service)? as usize;

    // ...and must cover every acknowledged decision: under the
    // write-ahead discipline a response is externalized only after its
    // frame was appended. (It may cover at most one more — a frame
    // whose append succeeded but whose fsync drew the injected error,
    // so the client saw an error for a decision that survived.)
    if watermark < acked.len() {
        return Err(format!(
            "recovered watermark {watermark} forgot acknowledged decisions (client saw {})",
            acked.len()
        ));
    }
    if !errored && watermark != acked.len() {
        return Err(format!(
            "no crash surfaced, yet watermark {watermark} != {} decisions",
            acked.len()
        ));
    }

    // Exactly-once: everything below the watermark is a typed
    // duplicate, not a re-decision.
    if watermark > 0 {
        let probe = &jobs[watermark - 1];
        match service.handle(&Request::Submit(probe.clone())) {
            Response::Rejected {
                reason: RejectReason::DuplicateJob,
                ..
            } => {}
            other => {
                return Err(format!(
                    "job {} below the watermark was not duplicate-rejected: {other:?}",
                    probe.job
                ))
            }
        }
    }

    // Resume from the watermark: the tail must be bit-identical to the
    // uncrashed reference.
    let (tail, errored_again) = drive(&service, &jobs[watermark..]);
    if errored_again {
        return Err("recovered service failed while resuming".into());
    }
    if tail != reference[watermark..] {
        let at = tail
            .iter()
            .zip(reference[watermark..].iter())
            .position(|(a, b)| a != b)
            .unwrap_or(tail.len());
        return Err(format!(
            "resumed responses diverge from the reference at job {}",
            watermark + at
        ));
    }
    let final_mark = watermark_of(&service)?;
    if final_mark as usize != jobs.len() {
        return Err(format!(
            "completed run ends at watermark {final_mark}, expected {}",
            jobs.len()
        ));
    }
    Ok(())
}

type Drill = fn(&TortureConfig, &Path, &[Submit], &[String]) -> Result<(), String>;

const DRILLS: &[(&str, Drill)] = &[
    ("torn-wal-tail", drill_torn_tail),
    ("wal-bit-flip", drill_bit_flip),
    ("crc-fixed-outcome-rewrite", drill_outcome_rewrite),
    ("torn-checkpoint-wal-subsumes", drill_torn_checkpoint),
    ("cold-empty-boot", drill_cold_boot),
];

/// Builds a victim: a service over the prefix of the stream that dies
/// without a graceful shutdown, leaving checkpoints + a live WAL tail.
fn build_victim(
    t: &TortureConfig,
    scratch: &Path,
    jobs: &[Submit],
    name: &str,
    checkpoint_every: u64,
) -> Result<(PathBuf, ServeConfig, usize), String> {
    let dir = fresh_dir(scratch, name).map_err(|e| e.to_string())?;
    let cfg = serve_cfg(t, &dir, checkpoint_every);
    let service = Service::start(cfg.clone()).map_err(|e| format!("victim boot: {e}"))?;
    let upto = jobs.len() * 3 / 4;
    let (acked, errored) = drive(&service, &jobs[..upto]);
    if errored || acked.len() != upto {
        return Err("victim run failed before the corruption step".into());
    }
    Ok((dir, cfg, upto))
}

/// The victim's largest WAL segment — the one worth corrupting.
fn fattest_segment(dir: &Path) -> Result<PathBuf, String> {
    let wal_dir = dir.join("wal");
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(&wal_dir).map_err(|e| format!("list wal: {e}"))? {
        let entry = entry.map_err(|e| format!("list wal: {e}"))?;
        let len = entry.metadata().map_err(|e| e.to_string())?.len();
        if entry
            .file_name()
            .to_str()
            .is_some_and(|n| wal::parse_segment_name(n).is_some())
            && best.as_ref().is_none_or(|(l, _)| len > *l)
        {
            best = Some((len, entry.path()));
        }
    }
    best.map(|(_, p)| p)
        .ok_or_else(|| "victim left no WAL segments".into())
}

/// Boots a recovery service and proves the surviving prefix + resumed
/// tail still match the reference bit for bit.
fn verify_degraded_recovery(
    cfg: &ServeConfig,
    jobs: &[Submit],
    reference: &[String],
    max_watermark: usize,
    expect_truncation: bool,
) -> Result<(), String> {
    let service = Service::start(cfg.clone()).map_err(|e| format!("recovery boot failed: {e}"))?;
    let watermark = watermark_of(&service)? as usize;
    if watermark > max_watermark {
        return Err(format!(
            "watermark {watermark} exceeds the {max_watermark} decisions that ever happened"
        ));
    }
    if expect_truncation {
        let rec = service.recovery().ok_or("no recovery stats")?;
        if rec.truncated_files == 0 {
            return Err("corruption was not detected (no truncation recorded)".into());
        }
    }
    let (tail, errored) = drive(&service, &jobs[watermark..]);
    if errored {
        return Err("recovered service failed while resuming".into());
    }
    if tail != reference[watermark..] {
        return Err("resumed responses diverge from the reference".into());
    }
    Ok(())
}

fn drill_torn_tail(
    t: &TortureConfig,
    scratch: &Path,
    jobs: &[Submit],
    reference: &[String],
) -> Result<(), String> {
    let (dir, cfg, upto) = build_victim(t, scratch, jobs, "drill-torn", t.checkpoint_every)?;
    let seg = fattest_segment(&dir)?;
    let len = std::fs::metadata(&seg).map_err(|e| e.to_string())?.len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .map_err(|e| e.to_string())?;
    f.set_len(len.saturating_sub(3))
        .map_err(|e| e.to_string())?;
    drop(f);
    verify_degraded_recovery(&cfg, jobs, reference, upto, true)
}

fn drill_bit_flip(
    t: &TortureConfig,
    scratch: &Path,
    jobs: &[Submit],
    reference: &[String],
) -> Result<(), String> {
    let (dir, cfg, upto) = build_victim(t, scratch, jobs, "drill-flip", t.checkpoint_every)?;
    let seg = fattest_segment(&dir)?;
    let mut bytes = std::fs::read(&seg).map_err(|e| e.to_string())?;
    if bytes.len() <= wal::WAL_HEADER_LEN as usize {
        return Err("segment too small to flip".into());
    }
    let mid = (bytes.len() + wal::WAL_HEADER_LEN as usize) / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&seg, &bytes).map_err(|e| e.to_string())?;
    verify_degraded_recovery(&cfg, jobs, reference, upto, true)
}

/// Rewrites the outcome of the victim's last WAL frame and *fixes the
/// CRC*, simulating a log that is internally consistent but disagrees
/// with what clients were told. Recovery must refuse to boot.
fn drill_outcome_rewrite(
    t: &TortureConfig,
    scratch: &Path,
    jobs: &[Submit],
    _reference: &[String],
) -> Result<(), String> {
    // No checkpoints: every frame replays, so the mutation is always
    // in the replayed range.
    let (dir, cfg, _) = build_victim(t, scratch, jobs, "drill-rewrite", u64::MAX / 2)?;
    let seg = fattest_segment(&dir)?;
    let mut bytes = std::fs::read(&seg).map_err(|e| e.to_string())?;
    // Walk the frames to the last one.
    let mut at = wal::WAL_HEADER_LEN as usize;
    let mut last: Option<(usize, usize)> = None;
    while at + 8 <= bytes.len() {
        let plen = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        if at + 8 + plen > bytes.len() {
            break;
        }
        last = Some((at, plen));
        at += 8 + plen;
    }
    let (at, plen) = last.ok_or("victim segment holds no frames")?;
    // Payload layout: version(1) seq(8) stream(4) job(4) kind(1)
    // size(8) arrival(8) departure(8) outcome-kind(1)...
    let outcome_off = at + 8 + 42;
    let kind = bytes[outcome_off];
    if kind > 1 {
        return Err("expected a placed/shed frame last".into());
    }
    bytes[outcome_off] = 1 - kind; // Placed <-> Shed
    let crc = crc32(&bytes[at + 8..at + 8 + plen]);
    bytes[at + 4..at + 8].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(&seg, &bytes).map_err(|e| e.to_string())?;
    match Service::start(cfg) {
        Err(e) if e.to_string().contains("diverged") => Ok(()),
        Err(e) => Err(format!("boot refused, but for the wrong reason: {e}")),
        Ok(_) => Err("recovery CONSUMED a log that disagrees with acknowledged responses".into()),
    }
}

fn drill_torn_checkpoint(
    t: &TortureConfig,
    scratch: &Path,
    jobs: &[Submit],
    reference: &[String],
) -> Result<(), String> {
    let (dir, cfg, upto) = build_victim(t, scratch, jobs, "drill-torn-ckpt", t.checkpoint_every)?;
    // Tear the newest checkpoint mid-file; the WAL subsumes it, so the
    // recovered watermark must still reach every decision.
    let ckpt_dir = dir.join("ckpt");
    let newest = std::fs::read_dir(&ckpt_dir)
        .map_err(|e| format!("list ckpt: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
        .max()
        .ok_or("victim wrote no checkpoints")?;
    let bytes = std::fs::read(&newest).map_err(|e| e.to_string())?;
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).map_err(|e| e.to_string())?;
    let service = Service::start(cfg).map_err(|e| format!("recovery boot failed: {e}"))?;
    if service.skipped_checkpoints().is_empty() {
        return Err("the torn checkpoint was not detected".into());
    }
    let watermark = watermark_of(&service)? as usize;
    if watermark != upto {
        return Err(format!(
            "WAL should subsume the torn checkpoint: watermark {watermark}, expected {upto}"
        ));
    }
    let (tail, errored) = drive(&service, &jobs[watermark..]);
    if errored || tail != reference[watermark..] {
        return Err("resumed responses diverge from the reference".into());
    }
    Ok(())
}

fn drill_cold_boot(
    t: &TortureConfig,
    scratch: &Path,
    jobs: &[Submit],
    reference: &[String],
) -> Result<(), String> {
    let dir = fresh_dir(scratch, "drill-cold").map_err(|e| e.to_string())?;
    let cfg = serve_cfg(t, &dir, t.checkpoint_every);
    let service = Service::start(cfg).map_err(|e| format!("cold boot failed: {e}"))?;
    if watermark_of(&service)? != 0 {
        return Err("cold boot has a nonzero watermark".into());
    }
    let (all, errored) = drive(&service, jobs);
    if errored || all != reference {
        return Err("cold-boot run diverges from the reference".into());
    }
    Ok(())
}

/// The `dbp serve-torture --self-test` entry point: a quick sweep over
/// every crash point of a small stream, plus all corruption drills.
pub fn self_test(tag: &str) -> Result<TortureReport, DbpError> {
    run(&TortureConfig::quick(tag))
}
