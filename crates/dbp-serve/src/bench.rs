//! Serving-path benchmark cells: what does durability cost?
//!
//! The engine benchmarks (`dbp-bench`) measure raw packing throughput;
//! this module measures the *serving* path — protocol structs in,
//! decisions out, with the WAL in the loop — across fsync policies, so
//! `BENCH_serve.json` answers "what does `--fsync always` cost over
//! `interval` / `never` / no WAL at all" with numbers the perf gate
//! re-checks.
//!
//! The baseline schema is `dbp-serve/bench-v2`:
//!
//! ```json
//! { "schema": "dbp-serve/bench-v2", "mode": "short",
//!   "host_parallelism": 4,
//!   "results": [
//!     { "algo": "first-fit", "fsync": "always", "jobs": 800,
//!       "items_per_sec": 41000.0, "p50_us": 19.0, "p99_us": 130.0 }
//!   ] }
//! ```
//!
//! `dbp serve-bench --out BENCH_serve.json` records it and `dbp bench
//! --check BENCH_serve.json` re-measures every cell (best-of-3, same
//! job count, fresh scratch directories) and gates on `items_per_sec`
//! exactly like the engine baselines, reusing `dbp-bench`'s
//! [`CheckReport`] so the CI artifact format is shared. Latency
//! percentiles are recorded for the docs but not gated — they are far
//! noisier than throughput on shared runners.

use crate::protocol::{Request, Response};
use crate::service::{ServeConfig, Service};
use crate::torture::torture_stream;
use crate::wal::FsyncPolicy;
use dbp_bench::check::{CheckReport, CheckRow};
use dbp_core::DbpError;
use dbp_obs::json::{self, Json};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The serve-bench baseline schema tag.
pub const SERVE_SCHEMA: &str = "dbp-serve/bench-v2";

/// The fsync policies a recording sweeps. `"off"` means no WAL at all
/// (the pre-durability serving path), the rest are WAL policies.
pub const FSYNC_VARIANTS: &[&str] = &["off", "always", "interval:20", "never"];

/// One recorded serving-path measurement.
#[derive(Clone, Debug)]
pub struct ServeCell {
    /// Packer roster name.
    pub algo: String,
    /// Fsync variant (see [`FSYNC_VARIANTS`]).
    pub fsync: String,
    /// Jobs the cell streamed (the check re-runs the same count).
    pub jobs: u32,
    /// Recorded throughput.
    pub items_per_sec: f64,
    /// Median per-decision latency, microseconds (informative).
    pub p50_us: f64,
    /// Tail per-decision latency, microseconds (informative).
    pub p99_us: f64,
}

impl ServeCell {
    /// The display key the gate reports the cell under.
    pub fn label(&self) -> String {
        format!("{}/fsync={}", self.algo, self.fsync)
    }
}

/// A parsed `dbp-serve/bench-v2` baseline.
#[derive(Clone, Debug)]
pub struct ServeBaseline {
    /// `"short"` (CI smoke) or `"full"`.
    pub mode: String,
    /// Parallelism of the recording host.
    pub host_parallelism: usize,
    /// The measurements, in file order.
    pub cells: Vec<ServeCell>,
}

/// Parses a serve-bench baseline.
pub fn parse_serve_baseline(text: &str) -> Result<ServeBaseline, String> {
    let root = json::parse(text)?;
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema")?;
    if schema != SERVE_SCHEMA {
        return Err(format!("unsupported serve baseline schema {schema:?}"));
    }
    let mode = root
        .get("mode")
        .and_then(Json::as_str)
        .ok_or("missing mode")?
        .to_string();
    let host_parallelism = root
        .get("host_parallelism")
        .and_then(Json::as_u64)
        .unwrap_or(1) as usize;
    let mut cells = Vec::new();
    for cell in root
        .get("results")
        .and_then(Json::as_array)
        .ok_or("results is not an array")?
    {
        let fsync = cell
            .get("fsync")
            .and_then(Json::as_str)
            .ok_or("cell missing fsync")?;
        if fsync != "off" {
            FsyncPolicy::parse(fsync).map_err(|e| format!("cell fsync: {e}"))?;
        }
        cells.push(ServeCell {
            algo: cell
                .get("algo")
                .and_then(Json::as_str)
                .ok_or("cell missing algo")?
                .to_string(),
            fsync: fsync.to_string(),
            jobs: u32::try_from(
                cell.get("jobs")
                    .and_then(Json::as_u64)
                    .ok_or("cell missing jobs")?,
            )
            .map_err(|_| "jobs overflows u32".to_string())?,
            items_per_sec: cell
                .get("items_per_sec")
                .and_then(Json::as_f64)
                .ok_or("cell missing items_per_sec")?,
            p50_us: cell.get("p50_us").and_then(Json::as_f64).unwrap_or(0.0),
            p99_us: cell.get("p99_us").and_then(Json::as_f64).unwrap_or(0.0),
        });
    }
    if cells.is_empty() {
        return Err("serve baseline has no result cells".into());
    }
    Ok(ServeBaseline {
        mode,
        host_parallelism,
        cells,
    })
}

/// Serializes a baseline as the checked-in `BENCH_serve.json`.
pub fn render_baseline(b: &ServeBaseline) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SERVE_SCHEMA}\",");
    let _ = writeln!(out, "  \"mode\": \"{}\",", b.mode);
    let _ = writeln!(out, "  \"host_parallelism\": {},", b.host_parallelism);
    out.push_str("  \"results\": [\n");
    for (i, c) in b.cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{ \"algo\": \"{}\", \"fsync\": \"{}\", \"jobs\": {}, \
             \"items_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1} }}{}",
            json::escape(&c.algo),
            json::escape(&c.fsync),
            c.jobs,
            c.items_per_sec,
            c.p50_us,
            c.p99_us,
            if i + 1 < b.cells.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dbp-serve-bench-{}-{tag}", std::process::id()))
}

fn cell_cfg(algo: &str, fsync: &str, dir: &Path) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig::new(2, algo);
    cfg.checkpoint_dir = Some(dir.join("ckpt"));
    cfg.checkpoint_every = 256;
    if fsync != "off" {
        cfg.wal_dir = Some(dir.join("wal"));
        cfg.fsync = FsyncPolicy::parse(fsync).map_err(|e| e.to_string())?;
    }
    Ok(cfg)
}

/// One timed run of a cell; returns (elapsed seconds, per-decision
/// latencies in nanoseconds).
fn run_cell_once(algo: &str, fsync: &str, jobs: u32) -> Result<(f64, Vec<u64>), String> {
    let dir = scratch_dir(&format!("{algo}-{}", fsync.replace(':', "-")));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("scratch: {e}"))?;
    let cfg = cell_cfg(algo, fsync, &dir)?;
    let service = Service::start(cfg).map_err(|e| e.to_string())?;
    let stream = torture_stream(jobs);
    let mut lat = Vec::with_capacity(stream.len());
    let started = Instant::now();
    for s in &stream {
        let t0 = Instant::now();
        let resp = service.handle(&Request::Submit(s.clone()));
        lat.push(t0.elapsed().as_nanos() as u64);
        if let Response::Error { what } = resp {
            return Err(format!("serving failed mid-bench: {what}"));
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
    Ok((elapsed, lat))
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1_000.0
}

/// Measures one cell best-of-3 (minimum elapsed of three runs; latency
/// percentiles from the fastest run).
fn measure_cell(algo: &str, fsync: &str, jobs: u32) -> Result<ServeCell, String> {
    let mut best: Option<(f64, Vec<u64>)> = None;
    for _ in 0..3 {
        let (elapsed, lat) = run_cell_once(algo, fsync, jobs)?;
        if best.as_ref().is_none_or(|(b, _)| elapsed < *b) {
            best = Some((elapsed, lat));
        }
    }
    let (elapsed, mut lat) = best.expect("three runs happened");
    lat.sort_unstable();
    Ok(ServeCell {
        algo: algo.to_string(),
        fsync: fsync.to_string(),
        jobs,
        items_per_sec: f64::from(jobs) / elapsed.max(f64::MIN_POSITIVE),
        p50_us: percentile_us(&lat, 0.50),
        p99_us: percentile_us(&lat, 0.99),
    })
}

/// Job count for a (mode, fsync) cell. `always` cells stream fewer
/// jobs: every decision pays a real fsync, and the gate re-runs each
/// cell three times.
fn jobs_for(mode: &str, fsync: &str) -> Result<u32, String> {
    match (mode, fsync) {
        ("short", "always") => Ok(800),
        ("short", _) => Ok(5_000),
        ("full", "always") => Ok(3_000),
        ("full", _) => Ok(20_000),
        (other, _) => Err(format!("unknown serve bench mode {other:?}")),
    }
}

/// Records a fresh baseline: one cell per fsync variant.
pub fn record(mode: &str) -> Result<ServeBaseline, DbpError> {
    let mut cells = Vec::new();
    for fsync in FSYNC_VARIANTS {
        let jobs = jobs_for(mode, fsync).map_err(|what| DbpError::Internal { what })?;
        cells.push(
            measure_cell("first-fit", fsync, jobs).map_err(|what| DbpError::Internal { what })?,
        );
    }
    Ok(ServeBaseline {
        mode: mode.to_string(),
        host_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        cells,
    })
}

/// Runs the perf gate over a serve baseline: every cell re-measured
/// with the same job count and compared at `tolerance_pct`, with
/// `inject_pct` available as the self-proof that the gate trips.
pub fn run_serve_check(
    baseline: &ServeBaseline,
    tolerance_pct: f64,
    inject_pct: f64,
) -> Result<CheckReport, String> {
    if !(0.0..100.0).contains(&tolerance_pct) {
        return Err(format!("tolerance {tolerance_pct}% out of range [0, 100)"));
    }
    if !(0.0..100.0).contains(&inject_pct) {
        return Err(format!("inject {inject_pct}% out of range [0, 100)"));
    }
    let mut rows = Vec::new();
    for cell in &baseline.cells {
        if cell.items_per_sec <= 0.0 {
            return Err(format!(
                "{}: non-positive baseline throughput",
                cell.label()
            ));
        }
        let fresh = measure_cell(&cell.algo, &cell.fsync, cell.jobs)?;
        let fresh_ips = fresh.items_per_sec * (1.0 - inject_pct / 100.0);
        let delta_pct = (fresh_ips - cell.items_per_sec) / cell.items_per_sec * 100.0;
        rows.push(CheckRow {
            label: cell.label(),
            baseline_ips: cell.items_per_sec,
            fresh_ips,
            delta_pct,
            regressed: delta_pct < -tolerance_pct,
            skipped: false,
        });
    }
    Ok(CheckReport {
        schema: SERVE_SCHEMA.to_string(),
        mode: baseline.mode.clone(),
        tolerance_pct,
        injected_pct: inject_pct,
        baseline_host_parallelism: baseline.host_parallelism,
        host_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r#"{
      "schema": "dbp-serve/bench-v2",
      "mode": "short",
      "host_parallelism": 2,
      "results": [
        { "algo": "first-fit", "fsync": "off", "jobs": 50, "items_per_sec": 0.001,
          "p50_us": 10.0, "p99_us": 20.0 },
        { "algo": "first-fit", "fsync": "never", "jobs": 50, "items_per_sec": 0.001 }
      ]
    }"#;

    #[test]
    fn baseline_round_trips() {
        let b = parse_serve_baseline(TINY).unwrap();
        assert_eq!(b.mode, "short");
        assert_eq!(b.cells.len(), 2);
        assert_eq!(b.cells[0].label(), "first-fit/fsync=off");
        assert_eq!(b.cells[1].fsync, "never");
        let again = parse_serve_baseline(&render_baseline(&b)).unwrap();
        assert_eq!(again.cells.len(), 2);
        assert_eq!(again.cells[0].jobs, 50);
    }

    #[test]
    fn bad_baselines_are_rejected() {
        assert!(parse_serve_baseline("{}").is_err());
        assert!(
            parse_serve_baseline(
                r#"{ "schema": "dbp-serve/bench-v1", "mode": "short", "results": [] }"#
            )
            .is_err(),
            "the v1 load_serve report is not a gateable baseline"
        );
        assert!(
            parse_serve_baseline(
                r#"{ "schema": "dbp-serve/bench-v2", "mode": "short", "results": [
                  { "algo": "first-fit", "fsync": "sometimes", "jobs": 10, "items_per_sec": 1.0 }
                ] }"#
            )
            .is_err(),
            "unknown fsync variants must not parse"
        );
    }

    #[test]
    fn gate_passes_slow_baseline_and_injection_trips() {
        // ~zero recorded throughput: any real machine beats it.
        let b = parse_serve_baseline(TINY).unwrap();
        let report = run_serve_check(&b, 20.0, 0.0).unwrap();
        assert!(report.ok());
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows[0].fresh_ips > 0.0);

        // Measure-then-recheck with an injected 60% slowdown: trips.
        let measured = measure_cell("first-fit", "never", 50).unwrap();
        let self_baseline = ServeBaseline {
            mode: "short".into(),
            host_parallelism: 1,
            cells: vec![measured],
        };
        let report = run_serve_check(&self_baseline, 20.0, 60.0).unwrap();
        assert!(
            !report.ok(),
            "a 60% injected slowdown must trip 20% tolerance"
        );
    }

    #[test]
    fn percentiles_are_sane() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        assert!((percentile_us(&ns, 0.50) - 50.0).abs() <= 1.0);
        assert!((percentile_us(&ns, 0.99) - 99.0).abs() <= 1.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
    }
}
