//! Hot-path telemetry for dynamic bin packing.
//!
//! `dbp-obs` answers *what the packer decided* (event traces, counters,
//! S(t) time series); this crate answers *how the run behaved as a
//! program*: latency distributions, scan-depth distributions, and a span
//! tree showing where wall-clock time went — the measurements the
//! ROADMAP's serve (p50/p99 SLOs) and indexed-hot-path items need.
//!
//! Four pieces:
//!
//! - [`hist::Histogram`] — a fixed 64-bucket log-linear histogram whose
//!   `record` is a handful of integer ops, cheap enough for the packing
//!   hot path, with derived equality so determinism is a plain `==`.
//! - [`recorder::TelemetryRecorder`] — the [`dbp_core::PackObserver`]
//!   that fills histograms, split across a hard determinism boundary:
//!   [`recorder::WorkMetrics`] (replay-exact, merged by summing) vs
//!   [`recorder::RunMetrics`] (wall-clock, zeroed on merge — the same
//!   contract as `CountersSnapshot::merged`). Wall-clock reads are
//!   sampled 1-in-64 by default via [`dbp_core::PackObserver::wants_timing`],
//!   and per-placement work histograms strided 1-in-16 placements
//!   (deterministically — the stride counts placements, so bit-identity
//!   survives), keeping telemetry under 5% throughput overhead
//!   (measured in `BENCH_telemetry.json`).
//! - [`span`] — cross-thread span profiling with folded-stack
//!   (flamegraph) and chrome://tracing exports.
//! - [`prom`] — Prometheus text-format exposition of counters and
//!   histograms.
//!
//! [`profile::profile_stream`] ties them together for `dbp prof`.

pub mod hist;
pub mod profile;
pub mod prom;
pub mod recorder;
pub mod span;

pub use hist::Histogram;
pub use profile::{profile_stream, Profile};
pub use prom::render_prometheus;
pub use recorder::{
    RunMetrics, TelemetryRecorder, TelemetrySnapshot, WorkMetrics, DEFAULT_TIMING_INTERVAL,
    WORK_SAMPLE_INTERVAL,
};
pub use span::{
    chrome_trace_json, folded_stacks, reparent_by_seq, stitch, SpanCollector, SpanRecord, NO_SEQ,
};
