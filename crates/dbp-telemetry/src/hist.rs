//! A fixed-size log-linear histogram for latency and work metrics.
//!
//! [`Histogram`] is the HDR-histogram idea shrunk to a constant 64
//! buckets: two linear sub-buckets per power of two, so relative error is
//! bounded by 50% of the bucket width (≤ 25% of the value) everywhere
//! while `record` stays a handful of integer ops — one `leading_zeros`,
//! one shift, one add. That is cheap enough to sit on the packing hot
//! path, and the fixed layout makes two histograms comparable field by
//! field: equality is derived, so "bit-identical across replays" is a
//! plain `==`.
//!
//! The top bucket is open-ended (it absorbs everything from ~3.2·10⁹ up
//! to `u64::MAX`), so no sample is ever dropped; `max` keeps the exact
//! largest sample for reporting.

/// Number of buckets in every [`Histogram`].
pub const BUCKETS: usize = 64;

/// The log-linear bucket index of a value: buckets 0 and 1 are exact,
/// after that each power of two is split into two linear halves.
#[inline(always)]
fn bucket_index(v: u64) -> usize {
    if v < 2 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let half = ((v >> (msb - 1)) & 1) as usize;
    (2 * msb + half).min(BUCKETS - 1)
}

/// The smallest value that lands in bucket `i`.
#[inline]
fn bucket_lo(i: usize) -> u64 {
    if i < 2 {
        i as u64
    } else {
        (2 + (i % 2) as u64) << (i / 2 - 1)
    }
}

/// The largest value that lands in bucket `i` (`u64::MAX` for the
/// open-ended top bucket).
#[inline]
fn bucket_hi(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lo(i + 1) - 1
    }
}

/// A 64-bucket log-linear histogram of `u64` samples.
///
/// Derives `PartialEq`/`Eq`: two histograms are equal iff every bucket
/// count, the total count, the sum, and the min/max match — the equality
/// the determinism self-tests assert.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline(always)]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The exact smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The exact largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper estimate of the `q`-quantile (`0.0 ≤ q ≤ 1.0`): the upper
    /// bound of the bucket holding the sample of that rank, clamped to the
    /// exact observed `[min, max]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_hi(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Iterates the non-empty buckets as `(lo, hi, count)` ranges.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), bucket_hi(i), c))
    }

    /// The raw bucket counts, for exposition formats that need the full
    /// fixed layout.
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// The inclusive upper bound of bucket `i` (shared layout across all
    /// histograms; `u64::MAX` for the top bucket).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        bucket_hi(i)
    }

    /// Folds `parts` into one histogram. Pure integer sums plus min/max,
    /// so the result is independent of part order — the property the
    /// shard-merge audit asserts.
    pub fn merged(parts: &[Histogram]) -> Histogram {
        let mut out = Histogram::new();
        for p in parts {
            for (i, &c) in p.counts.iter().enumerate() {
                out.counts[i] += c;
            }
            out.count += p.count;
            out.sum += p.sum;
            out.min = out.min.min(p.min);
            out.max = out.max.max(p.max);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every bucket's lo is the previous hi + 1, and every value maps
        // into the bucket whose range contains it.
        for i in 1..BUCKETS {
            assert_eq!(bucket_lo(i), bucket_hi(i - 1) + 1, "gap at bucket {i}");
        }
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lo(i)), i);
            if i + 1 < BUCKETS {
                assert_eq!(bucket_index(bucket_hi(i)), i);
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Relative bucket width ≤ 50% of lo ⇒ worst-case quantile error
        // is bounded, the property that makes 64 buckets enough.
        for i in 4..BUCKETS - 1 {
            let (lo, hi) = (bucket_lo(i), bucket_hi(i));
            assert!(hi - lo <= lo / 2, "bucket {i} too wide: [{lo}, {hi}]");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        // 0..=3 land in their own buckets; beyond that buckets pair up.
        let got: Vec<(u64, u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(
            got,
            vec![
                (0, 0, 1),
                (1, 1, 1),
                (2, 2, 1),
                (3, 3, 1),
                (4, 5, 2),
                (6, 7, 2)
            ]
        );
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 28);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn quantiles_bracket_true_values() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Upper-bound estimates: within one bucket (≤ 25% relative).
        assert!((500..=640).contains(&p50), "p50 = {p50}");
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.0), 1, "clamped to observed min");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(Histogram::merged(&[]), h);
    }

    #[test]
    fn merge_is_order_independent_and_matches_single_stream() {
        let vals: Vec<u64> = (0..500).map(|i| (i * 2654435761u64) >> 16).collect();
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for (i, &v) in vals.iter().enumerate() {
            whole.record(v);
            [&mut a, &mut b, &mut c][i % 3].record(v);
        }
        let abc = Histogram::merged(&[a.clone(), b.clone(), c.clone()]);
        let cba = Histogram::merged(&[c, b, a]);
        assert_eq!(abc, cba, "merge must be order-independent");
        assert_eq!(abc, whole, "merge must equal the unsplit stream");
    }

    #[test]
    fn top_bucket_saturates_without_losing_samples() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(5_000_000_000);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(0.5), u64::MAX.clamp(h.min(), h.max()));
    }
}
