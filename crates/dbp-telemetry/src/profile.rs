//! Single-session profiling: run a stream under full telemetry and get
//! back histograms, counters, spans, and the finished run.
//!
//! [`profile_stream`] is what `dbp prof` calls: it drives a
//! [`StreamingSession`] over the items with a
//! [`Counters`] + [`TelemetryRecorder`] tee attached, recording one span
//! per arrival batch under a root `stream` span plus a final `finish`
//! span. Because the packer and the item order are deterministic, the
//! [`Profile::telemetry`] *work* histograms are bit-identical across
//! repeated calls with the same inputs — the property
//! `dbp prof --self-test` asserts.

use crate::recorder::{TelemetryRecorder, TelemetrySnapshot};
use crate::span::{SpanCollector, SpanRecord, NO_SEQ};
use dbp_core::online::{ClairvoyanceMode, OnlinePacker, OnlineRun};
use dbp_core::stream::StreamingSession;
use dbp_core::{DbpError, Item, Tee};
use dbp_obs::{Counters, CountersSnapshot};

/// Default items per arrival-batch span in [`profile_stream`].
pub const DEFAULT_PROFILE_BATCH: usize = 1024;

/// Everything a profiled run produced.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Scalar event counters.
    pub counters: CountersSnapshot,
    /// Work + run histograms.
    pub telemetry: TelemetrySnapshot,
    /// The span tree: a root `stream` span, one `batch` span per arrival
    /// chunk (seq = chunk index), and a `finish` span.
    pub spans: Vec<SpanRecord>,
    /// The finished run (same as an unprofiled session would produce).
    pub run: OnlineRun,
}

/// Runs `items` (already in arrival order) through a fresh
/// [`StreamingSession`] under profiling. `batch` items are grouped per
/// span (0 means [`DEFAULT_PROFILE_BATCH`]); `full_timing` times every
/// arrival instead of 1-in-64 — right for profiling, too heavy for
/// benchmarking.
pub fn profile_stream(
    mode: ClairvoyanceMode,
    packer: &mut dyn OnlinePacker,
    items: &[Item],
    batch: usize,
    full_timing: bool,
) -> Result<Profile, DbpError> {
    let batch = if batch == 0 {
        DEFAULT_PROFILE_BATCH
    } else {
        batch
    };
    let mut counters = Counters::new();
    let mut recorder = if full_timing {
        TelemetryRecorder::full_timing()
    } else {
        TelemetryRecorder::new()
    };
    let mut spans = SpanCollector::new();
    let root = spans.begin("stream", 0, None, NO_SEQ);
    let run = {
        let mut session =
            StreamingSession::with_observer(mode, packer, Tee(&mut counters, &mut recorder));
        for (seq, chunk) in items.chunks(batch).enumerate() {
            let started = spans.now_ns();
            for item in chunk {
                session.arrive(item)?;
            }
            spans.record_since("batch", 0, Some(root), seq as u64, started);
        }
        let started = spans.now_ns();
        let (run, _) = session.finish_with_observer()?;
        spans.record_since("finish", 0, Some(root), NO_SEQ, started);
        run
    };
    spans.end(root);
    Ok(Profile {
        counters: counters.snapshot(),
        telemetry: recorder.snapshot(),
        spans: spans.into_spans(),
        run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::online::{Decision, ItemView};
    use dbp_core::{OpenBins, Size};

    struct FirstFit;
    impl OnlinePacker for FirstFit {
        fn name(&self) -> String {
            "ff".into()
        }
        fn place(&mut self, item: &ItemView, open: &OpenBins) -> Decision {
            open.iter()
                .find(|b| b.fits(item.size))
                .map(|b| Decision::Existing(b.id()))
                .unwrap_or(Decision::NEW)
        }
    }

    fn items(n: u32) -> Vec<Item> {
        (0..n)
            .map(|k| Item::new(k, Size::from_f64(0.3), k as i64, k as i64 + 7))
            .collect()
    }

    #[test]
    fn profile_produces_spans_and_histograms() {
        let items = items(100);
        let mut packer = FirstFit;
        let p =
            profile_stream(ClairvoyanceMode::Clairvoyant, &mut packer, &items, 32, true).unwrap();
        assert_eq!(p.counters.items_packed, 100);
        // Work histograms stride 1-in-WORK_SAMPLE_INTERVAL placements:
        // ceil(100 / 16) = 7 samples.
        assert_eq!(p.telemetry.work.candidates.count(), 7);
        assert_eq!(p.telemetry.run.decide_ns.count(), 100, "full timing");
        let names: Vec<&str> = p.spans.iter().map(|s| s.name).collect();
        assert_eq!(names[0], "stream");
        assert_eq!(names.iter().filter(|n| **n == "batch").count(), 4, "100/32");
        assert_eq!(*names.last().unwrap(), "finish");
        assert!(p.spans[0].dur_ns > 0, "root span was closed");
        assert!(p.spans.iter().skip(1).all(|s| s.parent == Some(0)));
        assert!(p.run.usage > 0);
    }

    #[test]
    fn work_histograms_replay_bit_identical() {
        let items = items(500);
        let profiles: Vec<TelemetrySnapshot> = (0..2)
            .map(|_| {
                let mut packer = FirstFit;
                profile_stream(ClairvoyanceMode::Clairvoyant, &mut packer, &items, 0, false)
                    .unwrap()
                    .telemetry
            })
            .collect();
        assert_eq!(profiles[0].work, profiles[1].work, "replay must be exact");
    }
}
