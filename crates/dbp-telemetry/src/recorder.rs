//! The telemetry observer: event stream → histograms, with a hard
//! determinism boundary.
//!
//! [`TelemetryRecorder`] implements [`PackObserver`] and sorts every
//! sample into one of two groups:
//!
//! - **Work metrics** ([`WorkMetrics`]) measure what the *algorithm* did —
//!   candidates scanned per placement, open-bin fleet size, items per bin,
//!   bin lifetimes. These are pure functions of the input stream, so two
//!   replays of the same seed produce bit-identical histograms and a
//!   sharded fleet's merge is independent of the worker count. They merge
//!   by summing.
//! - **Run metrics** ([`RunMetrics`]) measure where *wall-clock time*
//!   went — decide/departure/flush/merge/finish latency, plus batch sizes
//!   (whose composition depends on how many workers drained the stream).
//!   These vary run to run and are **zeroed** by
//!   [`TelemetrySnapshot::merged`], exactly like
//!   `CountersSnapshot::merged` zeroes its timing fields; read them per
//!   shard instead.
//!
//! Wall-clock sampling: reading `Instant::now()` twice per arrival costs
//! tens of nanoseconds — more than some packers spend deciding — so the
//! recorder implements [`PackObserver::wants_timing`] as a 1-in-N sampler
//! (default N = [`DEFAULT_TIMING_INTERVAL`]). Per-placement work
//! histograms stride deterministically — every
//! [`WORK_SAMPLE_INTERVAL`]-th placement, counted in placements, never
//! wall-clock — so they stay replay- and merge-bit-identical while the
//! off-stride hot path touches no histogram memory. Bin-close records
//! (items per bin, lifetime) stride the same way, counted in closes;
//! only server failures are always recorded.

use crate::hist::Histogram;
use dbp_core::observe::{OpKind, PackEvent, PackObserver};

/// Deterministic per-operation work histograms. Bit-identical across
/// replays of the same stream; merged by summing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkMetrics {
    /// Open bins inspected per placement decision (scan depth for
    /// reuses, rejection count for opens), strided: every
    /// [`WORK_SAMPLE_INTERVAL`]-th placement contributes a sample, so a
    /// session that packed `n` items holds exactly `ceil(n / 16)`
    /// samples — the audit invariant. The stride counts placements, not
    /// wall-clock, so the sampled subset is a pure function of the
    /// input stream: replays and re-sharded fleets are bit-identical.
    /// (Exact per-run totals live in `CountersSnapshot`; the histogram
    /// trades per-item exactness for a hot path that touches its cache
    /// lines once per stride.)
    pub candidates: Histogram,
    /// Fleet-size gauge: open-bin count at every
    /// [`WORK_SAMPLE_INTERVAL`]-th placement (taken from the
    /// `LevelChanged` the engine emits right after the sampled
    /// `PlacementDecided`). Deterministic for the same reason as
    /// [`WorkMetrics::candidates`]. Departure-side level changes are
    /// never sampled.
    pub open_bins: Histogram,
    /// Items a bin held over its lifetime, strided like
    /// [`WorkMetrics::candidates`]: every
    /// [`WORK_SAMPLE_INTERVAL`]-th close contributes a sample.
    /// (Churn-heavy strategies such as classify-by-departure-time close
    /// a bin for every fourth placement, so unsampled close records
    /// would dominate their observation cost.)
    pub bin_items: Histogram,
    /// Bin lifetime (close − open) in stream time ticks, on the same
    /// close stride as [`WorkMetrics::bin_items`]. Server *failures*
    /// are always recorded — they are rare and each one matters.
    pub bin_lifetime: Histogram,
}

impl WorkMetrics {
    /// Sums `parts` field by field. Order-independent.
    pub fn merged(parts: &[&WorkMetrics]) -> WorkMetrics {
        WorkMetrics {
            candidates: Histogram::merged(
                &parts
                    .iter()
                    .map(|p| p.candidates.clone())
                    .collect::<Vec<_>>(),
            ),
            open_bins: Histogram::merged(
                &parts
                    .iter()
                    .map(|p| p.open_bins.clone())
                    .collect::<Vec<_>>(),
            ),
            bin_items: Histogram::merged(
                &parts
                    .iter()
                    .map(|p| p.bin_items.clone())
                    .collect::<Vec<_>>(),
            ),
            bin_lifetime: Histogram::merged(
                &parts
                    .iter()
                    .map(|p| p.bin_lifetime.clone())
                    .collect::<Vec<_>>(),
            ),
        }
    }
}

/// Wall-clock (and otherwise run-specific) histograms. Never merged —
/// [`TelemetrySnapshot::merged`] replaces them with zeros.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Nanoseconds per sampled `place` call.
    pub decide_ns: Histogram,
    /// Nanoseconds per sampled departure sweep ([`OpKind::Departures`]).
    pub depart_ns: Histogram,
    /// Nanoseconds per worker batch flush ([`OpKind::BatchFlush`]).
    pub batch_flush_ns: Histogram,
    /// Items per flushed batch. Run-side on purpose: batch composition
    /// depends on the worker count, so it would break merge determinism.
    pub batch_items: Histogram,
    /// Nanoseconds per slice merge ([`OpKind::Merge`]).
    pub merge_ns: Histogram,
    /// Nanoseconds of the final departure drain ([`OpKind::Finish`]).
    pub finish_ns: Histogram,
}

impl RunMetrics {
    /// Sums `parts` field by field — a *display* union of wall-clock
    /// histograms from concurrent shards/workers, NOT part of the
    /// deterministic merge (which zeroes run metrics): the parts overlap
    /// in time and their contents vary run to run. Use it to answer
    /// "what did decide latency look like across the whole fleet in this
    /// run", never for golden or differential comparisons.
    pub fn combined(parts: &[&RunMetrics]) -> RunMetrics {
        fn fold(parts: &[&RunMetrics], f: impl Fn(&RunMetrics) -> &Histogram) -> Histogram {
            Histogram::merged(&parts.iter().map(|p| f(p).clone()).collect::<Vec<_>>())
        }
        RunMetrics {
            decide_ns: fold(parts, |p| &p.decide_ns),
            depart_ns: fold(parts, |p| &p.depart_ns),
            batch_flush_ns: fold(parts, |p| &p.batch_flush_ns),
            batch_items: fold(parts, |p| &p.batch_items),
            merge_ns: fold(parts, |p| &p.merge_ns),
            finish_ns: fold(parts, |p| &p.finish_ns),
        }
    }
}

/// A point-in-time copy of a recorder's histograms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Deterministic work histograms.
    pub work: WorkMetrics,
    /// Wall-clock run histograms.
    pub run: RunMetrics,
}

impl TelemetrySnapshot {
    /// Folds `parts` into a fleet-wide snapshot: work histograms sum
    /// (order-independently), run histograms are **zeroed** — they are
    /// wall-clock and per-run, so summing them would mislead and break
    /// the bit-identical merge contract. Read per-shard run histograms
    /// from the individual snapshots.
    pub fn merged(parts: &[TelemetrySnapshot]) -> TelemetrySnapshot {
        let work_parts: Vec<&WorkMetrics> = parts.iter().map(|p| &p.work).collect();
        TelemetrySnapshot {
            work: WorkMetrics::merged(&work_parts),
            run: RunMetrics::default(),
        }
    }
}

/// Default timing sample interval: one arrival in 64 gets clock reads.
///
/// A clock read costs ~30–100ns — several times what a cheap packer
/// spends deciding — so the rate is set where the residual cost
/// disappears into run-to-run noise (~1–2ns/item) while a million-item
/// run still collects ~15k latency samples, plenty for stable
/// percentiles. `dbp prof` uses [`TelemetryRecorder::full_timing`] when
/// accuracy matters more than overhead.
pub const DEFAULT_TIMING_INTERVAL: u32 = 64;

/// Stride, in placements, of the per-placement work histograms
/// ([`WorkMetrics::candidates`] and [`WorkMetrics::open_bins`]): every
/// 16th placement is sampled. Deterministic — the stride counts
/// placements, not wall-clock ticks — so the work half of the snapshot
/// keeps its replay/merge bit-identity contract.
pub const WORK_SAMPLE_INTERVAL: u32 = 16;

/// The histogram-recording [`PackObserver`].
#[derive(Clone, Debug)]
pub struct TelemetryRecorder {
    snap: TelemetrySnapshot,
    /// `wants_timing` returns true when `tick % interval == 0`.
    interval: u32,
    tick: u32,
    /// Countdown for the per-placement work stride (see
    /// [`WorkMetrics::candidates`]).
    gauge_tick: u32,
    /// Countdown for the bin-close stride (see
    /// [`WorkMetrics::bin_items`]).
    close_tick: u32,
    /// Set by every [`WORK_SAMPLE_INTERVAL`]-th `PlacementDecided`,
    /// consumed by the next `LevelChanged` (which the engine emits
    /// immediately after): that event's fleet size lands in the gauge.
    at_placement: bool,
}

impl Default for TelemetryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryRecorder {
    /// A recorder with the default 1-in-16 timing sample rate.
    pub fn new() -> Self {
        Self::with_timing_interval(DEFAULT_TIMING_INTERVAL)
    }

    /// A recorder that times every arrival — for `dbp prof`, where
    /// accurate latency percentiles matter more than overhead.
    pub fn full_timing() -> Self {
        Self::with_timing_interval(1)
    }

    /// A recorder timing one arrival in `interval` (0 is treated as 1).
    pub fn with_timing_interval(interval: u32) -> Self {
        TelemetryRecorder {
            snap: TelemetrySnapshot::default(),
            interval: interval.max(1),
            tick: 0,
            gauge_tick: 0,
            close_tick: 0,
            at_placement: false,
        }
    }

    /// The histograms so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.snap.clone()
    }

    /// Consumes the recorder, returning its histograms.
    pub fn into_snapshot(self) -> TelemetrySnapshot {
        self.snap
    }

    /// Records a flushed batch: its wall-clock duration and item count.
    /// Both land in [`RunMetrics`] — batch composition is scheduling- and
    /// worker-count-dependent.
    pub fn record_batch(&mut self, items: u64, ns: u64) {
        self.snap.run.batch_items.record(items);
        self.snap.run.batch_flush_ns.record(ns);
    }

    /// Records one coarse operation duration (same mapping as
    /// [`PackObserver::on_op`], callable outside a session).
    pub fn record_op(&mut self, op: OpKind, ns: u64) {
        match op {
            OpKind::Departures => self.snap.run.depart_ns.record(ns),
            OpKind::BatchFlush => self.snap.run.batch_flush_ns.record(ns),
            OpKind::Merge => self.snap.run.merge_ns.record(ns),
            OpKind::Finish => self.snap.run.finish_ns.record(ns),
        }
    }
}

impl PackObserver for TelemetryRecorder {
    #[inline]
    fn on_event(&mut self, event: &PackEvent) {
        match event {
            PackEvent::PlacementDecided {
                candidates_scanned,
                decide_ns,
                ..
            } => {
                // Deterministic work stride: every
                // WORK_SAMPLE_INTERVAL-th placement records its scan
                // depth and flags the LevelChanged the engine emits
                // next to record the fleet size. Off-stride placements
                // touch no histogram memory at all — that cache
                // traffic, not arithmetic, is the recorder's hot-path
                // cost.
                if self.gauge_tick == 0 {
                    self.snap.work.candidates.record(*candidates_scanned as u64);
                    self.at_placement = true;
                }
                self.gauge_tick += 1;
                if self.gauge_tick >= WORK_SAMPLE_INTERVAL {
                    self.gauge_tick = 0;
                }
                // 0 means "this arrival was not timed", never a real
                // sub-nanosecond decision; keep it out of the histogram.
                if *decide_ns > 0 {
                    self.snap.run.decide_ns.record(*decide_ns);
                }
            }
            // Consumes the gauge flag set by a sampled placement;
            // departure-side level changes never carry the flag.
            PackEvent::LevelChanged { open_bins, .. } if self.at_placement => {
                self.at_placement = false;
                self.snap.work.open_bins.record(*open_bins as u64);
            }
            PackEvent::BinClosed {
                at,
                opened_at,
                items,
                ..
            } => {
                // Same deterministic stride as the placement records —
                // counted in closes, so replay/merge bit-identity holds.
                if self.close_tick == 0 {
                    self.snap.work.bin_items.record(*items as u64);
                    self.snap
                        .work
                        .bin_lifetime
                        .record(at.saturating_sub(*opened_at).max(0) as u64);
                }
                self.close_tick += 1;
                if self.close_tick >= WORK_SAMPLE_INTERVAL {
                    self.close_tick = 0;
                }
            }
            PackEvent::BinFailed { at, opened_at, .. } => {
                self.snap
                    .work
                    .bin_lifetime
                    .record(at.saturating_sub(*opened_at).max(0) as u64);
            }
            _ => {}
        }
    }

    #[inline]
    fn wants_timing(&mut self) -> bool {
        let hit = self.tick == 0;
        self.tick += 1;
        if self.tick >= self.interval {
            self.tick = 0;
        }
        hit
    }

    #[inline]
    fn on_op(&mut self, op: OpKind, ns: u64) {
        self.record_op(op, ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::{BinId, FitDecision, ItemId};

    fn placement(candidates: usize, decide_ns: u64) -> PackEvent {
        PackEvent::PlacementDecided {
            id: ItemId(0),
            bin: BinId(0),
            fit_rule: FitDecision::Reused,
            candidates_scanned: candidates,
            decide_ns,
        }
    }

    #[test]
    fn events_land_in_the_right_histograms() {
        let mut r = TelemetryRecorder::new();
        // Placement 1 is on-stride (the stride starts at the first
        // placement): its scan depth is recorded and the LevelChanged
        // that follows lands in the fleet gauge.
        r.on_event(&placement(3, 150));
        r.on_event(&PackEvent::LevelChanged {
            bin: BinId(0),
            at: 1,
            level: dbp_core::Size::HALF,
            open_bins: 7,
        });
        // Placement 2 is off-stride: no candidates sample, no gauge
        // flag — and its decide_ns of 0 means "not timed".
        r.on_event(&placement(1, 0));
        r.on_event(&PackEvent::LevelChanged {
            bin: BinId(0),
            at: 1,
            level: dbp_core::Size::HALF,
            open_bins: 8,
        });
        r.on_event(&PackEvent::BinClosed {
            bin: BinId(0),
            at: 25,
            opened_at: 5,
            items: 4,
        });
        r.on_event(&PackEvent::BinFailed {
            bin: BinId(1),
            at: 9,
            opened_at: 9,
            displaced: 2,
            open_bins: 0,
        });
        // A second, departure-side LevelChanged (no placement preceding
        // it) must NOT land in the fleet-size histogram.
        r.on_event(&PackEvent::LevelChanged {
            bin: BinId(0),
            at: 2,
            level: dbp_core::Size::ZERO,
            open_bins: 99,
        });
        let s = r.snapshot();
        assert_eq!(s.work.candidates.count(), 1, "1-in-16 placement stride");
        assert_eq!(s.work.candidates.sum(), 3);
        assert_eq!(s.run.decide_ns.count(), 1, "untimed decision skipped");
        assert_eq!(s.work.open_bins.count(), 1, "sampled placements only");
        assert_eq!(s.work.open_bins.max(), 7);
        assert_eq!(s.work.bin_items.sum(), 4);
        assert_eq!(s.work.bin_lifetime.count(), 2, "failure counts too");
        assert_eq!(s.work.bin_lifetime.sum(), 20);
    }

    #[test]
    fn work_stride_samples_every_sixteenth_placement() {
        let mut r = TelemetryRecorder::new();
        for i in 0..33u64 {
            r.on_event(&placement(i as usize, 0));
        }
        let s = r.snapshot();
        // Placements 0, 16 and 32 (0-indexed) are on-stride.
        assert_eq!(s.work.candidates.count(), 3);
        assert_eq!(s.work.candidates.sum(), 16 + 32, "samples 0, 16, 32");
        // ceil(n / WORK_SAMPLE_INTERVAL) — the audit's sample-count
        // formula.
        assert_eq!(
            s.work.candidates.count(),
            33u64.div_ceil(WORK_SAMPLE_INTERVAL as u64)
        );
    }

    #[test]
    fn timing_sampler_fires_one_in_interval() {
        let mut r = TelemetryRecorder::with_timing_interval(4);
        let fired: Vec<bool> = (0..9).map(|_| r.wants_timing()).collect();
        assert_eq!(
            fired,
            vec![true, false, false, false, true, false, false, false, true]
        );
        let mut full = TelemetryRecorder::full_timing();
        assert!((0..5).all(|_| full.wants_timing()));
    }

    #[test]
    fn ops_route_by_kind() {
        let mut r = TelemetryRecorder::new();
        r.on_op(OpKind::Departures, 10);
        r.on_op(OpKind::Finish, 20);
        r.on_op(OpKind::Merge, 30);
        r.on_op(OpKind::BatchFlush, 40);
        r.record_batch(256, 50);
        let s = r.snapshot();
        assert_eq!(s.run.depart_ns.sum(), 10);
        assert_eq!(s.run.finish_ns.sum(), 20);
        assert_eq!(s.run.merge_ns.sum(), 30);
        assert_eq!(s.run.batch_flush_ns.sum(), 40 + 50);
        assert_eq!(s.run.batch_items.sum(), 256);
    }

    #[test]
    fn merged_sums_work_and_zeroes_run() {
        let mut a = TelemetryRecorder::new();
        a.on_event(&placement(2, 100));
        a.on_op(OpKind::Finish, 99);
        let mut b = TelemetryRecorder::new();
        b.on_event(&placement(5, 200));
        let m = TelemetrySnapshot::merged(&[a.snapshot(), b.snapshot()]);
        assert_eq!(m.work.candidates.count(), 2);
        assert_eq!(m.work.candidates.sum(), 7);
        assert_eq!(m.run, RunMetrics::default(), "wall-clock zeroed");
        let flipped = TelemetrySnapshot::merged(&[b.snapshot(), a.snapshot()]);
        assert_eq!(m, flipped, "merge is order-independent");
        assert_eq!(
            TelemetrySnapshot::merged(&[]),
            TelemetrySnapshot::default(),
            "empty merge is the empty snapshot"
        );
    }
}
