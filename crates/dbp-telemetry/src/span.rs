//! Structured span profiling: where wall-clock time went, as a tree.
//!
//! A [`SpanRecord`] is one completed operation with a start offset and
//! duration relative to a shared epoch, an optional parent, a `track`
//! (display lane: 0 = coordinator, `w + 1` = worker `w`), and a `seq`
//! used to stitch concurrent collectors together: a worker records its
//! batch spans against the batch *sequence number*, and
//! [`reparent_by_seq`] later attaches them under the coordinator's flush
//! span with the same sequence — no cross-thread id coordination needed
//! while the run is hot.
//!
//! Two export formats cover the standard tooling:
//! [`folded_stacks`] emits flamegraph/inferno-compatible
//! `root;child weight` lines (weight = self time in nanoseconds), and
//! [`chrome_trace_json`] emits a chrome://tracing / Perfetto "X"-phase
//! event array.

use std::collections::HashMap;
use std::time::Instant;

/// Sequence value for spans that are not part of any numbered batch.
pub const NO_SEQ: u64 = u64::MAX;

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Collector-local id (stable, contiguous from 0).
    pub id: u64,
    /// Parent span id, if any.
    pub parent: Option<u64>,
    /// Operation name (static so recording never allocates).
    pub name: &'static str,
    /// Display lane: 0 = coordinator/session, `w + 1` = worker `w`.
    pub track: u32,
    /// Start offset from the collector's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Batch sequence number this span belongs to ([`NO_SEQ`] if none);
    /// the key [`reparent_by_seq`] stitches worker spans with.
    pub seq: u64,
}

/// Records spans against a fixed epoch. Cheap enough to sit inside a
/// worker loop: recording is a `Vec::push`.
#[derive(Debug)]
pub struct SpanCollector {
    epoch: Instant,
    spans: Vec<SpanRecord>,
}

impl Default for SpanCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanCollector {
    /// A collector whose epoch is now.
    pub fn new() -> Self {
        Self::with_epoch(Instant::now())
    }

    /// A collector sharing an existing epoch — hand the same `Instant` to
    /// every worker so all spans live on one timeline.
    pub fn with_epoch(epoch: Instant) -> Self {
        SpanCollector {
            epoch,
            spans: Vec::new(),
        }
    }

    /// The shared epoch.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Nanoseconds elapsed since the epoch — capture before an operation,
    /// pass to [`SpanCollector::record_since`] after.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records a completed span and returns its id (usable as `parent`
    /// for children recorded later).
    pub fn record(
        &mut self,
        name: &'static str,
        track: u32,
        parent: Option<u64>,
        seq: u64,
        start_ns: u64,
        dur_ns: u64,
    ) -> u64 {
        let id = self.spans.len() as u64;
        self.spans.push(SpanRecord {
            id,
            parent,
            name,
            track,
            start_ns,
            dur_ns,
            seq,
        });
        id
    }

    /// Records a span that started at `start_ns` and ends now.
    pub fn record_since(
        &mut self,
        name: &'static str,
        track: u32,
        parent: Option<u64>,
        seq: u64,
        start_ns: u64,
    ) -> u64 {
        let dur = self.now_ns().saturating_sub(start_ns);
        self.record(name, track, parent, seq, start_ns, dur)
    }

    /// Opens a span starting now with zero duration; close it with
    /// [`SpanCollector::end`]. Lets a long-lived span (the session root)
    /// hand out its id as `parent` before it completes.
    pub fn begin(&mut self, name: &'static str, track: u32, parent: Option<u64>, seq: u64) -> u64 {
        let start = self.now_ns();
        self.record(name, track, parent, seq, start, 0)
    }

    /// Closes a span opened by [`SpanCollector::begin`], setting its
    /// duration to the time elapsed since it began.
    pub fn end(&mut self, id: u64) {
        let now = self.now_ns();
        if let Some(s) = self.spans.get_mut(id as usize) {
            s.dur_ns = now.saturating_sub(s.start_ns);
        }
    }

    /// The spans recorded so far.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Consumes the collector, returning its spans.
    pub fn into_spans(self) -> Vec<SpanRecord> {
        self.spans
    }
}

/// Concatenates per-thread span lists into one, remapping ids (and
/// parent references) so they stay unique. Part order fixes the id
/// assignment; pass coordinator first, then workers in index order, for
/// deterministic output.
pub fn stitch(parts: Vec<Vec<SpanRecord>>) -> Vec<SpanRecord> {
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    let mut offset = 0u64;
    for part in parts {
        let len = part.len() as u64;
        for mut s in part {
            s.id += offset;
            if let Some(p) = s.parent.as_mut() {
                *p += offset;
            }
            out.push(s);
        }
        offset += len;
    }
    out
}

/// Attaches every orphan span (no parent) named `child_name` to the span
/// named `parent_name` carrying the same `seq` — the stitch step that
/// turns per-worker batch spans into children of the coordinator's flush
/// spans.
pub fn reparent_by_seq(spans: &mut [SpanRecord], child_name: &str, parent_name: &str) {
    let by_seq: HashMap<u64, u64> = spans
        .iter()
        .filter(|s| s.name == parent_name && s.seq != NO_SEQ)
        .map(|s| (s.seq, s.id))
        .collect();
    for s in spans.iter_mut() {
        if s.parent.is_none() && s.name == child_name && s.seq != NO_SEQ {
            s.parent = by_seq.get(&s.seq).copied();
        }
    }
}

/// Renders spans as folded stacks: one `name;name;... weight` line per
/// distinct root-to-leaf path, weight = *self* time in nanoseconds (the
/// span's duration minus its children's, clamped at zero — the folded
/// convention flamegraph tools expect). Lines are sorted for stable
/// output.
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    let index: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            *child_ns.entry(p).or_insert(0) += s.dur_ns;
        }
    }
    let mut folded: HashMap<String, u64> = HashMap::new();
    for s in spans {
        let self_ns = s
            .dur_ns
            .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        let mut path = vec![s.name];
        let mut cur = s.parent;
        // Walk to the root; `depth` guards a (malformed) parent cycle.
        let mut depth = 0;
        while let Some(pid) = cur {
            let Some(p) = index.get(&pid) else { break };
            path.push(p.name);
            cur = p.parent;
            depth += 1;
            if depth > spans.len() {
                break;
            }
        }
        path.reverse();
        *folded.entry(path.join(";")).or_insert(0) += self_ns;
    }
    let mut lines: Vec<String> = folded
        .into_iter()
        .map(|(path, ns)| format!("{path} {ns}"))
        .collect();
    lines.sort_unstable();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Renders spans as a chrome://tracing / Perfetto JSON array of complete
/// ("X"-phase) events. Timestamps are microseconds with nanosecond
/// precision kept in the fraction; `tid` is the span's track.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"name\":\"{}\",\"cat\":\"dbp\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\
             \"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"id\":{}",
            s.name,
            s.track,
            s.start_ns / 1_000,
            s.start_ns % 1_000,
            s.dur_ns / 1_000,
            s.dur_ns % 1_000,
            s.id,
        ));
        if let Some(p) = s.parent {
            out.push_str(&format!(",\"parent\":{p}"));
        }
        if s.seq != NO_SEQ {
            out.push_str(&format!(",\"seq\":{}", s.seq));
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &'static str, seq: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            track: 0,
            start_ns: id * 100,
            dur_ns: dur,
            seq,
        }
    }

    #[test]
    fn collector_records_and_parents() {
        let mut c = SpanCollector::new();
        let t0 = c.now_ns();
        let root = c.record("stream", 0, None, NO_SEQ, t0, 500);
        let child = c.record("batch", 0, Some(root), 0, t0, 200);
        assert_eq!(c.spans()[child as usize].parent, Some(root));
        assert_eq!(c.spans().len(), 2);
    }

    #[test]
    fn stitch_remaps_ids_and_parents() {
        let a = vec![
            span(0, None, "stream", NO_SEQ, 100),
            span(1, Some(0), "flush", 0, 40),
        ];
        let b = vec![span(0, None, "batch", 0, 30)];
        let all = stitch(vec![a, b]);
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].id, 2, "worker ids offset past coordinator's");
        assert_eq!(all[1].parent, Some(0), "intra-part parents preserved");
    }

    #[test]
    fn reparent_attaches_worker_batches_to_flushes() {
        let mut all = stitch(vec![
            vec![
                span(0, None, "stream", NO_SEQ, 100),
                span(1, Some(0), "flush", 0, 40),
                span(2, Some(0), "flush", 1, 40),
            ],
            vec![span(0, None, "batch", 1, 30), span(1, None, "batch", 0, 25)],
        ]);
        reparent_by_seq(&mut all, "batch", "flush");
        let batch_parents: Vec<Option<u64>> = all
            .iter()
            .filter(|s| s.name == "batch")
            .map(|s| s.parent)
            .collect();
        assert_eq!(batch_parents, vec![Some(2), Some(1)], "matched by seq");
    }

    #[test]
    fn folded_stacks_use_self_time() {
        let spans = vec![
            span(0, None, "stream", NO_SEQ, 100),
            span(1, Some(0), "flush", 0, 30),
            span(2, Some(0), "flush", 1, 20),
            span(3, Some(1), "batch", 0, 10),
        ];
        let folded = folded_stacks(&spans);
        assert_eq!(
            folded, "stream 50\nstream;flush 40\nstream;flush;batch 10\n",
            "self time: 100-50 children, 30-10+20 merged, leaf 10"
        );
    }

    #[test]
    fn chrome_trace_is_wellformed_json() {
        let spans = vec![
            span(0, None, "stream", NO_SEQ, 1500),
            span(1, Some(0), "flush", 3, 250),
        ];
        let json = chrome_trace_json(&spans);
        let parsed = dbp_obs::json::parse(&json).expect("trace must parse");
        let arr = parsed.as_array().expect("top level is an array");
        assert_eq!(arr.len(), 2);
        let first = &arr[0];
        assert_eq!(first.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(first.get("name").and_then(|v| v.as_str()), Some("stream"));
    }
}
