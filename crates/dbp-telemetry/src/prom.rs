//! Prometheus text-format exposition of counters and histograms.
//!
//! [`render_prometheus`] turns a [`CountersSnapshot`] plus a
//! [`TelemetrySnapshot`] into the plain-text format every Prometheus
//! scraper (and `promtool check metrics`) accepts: `# TYPE` headers,
//! cumulative `_bucket{le="…"}` series ending in `+Inf`, and `_sum` /
//! `_count` companions. Histogram buckets follow the shared
//! [`crate::hist::Histogram`] layout, emitting only boundaries up to the
//! first empty tail so a 64-bucket histogram does not bloat the scrape.
//!
//! Output is deterministic for deterministic inputs (fixed metric order,
//! integer formatting only), so golden tests can compare it verbatim.

use crate::hist::{Histogram, BUCKETS};
use crate::recorder::TelemetrySnapshot;
use dbp_obs::CountersSnapshot;
use std::fmt::Write as _;

/// Renders `labels` as `{k="v",…}`, or nothing when empty.
fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", dbp_obs::json::escape(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Same as [`label_block`] but with `le` appended — the bucket label.
fn bucket_labels(labels: &[(&str, &str)], le: &str) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", dbp_obs::json::escape(v)))
        .collect();
    pairs.push(format!("le=\"{le}\""));
    format!("{{{}}}", pairs.join(","))
}

/// Appends one `counter`-typed series (`# HELP`/`# TYPE` headers plus a
/// single sample). `labels` is a pre-rendered `{k="v",…}` block from the
/// caller, or `""`.
pub fn render_counter(out: &mut String, name: &str, help: &str, labels: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name}{labels} {value}");
}

/// Appends one `histogram`-typed series for a [`Histogram`]: cumulative
/// `_bucket{le="…"}` samples up to the last non-empty bucket (then
/// `+Inf`), plus `_sum` and `_count`. Public so other exposition
/// surfaces (e.g. the serving layer's per-service metrics endpoint) emit
/// the exact same bucket layout as [`render_prometheus`].
pub fn render_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    labels: &[(&str, &str)],
    h: &Histogram,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    // Cumulative buckets up to the last non-empty one; +Inf always.
    let counts = h.bucket_counts();
    let last = counts.iter().rposition(|&c| c > 0);
    let mut cumulative = 0u64;
    if let Some(last) = last {
        for (i, &c) in counts.iter().enumerate().take(last + 1) {
            cumulative += c;
            let le = if i + 1 >= BUCKETS {
                "+Inf".to_string()
            } else {
                Histogram::bucket_upper_bound(i).to_string()
            };
            let _ = writeln!(
                out,
                "{name}_bucket{} {cumulative}",
                bucket_labels(labels, &le)
            );
        }
    }
    if last.is_none_or(|l| l + 1 < BUCKETS) {
        let _ = writeln!(
            out,
            "{name}_bucket{} {}",
            bucket_labels(labels, "+Inf"),
            h.count()
        );
    }
    let plain = label_block(labels);
    let _ = writeln!(out, "{name}_sum{plain} {}", h.sum());
    let _ = writeln!(out, "{name}_count{plain} {}", h.count());
}

/// Renders the full exposition: run counters, then work histograms, then
/// wall-clock histograms, all prefixed `dbp_` and carrying `labels`
/// (e.g. `[("algo", "first-fit")]`).
pub fn render_prometheus(
    counters: &CountersSnapshot,
    telemetry: &TelemetrySnapshot,
    labels: &[(&str, &str)],
) -> String {
    let plain = label_block(labels);
    let mut out = String::new();
    for (name, help, value) in [
        (
            "dbp_items_packed_total",
            "Items fed to the packer",
            counters.items_packed,
        ),
        (
            "dbp_placements_reused_total",
            "Placements that reused an open bin",
            counters.placements_reused,
        ),
        ("dbp_bins_opened_total", "Bins opened", counters.bins_opened),
        ("dbp_bins_closed_total", "Bins closed", counters.bins_closed),
        (
            "dbp_candidates_scanned_total",
            "Open bins inspected across placement decisions",
            counters.candidates_scanned,
        ),
        (
            "dbp_estimates_used_total",
            "Departure estimates substituted under noisy clairvoyance",
            counters.estimates_used,
        ),
        (
            "dbp_bins_failed_total",
            "Bins killed by fault injection",
            counters.bins_failed,
        ),
        (
            "dbp_arrivals_shed_total",
            "Arrivals shed by admission control",
            counters.arrivals_shed,
        ),
    ] {
        render_counter(&mut out, name, help, &plain, value);
    }
    for (name, help, h) in [
        (
            "dbp_candidates_per_decision",
            "Open bins inspected per placement decision (deterministic)",
            &telemetry.work.candidates,
        ),
        (
            "dbp_open_bins",
            "Fleet size after each level change (deterministic)",
            &telemetry.work.open_bins,
        ),
        (
            "dbp_bin_items",
            "Items per bin over its lifetime (deterministic)",
            &telemetry.work.bin_items,
        ),
        (
            "dbp_bin_lifetime_ticks",
            "Bin lifetime in stream ticks (deterministic)",
            &telemetry.work.bin_lifetime,
        ),
        (
            "dbp_decide_ns",
            "Nanoseconds per sampled place call",
            &telemetry.run.decide_ns,
        ),
        (
            "dbp_depart_ns",
            "Nanoseconds per sampled departure sweep",
            &telemetry.run.depart_ns,
        ),
        (
            "dbp_batch_flush_ns",
            "Nanoseconds per worker batch flush",
            &telemetry.run.batch_flush_ns,
        ),
        (
            "dbp_batch_items",
            "Items per flushed batch",
            &telemetry.run.batch_items,
        ),
        (
            "dbp_merge_ns",
            "Nanoseconds per slice merge",
            &telemetry.run.merge_ns,
        ),
        (
            "dbp_finish_ns",
            "Nanoseconds of the final drain",
            &telemetry.run.finish_ns,
        ),
    ] {
        render_histogram(&mut out, name, help, labels, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_has_headers_buckets_and_companions() {
        let counters = CountersSnapshot {
            items_packed: 42,
            ..Default::default()
        };
        let mut t = TelemetrySnapshot::default();
        for v in [1u64, 3, 3, 100] {
            t.work.candidates.record(v);
        }
        let text = render_prometheus(&counters, &t, &[("algo", "first-fit")]);
        assert!(text.contains("# TYPE dbp_items_packed_total counter"));
        assert!(text.contains("dbp_items_packed_total{algo=\"first-fit\"} 42"));
        assert!(text.contains("# TYPE dbp_candidates_per_decision histogram"));
        assert!(text.contains("dbp_candidates_per_decision_bucket{algo=\"first-fit\",le=\"1\"} 1"));
        assert!(text.contains("dbp_candidates_per_decision_bucket{algo=\"first-fit\",le=\"3\"} 3"));
        assert!(
            text.contains("dbp_candidates_per_decision_bucket{algo=\"first-fit\",le=\"+Inf\"} 4"),
            "+Inf bucket must close the series"
        );
        assert!(text.contains("dbp_candidates_per_decision_sum{algo=\"first-fit\"} 107"));
        assert!(text.contains("dbp_candidates_per_decision_count{algo=\"first-fit\"} 4"));
        // Empty histograms still expose sum/count (+Inf covers them).
        assert!(text.contains("dbp_merge_ns_bucket{algo=\"first-fit\",le=\"+Inf\"} 0"));
        assert!(text.contains("dbp_merge_ns_count{algo=\"first-fit\"} 0"));
    }

    #[test]
    fn no_labels_renders_bare_names() {
        let text = render_prometheus(
            &CountersSnapshot::default(),
            &TelemetrySnapshot::default(),
            &[],
        );
        assert!(text.contains("dbp_items_packed_total 0"));
        assert!(text.contains("dbp_decide_ns_bucket{le=\"+Inf\"} 0"));
    }

    #[test]
    fn buckets_are_cumulative() {
        let mut t = TelemetrySnapshot::default();
        for v in 0..10u64 {
            t.run.decide_ns.record(v);
        }
        let text = render_prometheus(&CountersSnapshot::default(), &t, &[]);
        // Buckets 0..=3 are exact singletons, then pairs: cumulative
        // counts must be non-decreasing and end at 10.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("dbp_decide_ns_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*counts.last().unwrap(), 10);
    }
}
