//! Property tests for the algorithm crate: exact solvers against brute
//! force, classification boundary behaviour, Dual Coloring stripe
//! capacity, and the indexed-vs-linear scan differential for the whole
//! online roster.

use dbp_algos::exact::{min_bins, min_usage_packing, opt_total};
use dbp_algos::offline::{phase1, phase2, DualColoring, DurationDescendingFirstFit};
use dbp_algos::online::{
    AnyFit, ClassifyByDepartureTime, ClassifyByDuration, CombinedClassify, HybridFirstFit,
};
use dbp_core::accounting::lower_bounds;
use dbp_core::{Instance, Item, OfflinePacker, OnlineEngine, OnlinePacker, OnlineRun, Size};
use proptest::prelude::*;

fn arb_sizes(max: usize) -> impl Strategy<Value = Vec<Size>> {
    proptest::collection::vec(
        (1u64..=64).prop_map(|s| Size::from_ratio(s, 64).unwrap()),
        0..=max,
    )
}

fn arb_instance(max_items: usize) -> impl Strategy<Value = Instance> {
    let item = (1u64..=64, 0i64..100, 1i64..50).prop_map(|(s, a, d)| (s, a, a + d));
    proptest::collection::vec(item, 1..=max_items).prop_map(|triples| {
        let items = triples
            .into_iter()
            .enumerate()
            .map(|(i, (s, a, dep))| Item::new(i as u32, Size::from_ratio(s, 64).unwrap(), a, dep))
            .collect();
        Instance::from_items(items).unwrap()
    })
}

/// Brute-force exact bin packing by enumerating assignments.
fn brute_min_bins(sizes: &[Size]) -> usize {
    if sizes.is_empty() {
        return 0;
    }
    let n = sizes.len();
    fn rec(sizes: &[Size], idx: usize, bins: &mut Vec<u64>, best: &mut usize) {
        if bins.len() >= *best {
            return;
        }
        if idx == sizes.len() {
            *best = bins.len();
            return;
        }
        let s = sizes[idx].raw();
        for i in 0..bins.len() {
            if bins[i] + s <= Size::SCALE {
                bins[i] += s;
                rec(sizes, idx + 1, bins, best);
                bins[i] -= s;
            }
        }
        bins.push(s);
        rec(sizes, idx + 1, bins, best);
        bins.pop();
    }
    let mut best = n;
    rec(sizes, 0, &mut Vec::new(), &mut best);
    best
}

/// Bit-identity between two engine runs: same packing, same usage, same
/// bin lifetime records (the comparison the dbp-audit harness applies).
fn same_run(a: &OnlineRun, b: &OnlineRun) -> Result<(), String> {
    if a.packing != b.packing {
        return Err("packings differ".into());
    }
    if a.usage != b.usage {
        return Err(format!("usage {} vs {}", a.usage, b.usage));
    }
    if a.bins.len() != b.bins.len() {
        return Err(format!("{} bins vs {}", a.bins.len(), b.bins.len()));
    }
    for (x, y) in a.bins.iter().zip(&b.bins) {
        if x.id != y.id
            || x.opened_at != y.opened_at
            || x.closed_at != y.closed_at
            || x.tag != y.tag
            || x.items != y.items
        {
            return Err(format!("bin {} lifetime record differs", x.id.0));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The branch-and-bound classical bin packing solver is exact.
    #[test]
    fn min_bins_matches_bruteforce(sizes in arb_sizes(8)) {
        prop_assert_eq!(min_bins(&sizes), brute_min_bins(&sizes));
    }

    /// `opt_total` is monotone under item removal (removing an item can
    /// never increase the adversary's cost).
    #[test]
    fn opt_total_monotone(inst in arb_instance(6)) {
        let full = opt_total(&inst);
        for skip in 0..inst.len() {
            let items: Vec<Item> = inst
                .items()
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, r)| *r)
                .collect();
            let sub = Instance::from_items(items).unwrap();
            prop_assert!(opt_total(&sub) <= full);
        }
    }

    /// The no-migration optimum equals DDFF when DDFF happens to match the
    /// lower bound, and is always sandwiched between OPT_total and any
    /// heuristic.
    #[test]
    fn exact_sandwich(inst in arb_instance(6)) {
        let (opt, packing) = min_usage_packing(&inst);
        packing.validate(&inst).unwrap();
        let adversary = opt_total(&inst);
        let ddff = DurationDescendingFirstFit::new().pack(&inst).total_usage(&inst);
        prop_assert!(adversary <= opt);
        prop_assert!(opt <= ddff);
    }

    /// Dual Coloring stripe capacity: within each Phase 2 bin, the level
    /// never exceeds capacity (the Lemma 5 → stripe argument, end to end),
    /// and the bin count is within 2m−1.
    #[test]
    fn dual_coloring_stripe_capacity(inst in arb_instance(20)) {
        let (small, _) = inst.split_small_large();
        let placements = phase1(&small);
        let bins = phase2(&placements);
        // Validate via a small-items-only instance.
        let small_inst = Instance::from_items(small.clone()).unwrap();
        let packing = dbp_core::Packing::from_bins(bins.clone());
        // phase2 prunes empty bins but must cover all small items.
        prop_assert!(packing.validate(&small_inst).is_ok());
        if !placements.is_empty() {
            let peak = placements.iter().map(|p| p.altitude).max().unwrap();
            let m = peak.div_ceil(Size::SCALE / 2) as usize;
            prop_assert!(bins.len() < 2 * m);
        }
    }

    /// The full Dual Coloring packing respects Theorem 2 against LB3.
    #[test]
    fn dual_coloring_theorem2(inst in arb_instance(20)) {
        let p = DualColoring::new().pack(&inst);
        p.validate(&inst).unwrap();
        prop_assert!(p.total_usage(&inst) <= 4 * lower_bounds(&inst).best());
    }

    /// CBDT: items sharing a bin always depart within the same ρ-window.
    #[test]
    fn cbdt_bins_are_departure_homogeneous(inst in arb_instance(24), rho in 1i64..40) {
        let mut packer = ClassifyByDepartureTime::new(rho);
        let run = OnlineEngine::clairvoyant().run(&inst, &mut packer).unwrap();
        let epoch = inst.first_arrival().unwrap();
        for rec in &run.bins {
            let cats: std::collections::HashSet<i64> = rec
                .items
                .iter()
                .map(|id| {
                    let dep = inst.item(*id).unwrap().departure();
                    (dep - epoch + rho - 1) / rho
                })
                .collect();
            prop_assert_eq!(cats.len(), 1, "bin mixes departure windows");
        }
    }

    /// Indexed-vs-linear differential, Any Fit family: on random
    /// instances, every fit rule answered from the `OpenBins` index
    /// produces a bit-identical run — packing, usage, and bin lifetime
    /// records — to the seed's linear open-bin walk.
    #[test]
    fn any_fit_indexed_matches_linear_scan(inst in arb_instance(40)) {
        let eng = OnlineEngine::non_clairvoyant();
        let pairs: Vec<(AnyFit, AnyFit)> = vec![
            (AnyFit::first_fit(), AnyFit::first_fit().with_linear_scan()),
            (AnyFit::best_fit(), AnyFit::best_fit().with_linear_scan()),
            (AnyFit::worst_fit(), AnyFit::worst_fit().with_linear_scan()),
            (AnyFit::next_fit(), AnyFit::next_fit().with_linear_scan()),
        ];
        for (mut indexed, mut linear) in pairs {
            let name = indexed.name();
            let a = eng.run(&inst, &mut indexed).unwrap();
            let b = eng.run(&inst, &mut linear).unwrap();
            if let Err(why) = same_run(&a, &b) {
                prop_assert!(false, "{}: {}", name, why);
            }
        }
    }

    /// Indexed-vs-linear differential, classification strategies: the
    /// per-tag fit index agrees with the linear category walk for CBDT,
    /// CBD, the combined classifier, and Hybrid First Fit.
    #[test]
    fn classifiers_indexed_match_linear_scan(inst in arb_instance(40), rho in 1i64..24, alpha in 1.2f64..4.0) {
        let eng = OnlineEngine::clairvoyant();
        let pairs: Vec<(Box<dyn OnlinePacker>, Box<dyn OnlinePacker>)> = vec![
            (
                Box::new(ClassifyByDepartureTime::new(rho)),
                Box::new(ClassifyByDepartureTime::new(rho).with_linear_scan()),
            ),
            (
                Box::new(ClassifyByDuration::new(1, alpha)),
                Box::new(ClassifyByDuration::new(1, alpha).with_linear_scan()),
            ),
            (
                Box::new(CombinedClassify::new(1, alpha)),
                Box::new(CombinedClassify::new(1, alpha).with_linear_scan()),
            ),
            (
                Box::new(HybridFirstFit::default()),
                Box::new(HybridFirstFit::default().with_linear_scan()),
            ),
        ];
        for (mut indexed, mut linear) in pairs {
            let name = indexed.name();
            let a = eng.run(&inst, indexed.as_mut()).unwrap();
            let b = eng.run(&inst, linear.as_mut()).unwrap();
            if let Err(why) = same_run(&a, &b) {
                prop_assert!(false, "{}: {}", name, why);
            }
        }
    }

    /// CBD: items sharing a bin have duration ratio at most α.
    #[test]
    fn cbd_bins_bound_duration_ratio(inst in arb_instance(24), alpha in 1.2f64..4.0) {
        let mut packer = ClassifyByDuration::new(1, alpha);
        let run = OnlineEngine::clairvoyant().run(&inst, &mut packer).unwrap();
        for rec in &run.bins {
            let durs: Vec<i64> = rec
                .items
                .iter()
                .map(|id| inst.item(*id).unwrap().duration())
                .collect();
            let min = *durs.iter().min().unwrap() as f64;
            let max = *durs.iter().max().unwrap() as f64;
            prop_assert!(
                max / min <= alpha * (1.0 + 1e-9),
                "bin duration ratio {} exceeds alpha {}",
                max / min,
                alpha
            );
        }
    }
}
