//! Exhaustive verification over every tiny instance in a discretized
//! family: all combinations of 3 items with sizes in {1/4, 1/2, 3/4, 1},
//! arrivals in {0, 2, 5} and durations in {1, 3, 8}. For each of the
//! ~5⁶ instances the theorem bounds and solver orderings are checked
//! against the exact optimum — deterministic, shrink-free coverage of the
//! small-case space that property tests sample randomly.

use dbp_algos::exact::{min_usage_packing, opt_total};
use dbp_algos::offline::{DualColoring, DurationDescendingFirstFit};
use dbp_algos::online::{AnyFit, ClassifyByDepartureTime, ClassifyByDuration};
use dbp_core::accounting::lower_bounds;
use dbp_core::{Instance, Item, OfflinePacker, OnlineEngine, Size};

const SIZES: [u64; 4] = [16, 32, 48, 64]; // /64 of capacity
const ARRIVALS: [i64; 3] = [0, 2, 5];
const DURATIONS: [i64; 3] = [1, 3, 8];

fn all_items() -> Vec<Item> {
    let mut out = Vec::new();
    let mut id = 0u32;
    for &s in &SIZES {
        for &a in &ARRIVALS {
            for &d in &DURATIONS {
                out.push(Item::new(id, Size::from_ratio(s, 64).unwrap(), a, a + d));
                id += 1;
            }
        }
    }
    out
}

/// Every unordered triple of configurations (with repetition of shape but
/// fresh ids).
fn all_instances() -> Vec<Instance> {
    let shapes = all_items();
    let n = shapes.len();
    let mut out = Vec::new();
    for i in 0..n {
        for j in i..n {
            for k in j..n {
                let items = vec![
                    shapes[i].with_id(0),
                    shapes[j].with_id(1),
                    shapes[k].with_id(2),
                ];
                out.push(Instance::from_items(items).unwrap());
            }
        }
    }
    out
}

#[test]
fn exhaustive_three_item_instances() {
    let instances = all_instances();
    assert!(instances.len() > 7_000, "space size {}", instances.len());
    let engine = OnlineEngine::clairvoyant();
    let nc = OnlineEngine::non_clairvoyant();

    for inst in &instances {
        let lb = lower_bounds(inst);
        let adversary = opt_total(inst);
        let (opt, opt_packing) = min_usage_packing(inst);
        opt_packing.validate(inst).unwrap();

        // Solver ordering.
        assert!(lb.lb3 <= adversary, "{inst:?}");
        assert!(adversary <= opt, "{inst:?}");

        // Offline theorem bounds against the exact adversary.
        let ddff = DurationDescendingFirstFit::new().pack(inst);
        ddff.validate(inst).unwrap();
        let ddff_usage = ddff.total_usage(inst);
        assert!(opt <= ddff_usage, "{inst:?}");
        assert!(ddff_usage < 5 * adversary + 1, "Thm 1 on {inst:?}");

        let dc = DualColoring::new().pack(inst);
        dc.validate(inst).unwrap();
        assert!(dc.total_usage(inst) <= 4 * adversary, "Thm 2 on {inst:?}");

        // Online: FF within μ+4, classification strategies within their
        // bounds (μ = 8 here).
        let mu = inst.mu().unwrap();
        let delta = inst.min_duration().unwrap();
        let ff = nc.run(inst, &mut AnyFit::first_fit()).unwrap();
        ff.packing.validate(inst).unwrap();
        assert!(
            ff.usage as f64 <= (mu + 4.0) * adversary as f64,
            "FF mu+4 on {inst:?}"
        );

        let mut cbdt = ClassifyByDepartureTime::with_known_durations(delta, mu);
        let r = engine.run(inst, &mut cbdt).unwrap();
        r.packing.validate(inst).unwrap();
        let rho = cbdt.rho() as f64;
        let bound = (rho / delta as f64) + (mu * delta as f64 / rho) + 3.0;
        assert!(
            r.usage as f64 <= bound * adversary as f64 + 1e-9,
            "Thm 4 on {inst:?}"
        );

        let mut cbd = ClassifyByDuration::with_known_durations(delta, mu);
        let r = engine.run(inst, &mut cbd).unwrap();
        r.packing.validate(inst).unwrap();
        let (cbd_bound, _) = dbp_theory::cbd_best_known(mu);
        assert!(
            r.usage as f64 <= cbd_bound * adversary as f64 + 1e-9,
            "Thm 5 on {inst:?}"
        );
    }
}
