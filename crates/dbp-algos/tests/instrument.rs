//! Integration tests for the §5.2 stage decomposition
//! ([`dbp_algos::instrument::stage_breakdown`]): the defensive
//! zero-length-bin-life branch, and a property test that the three
//! stages tile the total usage on random workloads.

use dbp_algos::instrument::stage_breakdown;
use dbp_algos::online::ClassifyByDepartureTime;
use dbp_core::online::BinRecord;
use dbp_core::{BinId, Instance, OnlineEngine, OnlineRun};
use proptest::prelude::*;

fn run_cbdt(inst: &Instance, rho: i64) -> OnlineRun {
    let mut p = ClassifyByDepartureTime::new(rho);
    OnlineEngine::clairvoyant().run(inst, &mut p).unwrap()
}

/// A zero-length bin life (opened_at == closed_at) cannot come out of the
/// engine — bins live at least as long as their shortest item — but
/// `stage_breakdown` also runs on event-replayed and hand-built runs, so
/// the defensive `continue` must skip such records without contributing
/// usage or panicking.
#[test]
fn zero_length_bin_life_is_skipped() {
    let inst = Instance::from_triples(&[(0.6, 0, 9), (0.6, 1, 10), (0.5, 12, 25), (0.7, 13, 24)]);
    let rho = 10;
    let mut run = run_cbdt(&inst, rho);
    let (cats_before, agg_before) = stage_breakdown(&inst, &run, rho);
    assert_eq!(agg_before.total(), run.usage);

    // Inject a degenerate record into an existing category and a brand-new
    // one; neither may change any stage total.
    let tag = run.bins[0].tag;
    run.bins.push(BinRecord {
        id: BinId(900),
        opened_at: 5,
        closed_at: 5,
        tag,
        items: Vec::new(),
    });
    run.bins.push(BinRecord {
        id: BinId(901),
        opened_at: 7,
        closed_at: 7,
        tag: tag + 50,
        items: Vec::new(),
    });
    let (cats_after, agg_after) = stage_breakdown(&inst, &run, rho);
    assert_eq!(agg_after, agg_before);
    // The new empty category still shows up in the per-category detail,
    // with zero usage in every stage.
    assert_eq!(cats_after.len(), cats_before.len() + 1);
    let empty = cats_after
        .iter()
        .find(|c| c.category == tag + 50)
        .expect("degenerate category listed");
    assert_eq!(empty.usage.total(), 0);
    assert_eq!(empty.bins, 1);
}

proptest! {
    /// The decomposition is a tiling: for any random workload and any ρ,
    /// stage A + stage B + stage C equals the run's total usage exactly,
    /// and every per-category window is ordered t₁ ≤ t₂ ≤ t₃.
    #[test]
    fn stages_tile_total_usage_on_random_workloads(
        jobs in prop::collection::vec(
            (5u32..95, 0i64..400, 1i64..200),
            1..60,
        ),
        rho in 1i64..300,
    ) {
        let triples: Vec<(f64, i64, i64)> = jobs
            .iter()
            .map(|&(pct, arrival, dur)| (pct as f64 / 100.0, arrival, arrival + dur))
            .collect();
        let inst = Instance::from_triples(&triples);
        let run = run_cbdt(&inst, rho);
        run.packing.validate(&inst).unwrap();
        let (cats, agg) = stage_breakdown(&inst, &run, rho);
        prop_assert_eq!(agg.total(), run.usage);
        let per_cat: u128 = cats.iter().map(|c| c.usage.total()).sum();
        prop_assert_eq!(per_cat, run.usage);
        for c in &cats {
            prop_assert!(c.t1 <= c.t2 && c.t2 <= c.t3, "window order in category {}", c.category);
        }
    }
}
