//! Duration Descending First Fit (§4.1) and the shared interval-First-Fit
//! placement engine.
//!
//! Items are sorted by duration, longest first, and placed one at a time by
//! the first fit rule: each item goes into the lowest-indexed bin that can
//! accommodate it *throughout its active interval* (offline placement must
//! check the whole interval: a bin may already hold items arriving later).
//! Theorem 1 proves an approximation ratio of 5.

use dbp_core::profile::{BTreeProfile, LevelProfile, SegTreeProfile};
use dbp_core::{Instance, Item, OfflinePacker, Packing, Size};

/// Which level-profile data structure backs feasibility queries — the E7
/// ablation of DESIGN.md. Results are identical; only performance differs.
///
/// Measured outcome (bench_profiles): the BTree backend wins at every
/// tested size (500–8000 items, ~2–4×) because each *bin* gets its own
/// profile, and building a full-coordinate segment tree per bin costs
/// more than its faster queries recover. The segment tree would pay off
/// only with many items per bin over a shared coordinate set; it is kept
/// as the measured counter-example to the "always use the asymptotically
/// better structure" instinct.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProfileBackend {
    /// `BTreeMap` piecewise-constant profile: no setup, `O(k log n)` ops.
    #[default]
    BTree,
    /// Coordinate-compressed lazy segment tree: `O(log n)` ops after an
    /// `O(n log n)` setup pass over all event times.
    SegTree,
}

enum AnyProfile {
    BTree(BTreeProfile),
    SegTree(SegTreeProfile),
}

impl AnyProfile {
    fn add(&mut self, iv: dbp_core::Interval, s: Size) {
        match self {
            AnyProfile::BTree(p) => p.add(iv, s),
            AnyProfile::SegTree(p) => p.add(iv, s),
        }
    }
    fn fits(&self, iv: dbp_core::Interval, s: Size) -> bool {
        match self {
            AnyProfile::BTree(p) => p.fits(iv, s, Size::CAPACITY),
            AnyProfile::SegTree(p) => p.fits(iv, s, Size::CAPACITY),
        }
    }
}

/// Places `items` (in the given order) by interval first fit: lowest-indexed
/// bin whose level stays within capacity over the item's whole interval.
/// Returns per-bin item lists in bin-opening order.
///
/// This engine is shared by [`DurationDescendingFirstFit`] (duration-sorted
/// input), [`ArrivalFirstFit`](super::ArrivalFirstFit) (arrival-sorted
/// input) and the large-item packer of Dual Coloring.
pub fn interval_first_fit(items: &[Item], backend: ProfileBackend) -> Vec<Vec<Item>> {
    let make = || match backend {
        ProfileBackend::BTree => AnyProfile::BTree(BTreeProfile::new()),
        ProfileBackend::SegTree => {
            let mut times: Vec<i64> = items
                .iter()
                .flat_map(|r| [r.arrival(), r.departure()])
                .collect();
            times.sort_unstable();
            times.dedup();
            // SegTreeProfile needs ≥ 2 coordinates.
            if times.len() < 2 {
                times = vec![0, 1];
            }
            AnyProfile::SegTree(SegTreeProfile::new(times))
        }
    };
    let mut profiles: Vec<AnyProfile> = Vec::new();
    let mut bins: Vec<Vec<Item>> = Vec::new();
    for r in items {
        let iv = r.interval();
        let mut placed = false;
        for (profile, bin) in profiles.iter_mut().zip(bins.iter_mut()) {
            if profile.fits(iv, r.size()) {
                profile.add(iv, r.size());
                bin.push(*r);
                placed = true;
                break;
            }
        }
        if !placed {
            let mut profile = make();
            profile.add(iv, r.size());
            profiles.push(profile);
            bins.push(vec![*r]);
        }
    }
    bins
}

/// Duration Descending First Fit — Theorem 1, 5-approximation.
/// # Example
///
/// ```
/// use dbp_algos::offline::DurationDescendingFirstFit;
/// use dbp_core::{Instance, OfflinePacker};
/// use dbp_core::accounting::lower_bounds;
///
/// let jobs = Instance::from_triples(&[(0.5, 0, 100), (0.5, 10, 60), (0.5, 20, 90)]);
/// let packing = DurationDescendingFirstFit::new().pack(&jobs);
/// packing.validate(&jobs).unwrap();
/// // Theorem 1: within 5x of the optimum (checked here against LB3 ≤ OPT).
/// assert!(packing.total_usage(&jobs) <= 5 * lower_bounds(&jobs).best());
/// ```
///
#[derive(Clone, Copy, Debug, Default)]
pub struct DurationDescendingFirstFit {
    backend: ProfileBackend,
}

impl DurationDescendingFirstFit {
    /// Creates the packer with the default (BTree) profile backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the profile backend (see [`ProfileBackend`]).
    pub fn with_backend(backend: ProfileBackend) -> Self {
        DurationDescendingFirstFit { backend }
    }
}

impl OfflinePacker for DurationDescendingFirstFit {
    fn name(&self) -> &'static str {
        "ddff"
    }

    fn pack(&self, inst: &Instance) -> Packing {
        let mut items: Vec<Item> = inst.items().to_vec();
        // Longest duration first; ties by arrival then id for determinism.
        items.sort_by_key(|r| (std::cmp::Reverse(r.duration()), r.arrival(), r.id()));
        let bins = interval_first_fit(&items, self.backend);
        Packing::from_bins(
            bins.into_iter()
                .map(|b| b.into_iter().map(|r| r.id()).collect())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::accounting::lower_bounds;

    fn assert_ddff_ok(inst: &Instance, backend: ProfileBackend) -> u128 {
        let p = DurationDescendingFirstFit::with_backend(backend).pack(inst);
        p.validate(inst).unwrap();
        p.total_usage(inst)
    }

    #[test]
    fn packs_compatible_items_together() {
        let inst = Instance::from_triples(&[(0.5, 0, 100), (0.5, 10, 60), (0.5, 20, 90)]);
        let p = DurationDescendingFirstFit::new().pack(&inst);
        p.validate(&inst).unwrap();
        // Longest (0) first; item 2 (dur 70) next shares bin 0 (0.5+0.5=1);
        // item 1 opens bin 1.
        assert_eq!(p.num_bins(), 2);
    }

    #[test]
    fn offline_sees_future_conflicts() {
        // Items sorted by duration: r0 [50,150) dur 100, r1 [0,90) dur 90,
        // r2 [60,80) dur 20 size 0.5. r2 fits neither bin over its whole
        // interval if both are at 0.6 in [60,80).
        let inst = Instance::from_triples(&[(0.6, 50, 150), (0.6, 0, 90), (0.5, 60, 80)]);
        let p = DurationDescendingFirstFit::new().pack(&inst);
        p.validate(&inst).unwrap();
        assert_eq!(p.num_bins(), 3);
    }

    #[test]
    fn backends_agree() {
        let inst = Instance::from_triples(&[
            (0.4, 0, 30),
            (0.7, 5, 12),
            (0.2, 7, 80),
            (0.5, 10, 40),
            (0.9, 15, 22),
            (0.3, 20, 60),
            (0.1, 25, 26),
        ]);
        assert_eq!(
            assert_ddff_ok(&inst, ProfileBackend::BTree),
            assert_ddff_ok(&inst, ProfileBackend::SegTree)
        );
    }

    #[test]
    fn respects_five_approx_vs_lb() {
        // Theorem 1 guarantees usage < 5·OPT ≤ 5·(anything ≥ LB). Here we
        // check the (weaker, but unconditional) usage ≤ 5·LB3 cannot be
        // violated on a case where OPT = LB3.
        let inst =
            Instance::from_triples(&[(1.0, 0, 10), (1.0, 0, 10), (0.5, 10, 20), (0.5, 10, 20)]);
        let usage = assert_ddff_ok(&inst, ProfileBackend::BTree);
        let lb = lower_bounds(&inst);
        // OPT here: two full bins for [0,10), one bin for [10,20) = 30.
        assert_eq!(lb.best(), 30);
        assert!(usage <= 5 * lb.best());
    }

    #[test]
    fn single_item() {
        let inst = Instance::from_triples(&[(0.9, 3, 8)]);
        assert_eq!(assert_ddff_ok(&inst, ProfileBackend::BTree), 5);
        assert_eq!(assert_ddff_ok(&inst, ProfileBackend::SegTree), 5);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::from_items(vec![]).unwrap();
        let p = DurationDescendingFirstFit::new().pack(&inst);
        p.validate(&inst).unwrap();
        assert_eq!(p.num_bins(), 0);
    }

    #[test]
    fn full_size_items_one_per_overlap() {
        let inst = Instance::from_triples(&[(1.0, 0, 10), (1.0, 5, 15), (1.0, 12, 20)]);
        let p = DurationDescendingFirstFit::new().pack(&inst);
        p.validate(&inst).unwrap();
        // r2 [12,20) can reuse the bin of r0 [0,10) (disjoint).
        assert_eq!(p.num_bins(), 2);
    }
}
