//! ASCII rendering of the Dual Coloring demand chart (Figure 3).
//!
//! Renders the chart outline and the Phase 1 placements so the algorithm's
//! geometry can be inspected in a terminal — each item's rectangle is
//! drawn with a per-item letter, `.` marks chart area not covered by any
//! item (blue area), and space is outside the chart.

use super::dual_coloring::Phase1Placement;
use dbp_core::events::load_segments;
use dbp_core::{Item, Size};

/// Renders the demand chart of `small` with `placements` overlaid.
///
/// `width`/`height` are the raster dimensions; time and altitude are
/// scaled to fit. Items are labelled `a`–`z` (cycling) by placement order.
pub fn render_chart(
    small: &[Item],
    placements: &[Phase1Placement],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 2 && height >= 2);
    let chart = load_segments(small);
    if chart.is_empty() {
        return String::from("(empty chart)\n");
    }
    let t0 = chart.first().expect("nonempty").interval.start();
    let t1 = chart.last().expect("nonempty").interval.end();
    let peak = chart
        .iter()
        .map(|s| s.total_size.raw())
        .max()
        .unwrap_or(1)
        .max(1);
    let t_span = (t1 - t0).max(1) as f64;

    let time_at = |col: usize| t0 + ((col as f64 + 0.5) / width as f64 * t_span) as i64;
    let alt_at = |row: usize| {
        // Row 0 is the top of the chart.
        ((height - row) as f64 - 0.5) / height as f64 * peak as f64
    };

    let chart_height_at = |t: i64| -> u64 {
        chart
            .iter()
            .find(|s| s.interval.contains(t))
            .map(|s| s.total_size.raw())
            .unwrap_or(0)
    };

    let mut out = String::new();
    for row in 0..height {
        let alt = alt_at(row);
        let mut line = String::with_capacity(width + 12);
        for col in 0..width {
            let t = time_at(col);
            if (chart_height_at(t) as f64) < alt {
                line.push(' ');
                continue;
            }
            // Inside the chart: find a placement covering (t, alt).
            let hit = placements.iter().position(|p| {
                p.item.interval().contains(t)
                    && (p.bottom() as f64) < alt
                    && alt <= p.altitude as f64
            });
            line.push(match hit {
                Some(i) => (b'a' + (i % 26) as u8) as char,
                None => '.',
            });
        }
        out.push_str(&format!(
            "{:6.2} |{}\n",
            alt / Size::SCALE as f64,
            line.trim_end()
        ));
    }
    out.push_str(&format!("{:>6} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>7}t={t0}{}t={t1}\n",
        "",
        " ".repeat(width.saturating_sub(10))
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::super::dual_coloring::phase1;
    use super::*;

    fn smalls(triples: &[(f64, i64, i64)]) -> Vec<Item> {
        triples
            .iter()
            .enumerate()
            .map(|(i, &(s, a, d))| Item::new(i as u32, Size::from_f64(s), a, d))
            .collect()
    }

    #[test]
    fn renders_placements_with_letters() {
        let items = smalls(&[(0.5, 0, 10), (0.25, 2, 8), (0.25, 0, 10)]);
        let placements = phase1(&items);
        let out = render_chart(&items, &placements, 40, 10);
        // All three item letters appear.
        assert!(out.contains('a'));
        assert!(out.contains('b'));
        assert!(out.contains('c'));
        // Axis furniture present.
        assert!(out.contains("t=0"));
        assert!(out.contains("t=10"));
    }

    #[test]
    fn empty_chart_handled() {
        assert_eq!(render_chart(&[], &[], 10, 4), "(empty chart)\n");
    }

    #[test]
    fn chart_outline_without_placements_shows_blue_area() {
        let items = smalls(&[(0.5, 0, 10)]);
        let out = render_chart(&items, &[], 20, 6);
        assert!(out.contains('.'), "uncovered chart area should be dots");
        assert!(!out.contains('a'));
    }
}
