//! Offline First Fit in arrival order.
//!
//! The offline twin of online First Fit, with one difference: feasibility is
//! checked over the item's *whole interval* against everything already
//! placed. On arrival-ordered input with no later-arriving items already in
//! bins, both coincide except that this variant may reuse a bin after a gap
//! (bins never "close" offline), which can only reduce usage. It serves as a
//! control separating the benefit of *duration sorting* (DDFF) from the
//! first-fit rule itself.

use super::ddff::{interval_first_fit, ProfileBackend};
use dbp_core::{Instance, Item, OfflinePacker, Packing};

/// Offline First Fit in arrival order.
#[derive(Clone, Copy, Debug, Default)]
pub struct ArrivalFirstFit {
    backend: ProfileBackend,
}

impl ArrivalFirstFit {
    /// Creates the packer with the default profile backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the profile backend.
    pub fn with_backend(backend: ProfileBackend) -> Self {
        ArrivalFirstFit { backend }
    }
}

impl OfflinePacker for ArrivalFirstFit {
    fn name(&self) -> &'static str {
        "arrival-ff"
    }

    fn pack(&self, inst: &Instance) -> Packing {
        // Instance items are already sorted by (arrival, id).
        let items: Vec<Item> = inst.items().to_vec();
        let bins = interval_first_fit(&items, self.backend);
        Packing::from_bins(
            bins.into_iter()
                .map(|b| b.into_iter().map(|r| r.id()).collect())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_bins_across_gaps() {
        // Online FF must open a second bin (first closes at t=10); offline
        // arrival FF reuses bin 0.
        let inst = Instance::from_triples(&[(0.5, 0, 10), (0.5, 20, 30)]);
        let p = ArrivalFirstFit::new().pack(&inst);
        p.validate(&inst).unwrap();
        assert_eq!(p.num_bins(), 1);
        assert_eq!(p.total_usage(&inst), 20); // span counts the two pieces
    }

    #[test]
    fn matches_duration_sorting_when_all_equal() {
        let inst = Instance::from_triples(&[(0.4, 0, 10), (0.4, 0, 10), (0.4, 0, 10)]);
        let a = ArrivalFirstFit::new().pack(&inst);
        let d = super::super::DurationDescendingFirstFit::new().pack(&inst);
        assert_eq!(a.num_bins(), d.num_bins());
    }
}
