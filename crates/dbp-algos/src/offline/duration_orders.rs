//! Sorting-order ablations for offline interval First Fit.
//!
//! Theorem 1's analysis leans on *descending* duration order: when a new
//! bin opens for item `r`, every item already in earlier bins outlives
//! `r`, which is what makes the supplier-style charging argument work.
//! These ablation packers run the identical first-fit placement under
//! other orders, so experiments can isolate how much of DDFF's quality is
//! the sort key:
//!
//! * [`DurationAscendingFirstFit`] — shortest first: the charging argument
//!   breaks, and on staircase instances it strands long items in late,
//!   lonely bins.
//! * [`DemandDescendingFirstFit`] — by time–space demand `s(r)·l(I(r))`,
//!   a natural "biggest consumer first" heuristic with no proven bound.

use super::ddff::{interval_first_fit, ProfileBackend};
use dbp_core::{Instance, Item, OfflinePacker, Packing};

fn pack_sorted(inst: &Instance, key: impl FnMut(&Item) -> (i128, i64, u32)) -> Packing {
    let mut items: Vec<Item> = inst.items().to_vec();
    let mut key = key;
    items.sort_by_key(|r| key(r));
    let bins = interval_first_fit(&items, ProfileBackend::BTree);
    Packing::from_bins(
        bins.into_iter()
            .map(|b| b.into_iter().map(|r| r.id()).collect())
            .collect(),
    )
}

/// Shortest-duration-first First Fit (ablation; no approximation bound).
#[derive(Clone, Copy, Debug, Default)]
pub struct DurationAscendingFirstFit;

impl OfflinePacker for DurationAscendingFirstFit {
    fn name(&self) -> &'static str {
        "duration-ascending-ff"
    }

    fn pack(&self, inst: &Instance) -> Packing {
        pack_sorted(inst, |r| (r.duration() as i128, r.arrival(), r.id().0))
    }
}

/// Largest time–space demand first First Fit (ablation).
#[derive(Clone, Copy, Debug, Default)]
pub struct DemandDescendingFirstFit;

impl OfflinePacker for DemandDescendingFirstFit {
    fn name(&self) -> &'static str {
        "demand-descending-ff"
    }

    fn pack(&self, inst: &Instance) -> Packing {
        pack_sorted(inst, |r| (-(r.demand() as i128), r.arrival(), r.id().0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::accounting::lower_bounds;

    #[test]
    fn ablations_produce_valid_packings() {
        let inst = Instance::from_triples(&[
            (0.4, 0, 30),
            (0.7, 5, 12),
            (0.2, 7, 80),
            (0.5, 10, 40),
            (0.9, 15, 22),
            (0.3, 20, 60),
        ]);
        for p in [
            &DurationAscendingFirstFit as &dyn OfflinePacker,
            &DemandDescendingFirstFit,
        ] {
            let packing = p.pack(&inst);
            packing.validate(&inst).unwrap();
            assert!(packing.total_usage(&inst) >= lower_bounds(&inst).best());
        }
    }

    #[test]
    fn descending_beats_ascending_on_staircase() {
        // Long backbone items plus short riders: descending packs the
        // backbone first and the riders slot in; ascending packs riders
        // first, scattering them so the backbones cannot share.
        let mut triples = Vec::new();
        for w in 0..6i64 {
            triples.push((0.5, w * 100, w * 100 + 600)); // backbone, dur 600
            triples.push((0.5, w * 100, w * 100 + 30)); // rider, dur 30
        }
        let inst = Instance::from_triples(&triples);
        let desc = super::super::DurationDescendingFirstFit::new()
            .pack(&inst)
            .total_usage(&inst);
        let asc = DurationAscendingFirstFit.pack(&inst).total_usage(&inst);
        assert!(
            desc <= asc,
            "descending {desc} should not lose to ascending {asc}"
        );
    }
}
