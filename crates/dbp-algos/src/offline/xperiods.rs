//! The X-period decomposition used in the proof of Theorem 1 (Figure 2).
//!
//! For a bin's item set `R_k`, the proof first reduces it to `R'_k` by
//! discarding items whose interval is contained in another item's interval;
//! the survivors, sorted by arrival, then also have increasing departures.
//! The union of their intervals is split at arrival times into disjoint
//! *X-periods* whose lengths sum exactly to `span(R_k)`.
//!
//! These functions make the decomposition executable so tests and the
//! `exp_constructions` experiment can verify the identity
//! `Σ l(X(rᵢ)) = span(R_k)` on real packings.

use dbp_core::interval::{span_of, Interval};
use dbp_core::Item;

/// Reduces an item set to `R'`: drops any item whose interval is contained
/// in another's. Survivors are returned sorted by arrival time, and satisfy
/// strictly increasing arrivals *and* departures (ties collapse: of two
/// identical intervals one contains the other, so only one survives).
pub fn reduce_to_staircase(items: &[Item]) -> Vec<Item> {
    let mut kept: Vec<Item> = Vec::with_capacity(items.len());
    'outer: for (i, r) in items.iter().enumerate() {
        for (j, other) in items.iter().enumerate() {
            if i == j {
                continue;
            }
            let containment = other.interval().contains_interval(&r.interval());
            if containment && other.interval() != r.interval() {
                continue 'outer;
            }
            // Identical intervals: keep only the lowest id.
            if containment && other.interval() == r.interval() && other.id() < r.id() {
                continue 'outer;
            }
        }
        kept.push(*r);
    }
    kept.sort_by_key(|r| (r.arrival(), r.id()));
    kept
}

/// The X-periods of a staircase item list (output of
/// [`reduce_to_staircase`]): `X(rᵢ) = [I(rᵢ)⁻, min(I(rᵢ₊₁)⁻, I(rᵢ)⁺))` and
/// `X(rₙ) = I(rₙ)`. Empty X-periods (when two items arrive simultaneously —
/// impossible after reduction) are skipped defensively.
pub fn x_periods(staircase: &[Item]) -> Vec<(Item, Interval)> {
    let n = staircase.len();
    let mut out = Vec::with_capacity(n);
    for (i, r) in staircase.iter().enumerate() {
        let end = if i + 1 < n {
            staircase[i + 1].arrival().min(r.departure())
        } else {
            r.departure()
        };
        if r.arrival() < end {
            out.push((*r, Interval::of(r.arrival(), end)));
        }
    }
    out
}

/// Verifies the Figure 2 identity for an arbitrary item set: the X-periods
/// of its staircase reduction are disjoint, ordered, and their lengths sum
/// to the span of the original set. Returns the X-periods.
pub fn verify_decomposition(items: &[Item]) -> Vec<(Item, Interval)> {
    let staircase = reduce_to_staircase(items);
    // Staircase property: strictly increasing arrivals and departures.
    for w in staircase.windows(2) {
        assert!(w[0].arrival() < w[1].arrival(), "arrivals must increase");
        assert!(
            w[0].departure() < w[1].departure(),
            "departures must increase"
        );
    }
    let xp = x_periods(&staircase);
    for w in xp.windows(2) {
        assert!(w[0].1.end() <= w[1].1.start(), "X-periods must be disjoint");
    }
    let total: i64 = xp.iter().map(|(_, iv)| iv.len()).sum();
    let span = span_of(items.iter().map(|r| r.interval()));
    assert_eq!(total, span, "Σ l(X(rᵢ)) must equal span(R_k)");
    xp
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::Size;

    fn item(id: u32, a: i64, d: i64) -> Item {
        Item::new(id, Size::from_f64(0.3), a, d)
    }

    #[test]
    fn figure2_shape() {
        // A staircase of overlapping items like Figure 2.
        let items = vec![
            item(0, 0, 10),
            item(1, 4, 14),
            item(2, 8, 18),
            item(3, 16, 26),
        ];
        let xp = verify_decomposition(&items);
        assert_eq!(xp.len(), 4);
        assert_eq!(xp[0].1, Interval::of(0, 4));
        assert_eq!(xp[1].1, Interval::of(4, 8));
        assert_eq!(xp[2].1, Interval::of(8, 16));
        assert_eq!(xp[3].1, Interval::of(16, 26));
    }

    #[test]
    fn contained_items_removed() {
        let items = vec![
            item(0, 0, 20),
            item(1, 5, 10), // contained in item 0
            item(2, 15, 30),
        ];
        let stair = reduce_to_staircase(&items);
        assert_eq!(stair.len(), 2);
        assert!(stair.iter().all(|r| r.id().0 != 1));
        verify_decomposition(&items);
    }

    #[test]
    fn identical_intervals_keep_one() {
        let items = vec![item(0, 0, 10), item(1, 0, 10)];
        let stair = reduce_to_staircase(&items);
        assert_eq!(stair.len(), 1);
        assert_eq!(stair[0].id().0, 0);
        verify_decomposition(&items);
    }

    #[test]
    fn disjoint_items_full_periods() {
        let items = vec![item(0, 0, 5), item(1, 10, 15)];
        let xp = verify_decomposition(&items);
        assert_eq!(xp[0].1, Interval::of(0, 5));
        assert_eq!(xp[1].1, Interval::of(10, 15));
    }

    #[test]
    fn single_and_empty() {
        assert!(verify_decomposition(&[]).is_empty());
        let xp = verify_decomposition(&[item(0, 2, 9)]);
        assert_eq!(xp.len(), 1);
        assert_eq!(xp[0].1, Interval::of(2, 9));
    }
}
