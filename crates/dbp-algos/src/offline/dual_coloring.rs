//! The Dual Coloring algorithm (§4.2) — Theorem 2, 4-approximation.
//!
//! Items are split at size `1/2` into small and large groups, packed into
//! disjoint bin sets.
//!
//! **Large items** (`s > 1/2`): packed "arbitrarily" per the paper. Two
//! concrete rules are provided ([`LargeItemRule`]); both satisfy the
//! analysis (at most `⌊2·S_L(t)⌋` large bins are open at any `t` because no
//! two large items share a bin concurrently).
//!
//! **Small items** (`s ≤ 1/2`): placed into a *demand chart* — the region
//! under the curve `S_S(t)` (total active small size) — in Phase 1 such
//! that no three item rectangles overlap (Lemma 5), every item lands inside
//! the chart (Lemmas 3–4), and the whole chart ends up colored (Lemma 2).
//! Phase 2 cuts the chart into horizontal stripes of height `1/2`; items
//! fully inside stripe `k` share bin `k`, items crossing the boundary
//! between stripes `k` and `k+1` share bin `m+k`. At any time at most
//! `2⌈2·S_S(t)⌉ − 1` small bins are open, which combined with the large
//! bins is at most `4⌈S(t)⌉` — Proposition 3 then yields the factor 4.
//!
//! Phase 1 follows the paper's pseudocode exactly: altitudes are examined
//! from high to low; at each altitude the horizontal line decomposes into
//! red / blue / uncolored maximal intervals; an uncolored interval either
//! receives an item whose interval meets it and nothing else (coloring the
//! overlap red), or is colored blue all the way down.

use dbp_core::events::{load_segments, LoadSegment};
use dbp_core::interval::{union_components, Interval};
use dbp_core::{Instance, Item, OfflinePacker, Packing, Size};
use std::collections::BTreeSet;

use super::ddff::{interval_first_fit, ProfileBackend};

/// How the large group (`s > 1/2`) is packed. The paper allows any rule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LargeItemRule {
    /// Interval First Fit over large items — reuses bins across time,
    /// usually fewer bins (the default).
    #[default]
    IntervalFirstFit,
    /// One bin per large item — the most literal reading of "arbitrarily";
    /// kept as an ablation.
    OnePerBin,
}

/// An item's position in the demand chart after Phase 1: it occupies
/// altitudes `(altitude − s(r), altitude]` over its active interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Phase1Placement {
    /// The placed (small) item.
    pub item: Item,
    /// The top altitude `h`, in raw [`Size`] units.
    pub altitude: u64,
}

impl Phase1Placement {
    /// The bottom altitude `h − s(r)` in raw units.
    pub fn bottom(&self) -> u64 {
        self.altitude - self.item.size().raw()
    }
}

/// The Dual Coloring offline packer.
#[derive(Clone, Copy, Debug, Default)]
pub struct DualColoring {
    large_rule: LargeItemRule,
}

impl DualColoring {
    /// Creates the packer with the default large-item rule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the large-item rule (see [`LargeItemRule`]).
    pub fn with_large_rule(large_rule: LargeItemRule) -> Self {
        DualColoring { large_rule }
    }
}

impl OfflinePacker for DualColoring {
    fn name(&self) -> &'static str {
        "dual-coloring"
    }

    fn pack(&self, inst: &Instance) -> Packing {
        let (small, large) = inst.split_small_large();

        // Small items: Phase 1 placement, then Phase 2 stripe packing.
        let placements = phase1(&small);
        let mut bins = phase2(&placements);

        // Large items, in bins disjoint from the small-item bins.
        match self.large_rule {
            LargeItemRule::IntervalFirstFit => {
                for bin in interval_first_fit(&large, ProfileBackend::BTree) {
                    bins.push(bin.into_iter().map(|r| r.id()).collect());
                }
            }
            LargeItemRule::OnePerBin => {
                for r in &large {
                    bins.push(vec![r.id()]);
                }
            }
        }
        Packing::from_bins(bins)
    }
}

/// A red rectangle: `time × (lo, hi]` in altitude (raw units).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RedRect {
    /// Time extent of the colored area (the placed item's interval
    /// intersected with the uncolored interval it was matched to).
    pub time: Interval,
    /// Exclusive lower altitude (the item's lower boundary, left
    /// uncolored by the algorithm).
    pub lo: u64,
    /// Inclusive upper altitude.
    pub hi: u64,
}

/// A blue column: `time × (0, hi]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlueRect {
    /// Time extent of the blue column.
    pub time: Interval,
    /// Inclusive upper altitude (columns always start at 0).
    pub hi: u64,
}

/// The complete coloring produced by Phase 1, for Lemma 2 verification
/// and visualization.
#[derive(Clone, Debug, Default)]
pub struct Coloring {
    /// All red rectangles, in placement order.
    pub red: Vec<RedRect>,
    /// All blue columns, in coloring order.
    pub blue: Vec<BlueRect>,
}

/// Phase 1: places every small item in the demand chart such that no three
/// placements overlap (Lemma 5) and each placement lies within the chart
/// (Lemma 3). Follows the paper's pseudocode; see module docs.
///
/// # Panics
/// If an internal invariant guaranteed by Lemmas 2–5 fails (that would be
/// an implementation bug, not a property of the input).
pub fn phase1(small: &[Item]) -> Vec<Phase1Placement> {
    phase1_with_coloring(small).0
}

/// Phase 1 returning the full coloring state alongside the placements,
/// enabling the Lemma 2 check ([`verify_lemma2`]): after Phase 1, the
/// entire area of the demand chart is colored.
pub fn phase1_with_coloring(small: &[Item]) -> (Vec<Phase1Placement>, Coloring) {
    let chart: Vec<LoadSegment> = load_segments(small);
    if small.is_empty() {
        return (Vec::new(), Coloring::default());
    }

    // M: altitudes to examine — initially every distinct chart height.
    let mut altitudes: BTreeSet<u64> = chart.iter().map(|s| s.total_size.raw()).collect();
    altitudes.remove(&0);

    let mut unplaced: Vec<Item> = small.to_vec();
    unplaced.sort_by_key(|r| r.id());
    let mut red: Vec<RedRect> = Vec::new();
    let mut blue: Vec<BlueRect> = Vec::new();
    let mut placements: Vec<Phase1Placement> = Vec::new();

    while let Some(h) = altitudes.pop_last() {
        // Decompose the line at altitude h into red/blue/uncolored.
        let domain = domain_at(&chart, h);
        let mut red_line: Vec<Interval> =
            union_components(red.iter().filter(|r| r.lo < h && h <= r.hi).map(|r| r.time));
        let blue_line: Vec<Interval> =
            union_components(blue.iter().filter(|b| h <= b.hi).map(|b| b.time));
        let mut uncolored: Vec<Interval> =
            subtract_intervals(&domain, &merge(&red_line, &blue_line));

        while let Some(iu) = uncolored.pop() {
            // Find an unplaced item whose interval meets iu and nothing
            // else among the remaining uncolored and red intervals. The
            // item's whole interval must also lie inside the chart domain
            // at altitude h — the paper's Lemma 3 treats this as obvious
            // ("r's upper boundary is within the demand chart"), but it
            // must be enforced explicitly: without it an item whose
            // interval extends into regions where the chart is lower than
            // h would be placed sticking out of the chart.
            let candidate = unplaced.iter().position(|r| {
                r.interval().intersects(&iu)
                    && domain.iter().any(|d| d.contains_interval(&r.interval()))
                    && uncolored.iter().all(|i| !r.interval().intersects(i))
                    && red_line.iter().all(|i| !r.interval().intersects(i))
            });
            match candidate {
                Some(idx) => {
                    let r = unplaced.remove(idx);
                    let s = r.size().raw();
                    assert!(
                        s <= h,
                        "Lemma 3 violated: item {:?} of size {} placed at altitude {}",
                        r.id(),
                        s,
                        h
                    );
                    placements.push(Phase1Placement {
                        item: r,
                        altitude: h,
                    });
                    let overlap = r
                        .interval()
                        .intersection(&iu)
                        .expect("candidate intersects iu by construction");
                    red.push(RedRect {
                        time: overlap,
                        lo: h - s,
                        hi: h,
                    });
                    red_line.push(overlap);
                    // Remainders of iu stay uncolored at altitude h.
                    if iu.start() < r.arrival() {
                        uncolored.push(Interval::of(iu.start(), r.arrival()));
                    }
                    if iu.end() > r.departure() {
                        uncolored.push(Interval::of(r.departure(), iu.end()));
                    }
                    // The item's lower boundary becomes a new altitude.
                    if h > s {
                        altitudes.insert(h - s);
                    }
                }
                None => {
                    blue.push(BlueRect { time: iu, hi: h });
                }
            }
        }
    }

    assert!(
        unplaced.is_empty(),
        "Lemma 4 violated: {} small items left unplaced",
        unplaced.len()
    );
    (placements, Coloring { red, blue })
}

/// Lemma 2, machine-checked by exact area accounting: the union of the
/// red rectangles and blue columns covers the demand chart exactly.
///
/// Both areas are integers (raw-size × tick units), and colored regions
/// never extend outside the chart (red by Lemma 3, blue by construction),
/// so *equality of areas* is equivalent to full coverage up to the
/// measure-zero lower boundaries the algorithm deliberately leaves
/// uncolored.
pub fn verify_lemma2(small: &[Item], coloring: &Coloring) -> bool {
    let chart = load_segments(small);
    let chart_area: u128 = chart
        .iter()
        .map(|s| s.total_size.raw() as u128 * s.interval.len() as u128)
        .sum();
    // Rectangles as (time, y_lo, y_hi) with half-open y (lo, hi].
    let rects: Vec<(Interval, u64, u64)> = coloring
        .red
        .iter()
        .map(|r| (r.time, r.lo, r.hi))
        .chain(coloring.blue.iter().map(|b| (b.time, 0, b.hi)))
        .collect();
    union_area(&rects) == chart_area
}

/// Exact area of the union of axis-aligned rectangles, via a time sweep
/// with altitude-interval unions per elementary window.
fn union_area(rects: &[(Interval, u64, u64)]) -> u128 {
    let mut times: Vec<i64> = rects
        .iter()
        .flat_map(|(t, _, _)| [t.start(), t.end()])
        .collect();
    times.sort_unstable();
    times.dedup();
    let mut area: u128 = 0;
    for w in times.windows(2) {
        let width = (w[1] - w[0]) as u128;
        let mid = w[0];
        // Altitude intervals of rects active over [w[0], w[1]).
        let mut ys: Vec<(u64, u64)> = rects
            .iter()
            .filter(|(t, _, _)| t.contains(mid))
            .map(|&(_, lo, hi)| (lo, hi))
            .collect();
        ys.sort_unstable();
        let mut covered: u128 = 0;
        let mut cur: Option<(u64, u64)> = None;
        for (lo, hi) in ys {
            match cur {
                Some((clo, chi)) if lo <= chi => {
                    cur = Some((clo, chi.max(hi)));
                }
                Some((clo, chi)) => {
                    covered += (chi - clo) as u128;
                    cur = Some((lo, hi));
                }
                None => cur = Some((lo, hi)),
            }
        }
        if let Some((clo, chi)) = cur {
            covered += (chi - clo) as u128;
        }
        area += covered * width;
    }
    area
}

/// Phase 2: stripe packing. Returns per-bin item-id lists (empty bins
/// pruned). Stripe height is `1/2` capacity; stripe `k` (1-indexed) covers
/// altitudes `((k−1)/2, k/2]`.
pub fn phase2(placements: &[Phase1Placement]) -> Vec<Vec<dbp_core::ItemId>> {
    if placements.is_empty() {
        return Vec::new();
    }
    let half = Size::SCALE / 2;
    let peak = placements
        .iter()
        .map(|p| p.altitude)
        .max()
        .expect("nonempty");
    let m = peak.div_ceil(half) as usize;
    // Bins 0..m: within-stripe; bins m..2m−1: crossing stripe boundaries.
    let mut bins: Vec<Vec<dbp_core::ItemId>> = vec![Vec::new(); 2 * m - 1];
    for p in placements {
        let lo = p.bottom();
        let hi = p.altitude;
        let k = (lo / half) as usize; // 0-indexed stripe containing lo
        if hi <= (k as u64 + 1) * half {
            bins[k].push(p.item.id());
        } else {
            // Crosses the boundary between stripes k and k+1 (0-indexed);
            // small items (≤ 1/2) cross at most one boundary.
            debug_assert!(hi <= (k as u64 + 2) * half);
            bins[m + k].push(p.item.id());
        }
    }
    bins.retain(|b| !b.is_empty());
    bins
}

/// The chart domain at altitude `h`: maximal time intervals where the chart
/// height is at least `h`.
fn domain_at(chart: &[LoadSegment], h: u64) -> Vec<Interval> {
    union_components(
        chart
            .iter()
            .filter(|s| s.total_size.raw() >= h)
            .map(|s| s.interval),
    )
}

/// Merges two sorted disjoint interval lists into their union components.
fn merge(a: &[Interval], b: &[Interval]) -> Vec<Interval> {
    union_components(a.iter().chain(b.iter()).copied())
}

/// Subtracts `cover` (disjoint, sorted) from `base` (disjoint, sorted),
/// returning the maximal remaining intervals.
fn subtract_intervals(base: &[Interval], cover: &[Interval]) -> Vec<Interval> {
    let mut out = Vec::new();
    for &b in base {
        let mut cursor = b.start();
        for &c in cover {
            if c.end() <= cursor {
                continue;
            }
            if c.start() >= b.end() {
                break;
            }
            if c.start() > cursor {
                out.push(Interval::of(cursor, c.start().min(b.end())));
            }
            cursor = cursor.max(c.end());
            if cursor >= b.end() {
                break;
            }
        }
        if cursor < b.end() {
            out.push(Interval::of(cursor, b.end()));
        }
    }
    out
}

/// The maximum number of Phase 1 rectangles covering any single point of
/// the chart — Lemma 5 asserts this never exceeds 2.
pub fn max_overlap_depth(placements: &[Phase1Placement]) -> usize {
    // Sweep time; within each elementary time window, sweep altitude.
    let mut times: Vec<i64> = placements
        .iter()
        .flat_map(|p| [p.item.arrival(), p.item.departure()])
        .collect();
    times.sort_unstable();
    times.dedup();
    let mut worst = 0usize;
    for w in times.windows(2) {
        let t = w[0];
        // Altitude events for placements active in [w[0], w[1]).
        let mut ev: Vec<(u64, i32)> = Vec::new();
        for p in placements {
            if p.item.interval().contains(t) {
                // Occupies (bottom, altitude]: use half-open (bottom, hi]
                // → as events: +1 at bottom (exclusive start), −1 at hi.
                ev.push((p.bottom(), 1));
                ev.push((p.altitude, -1));
            }
        }
        ev.sort_unstable();
        let mut depth = 0i32;
        for (_, d) in ev {
            depth += d;
            worst = worst.max(depth as usize);
        }
    }
    worst
}

/// Checks that every placement lies inside the demand chart (Lemma 3):
/// at every time in the item's interval, the chart height is at least the
/// placement's top altitude.
pub fn placements_within_chart(small: &[Item], placements: &[Phase1Placement]) -> bool {
    let chart = load_segments(small);
    placements.iter().all(|p| {
        chart
            .iter()
            .filter(|s| s.interval.intersects(&p.item.interval()))
            .all(|s| s.total_size.raw() >= p.altitude)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::accounting::lower_bounds;

    fn smalls(triples: &[(f64, i64, i64)]) -> Vec<Item> {
        triples
            .iter()
            .enumerate()
            .map(|(i, &(s, a, d))| Item::new(i as u32, Size::from_f64(s), a, d))
            .collect()
    }

    fn check_phase1(small: &[Item]) -> Vec<Phase1Placement> {
        let (pl, coloring) = phase1_with_coloring(small);
        assert_eq!(pl.len(), small.len(), "Lemma 4: all items placed");
        assert!(max_overlap_depth(&pl) <= 2, "Lemma 5: no 3-overlap");
        assert!(placements_within_chart(small, &pl), "Lemma 3: inside chart");
        assert!(
            verify_lemma2(small, &coloring),
            "Lemma 2: chart fully colored"
        );
        pl
    }

    #[test]
    fn union_area_basics() {
        let iv = Interval::of;
        // Two disjoint unit squares.
        assert_eq!(union_area(&[(iv(0, 1), 0, 1), (iv(2, 3), 0, 1)]), 2);
        // Full overlap counts once.
        assert_eq!(union_area(&[(iv(0, 2), 0, 2), (iv(0, 2), 0, 2)]), 4);
        // Partial overlap: 2x2 and 2x2 shifted by 1 in both axes = 4+4-1.
        assert_eq!(union_area(&[(iv(0, 2), 0, 2), (iv(1, 3), 1, 3)]), 7);
        // Empty input.
        assert_eq!(union_area(&[]), 0);
    }

    #[test]
    fn lemma2_detects_missing_coverage() {
        let items = smalls(&[(0.5, 0, 10), (0.25, 2, 8)]);
        let (_, coloring) = phase1_with_coloring(&items);
        assert!(verify_lemma2(&items, &coloring));
        // Removing any colored rect must break coverage.
        if !coloring.red.is_empty() {
            let mut broken = coloring.clone();
            broken.red.pop();
            assert!(!verify_lemma2(&items, &broken));
        }
    }

    #[test]
    fn phase1_single_item() {
        let items = smalls(&[(0.4, 0, 10)]);
        let pl = check_phase1(&items);
        assert_eq!(pl[0].altitude, Size::from_f64(0.4).raw());
    }

    #[test]
    fn phase1_two_disjoint_items() {
        let items = smalls(&[(0.4, 0, 10), (0.3, 20, 30)]);
        check_phase1(&items);
    }

    #[test]
    fn phase1_stacked_items() {
        // Dyadic sizes so the stack height is exactly the capacity.
        let items = smalls(&[(0.375, 0, 10), (0.375, 0, 10), (0.25, 0, 10)]);
        let pl = check_phase1(&items);
        // All three stack to fill the chart exactly (height 1.0).
        let mut tops: Vec<u64> = pl.iter().map(|p| p.altitude).collect();
        tops.sort_unstable();
        assert_eq!(*tops.last().unwrap(), Size::CAPACITY.raw());
    }

    #[test]
    fn phase1_figure3_like_staircase() {
        // Overlapping staircase akin to Figure 3.
        let items = smalls(&[
            (0.3, 0, 8),
            (0.5, 2, 12),
            (0.25, 4, 16),
            (0.5, 10, 20),
            (0.2, 14, 22),
        ]);
        check_phase1(&items);
    }

    #[test]
    fn phase2_stripe_assignment() {
        // Item fully in stripe 1 (altitudes (0, 1/2]).
        let a = Phase1Placement {
            item: Item::new(0, Size::from_f64(0.5), 0, 10),
            altitude: Size::HALF.raw(),
        };
        // Item crossing the 1/2 boundary: (0.3, 0.7].
        let b = Phase1Placement {
            item: Item::new(1, Size::from_f64(0.4), 0, 10),
            altitude: Size::from_f64(0.7).raw(),
        };
        // Item fully in stripe 2: (0.5, 1.0].
        let c = Phase1Placement {
            item: Item::new(2, Size::from_f64(0.5), 0, 10),
            altitude: Size::CAPACITY.raw(),
        };
        let bins = phase2(&[a, b, c]);
        // Three distinct bins: stripe1, stripe2, crossing.
        assert_eq!(bins.len(), 3);
        for b in &bins {
            assert_eq!(b.len(), 1);
        }
    }

    #[test]
    fn full_algorithm_valid_and_bounded() {
        let inst = Instance::from_triples(&[
            (0.3, 0, 8),
            (0.5, 2, 12),
            (0.25, 4, 16),
            (0.5, 10, 20),
            (0.2, 14, 22),
            (0.75, 0, 6),  // large
            (0.9, 5, 15),  // large
            (0.6, 14, 25), // large
        ]);
        for rule in [LargeItemRule::IntervalFirstFit, LargeItemRule::OnePerBin] {
            let p = DualColoring::with_large_rule(rule).pack(&inst);
            p.validate(&inst).unwrap();
            let lb = lower_bounds(&inst);
            let usage = p.total_usage(&inst);
            assert!(
                usage <= 4 * lb.lb3,
                "Theorem 2 bound violated under {rule:?}: {usage} > 4×{}",
                lb.lb3
            );
        }
    }

    #[test]
    fn open_bins_bounded_pointwise() {
        // The per-time bound 4⌈S(t)⌉ from the Theorem 2 proof sketch.
        let inst = Instance::from_triples(&[
            (0.3, 0, 10),
            (0.4, 2, 9),
            (0.45, 3, 14),
            (0.2, 5, 20),
            (0.8, 1, 7),
            (0.55, 6, 18),
        ]);
        let p = DualColoring::new().pack(&inst);
        p.validate(&inst).unwrap();
        let segs = load_segments(inst.items());
        for seg in segs {
            let t = seg.interval.start();
            let open = p.bins_open_at(&inst, t);
            assert!(
                open <= 4 * seg.total_size.ceil_units() as usize,
                "at t={t}: {open} open bins > 4⌈S⌉"
            );
        }
    }

    #[test]
    fn all_large_items() {
        let inst = Instance::from_triples(&[(0.9, 0, 10), (0.8, 5, 12), (0.7, 11, 20)]);
        let p = DualColoring::new().pack(&inst);
        p.validate(&inst).unwrap();
    }

    #[test]
    fn all_small_items_heavy_overlap() {
        let inst = Instance::from_triples(&[
            (0.5, 0, 10),
            (0.5, 0, 10),
            (0.5, 0, 10),
            (0.5, 0, 10),
            (0.5, 0, 10),
        ]);
        let p = DualColoring::new().pack(&inst);
        p.validate(&inst).unwrap();
        // 2.5 total → m = 5 stripes, but only ~3 bins should be non-empty
        // (each stripe bin holds ≤ 2 halves). Usage must be ≤ 4×LB3 = 4×3×10.
        let lb = lower_bounds(&inst);
        assert!(p.total_usage(&inst) <= 4 * lb.lb3);
    }

    #[test]
    fn empty_and_tiny() {
        let inst = Instance::from_items(vec![]).unwrap();
        let p = DualColoring::new().pack(&inst);
        p.validate(&inst).unwrap();
        assert_eq!(p.num_bins(), 0);
    }

    #[test]
    fn subtract_intervals_cases() {
        let base = [Interval::of(0, 10)];
        let cover = [Interval::of(2, 4), Interval::of(6, 8)];
        assert_eq!(
            subtract_intervals(&base, &cover),
            vec![Interval::of(0, 2), Interval::of(4, 6), Interval::of(8, 10)]
        );
        // Cover extends beyond base.
        assert_eq!(
            subtract_intervals(&[Interval::of(3, 7)], &[Interval::of(0, 5)]),
            vec![Interval::of(5, 7)]
        );
        // Full cover.
        assert!(subtract_intervals(&[Interval::of(3, 7)], &[Interval::of(0, 9)]).is_empty());
        // Empty cover.
        assert_eq!(
            subtract_intervals(&[Interval::of(3, 7)], &[]),
            vec![Interval::of(3, 7)]
        );
    }
}
