//! Offline approximation algorithms (§4 of the paper).

mod arrival_ff;
pub mod chart_render;
mod ddff;
mod dual_coloring;
mod duration_orders;
pub mod xperiods;

pub use arrival_ff::ArrivalFirstFit;
pub use ddff::{interval_first_fit, DurationDescendingFirstFit, ProfileBackend};
pub use dual_coloring::{
    max_overlap_depth, phase1, phase1_with_coloring, phase2, placements_within_chart,
    verify_lemma2, BlueRect, Coloring, DualColoring, LargeItemRule, Phase1Placement, RedRect,
};
pub use duration_orders::{DemandDescendingFirstFit, DurationAscendingFirstFit};
