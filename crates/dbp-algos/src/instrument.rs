//! The three-stage usage decomposition of §5.2 (Figures 6 and 7), computed
//! on real classify-by-departure-time runs.
//!
//! For a category whose items depart in `(t, t+ρ]`, the analysis splits bin
//! usage into:
//!
//! * **Stage A** `[t₁, t₂)` with `t₁ = t − μΔ`: at most one bin is open
//!   (before the category's second bin opens).
//! * **Stage B** `[t₂, t₃)` with `t₃ = t − Δ`: ≥ 2 bins open, average level
//!   > 1/2 (Lemma 6).
//! * **Stage C** `[t₃, t+ρ)`: the departure window plus the final `Δ`.
//!
//! `t₂` is the opening time of the category's second bin, clamped to
//! `[t₁, t₃]` (if no second bin opens by `t₃`, `t₂ = t₃`).
//!
//! [`stage_breakdown`] recomputes this decomposition from a finished
//! [`OnlineRun`] whose bins are tagged with category indices (as
//! [`crate::online::ClassifyByDepartureTime`] tags them), yielding the
//! empirical `usage_A`, `usage_B`, `usage_C` that the proof bounds by
//! (3), (4) and (8) respectively.

use dbp_core::online::{BinRecord, OnlineRun};
use dbp_core::{Instance, Interval};
use std::collections::BTreeMap;

/// Empirical usage per analysis stage, in ticks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageUsage {
    /// Usage in stages A across all categories.
    pub stage_a: u128,
    /// Usage in stages B across all categories.
    pub stage_b: u128,
    /// Usage in stages C across all categories.
    pub stage_c: u128,
}

impl StageUsage {
    /// Total across stages — equals the run's total usage.
    pub fn total(&self) -> u128 {
        self.stage_a + self.stage_b + self.stage_c
    }
}

/// Per-category decomposition detail.
#[derive(Clone, Debug)]
pub struct CategoryStages {
    /// The departure-time category index (the bin tag).
    pub category: u64,
    /// `t₁ = t − μΔ` (clamped to the category's earliest bin opening).
    pub t1: i64,
    /// Second-bin opening time, clamped into `[t₁, t₃]`.
    pub t2: i64,
    /// `t₃ = t − Δ`.
    pub t3: i64,
    /// End of the category window, `t + ρ`.
    pub end: i64,
    /// Usage inside each stage for this category.
    pub usage: StageUsage,
    /// Number of bins the category opened.
    pub bins: usize,
}

/// Computes the Figure 6/7 decomposition for a finished CBDT run.
///
/// `rho` must match the packer's parameter; `Δ` and `μΔ` are taken from the
/// instance. Returns per-category details plus the aggregate, whose
/// [`StageUsage::total`] equals `run.usage` exactly (the three stages tile
/// every bin's lifetime).
pub fn stage_breakdown(
    inst: &Instance,
    run: &OnlineRun,
    rho: i64,
) -> (Vec<CategoryStages>, StageUsage) {
    let epoch = inst.first_arrival().unwrap_or(0);
    let delta = inst.min_duration().unwrap_or(1);
    let mu_delta = inst.max_duration().unwrap_or(1);

    // Group bins by tag (category index).
    let mut by_cat: BTreeMap<u64, Vec<&BinRecord>> = BTreeMap::new();
    for b in &run.bins {
        by_cat.entry(b.tag).or_default().push(b);
    }

    let mut cats = Vec::new();
    let mut agg = StageUsage::default();
    for (cat, bins) in by_cat {
        // Category i covers departures in (epoch+(i−1)ρ, epoch+iρ].
        let t = epoch + (cat as i64 - 1) * rho;
        let end = epoch + cat as i64 * rho;
        let t1 = t - mu_delta;
        let t3 = t - delta;
        // Second-opened bin in the category (bins are in opening order).
        let mut openings: Vec<i64> = bins.iter().map(|b| b.opened_at).collect();
        openings.sort_unstable();
        let t2 = openings.get(1).copied().unwrap_or(t3).clamp(t1, t3.max(t1));

        let windows = [
            Interval::new(t1, t2).ok(),
            Interval::new(t2, t3).ok(),
            Interval::new(t3, end).ok(),
        ];
        let mut usage = StageUsage::default();
        for b in &bins {
            let life = match Interval::new(b.opened_at, b.closed_at) {
                Ok(iv) => iv,
                Err(_) => continue, // zero-length bin life (defensive)
            };
            let overlaps: [u128; 3] = std::array::from_fn(|i| {
                windows[i]
                    .and_then(|w| w.intersection(&life))
                    .map(|o| o.len() as u128)
                    .unwrap_or(0)
            });
            usage.stage_a += overlaps[0];
            usage.stage_b += overlaps[1];
            usage.stage_c += overlaps[2];
        }
        agg.stage_a += usage.stage_a;
        agg.stage_b += usage.stage_b;
        agg.stage_c += usage.stage_c;
        cats.push(CategoryStages {
            category: cat,
            t1,
            t2,
            t3,
            end,
            usage,
            bins: bins.len(),
        });
    }
    (cats, agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::ClassifyByDepartureTime;
    use dbp_core::OnlineEngine;

    fn run_cbdt(inst: &Instance, rho: i64) -> OnlineRun {
        let mut p = ClassifyByDepartureTime::new(rho);
        OnlineEngine::clairvoyant().run(inst, &mut p).unwrap()
    }

    #[test]
    fn stages_tile_total_usage() {
        let inst = Instance::from_triples(&[
            (0.6, 0, 9),
            (0.6, 1, 10),
            (0.3, 2, 8),
            (0.5, 12, 25),
            (0.7, 13, 24),
            (0.4, 30, 42),
        ]);
        let rho = 10;
        let run = run_cbdt(&inst, rho);
        let (_cats, agg) = stage_breakdown(&inst, &run, rho);
        assert_eq!(agg.total(), run.usage);
    }

    #[test]
    fn single_bin_category_has_no_stage_b() {
        // One category, one bin: t2 = t3 → stage B window is empty.
        let inst = Instance::from_triples(&[(0.3, 0, 10), (0.3, 1, 9)]);
        let rho = 10;
        let run = run_cbdt(&inst, rho);
        assert_eq!(run.bins_opened(), 1);
        let (cats, agg) = stage_breakdown(&inst, &run, rho);
        assert_eq!(cats.len(), 1);
        assert_eq!(agg.stage_b, 0);
        assert_eq!(agg.total(), run.usage);
    }

    #[test]
    fn stage_b_appears_with_second_bin() {
        // Force a second bin early: two 0.6 items arriving long before the
        // departure window.
        let inst = Instance::from_triples(&[(0.6, 0, 100), (0.6, 1, 99), (0.6, 2, 98)]);
        let rho = 10;
        let run = run_cbdt(&inst, rho);
        assert!(run.bins_opened() >= 2);
        let (cats, agg) = stage_breakdown(&inst, &run, rho);
        assert_eq!(agg.total(), run.usage);
        assert!(cats[0].t2 <= cats[0].t3);
    }
}
