//! Bounded arrival lookahead — interpolating between online and offline.
//!
//! The paper's clairvoyance concerns *departures*: an online packer knows
//! when the arriving job will leave, but nothing about future arrivals.
//! A natural companion axis (e.g. for schedulers fed from a submission
//! queue) is a bounded *arrival window*: at each arrival the packer also
//! sees the jobs arriving within the next `W` ticks. `W = 0` recovers the
//! clairvoyant online problem; `W ≥ span` approaches the offline problem.
//!
//! [`run_lookahead`] implements a planning heuristic: at each arrival it
//! re-plans the visible window with Duration Descending First Fit over
//! the committed bins (committed placements are immutable — the
//! no-migration rule still binds) and commits only the arriving item's
//! planned bin. Unlike the online engines, a bin may receive items again
//! after draining — under usage-time billing, re-renting the same logical
//! server later costs exactly the same as renting a fresh one, so this
//! relaxation does not change the objective; usage is accounted as the
//! per-bin span of the final packing.

use dbp_core::profile::{BTreeProfile, LevelProfile};
use dbp_core::{Instance, Item, Packing, Size};

/// Result of a lookahead run.
#[derive(Clone, Debug)]
pub struct LookaheadRun {
    /// The committed packing.
    pub packing: Packing,
    /// Total usage in ticks (`packing.total_usage`).
    pub usage: u128,
}

/// Packs `inst` with arrival lookahead `window ≥ 0` (ticks). See module
/// docs for the model.
pub fn run_lookahead(inst: &Instance, window: i64) -> LookaheadRun {
    assert!(window >= 0);
    let items = inst.items(); // arrival order
    let mut committed_profiles: Vec<BTreeProfile> = Vec::new();
    let mut bins: Vec<Vec<Item>> = Vec::new();
    let mut commitment: Vec<Option<usize>> = vec![None; items.len()];

    for idx in 0..items.len() {
        if commitment[idx].is_some() {
            continue; // already committed (should not happen: we commit
                      // only the current item per step)
        }
        let now = items[idx].arrival();

        // Visible, uncommitted items: the current one plus arrivals within
        // the window, planned longest-duration-first (DDFF's order).
        let mut visible: Vec<usize> = (idx..items.len())
            .filter(|&j| items[j].arrival() <= now + window && commitment[j].is_none())
            .collect();
        visible.sort_by_key(|&j| {
            (
                std::cmp::Reverse(items[j].duration()),
                items[j].arrival(),
                items[j].id(),
            )
        });

        // Plan over scratch copies of the committed profiles.
        let mut scratch: Vec<BTreeProfile> = committed_profiles.clone();
        let mut planned_bin: Option<usize> = None;
        for &j in &visible {
            let iv = items[j].interval();
            let mut placed = None;
            for (bi, profile) in scratch.iter_mut().enumerate() {
                if profile.fits(iv, items[j].size(), Size::CAPACITY) {
                    profile.add(iv, items[j].size());
                    placed = Some(bi);
                    break;
                }
            }
            let bi = match placed {
                Some(bi) => bi,
                None => {
                    let mut p = BTreeProfile::new();
                    p.add(iv, items[j].size());
                    scratch.push(p);
                    scratch.len() - 1
                }
            };
            if j == idx {
                planned_bin = Some(bi);
                break; // only the current item's placement is binding
            }
        }
        let bi = planned_bin.expect("current item is always planned");
        // Commit.
        while committed_profiles.len() <= bi {
            committed_profiles.push(BTreeProfile::new());
            bins.push(Vec::new());
        }
        committed_profiles[bi].add(items[idx].interval(), items[idx].size());
        bins[bi].push(items[idx]);
        commitment[idx] = Some(bi);
    }

    let packing = Packing::from_bins(
        bins.into_iter()
            .map(|b| b.into_iter().map(|r| r.id()).collect())
            .collect(),
    );
    let usage = packing.total_usage(inst);
    LookaheadRun { packing, usage }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{ArrivalFirstFit, DurationDescendingFirstFit};
    use dbp_core::accounting::lower_bounds;
    use dbp_core::OfflinePacker;

    fn sample() -> Instance {
        Instance::from_triples(&[
            (0.5, 0, 40),
            (0.5, 2, 400),
            (0.5, 5, 45),
            (0.5, 8, 420),
            (0.5, 50, 90),
            (0.5, 55, 460),
        ])
    }

    #[test]
    fn zero_window_equals_arrival_first_fit() {
        // With no lookahead, the plan for each arrival is first fit over
        // committed bins by whole-interval feasibility — exactly offline
        // arrival-order First Fit.
        for inst in [
            sample(),
            Instance::from_triples(&[(0.9, 0, 10), (0.4, 1, 20), (0.4, 3, 8), (0.8, 12, 30)]),
        ] {
            let la = run_lookahead(&inst, 0);
            la.packing.validate(&inst).unwrap();
            let aff = ArrivalFirstFit::new().pack(&inst);
            assert_eq!(la.packing, aff);
        }
    }

    #[test]
    fn huge_window_matches_ddff_quality() {
        // With the whole instance visible from the first arrival, the very
        // first plan is DDFF; later commitments can deviate only within
        // DDFF-consistent choices. Quality should match DDFF on this
        // instance (equality of usage, not necessarily of packing).
        let inst = sample();
        let span = inst.span() * 10;
        let la = run_lookahead(&inst, span);
        la.packing.validate(&inst).unwrap();
        let ddff = DurationDescendingFirstFit::new().pack(&inst);
        assert_eq!(la.usage, ddff.total_usage(&inst));
    }

    #[test]
    fn lookahead_sweep_is_valid_and_bounded() {
        // Usage is NOT monotone in the window, and neither endpoint
        // dominates the other: W=0 is arrival First Fit and W=∞ is
        // DDFF-quality, two heuristics with no per-instance dominance
        // (both within their worst-case factors). What must hold at every
        // window: validity, LB ≤ usage ≤ Σ durations, and the whole sweep
        // staying within DDFF's factor-5 guarantee (the planner never does
        // worse than placing each visible set by DDFF's rule).
        let inst = sample();
        let lb = lower_bounds(&inst).best();
        let ceiling: u128 = inst.items().iter().map(|r| r.duration() as u128).sum();
        for w in [0i64, 3, 10, 60, 1000] {
            let la = run_lookahead(&inst, w);
            la.packing.validate(&inst).unwrap();
            assert!(la.usage >= lb, "window {w}");
            assert!(la.usage <= ceiling, "window {w}");
            assert!(
                la.usage < 5 * lb + 1,
                "window {w} broke the factor-5 envelope"
            );
        }
    }

    #[test]
    fn valid_on_random_instances() {
        use dbp_core::Size;
        // Deterministic pseudo-random instance without rand dependency.
        let mut state = 0xDEADBEEFu64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        let items: Vec<Item> = (0..60)
            .map(|i| {
                let a = next(300) as i64;
                let d = 1 + next(80) as i64;
                let s = Size::from_ratio(1 + next(32), 64).unwrap();
                Item::new(i, s, a, a + d)
            })
            .collect();
        let inst = Instance::from_items(items).unwrap();
        for w in [0i64, 5, 20, 100] {
            let la = run_lookahead(&inst, w);
            la.packing.validate(&inst).unwrap();
            assert!(la.usage >= lower_bounds(&inst).best());
        }
    }
}
