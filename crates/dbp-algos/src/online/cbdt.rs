//! Classify-by-departure-time First Fit (§5.2).
//!
//! Time is split into intervals of length `ρ`; items are classified by the
//! interval their *departure* falls in, and each category is packed by First
//! Fit separately. Items in one bin then depart at around the same time, so
//! the bin closes promptly after its first departures — avoiding the
//! long-tail low-level bins that hurt plain First Fit.
//!
//! Theorem 4: the competitive ratio is at most `ρ/Δ + μΔ/ρ + 3`; with
//! `ρ = √μ·Δ` (durations known) this becomes `2√μ + 3`.

use super::{first_fit_tagged_in, ScanMode};
use dbp_core::error::DbpError;
use dbp_core::interval::Time;
use dbp_core::online::{Decision, ItemView, OnlinePacker, OpenBins, PackerState};

/// Classify-by-departure-time First Fit with interval length `ρ` (ticks).
///
/// Category boundaries are anchored at the first arrival the packer
/// observes, matching the paper's convention that the first item arrives at
/// time 0 and the first category is departures in `(0, ρ]`.
/// # Example
///
/// ```
/// use dbp_algos::online::ClassifyByDepartureTime;
/// use dbp_core::{Instance, OnlineEngine};
///
/// // Two items departing ~together share; a late-departing one doesn't.
/// let jobs = Instance::from_triples(&[
///     (0.3, 0, 9),
///     (0.3, 1, 10),
///     (0.3, 2, 95),
/// ]);
/// let mut packer = ClassifyByDepartureTime::new(10);
/// let run = OnlineEngine::clairvoyant().run(&jobs, &mut packer).unwrap();
/// assert_eq!(run.bins_opened(), 2);
/// ```
///
#[derive(Clone, Debug)]
pub struct ClassifyByDepartureTime {
    rho: i64,
    epoch: Option<Time>,
    mode: ScanMode,
    scanned: usize,
}

impl ClassifyByDepartureTime {
    /// Creates the packer with interval length `ρ ≥ 1`.
    ///
    /// # Panics
    /// If `rho < 1`.
    pub fn new(rho: i64) -> Self {
        assert!(rho >= 1, "rho must be at least one tick");
        ClassifyByDepartureTime {
            rho,
            epoch: None,
            mode: ScanMode::default(),
            scanned: 0,
        }
    }

    /// Switches to the seed's linear category walk — same decisions,
    /// O(category) per placement — for differential proofs.
    pub fn with_linear_scan(mut self) -> Self {
        self.mode = ScanMode::Linear;
        self
    }

    /// The optimal parameter when `Δ` and `μ` are known: `ρ = √μ·Δ`
    /// (rounded to the nearest tick, at least 1), giving competitive ratio
    /// `2√μ + 3` (Theorem 4).
    pub fn with_known_durations(min_duration: i64, mu: f64) -> Self {
        let rho = ((mu.sqrt() * min_duration as f64).round() as i64).max(1);
        Self::new(rho)
    }

    /// The configured `ρ`.
    pub fn rho(&self) -> i64 {
        self.rho
    }

    /// The departure-time category of an item departing at `dep`, with
    /// category `i` covering departures in `(epoch + (i−1)ρ, epoch + iρ]`.
    fn category(&self, dep: Time) -> u64 {
        let epoch = self.epoch.expect("category queried before first arrival");
        let off = dep - epoch; // ≥ 1 since dep > arrival ≥ epoch
        debug_assert!(off >= 1);
        ((off + self.rho - 1) / self.rho) as u64
    }
}

impl OnlinePacker for ClassifyByDepartureTime {
    fn name(&self) -> String {
        format!("cbdt(rho={})", self.rho)
    }

    fn reset(&mut self) {
        self.epoch = None;
    }

    fn place(&mut self, item: &ItemView, open_bins: &OpenBins) -> Decision {
        if self.epoch.is_none() {
            self.epoch = Some(item.arrival);
        }
        let dep = item
            .departure
            .expect("ClassifyByDepartureTime requires a clairvoyant engine");
        let tag = self.category(dep);
        let (decision, scanned) = first_fit_tagged_in(self.mode, tag, item.size, open_bins);
        self.scanned = scanned;
        decision
    }

    fn last_scanned(&self) -> Option<usize> {
        Some(self.scanned)
    }

    fn save_state(&self) -> PackerState {
        let mut st = PackerState::new();
        if let Some(e) = self.epoch {
            st.set("epoch", e);
        }
        st
    }

    fn restore_state(&mut self, state: &PackerState) -> Result<(), DbpError> {
        self.epoch = state.get("epoch");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::{Instance, OnlineEngine};

    #[test]
    fn categories_are_departure_buckets() {
        let mut p = ClassifyByDepartureTime::new(10);
        p.epoch = Some(0);
        assert_eq!(p.category(1), 1);
        assert_eq!(p.category(10), 1);
        assert_eq!(p.category(11), 2);
        assert_eq!(p.category(20), 2);
        assert_eq!(p.category(21), 3);
    }

    #[test]
    fn epoch_anchored_at_first_arrival() {
        let mut p = ClassifyByDepartureTime::new(10);
        p.epoch = Some(100);
        assert_eq!(p.category(101), 1);
        assert_eq!(p.category(110), 1);
        assert_eq!(p.category(111), 2);
    }

    #[test]
    fn same_category_shares_bins_different_categories_do_not() {
        // Two items with similar departures share; a distant-departure item
        // does not, even though it would fit.
        let inst = Instance::from_triples(&[
            (0.3, 0, 9),  // category 1 (dep ≤ 10)
            (0.3, 1, 10), // category 1
            (0.3, 2, 95), // category 10
        ]);
        let mut p = ClassifyByDepartureTime::new(10);
        let run = OnlineEngine::clairvoyant().run(&inst, &mut p).unwrap();
        run.packing.validate(&inst).unwrap();
        assert_eq!(run.bins_opened(), 2);
        assert_eq!(run.packing.bin(dbp_core::BinId(0)).len(), 2);
    }

    #[test]
    fn avoids_long_tail_bins() {
        // The classic FF failure: alternating (tiny, long) and (filler,
        // short) items fill each bin exactly, leaving every bin held open
        // for the full horizon by one tiny item. CBDT groups the tinies
        // (same departure window) into one bin.
        let tiny = 1.0 / 16.0;
        let filler = 15.0 / 16.0;
        let mut triples = Vec::new();
        for _ in 0..5 {
            triples.push((tiny, 0i64, 100i64));
            triples.push((filler, 0i64, 1i64));
        }
        let inst = Instance::from_triples(&triples);
        let mut cbdt = ClassifyByDepartureTime::new(10);
        let run_cbdt = OnlineEngine::clairvoyant().run(&inst, &mut cbdt).unwrap();
        run_cbdt.packing.validate(&inst).unwrap();
        let mut ff = crate::online::AnyFit::first_fit();
        let run_ff = OnlineEngine::clairvoyant().run(&inst, &mut ff).unwrap();
        // FF: 5 bins × 100 ticks; CBDT: one 100-tick bin + 5 filler bins.
        assert_eq!(run_ff.usage, 500);
        assert_eq!(run_cbdt.usage, 105);
    }

    #[test]
    fn with_known_durations_sets_sqrt_mu_rho() {
        let p = ClassifyByDepartureTime::with_known_durations(10, 16.0);
        assert_eq!(p.rho(), 40);
    }

    #[test]
    fn reset_clears_epoch() {
        let inst = Instance::from_triples(&[(0.5, 50, 60)]);
        let mut p = ClassifyByDepartureTime::new(10);
        let engine = OnlineEngine::clairvoyant();
        engine.run(&inst, &mut p).unwrap();
        // Re-run with an earlier first arrival: must not panic or misuse
        // the stale epoch.
        let inst2 = Instance::from_triples(&[(0.5, 0, 10)]);
        engine.run(&inst2, &mut p).unwrap();
    }

    #[test]
    #[should_panic(expected = "clairvoyant")]
    fn requires_clairvoyance() {
        let inst = Instance::from_triples(&[(0.5, 0, 10)]);
        let mut p = ClassifyByDepartureTime::new(10);
        let _ = OnlineEngine::non_clairvoyant().run(&inst, &mut p);
    }
}
