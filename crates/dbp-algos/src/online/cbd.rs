//! Classify-by-duration First Fit (§5.3).
//!
//! Items are classified so that the max/min duration ratio within each
//! category is at most `α`: given a base duration `b`, category `i` holds
//! items with duration in `[b·αⁱ, b·αⁱ⁺¹)` (the paper's footnote example:
//! `α = 2`, durations 1.5 and 4.5 produce categories `[1,2), [2,4), [4,8)`).
//! Each category is packed by First Fit separately.
//!
//! Theorem 5: competitive ratio ≤ `α + ⌈log_α μ⌉ + 4`; with durations known,
//! choosing `b = Δ` and `α = μ^{1/n}` gives `min_{n≥1} μ^{1/n} + n + 3`.

use super::{first_fit_tagged_in, ScanMode};
use dbp_core::online::{Decision, ItemView, OnlinePacker, OpenBins};

/// Classify-by-duration First Fit with base duration `b` (ticks) and
/// category ratio `α > 1`.
/// # Example
///
/// ```
/// use dbp_algos::online::ClassifyByDuration;
/// use dbp_core::{Instance, OnlineEngine};
///
/// // Durations 10 and 11 share a class (α=2, base 8); 100 does not.
/// let jobs = Instance::from_triples(&[
///     (0.3, 0, 10),
///     (0.3, 1, 12),
///     (0.3, 2, 102),
/// ]);
/// let mut packer = ClassifyByDuration::new(8, 2.0);
/// let run = OnlineEngine::clairvoyant().run(&jobs, &mut packer).unwrap();
/// assert_eq!(run.bins_opened(), 2);
/// ```
///
#[derive(Clone, Debug)]
pub struct ClassifyByDuration {
    base: i64,
    alpha: f64,
    /// Highest category index an item may occupy, when the duration range
    /// is known. `Some(n - 1)` for [`Self::with_known_durations`]: the
    /// max-duration item `μΔ` sits exactly on the `b·αⁿ` boundary and
    /// belongs in the closed last category `[b·αⁿ⁻¹, b·αⁿ]`.
    max_category: Option<i64>,
    mode: ScanMode,
    scanned: usize,
}

impl ClassifyByDuration {
    /// Creates the packer. `base ≥ 1` anchors category boundaries
    /// (`b·αⁱ`); `alpha > 1` is the intra-category max/min duration ratio.
    ///
    /// # Panics
    /// If `base < 1` or `alpha <= 1`.
    pub fn new(base: i64, alpha: f64) -> Self {
        assert!(base >= 1, "base duration must be at least one tick");
        assert!(alpha > 1.0, "alpha must exceed 1");
        ClassifyByDuration {
            base,
            alpha,
            max_category: None,
            mode: ScanMode::default(),
            scanned: 0,
        }
    }

    /// Switches to the seed's linear category walk — same decisions,
    /// O(category) per placement — for differential proofs.
    pub fn with_linear_scan(mut self) -> Self {
        self.mode = ScanMode::Linear;
        self
    }

    /// The optimal known-durations configuration of Theorem 5: `b = Δ` and
    /// `α = μ^{1/n}` for the `n ≥ 1` minimizing `μ^{1/n} + n + 3`.
    ///
    /// `α` is kept exact. The max-duration item `μΔ` sits exactly on the
    /// `b·αⁿ` boundary, so [`Self::category`] clamps indices to `n - 1`,
    /// making the last category the closed interval `[b·αⁿ⁻¹, b·αⁿ]` (its
    /// max/min ratio is still exactly `α`). A multiplicative nudge of `α`
    /// cannot do this reliably: the slack it adds at the top boundary
    /// competes with `powf`/`powi` rounding that grows with `μ`, so for
    /// large ranges (e.g. `μ = 2⁴⁰`) a boundary duration can still spill
    /// into a spurious `(n+1)`-th category.
    pub fn with_known_durations(min_duration: i64, mu: f64) -> Self {
        let n = optimal_num_categories(mu);
        let alpha = mu.powf(1.0 / n as f64);
        let mut packer = Self::new(min_duration, if alpha > 1.0 { alpha } else { 2.0 });
        packer.max_category = Some(n as i64 - 1);
        packer
    }

    /// The configured base duration `b`.
    pub fn base(&self) -> i64 {
        self.base
    }

    /// The configured ratio `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Category index `i` such that `duration ∈ [b·αⁱ, b·αⁱ⁺¹)`, clamped
    /// into `i32` range and offset into `u64` tag space.
    ///
    /// Computed in `f64` with an integer-consistency correction loop so that
    /// boundary durations classify monotonically despite rounding.
    pub fn category(&self, duration: i64) -> u64 {
        debug_assert!(duration >= 1);
        let ratio = duration as f64 / self.base as f64;
        let mut i = (ratio.ln() / self.alpha.ln()).floor() as i64;
        // Correct FP error: ensure b·α^i ≤ duration < b·α^(i+1).
        while self.boundary(i) > duration as f64 {
            i -= 1;
        }
        while self.boundary(i + 1) <= duration as f64 {
            i += 1;
        }
        if let Some(max) = self.max_category {
            i = i.min(max);
        }
        (i + (1 << 32)) as u64
    }

    /// The lower boundary `b·αⁱ` of category `i`.
    fn boundary(&self, i: i64) -> f64 {
        self.base as f64 * self.alpha.powi(i as i32)
    }
}

/// The `n ≥ 1` minimizing `μ^{1/n} + n + 3` (Theorem 5, known durations).
///
/// The function is unimodal in `n`; we scan until it stops improving.
pub fn optimal_num_categories(mu: f64) -> u32 {
    let mu = mu.max(1.0);
    let f = |n: u32| mu.powf(1.0 / n as f64) + n as f64 + 3.0;
    let mut best_n = 1;
    let mut best = f(1);
    for n in 2..=64 {
        let v = f(n);
        if v < best {
            best = v;
            best_n = n;
        } else if v > best + 1.0 {
            break;
        }
    }
    best_n
}

impl OnlinePacker for ClassifyByDuration {
    fn name(&self) -> String {
        format!("cbd(b={},alpha={:.3})", self.base, self.alpha)
    }

    fn place(&mut self, item: &ItemView, open_bins: &OpenBins) -> Decision {
        let dur = item
            .duration()
            .expect("ClassifyByDuration requires a clairvoyant engine");
        let tag = self.category(dur);
        let (decision, scanned) = first_fit_tagged_in(self.mode, tag, item.size, open_bins);
        self.scanned = scanned;
        decision
    }

    fn last_scanned(&self) -> Option<usize> {
        Some(self.scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::{Instance, OnlineEngine};

    #[test]
    fn footnote_example_categories() {
        // α = 2, base 1: categories [1,2), [2,4), [4,8).
        let p = ClassifyByDuration::new(1, 2.0);
        let c = |d| p.category(d);
        assert_eq!(c(1), c(1));
        assert_ne!(c(1), c(2));
        assert_eq!(c(2), c(3));
        assert_eq!(c(4), c(7));
        assert_ne!(c(3), c(4));
        assert_ne!(c(7), c(8));
    }

    #[test]
    fn intra_category_ratio_bounded_by_alpha() {
        let p = ClassifyByDuration::new(3, 1.7);
        use std::collections::HashMap;
        let mut by_cat: HashMap<u64, (i64, i64)> = HashMap::new();
        for d in 1..10_000 {
            let e = by_cat.entry(p.category(d)).or_insert((d, d));
            e.0 = e.0.min(d);
            e.1 = e.1.max(d);
        }
        for (_, (lo, hi)) in by_cat {
            assert!(
                (hi as f64 / lo as f64) <= 1.7 * (1.0 + 1e-9),
                "category [{lo},{hi}] exceeds alpha"
            );
        }
    }

    #[test]
    fn category_is_monotone_in_duration() {
        let p = ClassifyByDuration::new(2, 1.3);
        let mut prev = p.category(1);
        for d in 2..5_000 {
            let c = p.category(d);
            assert!(c >= prev, "category must be non-decreasing");
            prev = c;
        }
    }

    #[test]
    fn optimal_n_matches_brute_force() {
        for mu in [1.0, 2.0, 4.0, 10.0, 100.0, 1e4, 1e6] {
            let n = optimal_num_categories(mu);
            let f = |n: u32| mu.powf(1.0 / n as f64) + n as f64 + 3.0;
            let brute = (1..=200).min_by(|&a, &b| f(a).total_cmp(&f(b))).unwrap();
            assert_eq!(f(n), f(brute), "mu={mu}");
        }
    }

    #[test]
    fn known_durations_covers_all_items() {
        // All durations between Δ and μΔ must classify without panicking
        // and within n categories.
        let (delta, mu) = (5i64, 20.0);
        let p = ClassifyByDuration::with_known_durations(delta, mu);
        let n = optimal_num_categories(mu);
        let mut cats = std::collections::HashSet::new();
        for d in delta..=(delta as f64 * mu) as i64 {
            cats.insert(p.category(d));
        }
        assert!(cats.len() <= n as usize, "{} > {}", cats.len(), n);
    }

    #[test]
    fn known_durations_exact_boundary_at_mu_two_pow_forty() {
        // Regression: the old `α·(1 + 1e-9)` nudge left the top boundary
        // at the mercy of powf rounding for wide ranges. With exact α and
        // an index clamp, the max-duration item μΔ must land in the last
        // category (n − 1), never a spurious n-th, even at μ = 2^40.
        let mu = (1u64 << 40) as f64;
        let delta = 1i64;
        let p = ClassifyByDuration::with_known_durations(delta, mu);
        let n = optimal_num_categories(mu) as i64;
        let max_d = 1i64 << 40; // μ·Δ exactly
        assert_eq!(p.category(max_d), ((n - 1) + (1 << 32)) as u64);
        // Spot-check the whole range (and both sides of every boundary):
        // indices stay within 0..n and remain monotone.
        let mut cats = std::collections::HashSet::new();
        let mut probes: Vec<i64> = (0..=2048u32)
            .map(|k| delta + (((max_d - delta) as i128 * k as i128) / 2048) as i64)
            .collect();
        for i in 0..n {
            let b = (delta as f64 * p.alpha().powi(i as i32)).round() as i64;
            for d in [b - 1, b, b + 1] {
                if (delta..=max_d).contains(&d) {
                    probes.push(d);
                }
            }
        }
        probes.sort_unstable();
        let mut prev = p.category(probes[0]);
        for &d in &probes {
            let c = p.category(d);
            assert!(c >= prev, "category must be non-decreasing at d={d}");
            prev = c;
            let i = c as i64 - (1 << 32);
            assert!((0..n).contains(&i), "d={d} classified into category {i}");
            cats.insert(c);
        }
        assert!(cats.len() <= n as usize);
    }

    #[test]
    fn same_duration_class_shares_bins() {
        let inst = Instance::from_triples(&[
            (0.3, 0, 10),  // duration 10
            (0.3, 1, 12),  // duration 11 — same class for α=2, b=8
            (0.3, 2, 102), // duration 100 — different class
        ]);
        let mut p = ClassifyByDuration::new(8, 2.0);
        let run = OnlineEngine::clairvoyant().run(&inst, &mut p).unwrap();
        run.packing.validate(&inst).unwrap();
        assert_eq!(run.bins_opened(), 2);
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1")]
    fn rejects_bad_alpha() {
        let _ = ClassifyByDuration::new(1, 1.0);
    }
}
