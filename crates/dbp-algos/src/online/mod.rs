//! Online packers: the Any Fit family and the paper's classification
//! strategies.

mod any_fit;
mod cbd;
mod cbdt;
mod combined;
mod hybrid_ff;
mod sliding;

pub use any_fit::{AnyFit, FitRule};
pub use cbd::ClassifyByDuration;
pub use cbdt::ClassifyByDepartureTime;
pub use combined::CombinedClassify;
pub use hybrid_ff::HybridFirstFit;
pub use sliding::SlidingDepartureWindow;

use dbp_core::online::{Decision, ItemView, OpenBins};
use dbp_core::Size;

/// First Fit restricted to bins carrying `tag`: place in the earliest-opened
/// feasible bin of that tag, else open a new bin with that tag.
///
/// All classification strategies in the paper apply First Fit within each
/// item category; this helper is their shared packing rule. It scans via
/// [`OpenBins::iter_tag`], so cost is O(category size), not O(fleet).
///
/// Returns the decision together with the number of candidate bins
/// inspected (the chosen bin included), which callers surface through
/// `OnlinePacker::last_scanned` so the engine's `candidates_scanned`
/// work metric reports the algorithm's *real* scan — the category walk —
/// rather than a whole-fleet proxy.
pub(crate) fn first_fit_tagged(tag: u64, size: Size, open_bins: &OpenBins) -> (Decision, usize) {
    let mut scanned = 0;
    for b in open_bins.iter_tag(tag) {
        scanned += 1;
        if b.fits(size) {
            return (Decision::Existing(b.id()), scanned);
        }
    }
    (Decision::New { tag }, scanned)
}

/// Applies a [`FitRule`] among bins carrying `tag`, returning the decision
/// and the number of candidates inspected (see [`first_fit_tagged`]).
///
/// Candidates come from [`OpenBins::iter_tag`] in opening order, which
/// preserves the classical tie-breaks: Best Fit resolves level ties to
/// the *latest* opened (`max_by_key` keeps the last maximum), Worst Fit
/// to the *earliest* (`min_by_key` keeps the first minimum), and Next
/// Fit looks only at the newest bin of the tag. Best/Worst Fit examine
/// the whole category, Next Fit exactly one bin — the returned counts
/// reflect that.
pub(crate) fn rule_tagged(
    rule: FitRule,
    tag: u64,
    item: &ItemView,
    open_bins: &OpenBins,
) -> (Decision, usize) {
    let candidates = open_bins.iter_tag(tag);
    let mut scanned = 0;
    match rule {
        FitRule::First => first_fit_tagged(tag, item.size, open_bins),
        FitRule::Best => {
            let decision = candidates
                .inspect(|_| scanned += 1)
                .filter(|b| b.fits(item.size))
                .max_by_key(|b| b.level())
                .map(|b| Decision::Existing(b.id()))
                .unwrap_or(Decision::New { tag });
            (decision, scanned)
        }
        FitRule::Worst => {
            let decision = candidates
                .inspect(|_| scanned += 1)
                .filter(|b| b.fits(item.size))
                .min_by_key(|b| b.level())
                .map(|b| Decision::Existing(b.id()))
                .unwrap_or(Decision::New { tag });
            (decision, scanned)
        }
        FitRule::Next => {
            let mut candidates = candidates;
            let decision = candidates
                .next_back()
                .inspect(|_| scanned = 1)
                .filter(|b| b.fits(item.size))
                .map(|b| Decision::Existing(b.id()))
                .unwrap_or(Decision::New { tag });
            (decision, scanned)
        }
    }
}
