//! Online packers: the Any Fit family and the paper's classification
//! strategies.

mod any_fit;
mod cbd;
mod cbdt;
mod combined;
mod hybrid_ff;
mod sliding;

pub use any_fit::{AnyFit, FitRule};
pub use cbd::ClassifyByDuration;
pub use cbdt::ClassifyByDepartureTime;
pub use combined::CombinedClassify;
pub use hybrid_ff::HybridFirstFit;
pub use sliding::SlidingDepartureWindow;

use dbp_core::online::{Decision, ItemView, OpenBins};
use dbp_core::Size;

/// First Fit restricted to bins carrying `tag`: place in the earliest-opened
/// feasible bin of that tag, else open a new bin with that tag.
///
/// All classification strategies in the paper apply First Fit within each
/// item category; this helper is their shared packing rule. It scans via
/// [`OpenBins::iter_tag`], so cost is O(category size), not O(fleet).
pub(crate) fn first_fit_tagged(tag: u64, size: Size, open_bins: &OpenBins) -> Decision {
    for b in open_bins.iter_tag(tag) {
        if b.fits(size) {
            return Decision::Existing(b.id());
        }
    }
    Decision::New { tag }
}

/// Applies a [`FitRule`] among bins carrying `tag`.
///
/// Candidates come from [`OpenBins::iter_tag`] in opening order, which
/// preserves the classical tie-breaks: Best Fit resolves level ties to
/// the *latest* opened (`max_by_key` keeps the last maximum), Worst Fit
/// to the *earliest* (`min_by_key` keeps the first minimum), and Next
/// Fit looks only at the newest bin of the tag.
pub(crate) fn rule_tagged(
    rule: FitRule,
    tag: u64,
    item: &ItemView,
    open_bins: &OpenBins,
) -> Decision {
    let mut candidates = open_bins.iter_tag(tag);
    match rule {
        FitRule::First => first_fit_tagged(tag, item.size, open_bins),
        FitRule::Best => candidates
            .filter(|b| b.fits(item.size))
            .max_by_key(|b| b.level())
            .map(|b| Decision::Existing(b.id()))
            .unwrap_or(Decision::New { tag }),
        FitRule::Worst => candidates
            .filter(|b| b.fits(item.size))
            .min_by_key(|b| b.level())
            .map(|b| Decision::Existing(b.id()))
            .unwrap_or(Decision::New { tag }),
        FitRule::Next => candidates
            .next_back()
            .filter(|b| b.fits(item.size))
            .map(|b| Decision::Existing(b.id()))
            .unwrap_or(Decision::New { tag }),
    }
}
