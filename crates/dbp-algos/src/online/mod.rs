//! Online packers: the Any Fit family and the paper's classification
//! strategies.

mod any_fit;
mod cbd;
mod cbdt;
mod combined;
mod hybrid_ff;
mod sliding;
mod vector;

pub use any_fit::{AnyFit, FitRule};
pub use cbd::ClassifyByDuration;
pub use cbdt::ClassifyByDepartureTime;
pub use combined::CombinedClassify;
pub use hybrid_ff::HybridFirstFit;
pub use sliding::SlidingDepartureWindow;
pub use vector::{
    DotProductFit, MaxNormFit, VecAnyFit, VecClassifyByDepartureTime, VecClassifyByDuration,
};

use dbp_core::online::{Decision, ItemView, OpenBins};
use dbp_core::Size;

/// How a roster packer consults the open set.
///
/// Every roster packer answers placement queries through the
/// [`OpenBins`] fit index by default — O(log category) per decision —
/// and keeps the seed's linear walk selectable as a differential foil.
/// The two paths are decision-identical by construction (the index keys
/// encode the linear tie-breaks; see the `dbp-core::openbins` module
/// docs) and that equivalence is enforced by the dbp-audit harness and
/// the indexed-vs-linear proptests. Only the reported
/// `last_scanned` differs: the linear walk counts bins visited, the
/// index counts nodes probed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScanMode {
    /// Indexed O(log category) fit queries (the default).
    #[default]
    Indexed,
    /// The original O(category) linear scan, kept for differential
    /// proofs and scan-depth ablations.
    Linear,
}

/// First Fit restricted to bins carrying `tag`: place in the earliest-opened
/// feasible bin of that tag, else open a new bin with that tag.
///
/// All classification strategies in the paper apply First Fit within each
/// item category; this helper is their shared packing rule. It scans via
/// [`OpenBins::iter_tag`], so cost is O(category size), not O(fleet).
///
/// Returns the decision together with the number of candidate bins
/// inspected (the chosen bin included), which callers surface through
/// `OnlinePacker::last_scanned` so the engine's `candidates_scanned`
/// work metric reports the algorithm's *real* scan — the category walk —
/// rather than a whole-fleet proxy.
pub(crate) fn first_fit_tagged(tag: u64, size: Size, open_bins: &OpenBins) -> (Decision, usize) {
    let mut scanned = 0;
    for b in open_bins.iter_tag(tag) {
        scanned += 1;
        if b.fits(size) {
            return (Decision::Existing(b.id()), scanned);
        }
    }
    (Decision::New { tag }, scanned)
}

/// [`first_fit_tagged`] dispatched by [`ScanMode`]: the indexed path
/// answers from [`OpenBins::first_fit`] in O(log category) and reports
/// the index nodes probed; the linear path is the seed's category walk.
/// Both choose the same bin on every input.
pub(crate) fn first_fit_tagged_in(
    mode: ScanMode,
    tag: u64,
    size: Size,
    open_bins: &OpenBins,
) -> (Decision, usize) {
    match mode {
        ScanMode::Linear => first_fit_tagged(tag, size, open_bins),
        ScanMode::Indexed => {
            let (hit, probes) = open_bins.first_fit(tag, size);
            let decision = hit.map(Decision::Existing).unwrap_or(Decision::New { tag });
            (decision, probes)
        }
    }
}

/// Applies a [`FitRule`] among bins carrying `tag`, returning the decision
/// and the number of candidates inspected (see [`first_fit_tagged`]).
///
/// Candidates come from [`OpenBins::iter_tag`] in opening order, which
/// preserves the classical tie-breaks: Best Fit resolves level ties to
/// the *latest* opened (`max_by_key` keeps the last maximum), Worst Fit
/// to the *earliest* (`min_by_key` keeps the first minimum), and Next
/// Fit looks only at the newest bin of the tag. Best/Worst Fit examine
/// the whole category, Next Fit exactly one bin — the returned counts
/// reflect that.
pub(crate) fn rule_tagged(
    rule: FitRule,
    tag: u64,
    item: &ItemView,
    open_bins: &OpenBins,
) -> (Decision, usize) {
    let candidates = open_bins.iter_tag(tag);
    let mut scanned = 0;
    match rule {
        FitRule::First => first_fit_tagged(tag, item.size, open_bins),
        FitRule::Best => {
            let decision = candidates
                .inspect(|_| scanned += 1)
                .filter(|b| b.fits(item.size))
                .max_by_key(|b| b.level())
                .map(|b| Decision::Existing(b.id()))
                .unwrap_or(Decision::New { tag });
            (decision, scanned)
        }
        FitRule::Worst => {
            let decision = candidates
                .inspect(|_| scanned += 1)
                .filter(|b| b.fits(item.size))
                .min_by_key(|b| b.level())
                .map(|b| Decision::Existing(b.id()))
                .unwrap_or(Decision::New { tag });
            (decision, scanned)
        }
        FitRule::Next => {
            let mut candidates = candidates;
            let decision = candidates
                .next_back()
                .inspect(|_| scanned = 1)
                .filter(|b| b.fits(item.size))
                .map(|b| Decision::Existing(b.id()))
                .unwrap_or(Decision::New { tag });
            (decision, scanned)
        }
    }
}

/// [`rule_tagged`] dispatched by [`ScanMode`].
///
/// The indexed paths answer from the [`OpenBins`] fit queries, whose
/// keys encode the same tie-breaks the linear fold applies: Best Fit
/// takes the min-gap entry of the `(gap, opening-order)` set with level
/// ties to the latest opened, Worst Fit its max-gap entry with ties to
/// the earliest. Next Fit reads the tag's newest bin in O(1) either
/// way, so the two modes share that arm.
pub(crate) fn rule_tagged_in(
    mode: ScanMode,
    rule: FitRule,
    tag: u64,
    item: &ItemView,
    open_bins: &OpenBins,
) -> (Decision, usize) {
    if mode == ScanMode::Linear || rule == FitRule::Next {
        return rule_tagged(rule, tag, item, open_bins);
    }
    let (hit, probes) = match rule {
        FitRule::First => open_bins.first_fit(tag, item.size),
        FitRule::Best => open_bins.best_fit(tag, item.size),
        FitRule::Worst => open_bins.worst_fit(tag, item.size),
        FitRule::Next => unreachable!("handled by the linear arm"),
    };
    let decision = hit.map(Decision::Existing).unwrap_or(Decision::New { tag });
    (decision, probes)
}
