//! The Any Fit family: First, Best, Worst, Next Fit.
//!
//! These are the classical non-clairvoyant baselines analyzed by Li et al.
//! (First/Best Fit; Any Fit lower bound `μ+1`), Kamali & López-Ortiz (Next
//! Fit, `2μ+1`), and Tang et al. (First Fit, `μ+4`). They never consult
//! departure times, so they run identically under clairvoyant and
//! non-clairvoyant engines.

use super::{rule_tagged_in, ScanMode};
use dbp_core::online::{Decision, ItemView, OnlinePacker, OpenBins};

/// Which open bin an [`AnyFit`] packer prefers among those that fit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FitRule {
    /// Earliest-opened feasible bin (First Fit).
    First,
    /// Highest-level feasible bin, ties to earliest opened (Best Fit).
    Best,
    /// Lowest-level feasible bin, ties to earliest opened (Worst Fit).
    Worst,
    /// Only the most recently opened bin is considered (Next Fit).
    Next,
}

impl FitRule {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FitRule::First => "first-fit",
            FitRule::Best => "best-fit",
            FitRule::Worst => "worst-fit",
            FitRule::Next => "next-fit",
        }
    }
}

/// An Any Fit packer: opens a new bin only when no open bin fits
/// (except [`FitRule::Next`], which only ever looks at the newest bin,
/// matching Kamali & López-Ortiz's Next Fit for DBP).
/// # Example
///
/// ```
/// use dbp_algos::online::AnyFit;
/// use dbp_core::{Instance, OnlineEngine};
///
/// let jobs = Instance::from_triples(&[(0.5, 0, 10), (0.5, 2, 8)]);
/// let run = OnlineEngine::non_clairvoyant()
///     .run(&jobs, &mut AnyFit::first_fit())
///     .unwrap();
/// assert_eq!(run.bins_opened(), 1); // both halves share one bin
/// assert_eq!(run.usage, 10);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AnyFit {
    rule: FitRule,
    mode: ScanMode,
    scanned: usize,
}

impl AnyFit {
    /// Creates a packer with the given preference rule.
    pub fn new(rule: FitRule) -> Self {
        AnyFit {
            rule,
            mode: ScanMode::default(),
            scanned: 0,
        }
    }

    /// Switches to the seed's linear open-bin walk — same decisions,
    /// O(category) per placement — for differential proofs and
    /// scan-depth ablations.
    pub fn with_linear_scan(mut self) -> Self {
        self.mode = ScanMode::Linear;
        self
    }

    /// First Fit — the best-known online algorithm in the non-clairvoyant
    /// setting (competitive ratio ≤ μ+4, Tang et al.).
    pub fn first_fit() -> Self {
        Self::new(FitRule::First)
    }

    /// Best Fit — unbounded competitive ratio for MinUsageTime DBP.
    pub fn best_fit() -> Self {
        Self::new(FitRule::Best)
    }

    /// Worst Fit.
    pub fn worst_fit() -> Self {
        Self::new(FitRule::Worst)
    }

    /// Next Fit — competitive ratio ≤ 2μ+1.
    pub fn next_fit() -> Self {
        Self::new(FitRule::Next)
    }
}

impl OnlinePacker for AnyFit {
    fn name(&self) -> String {
        self.rule.name().to_string()
    }

    fn place(&mut self, item: &ItemView, open_bins: &OpenBins) -> Decision {
        let (decision, scanned) = rule_tagged_in(self.mode, self.rule, 0, item, open_bins);
        self.scanned = scanned;
        decision
    }

    fn last_scanned(&self) -> Option<usize> {
        Some(self.scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::{Instance, OnlineEngine};

    fn run(rule: FitRule, inst: &Instance) -> dbp_core::OnlineRun {
        let mut p = AnyFit::new(rule);
        let out = OnlineEngine::non_clairvoyant().run(inst, &mut p).unwrap();
        out.packing.validate(inst).unwrap();
        out
    }

    #[test]
    fn first_fit_prefers_earliest_opened() {
        // Two bins get opened; a third small item fits both, goes to bin 0.
        let inst = Instance::from_triples(&[(0.6, 0, 100), (0.6, 1, 100), (0.3, 2, 100)]);
        let out = run(FitRule::First, &inst);
        assert_eq!(out.bins_opened(), 2);
        assert_eq!(out.packing.bin(dbp_core::BinId(0)).len(), 2);
    }

    #[test]
    fn best_fit_prefers_fullest() {
        // Bin 0 at 0.3, bin 1 at 0.6; a 0.3 item goes to bin 1 (fuller).
        let inst = Instance::from_triples(&[
            (0.3, 0, 100),
            (0.8, 1, 100), // forces a second bin
            (0.1, 2, 3),   // departs, leaving bin 1 at 0.8 — too full below
            (0.3, 5, 100),
        ]);
        // At t=5: bin0 level 0.3 (+0.1 departed), bin1 level 0.8.
        // 0.3 fits neither? 0.8+0.3 = 1.1 > 1, so only bin 0 fits → bin 0.
        let out = run(FitRule::Best, &inst);
        assert_eq!(out.bins_opened(), 2);

        // Clearer case: levels 0.3 and 0.5, item 0.3 → bin with 0.5.
        let inst2 = Instance::from_triples(&[
            (0.3, 0, 100),
            (0.7, 0, 4),   // shares bin 0 (level 1.0)
            (0.5, 1, 100), // must open bin 1
            (0.3, 6, 100), // levels now: bin0=0.3, bin1=0.5 → best fit = bin1
        ]);
        let out2 = run(FitRule::Best, &inst2);
        assert_eq!(out2.bins_opened(), 2);
        let b1 = out2.packing.bin(dbp_core::BinId(1));
        assert!(b1.contains(&dbp_core::ItemId(3)));
    }

    #[test]
    fn worst_fit_prefers_emptiest() {
        let inst = Instance::from_triples(&[
            (0.3, 0, 100),
            (0.7, 0, 4),
            (0.5, 1, 100),
            (0.3, 6, 100), // levels: bin0=0.3, bin1=0.5 → worst fit = bin0
        ]);
        let out = run(FitRule::Worst, &inst);
        let b0 = out.packing.bin(dbp_core::BinId(0));
        assert!(b0.contains(&dbp_core::ItemId(3)));
    }

    #[test]
    fn next_fit_ignores_older_bins() {
        // Bin 0 has room, but Next Fit only checks the newest bin.
        let inst = Instance::from_triples(&[
            (0.2, 0, 100),
            (0.9, 1, 100), // doesn't fit bin 0 → opens bin 1
            (0.2, 2, 100), // fits bin 0, but newest is bin 1 (0.9) → bin 2
        ]);
        let out = run(FitRule::Next, &inst);
        assert_eq!(out.bins_opened(), 3);
    }

    #[test]
    fn any_fit_property_never_opens_when_newest_fits() {
        // Sanity: when everything fits in one bin, all rules use one bin.
        let inst =
            Instance::from_triples(&[(0.2, 0, 10), (0.2, 1, 10), (0.2, 2, 10), (0.2, 3, 10)]);
        for rule in [FitRule::First, FitRule::Best, FitRule::Worst, FitRule::Next] {
            assert_eq!(run(rule, &inst).bins_opened(), 1, "{:?}", rule);
        }
    }
}
