//! Sliding-window departure compatibility — an ablation of §5.2's *fixed*
//! bucketing.
//!
//! The paper's classify-by-departure-time strategy cuts time into fixed
//! windows anchored at the epoch: two items co-bin only if their
//! departures fall in the *same* `(kρ, (k+1)ρ]` bucket, so departures 1
//! tick apart across a boundary are separated. The natural alternative is
//! a *sliding* rule: an item may join a bin iff its departure is within
//! `ρ` of every current resident's departure. This keeps the "bins drain
//! together" property without boundary artifacts — but it resists the
//! paper's analysis (bins no longer partition into clean categories), so
//! it carries no proven competitive bound. The `exp_ablations` experiment
//! measures whether the analyzable fixed rule costs anything in practice.
//!
//! This is the one packer that stays on the linear scan after the
//! indexed fit queries landed: its feasibility predicate depends on the
//! departure time of *every current resident* of a bin, which no
//! residual-capacity order can answer — precisely the property that
//! makes it resist the paper's analysis. It is an ablation, not a roster
//! algorithm, so it is excluded from the indexed/linear differential.

use dbp_core::online::{Decision, ItemView, OnlinePacker, OpenBins};

/// First Fit among bins whose residents all depart within `ρ` of the
/// arriving item's departure (sliding compatibility; see module docs).
#[derive(Clone, Debug)]
pub struct SlidingDepartureWindow {
    rho: i64,
    scanned: usize,
}

impl SlidingDepartureWindow {
    /// Creates the packer with compatibility radius `ρ ≥ 0` ticks.
    pub fn new(rho: i64) -> Self {
        assert!(rho >= 0);
        SlidingDepartureWindow { rho, scanned: 0 }
    }

    /// The configured radius.
    pub fn rho(&self) -> i64 {
        self.rho
    }
}

impl OnlinePacker for SlidingDepartureWindow {
    fn name(&self) -> String {
        format!("sliding-dep(rho={})", self.rho)
    }

    fn place(&mut self, item: &ItemView, open_bins: &OpenBins) -> Decision {
        let dep = item
            .departure
            .expect("SlidingDepartureWindow requires a clairvoyant engine");
        self.scanned = 0;
        for b in open_bins {
            self.scanned += 1;
            if !b.fits(item.size) {
                continue;
            }
            let compatible = b.items().iter().all(|a| {
                a.departure
                    .map(|d| (d - dep).abs() <= self.rho)
                    .unwrap_or(false)
            });
            if compatible {
                return Decision::Existing(b.id());
            }
        }
        Decision::NEW
    }

    fn last_scanned(&self) -> Option<usize> {
        Some(self.scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::ClassifyByDepartureTime;
    use dbp_core::{Instance, OnlineEngine};

    #[test]
    fn no_boundary_artifact() {
        // Departures 10 and 11 straddle the fixed bucket boundary at 10
        // (ρ=10, epoch 0): fixed bucketing separates them, sliding co-bins
        // them.
        let inst = Instance::from_triples(&[(0.3, 0, 10), (0.3, 1, 11)]);
        let engine = OnlineEngine::clairvoyant();
        let fixed = engine
            .run(&inst, &mut ClassifyByDepartureTime::new(10))
            .unwrap();
        assert_eq!(fixed.bins_opened(), 2, "fixed bucketing splits");
        let sliding = engine
            .run(&inst, &mut SlidingDepartureWindow::new(10))
            .unwrap();
        sliding.packing.validate(&inst).unwrap();
        assert_eq!(sliding.bins_opened(), 1, "sliding co-bins");
    }

    #[test]
    fn bins_stay_departure_tight() {
        // Invariant of the sliding rule: max−min departure within any bin
        // is at most ρ... for items co-resident at insertion time. Over
        // the whole bin lifetime the spread can chain up to k·ρ (item A
        // leaves, C joins within ρ of B but 2ρ of A). Verify the chain
        // bound rather than the naive one.
        let rho = 10i64;
        let inst =
            Instance::from_triples(&[(0.2, 0, 20), (0.2, 1, 28), (0.2, 2, 36), (0.2, 3, 60)]);
        let mut p = SlidingDepartureWindow::new(rho);
        let run = OnlineEngine::clairvoyant().run(&inst, &mut p).unwrap();
        run.packing.validate(&inst).unwrap();
        // 20,28,36 chain into one bin (each within 10 of all residents at
        // its arrival: 28-20=8 ok; 36-28=8 but 36-20=16 > 10 → item 2
        // must NOT join the bin holding 0 and 1.
        assert_eq!(run.bins_opened(), 3);
    }

    #[test]
    fn rho_zero_requires_identical_departures() {
        let inst = Instance::from_triples(&[(0.2, 0, 10), (0.2, 1, 10), (0.2, 2, 11)]);
        let mut p = SlidingDepartureWindow::new(0);
        let run = OnlineEngine::clairvoyant().run(&inst, &mut p).unwrap();
        assert_eq!(run.bins_opened(), 2);
    }
}
