//! The vector Any-Fit + classification roster, plus the Murhekar et al.
//! 2023 dynamic-vector-bin-packing placement heuristics.
//!
//! Every packer here drives a [`VecStreamingSession`] through
//! [`VecOnlinePacker`]; feasibility is always the all-axes predicate
//! ([`VecOpenBin::fits`]). The Any-Fit family and both classification
//! strategies are structured exactly like their scalar twins, so at
//! `dims == 1` each produces decisions bit-identical to the scalar
//! roster — the dim-1 differential suite asserts run equality packer by
//! packer. Two roster entries are vector-native:
//!
//! * [`DotProductFit`] — place in the feasible bin maximizing the dot
//!   product of the item's demand and the bin's residual gap (Panigrahy
//!   et al.'s DotProduct rule, evaluated for dynamic VBP by Murhekar
//!   et al. 2023): demands aligned with where the space is.
//! * [`MaxNormFit`] — place in the feasible bin minimizing the
//!   post-placement maximum axis level (L∞ norm): keeps every bin's
//!   bottleneck axis as low as possible.
//!
//! Best/Worst Fit need a total order on level vectors and take a
//! [`Scalarization`]; First/Next Fit and the classification packers are
//! scalarization-free (feasibility alone decides). Like the scalar
//! roster, every indexed packer keeps a `with_linear_scan()` foil that
//! walks its category and must choose the same bin on every input.

use super::{FitRule, ScanMode};
use dbp_core::online::Decision;
use dbp_core::sizevec::{Scalarization, SizeVec};
use dbp_core::vecbins::VecOpenBins;
use dbp_core::vecstream::{VecItemView, VecOnlinePacker};
use dbp_core::Time;

/// Vector First Fit restricted to bins carrying `tag`: earliest-opened
/// bin feasible on all axes, else a new bin with that tag. Returns the
/// decision and the number of candidates inspected.
pub(crate) fn vec_first_fit_tagged(
    tag: u64,
    size: &SizeVec,
    open_bins: &VecOpenBins,
) -> (Decision, usize) {
    let mut scanned = 0;
    for b in open_bins.iter_tag(tag) {
        scanned += 1;
        if b.fits(size) {
            return (Decision::Existing(b.id()), scanned);
        }
    }
    (Decision::New { tag }, scanned)
}

/// [`vec_first_fit_tagged`] dispatched by [`ScanMode`]: the indexed path
/// answers from the componentwise-max tree
/// ([`VecOpenBins::first_fit`]); the linear path walks the category.
/// Both choose the same bin on every input.
pub(crate) fn vec_first_fit_tagged_in(
    mode: ScanMode,
    tag: u64,
    size: &SizeVec,
    open_bins: &VecOpenBins,
) -> (Decision, usize) {
    match mode {
        ScanMode::Linear => vec_first_fit_tagged(tag, size, open_bins),
        ScanMode::Indexed => {
            let (hit, probes) = open_bins.first_fit(tag, size);
            let decision = hit.map(Decision::Existing).unwrap_or(Decision::New { tag });
            (decision, probes)
        }
    }
}

/// Applies a [`FitRule`] among bins carrying `tag` under vector
/// feasibility, ranking Best/Worst by `scal`. Candidates come from
/// [`VecOpenBins::iter_tag`] in opening order, preserving the scalar
/// tie-breaks: Best resolves scalarized-level ties to the *latest*
/// opened (`max_by_key` keeps the last maximum), Worst to the
/// *earliest*, Next looks only at the newest bin of the tag.
pub(crate) fn vec_rule_tagged(
    rule: FitRule,
    scal: Scalarization,
    tag: u64,
    item: &VecItemView,
    open_bins: &VecOpenBins,
) -> (Decision, usize) {
    let candidates = open_bins.iter_tag(tag);
    let mut scanned = 0;
    match rule {
        FitRule::First => vec_first_fit_tagged(tag, &item.size, open_bins),
        FitRule::Best => {
            let decision = candidates
                .inspect(|_| scanned += 1)
                .filter(|b| b.fits(&item.size))
                .max_by_key(|b| scal.key(&b.level()))
                .map(|b| Decision::Existing(b.id()))
                .unwrap_or(Decision::New { tag });
            (decision, scanned)
        }
        FitRule::Worst => {
            let decision = candidates
                .inspect(|_| scanned += 1)
                .filter(|b| b.fits(&item.size))
                .min_by_key(|b| scal.key(&b.level()))
                .map(|b| Decision::Existing(b.id()))
                .unwrap_or(Decision::New { tag });
            (decision, scanned)
        }
        FitRule::Next => {
            let mut candidates = candidates;
            let decision = candidates
                .next_back()
                .inspect(|_| scanned = 1)
                .filter(|b| b.fits(&item.size))
                .map(|b| Decision::Existing(b.id()))
                .unwrap_or(Decision::New { tag });
            (decision, scanned)
        }
    }
}

/// [`vec_rule_tagged`] dispatched by [`ScanMode`]: the indexed Best and
/// Worst paths walk the scalarized level-ordered set from the
/// appropriate end until an entry is feasible on all axes; Next reads
/// the tag tail in O(1) either way.
pub(crate) fn vec_rule_tagged_in(
    mode: ScanMode,
    rule: FitRule,
    scal: Scalarization,
    tag: u64,
    item: &VecItemView,
    open_bins: &VecOpenBins,
) -> (Decision, usize) {
    if mode == ScanMode::Linear || rule == FitRule::Next {
        return vec_rule_tagged(rule, scal, tag, item, open_bins);
    }
    let (hit, probes) = match rule {
        FitRule::First => open_bins.first_fit(tag, &item.size),
        FitRule::Best => open_bins.best_fit(tag, &item.size, scal),
        FitRule::Worst => open_bins.worst_fit(tag, &item.size, scal),
        FitRule::Next => unreachable!("handled by the linear arm"),
    };
    let decision = hit.map(Decision::Existing).unwrap_or(Decision::New { tag });
    (decision, probes)
}

/// The vector Any Fit packer: First/Best/Worst/Next Fit under all-axes
/// feasibility, with Best/Worst ranked by a [`Scalarization`] (sum of
/// axis levels by default).
///
/// # Example
///
/// ```
/// use dbp_algos::online::VecAnyFit;
/// use dbp_core::{SizeVec, VecInstance, VecItem, VecOnlineEngine};
///
/// // Fits on axis 0, collides on axis 1: two bins.
/// let jobs = VecInstance::from_items(vec![
///     VecItem::new(0, SizeVec::from_f64s(&[0.4, 0.8]), 0, 10),
///     VecItem::new(1, SizeVec::from_f64s(&[0.4, 0.8]), 2, 8),
/// ]).unwrap();
/// let run = VecOnlineEngine::non_clairvoyant()
///     .run(&jobs, &mut VecAnyFit::first_fit())
///     .unwrap();
/// assert_eq!(run.bins_opened(), 2);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct VecAnyFit {
    rule: FitRule,
    scal: Scalarization,
    mode: ScanMode,
    scanned: usize,
}

impl VecAnyFit {
    /// Creates a packer with the given preference rule (sum
    /// scalarization).
    pub fn new(rule: FitRule) -> Self {
        VecAnyFit {
            rule,
            scal: Scalarization::default(),
            mode: ScanMode::default(),
            scanned: 0,
        }
    }

    /// Switches to the linear category walk — same decisions — for
    /// differential proofs and scan-depth ablations.
    pub fn with_linear_scan(mut self) -> Self {
        self.mode = ScanMode::Linear;
        self
    }

    /// Selects how Best/Worst Fit collapse a level vector to a rank.
    pub fn with_scalarization(mut self, scal: Scalarization) -> Self {
        self.scal = scal;
        self
    }

    /// Vector First Fit.
    pub fn first_fit() -> Self {
        Self::new(FitRule::First)
    }

    /// Vector Best Fit (fullest feasible by scalarized level).
    pub fn best_fit() -> Self {
        Self::new(FitRule::Best)
    }

    /// Vector Worst Fit (emptiest feasible by scalarized level).
    pub fn worst_fit() -> Self {
        Self::new(FitRule::Worst)
    }

    /// Vector Next Fit (newest bin only).
    pub fn next_fit() -> Self {
        Self::new(FitRule::Next)
    }
}

impl VecOnlinePacker for VecAnyFit {
    fn name(&self) -> String {
        match self.scal {
            Scalarization::Sum => self.rule.name().to_string(),
            s => format!("{}[{}]", self.rule.name(), s.name()),
        }
    }

    fn place(&mut self, item: &VecItemView, open_bins: &VecOpenBins) -> Decision {
        let (decision, scanned) =
            vec_rule_tagged_in(self.mode, self.rule, self.scal, 0, item, open_bins);
        self.scanned = scanned;
        decision
    }

    fn last_scanned(&self) -> Option<usize> {
        Some(self.scanned)
    }
}

/// Vector classify-by-departure-time First Fit: the §5.2 strategy with
/// vector feasibility inside each departure category. Structured exactly
/// like the scalar [`super::ClassifyByDepartureTime`] (same epoch
/// anchoring, same category formula), so dim-1 runs are bit-identical.
#[derive(Clone, Debug)]
pub struct VecClassifyByDepartureTime {
    rho: i64,
    epoch: Option<Time>,
    mode: ScanMode,
    scanned: usize,
}

impl VecClassifyByDepartureTime {
    /// Creates the packer with interval length `ρ ≥ 1`.
    ///
    /// # Panics
    /// If `rho < 1`.
    pub fn new(rho: i64) -> Self {
        assert!(rho >= 1, "rho must be at least one tick");
        VecClassifyByDepartureTime {
            rho,
            epoch: None,
            mode: ScanMode::default(),
            scanned: 0,
        }
    }

    /// Switches to the linear category walk for differential proofs.
    pub fn with_linear_scan(mut self) -> Self {
        self.mode = ScanMode::Linear;
        self
    }

    /// The optimal parameter when `Δ` and `μ` are known: `ρ = √μ·Δ`
    /// (Theorem 4's choice, unchanged by dimensionality).
    pub fn with_known_durations(min_duration: i64, mu: f64) -> Self {
        let rho = ((mu.sqrt() * min_duration as f64).round() as i64).max(1);
        Self::new(rho)
    }

    /// The configured `ρ`.
    pub fn rho(&self) -> i64 {
        self.rho
    }

    fn category(&self, dep: Time) -> u64 {
        let epoch = self.epoch.expect("category queried before first arrival");
        let off = dep - epoch;
        debug_assert!(off >= 1);
        ((off + self.rho - 1) / self.rho) as u64
    }
}

impl VecOnlinePacker for VecClassifyByDepartureTime {
    fn name(&self) -> String {
        format!("cbdt(rho={})", self.rho)
    }

    fn reset(&mut self) {
        self.epoch = None;
    }

    fn place(&mut self, item: &VecItemView, open_bins: &VecOpenBins) -> Decision {
        if self.epoch.is_none() {
            self.epoch = Some(item.arrival);
        }
        let dep = item
            .departure
            .expect("VecClassifyByDepartureTime requires a clairvoyant engine");
        let tag = self.category(dep);
        let (decision, scanned) = vec_first_fit_tagged_in(self.mode, tag, &item.size, open_bins);
        self.scanned = scanned;
        decision
    }

    fn last_scanned(&self) -> Option<usize> {
        Some(self.scanned)
    }
}

/// Vector classify-by-duration First Fit: the §5.3 strategy with vector
/// feasibility inside each duration category. Category arithmetic is
/// copied from the scalar [`super::ClassifyByDuration`] verbatim
/// (including the boundary-correction loops and the known-durations
/// clamp), so dim-1 runs are bit-identical.
#[derive(Clone, Debug)]
pub struct VecClassifyByDuration {
    base: i64,
    alpha: f64,
    max_category: Option<i64>,
    mode: ScanMode,
    scanned: usize,
}

impl VecClassifyByDuration {
    /// Creates the packer. `base ≥ 1` anchors category boundaries;
    /// `alpha > 1` is the intra-category max/min duration ratio.
    ///
    /// # Panics
    /// If `base < 1` or `alpha <= 1`.
    pub fn new(base: i64, alpha: f64) -> Self {
        assert!(base >= 1, "base duration must be at least one tick");
        assert!(alpha > 1.0, "alpha must exceed 1");
        VecClassifyByDuration {
            base,
            alpha,
            max_category: None,
            mode: ScanMode::default(),
            scanned: 0,
        }
    }

    /// Switches to the linear category walk for differential proofs.
    pub fn with_linear_scan(mut self) -> Self {
        self.mode = ScanMode::Linear;
        self
    }

    /// The optimal known-durations configuration of Theorem 5 (same
    /// clamped last category as the scalar packer).
    pub fn with_known_durations(min_duration: i64, mu: f64) -> Self {
        let n = super::cbd::optimal_num_categories(mu);
        let alpha = mu.powf(1.0 / n as f64);
        let mut packer = Self::new(min_duration, if alpha > 1.0 { alpha } else { 2.0 });
        packer.max_category = Some(n as i64 - 1);
        packer
    }

    /// The configured base duration `b`.
    pub fn base(&self) -> i64 {
        self.base
    }

    /// The configured ratio `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Category index (same arithmetic as the scalar packer).
    pub fn category(&self, duration: i64) -> u64 {
        debug_assert!(duration >= 1);
        let ratio = duration as f64 / self.base as f64;
        let mut i = (ratio.ln() / self.alpha.ln()).floor() as i64;
        while self.boundary(i) > duration as f64 {
            i -= 1;
        }
        while self.boundary(i + 1) <= duration as f64 {
            i += 1;
        }
        if let Some(max) = self.max_category {
            i = i.min(max);
        }
        (i + (1 << 32)) as u64
    }

    fn boundary(&self, i: i64) -> f64 {
        self.base as f64 * self.alpha.powi(i as i32)
    }
}

impl VecOnlinePacker for VecClassifyByDuration {
    fn name(&self) -> String {
        format!("cbd(b={},alpha={:.3})", self.base, self.alpha)
    }

    fn place(&mut self, item: &VecItemView, open_bins: &VecOpenBins) -> Decision {
        let dur = item
            .duration()
            .expect("VecClassifyByDuration requires a clairvoyant engine");
        let tag = self.category(dur);
        let (decision, scanned) = vec_first_fit_tagged_in(self.mode, tag, &item.size, open_bins);
        self.scanned = scanned;
        decision
    }

    fn last_scanned(&self) -> Option<usize> {
        Some(self.scanned)
    }
}

/// Dot-product placement (Panigrahy et al.; Murhekar et al. 2023 for the
/// dynamic setting): among feasible bins, maximize `Σ_d demand_d·gap_d`
/// — send each item where its demand profile best matches the residual
/// space, ties to the latest opened (`max_by_key` keeps the last
/// maximum). Opens a new bin when nothing fits.
///
/// The score depends on the full residual vector, which no scalar
/// ordering captures, so both scan modes walk the fleet linearly;
/// [`DotProductFit::with_linear_scan`] exists for roster uniformity and
/// is the identity.
#[derive(Clone, Copy, Debug, Default)]
pub struct DotProductFit {
    scanned: usize,
}

impl DotProductFit {
    /// Creates the packer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Roster-uniformity no-op: the dot-product scan is always linear.
    pub fn with_linear_scan(self) -> Self {
        self
    }
}

impl VecOnlinePacker for DotProductFit {
    fn name(&self) -> String {
        "dot-product".into()
    }

    fn place(&mut self, item: &VecItemView, open_bins: &VecOpenBins) -> Decision {
        let mut scanned = 0;
        let decision = open_bins
            .iter()
            .inspect(|_| scanned += 1)
            .filter(|b| b.fits(&item.size))
            .max_by_key(|b| item.size.dot_raw(&b.gap()))
            .map(|b| Decision::Existing(b.id()))
            .unwrap_or(Decision::NEW);
        self.scanned = scanned;
        decision
    }

    fn last_scanned(&self) -> Option<usize> {
        Some(self.scanned)
    }
}

/// Max-norm (L∞) placement (Murhekar et al. 2023's norm-minimizing
/// family): among feasible bins, minimize the post-placement maximum
/// axis level `max_d (level_d + demand_d)` — keep every bin's bottleneck
/// axis as low as possible, ties to the earliest opened (`min_by_key`
/// keeps the first minimum). Opens a new bin when nothing fits.
///
/// Like [`DotProductFit`], the score needs the full level vector, so
/// both scan modes are linear.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxNormFit {
    scanned: usize,
}

impl MaxNormFit {
    /// Creates the packer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Roster-uniformity no-op: the max-norm scan is always linear.
    pub fn with_linear_scan(self) -> Self {
        self
    }
}

impl VecOnlinePacker for MaxNormFit {
    fn name(&self) -> String {
        "max-norm".into()
    }

    fn place(&mut self, item: &VecItemView, open_bins: &VecOpenBins) -> Decision {
        let mut scanned = 0;
        let decision = open_bins
            .iter()
            .inspect(|_| scanned += 1)
            .filter(|b| b.fits(&item.size))
            .min_by_key(|b| b.level().add(&item.size).max_raw())
            .map(|b| Decision::Existing(b.id()))
            .unwrap_or(Decision::NEW);
        self.scanned = scanned;
        decision
    }

    fn last_scanned(&self) -> Option<usize> {
        Some(self.scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::{AnyFit, ClassifyByDepartureTime, ClassifyByDuration};
    use dbp_core::online::{OnlineEngine, OnlinePacker, OnlineRun};
    use dbp_core::vecstream::VecOnlineEngine;
    use dbp_core::{Instance, Item, Size, VecInstance, VecItem};

    /// Deterministic splitmix64 for test instance generation.
    fn mix(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn gen_vec_instance(seed: u64, n: usize, dims: usize) -> VecInstance {
        let mut s = seed;
        let mut items = Vec::with_capacity(n);
        let mut t: i64 = 0;
        for id in 0..n as u32 {
            t += (mix(&mut s) % 4) as i64;
            let dur = 1 + (mix(&mut s) % 40) as i64;
            let axes: Vec<f64> = (0..dims)
                .map(|_| 0.05 + (mix(&mut s) % 90) as f64 / 100.0)
                .collect();
            items.push(VecItem::new(
                id,
                dbp_core::SizeVec::from_f64s(&axes),
                t,
                t + dur,
            ));
        }
        VecInstance::from_items(items).unwrap()
    }

    fn gen_scalar_instance(seed: u64, n: usize) -> Instance {
        let mut s = seed;
        let mut items = Vec::with_capacity(n);
        let mut t: i64 = 0;
        for id in 0..n as u32 {
            t += (mix(&mut s) % 4) as i64;
            let dur = 1 + (mix(&mut s) % 40) as i64;
            let size = 0.05 + (mix(&mut s) % 90) as f64 / 100.0;
            items.push(Item::new(id, Size::from_f64(size), t, t + dur));
        }
        Instance::from_items(items).unwrap()
    }

    fn vec_run(inst: &VecInstance, p: &mut dyn VecOnlinePacker) -> OnlineRun {
        VecOnlineEngine::clairvoyant().run(inst, p).unwrap()
    }

    #[test]
    fn indexed_matches_linear_across_the_vector_roster() {
        for seed in [1u64, 7, 42] {
            for dims in [1usize, 2, 3, 4] {
                let inst = gen_vec_instance(seed, 160, dims);
                let pairs: Vec<(Box<dyn VecOnlinePacker>, Box<dyn VecOnlinePacker>)> = vec![
                    (
                        Box::new(VecAnyFit::first_fit()),
                        Box::new(VecAnyFit::first_fit().with_linear_scan()),
                    ),
                    (
                        Box::new(VecAnyFit::best_fit()),
                        Box::new(VecAnyFit::best_fit().with_linear_scan()),
                    ),
                    (
                        Box::new(VecAnyFit::worst_fit()),
                        Box::new(VecAnyFit::worst_fit().with_linear_scan()),
                    ),
                    (
                        Box::new(VecAnyFit::best_fit().with_scalarization(Scalarization::MaxAxis)),
                        Box::new(
                            VecAnyFit::best_fit()
                                .with_scalarization(Scalarization::MaxAxis)
                                .with_linear_scan(),
                        ),
                    ),
                    (
                        Box::new(VecAnyFit::next_fit()),
                        Box::new(VecAnyFit::next_fit().with_linear_scan()),
                    ),
                    (
                        Box::new(VecClassifyByDepartureTime::new(8)),
                        Box::new(VecClassifyByDepartureTime::new(8).with_linear_scan()),
                    ),
                    (
                        Box::new(VecClassifyByDuration::new(1, 2.0)),
                        Box::new(VecClassifyByDuration::new(1, 2.0).with_linear_scan()),
                    ),
                ];
                for (mut indexed, mut linear) in pairs {
                    let a = vec_run(&inst, indexed.as_mut());
                    let b = vec_run(&inst, linear.as_mut());
                    assert_eq!(
                        a,
                        b,
                        "indexed vs linear diverged: {} seed={seed} dims={dims}",
                        indexed.name()
                    );
                }
            }
        }
    }

    #[test]
    fn dim1_roster_is_bit_identical_to_the_scalar_roster() {
        for seed in [3u64, 11] {
            let scalar = gen_scalar_instance(seed, 200);
            let lifted = VecInstance::lift(&scalar, 1);
            let mu = scalar.mu().unwrap();
            let dmin = scalar.min_duration().unwrap();
            let cases: Vec<(Box<dyn VecOnlinePacker>, Box<dyn OnlinePacker>)> = vec![
                (
                    Box::new(VecAnyFit::first_fit()),
                    Box::new(AnyFit::first_fit()),
                ),
                (
                    Box::new(VecAnyFit::best_fit()),
                    Box::new(AnyFit::best_fit()),
                ),
                (
                    Box::new(VecAnyFit::worst_fit()),
                    Box::new(AnyFit::worst_fit()),
                ),
                (
                    Box::new(VecAnyFit::next_fit()),
                    Box::new(AnyFit::next_fit()),
                ),
                (
                    Box::new(VecClassifyByDepartureTime::new(13)),
                    Box::new(ClassifyByDepartureTime::new(13)),
                ),
                (
                    Box::new(VecClassifyByDepartureTime::with_known_durations(dmin, mu)),
                    Box::new(ClassifyByDepartureTime::with_known_durations(dmin, mu)),
                ),
                (
                    Box::new(VecClassifyByDuration::new(2, 1.8)),
                    Box::new(ClassifyByDuration::new(2, 1.8)),
                ),
                (
                    Box::new(VecClassifyByDuration::with_known_durations(dmin, mu)),
                    Box::new(ClassifyByDuration::with_known_durations(dmin, mu)),
                ),
            ];
            for (mut vp, mut sp) in cases {
                let v = vec_run(&lifted, vp.as_mut());
                let s = OnlineEngine::clairvoyant()
                    .run(&scalar, sp.as_mut())
                    .unwrap();
                assert_eq!(
                    v,
                    s,
                    "dim-1 {} diverged from scalar (seed {seed})",
                    vp.name()
                );
            }
        }
    }

    #[test]
    fn dot_product_prefers_matching_residual_profiles() {
        // Bin 0 residual (0.1, 0.7): little CPU, much memory.
        // Bin 1 residual (0.7, 0.1): the opposite.
        // A CPU-heavy item should land in bin 1.
        let inst = VecInstance::from_items(vec![
            VecItem::new(0, dbp_core::SizeVec::from_f64s(&[0.9, 0.3]), 0, 100),
            VecItem::new(1, dbp_core::SizeVec::from_f64s(&[0.3, 0.9]), 1, 100),
            VecItem::new(2, dbp_core::SizeVec::from_f64s(&[0.5, 0.05]), 2, 50),
        ])
        .unwrap();
        let run = vec_run(&inst, &mut DotProductFit::new());
        assert_eq!(run.bins_opened(), 2);
        assert_eq!(
            run.packing.bin_of(dbp_core::ItemId(2)),
            run.packing.bin_of(dbp_core::ItemId(1)),
            "CPU-heavy item follows the CPU-rich residual"
        );
    }

    #[test]
    fn max_norm_keeps_bottleneck_axes_low() {
        // Bin 0 level (0.6, 0.1); item 1 can't fit there, so bin 1 level
        // (0.5, 0.5). Placing a (0.2, 0.2) item: post-placement max axis
        // is 0.8 in bin 0 vs 0.7 in bin 1 → bin 1, even though bin 0 has
        // the smaller level *sum* (0.7 vs 1.0).
        let inst = VecInstance::from_items(vec![
            VecItem::new(0, dbp_core::SizeVec::from_f64s(&[0.6, 0.1]), 0, 100),
            VecItem::new(1, dbp_core::SizeVec::from_f64s(&[0.5, 0.5]), 1, 100),
            VecItem::new(2, dbp_core::SizeVec::from_f64s(&[0.2, 0.2]), 2, 50),
        ])
        .unwrap();
        let run = vec_run(&inst, &mut MaxNormFit::new());
        assert_eq!(run.bins_opened(), 2);
        assert_eq!(
            run.packing.bin_of(dbp_core::ItemId(2)),
            run.packing.bin_of(dbp_core::ItemId(1))
        );
    }

    #[test]
    fn heuristics_validate_against_per_axis_capacity() {
        for seed in [5u64, 9] {
            for dims in [2usize, 3] {
                let inst = gen_vec_instance(seed, 120, dims);
                for p in [
                    &mut DotProductFit::new() as &mut dyn VecOnlinePacker,
                    &mut MaxNormFit::new(),
                ] {
                    let run = vec_run(&inst, p);
                    inst.validate_packing(&run.packing).unwrap();
                    assert!(run.usage >= inst.vector_lower_bound());
                }
            }
        }
    }
}
