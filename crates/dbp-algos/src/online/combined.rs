//! The combined classification strategy sketched in §5.4/§6.
//!
//! The paper observes that classify-by-departure-time wins for small `μ`
//! and classify-by-duration wins for large `μ`, and proposes (as future
//! work) to *first* classify by duration — reducing the intra-category
//! duration ratio to `α` — and *then* classify each duration category by
//! departure time. Within a duration category the effective `μ` is at most
//! `α`, so the departure-interval length can be chosen as `ρᵢ = √α · bᵢ`
//! where `bᵢ` is the category's minimum duration.
//!
//! This module implements exactly that composition. Tags combine the two
//! class indices into one `u64` (duration class in the high 32 bits).

use super::{first_fit_tagged_in, ScanMode};
use dbp_core::error::DbpError;
use dbp_core::interval::Time;
use dbp_core::online::{Decision, ItemView, OnlinePacker, OpenBins, PackerState};

use super::cbd::ClassifyByDuration;

/// Duration-then-departure-time classified First Fit.
#[derive(Clone, Debug)]
pub struct CombinedClassify {
    duration: ClassifyByDuration,
    epoch: Option<Time>,
    mode: ScanMode,
    scanned: usize,
}

impl CombinedClassify {
    /// Creates the combined packer from a duration classification
    /// (`base`, `alpha`); departure-interval lengths per duration category
    /// are derived as `ρᵢ = √α · (category minimum duration)`.
    pub fn new(base: i64, alpha: f64) -> Self {
        CombinedClassify {
            duration: ClassifyByDuration::new(base, alpha),
            epoch: None,
            mode: ScanMode::default(),
            scanned: 0,
        }
    }

    /// Switches to the seed's linear category walk — same decisions,
    /// O(category) per placement — for differential proofs.
    pub fn with_linear_scan(mut self) -> Self {
        self.mode = ScanMode::Linear;
        self
    }

    /// Known-durations configuration mirroring
    /// [`ClassifyByDuration::with_known_durations`].
    pub fn with_known_durations(min_duration: i64, mu: f64) -> Self {
        let inner = ClassifyByDuration::with_known_durations(min_duration, mu);
        CombinedClassify {
            epoch: None,
            duration: inner,
            mode: ScanMode::default(),
            scanned: 0,
        }
    }

    /// The ρ used inside duration category `cat` (whose minimum duration is
    /// `b·α^(cat)`): `√α` times that minimum, at least one tick.
    fn rho_for(&self, dur_cat_lower: f64) -> i64 {
        ((self.duration.alpha().sqrt() * dur_cat_lower).round() as i64).max(1)
    }
}

impl OnlinePacker for CombinedClassify {
    fn name(&self) -> String {
        format!(
            "combined(b={},alpha={:.3})",
            self.duration.base(),
            self.duration.alpha()
        )
    }

    fn reset(&mut self) {
        self.epoch = None;
    }

    fn place(&mut self, item: &ItemView, open_bins: &OpenBins) -> Decision {
        if self.epoch.is_none() {
            self.epoch = Some(item.arrival);
        }
        let dep = item
            .departure
            .expect("CombinedClassify requires a clairvoyant engine");
        let dur = dep - item.arrival;
        let dur_tag = self.duration.category(dur);
        // Lower boundary of this duration category: b·α^i where the stored
        // tag is i + 2^32.
        let i = dur_tag as i64 - (1 << 32);
        let lower = self.duration.base() as f64 * self.duration.alpha().powi(i as i32);
        let rho = self.rho_for(lower);
        let off = dep - self.epoch.unwrap();
        let dep_tag = ((off + rho - 1) / rho) as u64;
        // Duration class in high 32 bits, departure class (mod 2^32) low.
        let tag = (dur_tag << 32) | (dep_tag & 0xFFFF_FFFF);
        let (decision, scanned) = first_fit_tagged_in(self.mode, tag, item.size, open_bins);
        self.scanned = scanned;
        decision
    }

    fn last_scanned(&self) -> Option<usize> {
        Some(self.scanned)
    }

    fn save_state(&self) -> PackerState {
        // The duration classifier is pure configuration; only the
        // departure-class epoch is run state.
        let mut st = PackerState::new();
        if let Some(e) = self.epoch {
            st.set("epoch", e);
        }
        st
    }

    fn restore_state(&mut self, state: &PackerState) -> Result<(), DbpError> {
        self.epoch = state.get("epoch");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::{Instance, OnlineEngine};

    #[test]
    fn separates_by_both_dimensions() {
        // Four items: two short-now, one short-later, one long-now.
        let inst = Instance::from_triples(&[
            (0.2, 0, 10),    // short, departs early
            (0.2, 1, 10),    // short, departs early — shares
            (0.2, 0, 1000),  // long — different duration class
            (0.2, 500, 510), // short, departs late — different departure class
        ]);
        let mut p = CombinedClassify::new(8, 2.0);
        let run = OnlineEngine::clairvoyant().run(&inst, &mut p).unwrap();
        run.packing.validate(&inst).unwrap();
        assert_eq!(run.bins_opened(), 3);
        assert_eq!(run.packing.bin(dbp_core::BinId(0)).len(), 2);
    }

    #[test]
    fn valid_on_mixed_workload() {
        let inst = Instance::from_triples(&[
            (0.5, 0, 7),
            (0.4, 2, 30),
            (0.6, 3, 9),
            (0.2, 5, 200),
            (0.9, 8, 20),
            (0.3, 12, 19),
            (0.3, 14, 300),
        ]);
        let mut p = CombinedClassify::with_known_durations(6, 50.0);
        let run = OnlineEngine::clairvoyant().run(&inst, &mut p).unwrap();
        run.packing.validate(&inst).unwrap();
        assert_eq!(run.usage, run.packing.total_usage(&inst));
    }
}
