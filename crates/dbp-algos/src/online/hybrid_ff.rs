//! Hybrid First Fit (Li et al.): size-classified First Fit for the
//! non-clairvoyant setting.
//!
//! Items are classified by *size* into harmonic classes — class 0 holds
//! items with size in `(1/2, 1]`, class `k ≥ 1` holds sizes in
//! `(2^{-(k+1)}, 2^{-k}]` up to a cutoff class that absorbs everything
//! smaller — and each class is packed by First Fit separately. Li et al.
//! showed this achieves competitive ratio `8μ/7 + 55/7` without knowledge
//! of `μ` (and `μ + 5` with a `μ`-dependent parameter), versus `μ + 4` for
//! plain First Fit (Tang et al.).
//!
//! It is included as the strongest published non-clairvoyant baseline with
//! classification, so the paper's clairvoyant classification strategies are
//! compared against like-for-like machinery.

use super::{first_fit_tagged_in, ScanMode};
use dbp_core::online::{Decision, ItemView, OnlinePacker, OpenBins};
use dbp_core::Size;

/// Hybrid First Fit with `num_classes` harmonic size classes.
#[derive(Clone, Debug)]
pub struct HybridFirstFit {
    num_classes: u32,
    mode: ScanMode,
    scanned: usize,
}

impl Default for HybridFirstFit {
    fn default() -> Self {
        Self::new(4)
    }
}

impl HybridFirstFit {
    /// Creates the packer with `num_classes ≥ 1` harmonic classes; the last
    /// class absorbs all sizes ≤ `2^{-num_classes+1}`… i.e. classes are
    /// `(1/2,1], (1/4,1/2], …` with the final one unbounded below.
    pub fn new(num_classes: u32) -> Self {
        assert!(num_classes >= 1);
        HybridFirstFit {
            num_classes,
            mode: ScanMode::default(),
            scanned: 0,
        }
    }

    /// Switches to the seed's linear class walk — same decisions,
    /// O(class) per placement — for differential proofs.
    pub fn with_linear_scan(mut self) -> Self {
        self.mode = ScanMode::Linear;
        self
    }

    /// The size class of an item: the smallest `k` with
    /// `size > 2^{-(k+1)}`, capped at `num_classes − 1`.
    pub fn class_of(&self, size: Size) -> u64 {
        let mut threshold = Size::HALF;
        for k in 0..self.num_classes - 1 {
            if size > threshold {
                return k as u64;
            }
            threshold = Size::from_raw(threshold.raw() / 2);
        }
        (self.num_classes - 1) as u64
    }
}

impl OnlinePacker for HybridFirstFit {
    fn name(&self) -> String {
        format!("hybrid-ff(k={})", self.num_classes)
    }

    fn place(&mut self, item: &ItemView, open_bins: &OpenBins) -> Decision {
        let tag = self.class_of(item.size);
        let (decision, scanned) = first_fit_tagged_in(self.mode, tag, item.size, open_bins);
        self.scanned = scanned;
        decision
    }

    fn last_scanned(&self) -> Option<usize> {
        Some(self.scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::{Instance, OnlineEngine};

    #[test]
    fn harmonic_classes() {
        let p = HybridFirstFit::new(4);
        let s = Size::from_f64;
        assert_eq!(p.class_of(s(1.0)), 0);
        assert_eq!(p.class_of(s(0.51)), 0);
        assert_eq!(p.class_of(s(0.5)), 1);
        assert_eq!(p.class_of(s(0.26)), 1);
        assert_eq!(p.class_of(s(0.25)), 2);
        assert_eq!(p.class_of(s(0.13)), 2);
        assert_eq!(p.class_of(s(0.125)), 3);
        assert_eq!(p.class_of(s(0.001)), 3, "smallest class absorbs the tail");
    }

    #[test]
    fn classes_do_not_mix() {
        let inst = Instance::from_triples(&[
            (0.6, 0, 10), // class 0
            (0.3, 1, 10), // class 1: would fit bin 0, but must not share
        ]);
        let mut p = HybridFirstFit::new(4);
        let run = OnlineEngine::non_clairvoyant().run(&inst, &mut p).unwrap();
        assert_eq!(run.bins_opened(), 2);
    }

    #[test]
    fn within_class_first_fit() {
        let inst = Instance::from_triples(&[
            (0.3, 0, 10),
            (0.3, 1, 10),
            (0.3, 2, 10),
            (0.3, 3, 10), // 3 fit a bin (0.9), fourth opens a new one
        ]);
        let mut p = HybridFirstFit::new(4);
        let run = OnlineEngine::non_clairvoyant().run(&inst, &mut p).unwrap();
        run.packing.validate(&inst).unwrap();
        assert_eq!(run.bins_opened(), 2);
    }

    #[test]
    fn single_class_degenerates_to_first_fit() {
        let inst = Instance::from_triples(&[(0.6, 0, 10), (0.3, 1, 10), (0.2, 2, 4)]);
        let mut hybrid = HybridFirstFit::new(1);
        let mut ff = crate::online::AnyFit::first_fit();
        let eng = OnlineEngine::non_clairvoyant();
        let a = eng.run(&inst, &mut hybrid).unwrap();
        let b = eng.run(&inst, &mut ff).unwrap();
        assert_eq!(a.usage, b.usage);
        assert_eq!(a.packing, b.packing);
    }
}
