//! The executable Theorem 3 adversary (Figure 5).
//!
//! At time 0, two items of size `1/2 − ε` arrive: one of duration `x`, one
//! of duration 1. If the online algorithm packs them together (case B),
//! two items of size `1/2 + ε` arrive at time `τ` (durations `x` and 1) —
//! each needs a fresh bin, and the algorithm pays `2x + 1` against an
//! optimum of `x + 1 + 2τ`. If the algorithm packs them apart (case A),
//! nothing else arrives and it pays `x + 1` against an optimum of `x`.
//! At `x = (1+√5)/2`, both ratios equal the golden ratio `φ`, so no
//! deterministic online algorithm beats `φ`.
//!
//! [`run_adversary`] plays this game against any real [`OnlinePacker`]:
//! it observes the algorithm's choice on the two-item prefix and then
//! presents the punishing continuation, reporting the achieved ratio
//! against the *exact no-migration optimum* of the chosen case.

use crate::exact::min_usage_packing;
use dbp_core::{Instance, Item, OnlineEngine, OnlinePacker, Size};

/// Which continuation the adversary selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryCase {
    /// The algorithm split the first two items → no further arrivals.
    A,
    /// The algorithm co-located the first two items → two `1/2 + ε`
    /// items arrive at `τ`.
    B,
}

/// Outcome of one adversary game.
#[derive(Clone, Debug)]
pub struct AdversaryReport {
    /// Which case the adversary played.
    pub case: AdversaryCase,
    /// The algorithm's total usage time on the selected instance (ticks).
    pub algorithm_usage: u128,
    /// The exact no-migration optimum for the same instance (ticks).
    pub optimum_usage: u128,
    /// `algorithm_usage / optimum_usage`.
    pub ratio: f64,
}

/// Builds the Theorem 3 instance. `unit` is the tick length of duration
/// "1"; the long items last `x` ticks (`x > unit`); `tau ≥ 1` is the second
/// wave's arrival offset; `with_case_b` appends the two `1/2 + ε` items.
///
/// `ε` is one fixed-point quantum ([`Size::EPSILON`]), the smallest
/// representable perturbation.
pub fn theorem3_instance(unit: i64, x: i64, tau: i64, with_case_b: bool) -> Instance {
    assert!(unit >= 1 && x > unit, "need x > 1 (in ticks: x > unit)");
    assert!(tau >= 1, "tau must be at least one tick");
    let small = Size::HALF - Size::EPSILON;
    let large = Size::HALF + Size::EPSILON;
    let mut items = vec![Item::new(0, small, 0, x), Item::new(1, small, 0, unit)];
    if with_case_b {
        items.push(Item::new(2, large, tau, tau + x));
        items.push(Item::new(3, large, tau, tau + unit));
    }
    Instance::from_items(items).expect("valid construction")
}

/// Plays the Theorem 3 game against `packer` with duration-1 = `unit`
/// ticks, long duration `x` ticks, and arrival offset `tau`.
///
/// The adversary first shows only the two-item prefix (which is exactly
/// case A), inspects whether the packer co-located them, and then scores
/// the packer on the case that punishes its choice. Because the prefix of
/// case B is identical to case A and the packer is deterministic, its
/// prefix behaviour is the same in both cases — precisely the argument in
/// the paper's proof.
/// # Example
///
/// ```
/// use dbp_algos::adversary::{golden_ratio, run_adversary};
/// use dbp_algos::online::AnyFit;
///
/// let report = run_adversary(&mut AnyFit::first_fit(), 100_000, 161_803, 1);
/// assert!(report.ratio >= golden_ratio() - 0.01);
/// ```
pub fn run_adversary(
    packer: &mut dyn OnlinePacker,
    unit: i64,
    x: i64,
    tau: i64,
) -> AdversaryReport {
    let engine = OnlineEngine::clairvoyant();

    // Probe: case A instance reveals the prefix decision.
    let probe = theorem3_instance(unit, x, tau, false);
    let probe_run = engine.run(&probe, packer).expect("probe run");
    let colocated = probe_run.bins_opened() == 1;

    let (case, inst) = if colocated {
        (AdversaryCase::B, theorem3_instance(unit, x, tau, true))
    } else {
        (AdversaryCase::A, probe)
    };
    let run = engine.run(&inst, packer).expect("adversary run");
    run.packing.validate(&inst).expect("valid packing");
    let (opt, _) = min_usage_packing(&inst);
    AdversaryReport {
        case,
        algorithm_usage: run.usage,
        optimum_usage: opt,
        ratio: run.usage as f64 / opt as f64,
    }
}

/// The golden ratio `(1+√5)/2` — Theorem 3's lower bound on the
/// competitive ratio of any deterministic online packer.
pub fn golden_ratio() -> f64 {
    (1.0 + 5.0_f64.sqrt()) / 2.0
}

/// The adversary's guaranteed ratio for a given `x/unit` and `tau → 0`:
/// `min{(x+1)/x, (2x+1)/(x+1)}` (maximized at `x = φ`).
pub fn guaranteed_ratio(x_over_unit: f64) -> f64 {
    let x = x_over_unit;
    ((x + 1.0) / x).min((2.0 * x + 1.0) / (x + 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::{AnyFit, ClassifyByDepartureTime, ClassifyByDuration};

    #[test]
    fn guaranteed_ratio_peaks_at_phi() {
        let phi = golden_ratio();
        let at_phi = guaranteed_ratio(phi);
        assert!((at_phi - phi).abs() < 1e-9);
        for x in [1.1, 1.3, 1.5, 1.7, 2.0, 3.0] {
            assert!(guaranteed_ratio(x) <= at_phi + 1e-9);
        }
    }

    #[test]
    fn first_fit_pays_case_b() {
        // FF co-locates the two (1/2−ε) items → case B punishes it.
        let unit = 1000;
        let x = 1618; // ≈ φ·unit
        let rep = run_adversary(&mut AnyFit::first_fit(), unit, x, 1);
        assert_eq!(rep.case, AdversaryCase::B);
        // usage = 2x + unit; optimum = x + unit + 2τ.
        assert_eq!(rep.algorithm_usage, (2 * x + unit) as u128);
        assert_eq!(rep.optimum_usage, (x + unit + 2) as u128);
        assert!(rep.ratio > 1.6, "ratio {}", rep.ratio);
    }

    #[test]
    fn splitter_pays_case_a() {
        // A packer that never co-locates pays (x+1)/x in case A.
        struct AlwaysSplit;
        impl dbp_core::OnlinePacker for AlwaysSplit {
            fn name(&self) -> String {
                "always-split".into()
            }
            fn place(
                &mut self,
                _: &dbp_core::online::ItemView,
                _: &dbp_core::online::OpenBins,
            ) -> dbp_core::Decision {
                dbp_core::Decision::NEW
            }
        }
        let unit = 1000;
        let x = 1618;
        let rep = run_adversary(&mut AlwaysSplit, unit, x, 1);
        assert_eq!(rep.case, AdversaryCase::A);
        assert_eq!(rep.algorithm_usage, (x + unit) as u128);
        assert_eq!(rep.optimum_usage, x as u128);
        assert!(rep.ratio > 1.6);
    }

    #[test]
    fn every_packer_suffers_at_least_phi_minus_discretization() {
        let unit = 10_000;
        let x = 16_180;
        let tau = 1;
        let floor = golden_ratio() - 0.01;
        let mut packers: Vec<Box<dyn dbp_core::OnlinePacker>> = vec![
            Box::new(AnyFit::first_fit()),
            Box::new(AnyFit::best_fit()),
            Box::new(AnyFit::worst_fit()),
            Box::new(AnyFit::next_fit()),
            Box::new(ClassifyByDepartureTime::new(5000)),
            Box::new(ClassifyByDuration::new(1000, 2.0)),
        ];
        for p in packers.iter_mut() {
            let rep = run_adversary(p.as_mut(), unit, x, tau);
            assert!(
                rep.ratio >= floor,
                "{} escaped with ratio {:.4} (case {:?})",
                p.name(),
                rep.ratio,
                rep.case
            );
        }
    }

    #[test]
    fn instance_shape() {
        let a = theorem3_instance(10, 16, 1, false);
        assert_eq!(a.len(), 2);
        let b = theorem3_instance(10, 16, 1, true);
        assert_eq!(b.len(), 4);
        // Both big items exceed half capacity.
        assert!(b.items().iter().filter(|r| !r.size().is_small()).count() == 2);
    }
}
