//! # dbp-algos — every packing algorithm of the paper and its baselines
//!
//! Implements, from scratch, all algorithms studied or cited by *Ren & Tang,
//! SPAA 2016*:
//!
//! **Offline approximation algorithms (§4):**
//! * [`offline::DurationDescendingFirstFit`] — Theorem 1, 5-approximation.
//! * [`offline::DualColoring`] — Theorem 2, 4-approximation, with the full
//!   demand-chart Phase 1 and stripe-packing Phase 2.
//! * [`offline::ArrivalFirstFit`] — offline First Fit in arrival order
//!   (the offline twin of the online baseline, useful as a control).
//!
//! **Exact reference solvers ([`exact`]):**
//! * [`exact::opt_total`] — the paper's `OPT_total(R)` (the repacking
//!   adversary of §3.2) computed exactly: per-segment optimal classical bin
//!   packing by branch-and-bound, integrated over the load profile.
//! * [`exact::min_usage_packing`] — the true no-migration optimum for small
//!   instances, by exhaustive search with pruning.
//!
//! **Online algorithms (§5 and prior work):**
//! * [`online::AnyFit`] — First/Best/Worst/Next Fit (the non-clairvoyant
//!   baselines of Li et al. and Kamali et al.).
//! * [`online::HybridFirstFit`] — size-classified First Fit (Li et al.).
//! * [`online::ClassifyByDepartureTime`] — §5.2, parameter `ρ`.
//! * [`online::ClassifyByDuration`] — §5.3, parameters `b`, `α`.
//! * [`online::CombinedClassify`] — the §5.4/§6 future-work strategy:
//!   duration classes refined by departure-time classes.
//!
//! **Vector online algorithms** (dynamic *vector* bin packing, after
//! Murhekar et al. 2023): [`online::VecAnyFit`],
//! [`online::VecClassifyByDepartureTime`] and
//! [`online::VecClassifyByDuration`] lift the scalar roster to
//! multi-resource items under all-axes feasibility (bit-identical to the
//! scalar packers at `dims == 1`), and [`online::DotProductFit`] /
//! [`online::MaxNormFit`] add the vector-native placement heuristics.
//!
//! **Adversaries ([`adversary`]):** the executable Theorem 3 construction
//! that forces any deterministic online packer to a ratio of at least the
//! golden ratio.
//!
//! **Analysis instrumentation ([`instrument`]):** the three-stage usage
//! decomposition of §5.2 (Figures 6–7) computed on real runs.
//!
//! **Lookahead ([`lookahead`]):** a bounded-arrival-window model
//! interpolating between the online and offline problems, complementing
//! the paper's departure clairvoyance axis.

#![warn(missing_docs)]

pub mod adversary;
pub mod exact;
pub mod instrument;
pub mod lookahead;
pub mod offline;
pub mod online;
