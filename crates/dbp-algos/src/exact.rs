//! Exact reference solvers.
//!
//! * [`opt_total`] — the paper's `OPT_total(R)` (§3.2): the usage time of an
//!   optimal *offline adversary that may repack everything at any time*,
//!   `∫ OPT(R,t) dt`. At each load segment the active items form a classical
//!   bin packing instance solved exactly by branch-and-bound. This is the
//!   denominator of every ratio the paper proves; all our measured ratios
//!   use it (or its LB3 lower bound when instances are too large).
//! * [`min_usage_packing`] — the true *no-migration* optimum, by exhaustive
//!   assignment search with pruning. Exponential; intended for instances of
//!   up to ~12 items in tests, where it brackets the approximation
//!   algorithms from below.

use dbp_core::events::load_segments;
use dbp_core::{Instance, Item, Packing, Size};

/// Exact minimum number of unit bins needed for `sizes` (classical bin
/// packing) via branch-and-bound with first-fit-decreasing seeding.
///
/// Exact for any input, exponential in the worst case; fine for the tens of
/// concurrently active items in test workloads.
pub fn min_bins(sizes: &[Size]) -> usize {
    let mut sizes: Vec<u64> = sizes.iter().map(|s| s.raw()).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    if sizes.is_empty() {
        return 0;
    }
    let cap = Size::SCALE;
    assert!(sizes.iter().all(|&s| s <= cap), "item exceeds capacity");

    // FFD upper bound.
    let mut ffd_bins: Vec<u64> = Vec::new();
    for &s in &sizes {
        match ffd_bins.iter_mut().find(|b| **b + s <= cap) {
            Some(b) => *b += s,
            None => ffd_bins.push(s),
        }
    }
    let mut best = ffd_bins.len();

    // Lower bounds: continuous volume, plus a cardinality/matching bound —
    // items larger than 1/2 cannot share a bin at all, and items larger
    // than 1/3 fit at most two per bin (a half-item bin hosts at most one
    // third-item), so bins ≥ a + ⌈(b − a)/2⌉ where a = |{s > 1/2}| and
    // b = |{1/3 < s ≤ 1/2}|. This closes the huge gap the volume bound
    // leaves on near-half sizes, where the search would otherwise explode.
    let total: u128 = sizes.iter().map(|&s| s as u128).sum();
    let volume_lb = total.div_ceil(cap as u128) as usize;
    let a = sizes.iter().filter(|&&s| 2 * s > cap).count();
    let b = sizes
        .iter()
        .filter(|&&s| 3 * s > cap && 2 * s <= cap)
        .count();
    let matching_lb = a + b.saturating_sub(a).div_ceil(2);
    let lb = volume_lb.max(matching_lb);
    if lb >= best {
        return best;
    }

    // Branch and bound: place items (largest first) into bins; bins are
    // represented by remaining capacities. Symmetry: only open one new bin.
    fn bnb(sizes: &[u64], idx: usize, bins: &mut Vec<u64>, best: &mut usize, cap: u64) {
        if bins.len() >= *best {
            return;
        }
        if idx == sizes.len() {
            *best = bins.len();
            return;
        }
        // Remaining-volume bound.
        let remaining: u128 = sizes[idx..].iter().map(|&s| s as u128).sum();
        let free: u128 = bins.iter().map(|&b| (cap - b) as u128).sum();
        if remaining > free {
            let extra = ((remaining - free).div_ceil(cap as u128)) as usize;
            if bins.len() + extra >= *best {
                return;
            }
        }
        let s = sizes[idx];
        let mut tried: Vec<u64> = Vec::new();
        for i in 0..bins.len() {
            if bins[i] + s <= cap && !tried.contains(&bins[i]) {
                tried.push(bins[i]);
                bins[i] += s;
                bnb(sizes, idx + 1, bins, best, cap);
                bins[i] -= s;
            }
        }
        // New bin (only if it can possibly improve).
        if bins.len() + 1 < *best {
            bins.push(s);
            bnb(sizes, idx + 1, bins, best, cap);
            bins.pop();
        }
    }
    let mut bins: Vec<u64> = Vec::new();
    bnb(&sizes, 0, &mut bins, &mut best, cap);
    best
}

/// The exact `OPT_total(R)` of §3.2 — the repacking adversary's usage time,
/// in ticks: `∫ OPT(R,t) dt`, where `OPT(R,t)` is exact classical bin
/// packing over the items active at `t`.
/// # Example
///
/// ```
/// use dbp_algos::exact::opt_total;
/// use dbp_core::Instance;
///
/// // Three 0.6-items overlap: the adversary needs 3 bins while they
/// // coexist even though ⌈S(t)⌉ = 2 — OPT_total exceeds LB3.
/// let jobs = Instance::from_triples(&[(0.6, 0, 10), (0.6, 0, 10), (0.6, 0, 10)]);
/// assert_eq!(opt_total(&jobs), 30);
/// ```
pub fn opt_total(inst: &Instance) -> u128 {
    let mut total: u128 = 0;
    for seg in load_segments(inst.items()) {
        let active: Vec<Size> = inst
            .items()
            .iter()
            .filter(|r| r.interval().intersects(&seg.interval))
            .map(|r| r.size())
            .collect();
        total += min_bins(&active) as u128 * seg.interval.len() as u128;
    }
    total
}

/// The exact minimum total usage time achievable *without migration* —
/// the true optimum of the MinUsageTime DBP problem — along with a packing
/// attaining it.
///
/// Exhaustive DFS over bin assignments in arrival order with branch
/// pruning; use only for small instances (≲ 12 items).
pub fn min_usage_packing(inst: &Instance) -> (u128, Packing) {
    let items: Vec<Item> = inst.items().to_vec();
    let n = items.len();
    if n == 0 {
        return (0, Packing::new());
    }

    #[derive(Clone)]
    struct BinState {
        members: Vec<usize>,
    }

    struct Search<'a> {
        items: &'a [Item],
        best: u128,
        best_assign: Vec<Vec<usize>>,
    }

    /// Usage of a candidate bin = span of member intervals.
    fn bin_span(items: &[Item], members: &[usize]) -> u128 {
        dbp_core::interval::span_of(members.iter().map(|&i| items[i].interval())) as u128
    }

    /// Whether adding item `idx` keeps the bin feasible.
    fn fits(items: &[Item], members: &[usize], idx: usize) -> bool {
        let cand = items[idx];
        // Check level at every arrival among members ∪ {idx} within the
        // candidate's interval: piecewise-constant levels change only at
        // arrivals/departures, and the max is attained at an arrival.
        let mut all: Vec<usize> = members.to_vec();
        all.push(idx);
        for &i in &all {
            let t = items[i].arrival();
            if !cand.interval().contains(t) && i != idx {
                continue;
            }
            let level: u64 = all
                .iter()
                .filter(|&&j| items[j].interval().contains(t))
                .map(|&j| items[j].size().raw())
                .sum();
            if level > Size::SCALE {
                return false;
            }
        }
        true
    }

    fn dfs(s: &mut Search<'_>, idx: usize, bins: &mut Vec<BinState>, usage_so_far: u128) {
        if usage_so_far >= s.best {
            return;
        }
        if idx == s.items.len() {
            s.best = usage_so_far;
            s.best_assign = bins.iter().map(|b| b.members.clone()).collect();
            return;
        }
        for i in 0..bins.len() {
            if fits(s.items, &bins[i].members, idx) {
                let before = bin_span(s.items, &bins[i].members);
                bins[i].members.push(idx);
                let after = bin_span(s.items, &bins[i].members);
                dfs(s, idx + 1, bins, usage_so_far + after - before);
                bins[i].members.pop();
            }
        }
        // New bin.
        bins.push(BinState { members: vec![idx] });
        let add = s.items[idx].duration() as u128;
        dfs(s, idx + 1, bins, usage_so_far + add);
        bins.pop();
    }

    let mut search = Search {
        items: &items,
        best: u128::MAX,
        best_assign: Vec::new(),
    };
    let mut bins = Vec::new();
    dfs(&mut search, 0, &mut bins, 0);

    let packing = Packing::from_bins(
        search
            .best_assign
            .iter()
            .map(|b| b.iter().map(|&i| items[i].id()).collect())
            .collect(),
    );
    (search.best, packing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::accounting::lower_bounds;

    #[test]
    fn min_bins_basics() {
        let s = Size::from_f64;
        assert_eq!(min_bins(&[]), 0);
        assert_eq!(min_bins(&[s(1.0)]), 1);
        assert_eq!(min_bins(&[s(0.5), s(0.5)]), 1);
        assert_eq!(min_bins(&[s(0.6), s(0.6)]), 2);
        assert_eq!(min_bins(&[s(0.4), s(0.4), s(0.4)]), 2);
        // FFD is suboptimal here; B&B must find 2:
        // {0.5, 0.25, 0.25} {0.375, 0.375, 0.25} — FFD: 0.5,0.375,... let's
        // use the classic: sizes where FFD gives 3 but OPT=2.
        let tricky = [s(0.5), s(0.375), s(0.375), s(0.25), s(0.25), s(0.25)];
        assert_eq!(min_bins(&tricky), 2);
    }

    #[test]
    fn opt_total_simple() {
        // Theorem 3's case A: two (1/2−ε) items, OPT packs them together.
        let eps = 1.0 / Size::SCALE as f64;
        let inst = Instance::from_triples(&[(0.5 - eps, 0, 16), (0.5 - eps, 0, 10)]);
        assert_eq!(opt_total(&inst), 16);
    }

    #[test]
    fn opt_total_equals_lb3_when_items_pack_perfectly() {
        let inst =
            Instance::from_triples(&[(0.5, 0, 10), (0.5, 0, 10), (0.5, 5, 15), (0.5, 5, 15)]);
        let lb = lower_bounds(&inst);
        assert_eq!(opt_total(&inst), lb.lb3);
    }

    #[test]
    fn opt_total_exceeds_lb3_when_fragmentation_forced() {
        // Two 0.6 items overlap: ⌈1.2⌉ = 2 = OPT(R,t); LB3 matches here.
        // A case where OPT(R,t) > ⌈S(t)⌉: three 0.6 items at once → S=1.8,
        // ⌈S⌉=2, but min_bins = 3.
        let inst = Instance::from_triples(&[(0.6, 0, 10), (0.6, 0, 10), (0.6, 0, 10)]);
        let lb = lower_bounds(&inst);
        assert_eq!(lb.lb3, 20);
        assert_eq!(opt_total(&inst), 30);
    }

    #[test]
    fn min_usage_matches_hand_computed() {
        // Theorem 3 case B, x = 2, τ = 1: OPT = x + 1 + 2τ = 5 … in ticks
        // with x=20, τ=1: first (1/2−ε)[0,20), second (1/2−ε)[0,10),
        // third (1/2+ε)[1,21), fourth (1/2+ε)[1,11).
        // OPT: {1st,3rd} → span 21, {2nd,4th} → span 11 … total 32 = x+1+2τ
        // scaled ×10: 20+10+2 = 32. ✓
        let eps = 1.0 / Size::SCALE as f64;
        let inst = Instance::from_triples(&[
            (0.5 - eps, 0, 20),
            (0.5 - eps, 0, 10),
            (0.5 + eps, 1, 21),
            (0.5 + eps, 1, 11),
        ]);
        let (usage, packing) = min_usage_packing(&inst);
        packing.validate(&inst).unwrap();
        assert_eq!(usage, 32);
    }

    #[test]
    fn min_usage_at_least_opt_total() {
        // The no-migration optimum can never beat the repacking adversary.
        let inst = Instance::from_triples(&[
            (0.6, 0, 7),
            (0.5, 3, 12),
            (0.4, 5, 9),
            (0.7, 8, 15),
            (0.3, 1, 14),
        ]);
        let (usage, packing) = min_usage_packing(&inst);
        packing.validate(&inst).unwrap();
        assert!(usage >= opt_total(&inst));
        assert_eq!(usage, packing.total_usage(&inst));
    }

    #[test]
    fn opt_total_with_back_to_back_full_items() {
        // Regression: two full-size items meeting exactly at t=84 must not
        // be treated as concurrent. A load-segment implementation that
        // merges adjacent segments with equal load would make OPT_total
        // = 2×85 here; the correct value is 85 (one bin at a time), equal
        // to the no-migration optimum (both in one bin).
        let inst = Instance::from_triples(&[(1.0, 84, 85), (1.0, 0, 84)]);
        assert_eq!(opt_total(&inst), 85);
        let (usage, packing) = min_usage_packing(&inst);
        packing.validate(&inst).unwrap();
        assert_eq!(usage, 85);
    }

    #[test]
    fn min_usage_empty_and_single() {
        let empty = Instance::from_items(vec![]).unwrap();
        assert_eq!(min_usage_packing(&empty).0, 0);
        let one = Instance::from_triples(&[(0.9, 2, 11)]);
        assert_eq!(min_usage_packing(&one).0, 9);
    }
}
