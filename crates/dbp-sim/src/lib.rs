//! # dbp-sim — cloud server acquisition simulator
//!
//! The systems substrate the paper's introduction motivates: servers rented
//! pay-as-you-go, jobs scheduled onto them by an online packer, total
//! renting cost as the objective. This crate wraps any
//! [`dbp_core::OnlinePacker`] into a cluster simulation with:
//!
//! * **billing models** ([`Billing`]) — per-tick billing (the paper's exact
//!   objective) and per-hour round-up billing (AWS-style; Li et al.'s
//!   motivation), which rewards closing servers just before the next hour
//!   boundary;
//! * **cluster metrics** ([`SimReport`]) — renting cost, usage, peak
//!   concurrent servers, and mean utilization;
//! * **noisy clairvoyance** ([`NoisyEstimator`]) — departure-time estimates
//!   with controlled multiplicative error, for the §6 "inaccurate
//!   estimates" sensitivity experiment (E5). Estimates are a deterministic
//!   function of `(seed, item id)`, so runs are reproducible.
//!
//! ```
//! use dbp_core::online::ClairvoyanceMode;
//! use dbp_core::Instance;
//! use dbp_sim::{simulate, Billing};
//! use dbp_algos::online::ClassifyByDepartureTime;
//!
//! let trace = Instance::from_triples(&[(0.5, 0, 7_000), (0.5, 60, 7_100)]);
//! let mut packer = ClassifyByDepartureTime::new(600);
//! let report = simulate(
//!     &trace,
//!     &mut packer,
//!     ClairvoyanceMode::Clairvoyant,
//!     Billing::PerHour { ticks_per_hour: 3_600, price: 1.0 },
//! ).unwrap();
//! assert_eq!(report.cost, 2.0); // one server, two started hours
//! ```

#![warn(missing_docs)]

pub mod timeline;

use dbp_core::accounting::lower_bounds;
use dbp_core::observe::{NoopObserver, PackObserver, Tee};
use dbp_core::online::ClairvoyanceMode;
use dbp_core::{DbpError, Instance, Item, OnlineEngine, OnlinePacker, OnlineRun, Size, Time};
use dbp_obs::counters::{Counters, CountersSnapshot};
use std::sync::Arc;

/// How server time is billed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Billing {
    /// Cost = `price × usage_ticks` (the MinUsageTime objective).
    PerTick {
        /// Price per tick of server time.
        price: f64,
    },
    /// Cost = `price × Σ_server ⌈lifetime / ticks_per_hour⌉` — classic
    /// round-up hourly billing.
    PerHour {
        /// Ticks in one billing hour.
        ticks_per_hour: i64,
        /// Price per (started) hour.
        price: f64,
    },
    /// Two-tier fleet pricing: `reserved` servers are paid for the whole
    /// horizon at `reserved_price` per tick *whether used or not*; demand
    /// above the reserved count is served on demand at `on_demand_price`
    /// per server-tick. Captures the classic capacity-planning trade-off
    /// (reserved discount vs paying for idle capacity).
    Reserved {
        /// Number of always-on reserved servers.
        reserved: u32,
        /// Per-tick price of a reserved server (paid over the horizon).
        reserved_price: f64,
        /// Per-tick price of an on-demand server.
        on_demand_price: f64,
    },
}

impl Billing {
    /// A validated hourly billing model: rejects zero or negative
    /// `ticks_per_hour`, which would otherwise divide by zero (or silently
    /// wrap through a `u128` cast) inside [`Billing::cost`].
    pub fn per_hour(ticks_per_hour: i64, price: f64) -> Result<Billing, DbpError> {
        let billing = Billing::PerHour {
            ticks_per_hour,
            price,
        };
        billing.validate()?;
        Ok(billing)
    }

    /// Checks the model's parameters are inside their domains. Called by
    /// [`simulate`] so a bad struct-literal configuration fails as a
    /// [`DbpError::InvalidParameter`] instead of panicking mid-run.
    pub fn validate(&self) -> Result<(), DbpError> {
        // NaN prices are rejected too, not silently propagated into
        // every cost, so the test must be "not known to be >= 0".
        fn price_ok(what: &str, price: f64) -> Result<(), DbpError> {
            if price >= 0.0 {
                Ok(())
            } else {
                Err(DbpError::InvalidParameter {
                    what: format!("{what} {price} must be >= 0"),
                })
            }
        }
        match *self {
            Billing::PerTick { price } => price_ok("price", price),
            Billing::PerHour {
                ticks_per_hour,
                price,
            } => {
                if ticks_per_hour < 1 {
                    return Err(DbpError::InvalidParameter {
                        what: format!("ticks_per_hour {ticks_per_hour} must be >= 1"),
                    });
                }
                price_ok("price", price)
            }
            Billing::Reserved {
                reserved_price,
                on_demand_price,
                ..
            } => {
                price_ok("reserved_price", reserved_price)?;
                price_ok("on_demand_price", on_demand_price)
            }
        }
    }

    /// The cost of a run under this model. For [`Billing::Reserved`], the
    /// horizon is the hull of all bin lifetimes (a fleet exists only while
    /// something could run).
    ///
    /// # Panics
    /// [`Billing::PerHour`] with `ticks_per_hour < 1` divides by zero; use
    /// [`Billing::per_hour`] or [`Billing::validate`] to reject such
    /// configurations up front ([`simulate`] does).
    pub fn cost(&self, run: &OnlineRun) -> f64 {
        match *self {
            Billing::PerTick { price } => run.usage as f64 * price,
            Billing::PerHour {
                ticks_per_hour,
                price,
            } => {
                run.bins
                    .iter()
                    .map(|b| (b.usage()).div_ceil(ticks_per_hour as u128) as f64)
                    .sum::<f64>()
                    * price
            }
            Billing::Reserved {
                reserved,
                reserved_price,
                on_demand_price,
            } => {
                let horizon = run
                    .bins
                    .iter()
                    .map(|b| b.closed_at)
                    .max()
                    .unwrap_or(0)
                    .saturating_sub(run.bins.iter().map(|b| b.opened_at).min().unwrap_or(0));
                // On-demand server-ticks: fleet size above the reserved
                // count, integrated over time.
                let fleet = run.fleet_series();
                let mut overflow: i128 = 0;
                for w in fleet.points.windows(2) {
                    let above = (w[0].1 - reserved as i64).max(0) as i128;
                    overflow += above * (w[1].0 - w[0].0) as i128;
                }
                horizon as f64 * reserved as f64 * reserved_price
                    + overflow as f64 * on_demand_price
            }
        }
    }
}

/// The reserved-fleet size minimizing [`Billing::Reserved`] cost for a
/// given run, swept over `0..=peak` — the capacity-planning knob.
/// Returns `(best_reserved, best_cost)`.
pub fn optimal_reservation(
    run: &OnlineRun,
    reserved_price: f64,
    on_demand_price: f64,
) -> (u32, f64) {
    let peak = run.fleet_series().max().max(0) as u32;
    let mut best = (0u32, f64::INFINITY);
    for r in 0..=peak {
        let cost = Billing::Reserved {
            reserved: r,
            reserved_price,
            on_demand_price,
        }
        .cost(run);
        if cost < best.1 {
            best = (r, cost);
        }
    }
    best
}

/// Per-job retry accounting for a fault-injected run. Populated by the
/// `dbp-resilience` chaos runner; plain simulations leave
/// [`SimReport::retry`] as `None`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryCounters {
    /// Jobs that completed on their first attempt.
    pub jobs_completed: u64,
    /// Jobs that completed after at least one retry.
    pub jobs_retried: u64,
    /// Jobs dropped after exhausting the recovery policy's retry budget.
    pub jobs_dropped: u64,
    /// Jobs rejected outright by admission control.
    pub jobs_rejected: u64,
    /// Total resubmissions across all jobs.
    pub retries_total: u64,
    /// Servers killed by fault injection.
    pub servers_killed: u64,
    /// Job submissions displaced by a server failure.
    pub jobs_displaced: u64,
    /// Arrivals shed at the fleet-size cap.
    pub arrivals_shed: u64,
}

/// Cluster-level outcome of one scheduling run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Scheduler display name.
    pub scheduler: String,
    /// Total renting cost under the billing model.
    pub cost: f64,
    /// Total server usage in ticks (the paper's objective).
    pub usage: u128,
    /// Number of servers acquired over the run.
    pub servers_acquired: usize,
    /// Maximum concurrently open servers.
    pub peak_servers: usize,
    /// Mean utilization: time–space demand served / server time provided.
    pub utilization: f64,
    /// Ratio of usage to the Proposition 3 lower bound.
    pub ratio_vs_lb: f64,
    /// Run counters: placements, bins, scan depth, decision latency.
    pub counters: CountersSnapshot,
    /// Retry accounting for fault-injected runs; `None` for plain runs.
    pub retry: Option<RetryCounters>,
    /// The underlying run (packing, bin records).
    pub run: OnlineRun,
}

/// Runs `packer` over `inst` under the given clairvoyance mode and billing
/// model, collecting cluster metrics.
pub fn simulate(
    inst: &Instance,
    packer: &mut dyn OnlinePacker,
    mode: ClairvoyanceMode,
    billing: Billing,
) -> Result<SimReport, DbpError> {
    simulate_observed(inst, packer, mode, billing, &mut NoopObserver)
}

/// Like [`simulate`], but additionally streams every packing event to
/// `obs` (e.g. a [`dbp_obs::TraceWriter`] or
/// [`dbp_obs::MetricsAggregator`]). [`SimReport::counters`] is collected
/// in both paths via an internal [`Counters`] observer.
pub fn simulate_observed<O: PackObserver>(
    inst: &Instance,
    packer: &mut dyn OnlinePacker,
    mode: ClairvoyanceMode,
    billing: Billing,
    obs: &mut O,
) -> Result<SimReport, DbpError> {
    billing.validate()?;
    let mut counters = Counters::new();
    let mut tee = Tee(&mut counters, obs);
    let run = OnlineEngine::new(mode).run_observed(inst, packer, &mut tee)?;
    run.packing.validate(inst)?;
    let lb = lower_bounds(inst);
    let demand_ticks = lb.demand.ticks_f64();
    let utilization = if run.usage == 0 {
        1.0
    } else {
        demand_ticks / run.usage as f64
    };
    // Peak concurrent servers from the fleet timeline; its integral is a
    // cross-check on the engine's usage accounting.
    let fleet = run.fleet_series();
    let peak = fleet.max();
    debug_assert_eq!(fleet.integral() as u128, run.usage);
    Ok(SimReport {
        scheduler: packer.name(),
        cost: billing.cost(&run),
        usage: run.usage,
        servers_acquired: run.bins_opened(),
        peak_servers: peak as usize,
        utilization,
        ratio_vs_lb: if lb.best() == 0 {
            1.0
        } else {
            run.usage as f64 / lb.best() as f64
        },
        counters: counters.snapshot(),
        retry: None,
        run,
    })
}

/// Deterministic multiplicative departure-time noise: the estimated
/// duration is `duration × (1 + e)` with `e` uniform in
/// `[−max_rel_error, +max_rel_error]`, derived by hashing `(seed, id)`.
#[derive(Clone, Copy, Debug)]
pub struct NoisyEstimator {
    /// Hash seed (vary across trials).
    pub seed: u64,
    /// Maximum relative duration error, e.g. `0.2` for ±20%.
    pub max_rel_error: f64,
}

impl NoisyEstimator {
    /// Creates the estimator.
    pub fn new(seed: u64, max_rel_error: f64) -> Self {
        assert!((0.0..1.0).contains(&max_rel_error));
        NoisyEstimator {
            seed,
            max_rel_error,
        }
    }

    /// The estimated departure time for an item.
    pub fn estimate(&self, item: &Item) -> Time {
        let e = self.relative_error(item.id().0);
        let est = item.duration() as f64 * (1.0 + e);
        item.arrival() + (est.round() as i64).max(1)
    }

    /// The deterministic relative error for an item id, in
    /// `[−max_rel_error, +max_rel_error]`.
    pub fn relative_error(&self, id: u32) -> f64 {
        // SplitMix64 over (seed, id) for a uniform unit sample.
        let mut z = self.seed ^ ((id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        (2.0 * unit - 1.0) * self.max_rel_error
    }

    /// The corresponding engine mode.
    pub fn mode(&self) -> ClairvoyanceMode {
        let est = *self;
        ClairvoyanceMode::Noisy(Arc::new(move |r: &Item| est.estimate(r)))
    }
}

/// Convenience: the per-tick MinUsageTime billing at unit price.
pub fn unit_billing() -> Billing {
    Billing::PerTick { price: 1.0 }
}

/// Outcome of a [`recommend_rho`] sweep.
#[derive(Clone, Debug)]
pub struct RhoRecommendation {
    /// The candidate with the lowest simulated cost.
    pub best_rho: i64,
    /// The cost at `best_rho`.
    pub best_cost: f64,
    /// Theorem 4's closed-form suggestion `√μ·Δ` for comparison.
    pub theoretical_rho: i64,
    /// Every `(rho, cost)` evaluated, in candidate order.
    pub sweep: Vec<(i64, f64)>,
}

/// Parameter advisor: simulates classify-by-departure-time First Fit over
/// a *historical* trace for each candidate `ρ` and returns the cheapest
/// under the given billing, alongside Theorem 4's worst-case-optimal
/// `ρ = √μ·Δ`. Real traces are not worst cases, so the empirical best is
/// often larger than the theoretical one; operators should sweep (this
/// function) rather than trust the closed form when average cost matters.
///
/// When `candidates` is empty, a default geometric ladder around `√μ·Δ`
/// is used.
pub fn recommend_rho(
    inst: &Instance,
    candidates: &[i64],
    billing: Billing,
) -> Result<RhoRecommendation, DbpError> {
    let delta = inst.min_duration().unwrap_or(1);
    let mu = inst.mu().unwrap_or(1.0);
    let theoretical = ((mu.sqrt() * delta as f64).round() as i64).max(1);
    let ladder: Vec<i64> = if candidates.is_empty() {
        [
            theoretical / 8,
            theoretical / 4,
            theoretical / 2,
            theoretical,
            theoretical * 2,
            theoretical * 4,
            theoretical * 8,
        ]
        .iter()
        .map(|&r| r.max(1))
        .collect()
    } else {
        candidates.to_vec()
    };

    let mut sweep = Vec::with_capacity(ladder.len());
    let mut best: Option<(i64, f64)> = None;
    for &rho in &ladder {
        let mut packer = dbp_packers::CbdtShim::new(rho);
        let rep = simulate(inst, &mut packer, ClairvoyanceMode::Clairvoyant, billing)?;
        sweep.push((rho, rep.cost));
        if best.map(|(_, c)| rep.cost < c).unwrap_or(true) {
            best = Some((rho, rep.cost));
        }
    }
    let (best_rho, best_cost) = best.expect("nonempty ladder");
    Ok(RhoRecommendation {
        best_rho,
        best_cost,
        theoretical_rho: theoretical,
        sweep,
    })
}

/// A local CBDT implementation so `dbp-sim` does not depend on
/// `dbp-algos` (which would create a dependency cycle in dev-tests);
/// behaviourally identical to `dbp_algos::online::ClassifyByDepartureTime`
/// — asserted by a test over there.
mod dbp_packers {
    use dbp_core::interval::Time;
    use dbp_core::online::{Decision, ItemView, OnlinePacker, OpenBins};

    pub struct CbdtShim {
        rho: i64,
        epoch: Option<Time>,
    }

    impl CbdtShim {
        pub fn new(rho: i64) -> Self {
            CbdtShim {
                rho: rho.max(1),
                epoch: None,
            }
        }
    }

    impl OnlinePacker for CbdtShim {
        fn name(&self) -> String {
            format!("cbdt(rho={})", self.rho)
        }

        fn reset(&mut self) {
            self.epoch = None;
        }

        fn place(&mut self, item: &ItemView, open_bins: &OpenBins) -> Decision {
            if self.epoch.is_none() {
                self.epoch = Some(item.arrival);
            }
            let dep = item.departure.expect("requires clairvoyance");
            let off = dep - self.epoch.unwrap();
            let tag = ((off + self.rho - 1) / self.rho) as u64;
            for b in open_bins.iter_tag(tag) {
                if b.fits(item.size) {
                    return Decision::Existing(b.id());
                }
            }
            Decision::New { tag }
        }
    }
}

/// Mean size-weighted demand of an instance in ticks (for reporting).
pub fn demand_ticks(inst: &Instance) -> f64 {
    inst.demand() as f64 / Size::SCALE as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_algos::online::{AnyFit, ClassifyByDepartureTime};

    fn inst() -> Instance {
        Instance::from_triples(&[(0.5, 0, 100), (0.5, 5, 95), (0.5, 10, 200), (0.25, 50, 300)])
    }

    #[test]
    fn per_tick_cost_equals_usage() {
        let rep = simulate(
            &inst(),
            &mut AnyFit::first_fit(),
            ClairvoyanceMode::NonClairvoyant,
            unit_billing(),
        )
        .unwrap();
        assert_eq!(rep.cost, rep.usage as f64);
        assert!(rep.ratio_vs_lb >= 1.0);
        assert!(rep.utilization > 0.0 && rep.utilization <= 1.0);
        assert!(rep.peak_servers >= 1 && rep.peak_servers <= rep.servers_acquired);
    }

    #[test]
    fn per_hour_billing_rejects_nonpositive_tick_hours() {
        for bad in [0, -5] {
            match Billing::per_hour(bad, 1.0) {
                Err(DbpError::InvalidParameter { what }) => {
                    assert!(what.contains("ticks_per_hour"), "message names the field");
                }
                other => panic!("ticks_per_hour={bad} accepted: {other:?}"),
            }
            let raw = Billing::PerHour {
                ticks_per_hour: bad,
                price: 1.0,
            };
            let err = simulate(
                &inst(),
                &mut AnyFit::first_fit(),
                ClairvoyanceMode::NonClairvoyant,
                raw,
            )
            .unwrap_err();
            assert!(matches!(err, DbpError::InvalidParameter { .. }));
        }
        let ok = Billing::per_hour(60, 2.5).unwrap();
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validate_rejects_negative_and_nan_prices() {
        let bad = [
            Billing::PerTick { price: -1.0 },
            Billing::PerTick { price: f64::NAN },
            Billing::PerHour {
                ticks_per_hour: 60,
                price: -0.5,
            },
            Billing::PerHour {
                ticks_per_hour: 60,
                price: f64::NAN,
            },
            Billing::Reserved {
                reserved: 2,
                reserved_price: -0.1,
                on_demand_price: 1.0,
            },
            Billing::Reserved {
                reserved: 2,
                reserved_price: 0.5,
                on_demand_price: -1.0,
            },
            Billing::Reserved {
                reserved: 2,
                reserved_price: f64::NAN,
                on_demand_price: 1.0,
            },
        ];
        for b in bad {
            let err = b.validate().unwrap_err();
            assert!(matches!(err, DbpError::InvalidParameter { .. }), "{b:?}");
            // simulate() refuses the same configurations up front.
            let err = simulate(
                &inst(),
                &mut AnyFit::first_fit(),
                ClairvoyanceMode::NonClairvoyant,
                b,
            )
            .unwrap_err();
            assert!(matches!(err, DbpError::InvalidParameter { .. }), "{b:?}");
        }
        // Zero prices are legal (free tiers are a real configuration).
        assert!(Billing::PerTick { price: 0.0 }.validate().is_ok());
        assert!(Billing::Reserved {
            reserved: 0,
            reserved_price: 0.0,
            on_demand_price: 0.0,
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn counters_ride_along_in_every_report() {
        let rep = simulate(
            &inst(),
            &mut AnyFit::first_fit(),
            ClairvoyanceMode::Clairvoyant,
            unit_billing(),
        )
        .unwrap();
        assert_eq!(rep.counters.items_packed as usize, inst().len());
        assert_eq!(rep.counters.bins_opened as usize, rep.servers_acquired);
        assert_eq!(rep.counters.bins_opened, rep.counters.bins_closed);
        assert!(rep.counters.decide_ns_total > 0, "decisions were timed");
    }

    #[test]
    fn simulate_observed_streams_events_and_matches_plain_run() {
        use dbp_core::observe::EventLog;
        let mut log = EventLog::new();
        let observed = simulate_observed(
            &inst(),
            &mut AnyFit::first_fit(),
            ClairvoyanceMode::Clairvoyant,
            unit_billing(),
            &mut log,
        )
        .unwrap();
        let plain = simulate(
            &inst(),
            &mut AnyFit::first_fit(),
            ClairvoyanceMode::Clairvoyant,
            unit_billing(),
        )
        .unwrap();
        assert_eq!(observed.usage, plain.usage);
        assert_eq!(observed.run.packing, plain.run.packing);
        // The streamed events replay to the same run.
        let replay = dbp_obs::replay_events(&log.events).unwrap();
        replay.verify().unwrap();
        assert_eq!(replay.run.usage, observed.usage);
        assert_eq!(replay.run.packing, observed.run.packing);
    }

    #[test]
    fn hourly_billing_rounds_up() {
        // One bin alive 150 ticks, hour = 100 ticks → 2 hours billed.
        let one = Instance::from_triples(&[(0.5, 0, 150)]);
        let rep = simulate(
            &one,
            &mut AnyFit::first_fit(),
            ClairvoyanceMode::NonClairvoyant,
            Billing::PerHour {
                ticks_per_hour: 100,
                price: 3.0,
            },
        )
        .unwrap();
        assert_eq!(rep.cost, 6.0);
    }

    #[test]
    fn noisy_estimator_is_deterministic_and_bounded() {
        let est = NoisyEstimator::new(7, 0.25);
        let r = Item::new(3, Size::HALF, 0, 1000);
        let a = est.estimate(&r);
        let b = est.estimate(&r);
        assert_eq!(a, b);
        assert!((750..=1250).contains(&a), "estimate {a}");
        // Different seeds give different estimates (almost surely).
        let est2 = NoisyEstimator::new(8, 0.25);
        assert_ne!(est.relative_error(3), est2.relative_error(3));
    }

    #[test]
    fn noisy_estimator_same_seed_id_same_estimate_across_instances() {
        // Determinism must hold across *fresh* estimator values, not just
        // repeated calls on one value: rebuild the estimator every
        // iteration and compare against the first answer.
        for id in [0u32, 1, 7, 1_000_000] {
            let item = Item::new(id, Size::HALF, 3, 503);
            let first = NoisyEstimator::new(42, 0.3).estimate(&item);
            for _ in 0..10 {
                let est = NoisyEstimator::new(42, 0.3);
                assert_eq!(est.estimate(&item), first, "id {id}");
                assert_eq!(
                    est.relative_error(id),
                    NoisyEstimator::new(42, 0.3).relative_error(id)
                );
            }
            // A different seed decorrelates the same id.
            assert_ne!(
                NoisyEstimator::new(43, 0.3).relative_error(id),
                NoisyEstimator::new(42, 0.3).relative_error(id)
            );
        }
    }

    #[test]
    fn noisy_mode_still_produces_valid_runs() {
        let est = NoisyEstimator::new(1, 0.5);
        let rep = simulate(
            &inst(),
            &mut ClassifyByDepartureTime::new(50),
            est.mode(),
            unit_billing(),
        )
        .unwrap();
        // Validation happened inside simulate(); ratio sane.
        assert!(rep.ratio_vs_lb >= 1.0);
    }

    #[test]
    fn reserved_billing_cases() {
        // One server alive [0, 100). Reserved=1 at half price: cost = 100
        // × 0.5, no on-demand overflow.
        let one = Instance::from_triples(&[(0.5, 0, 100)]);
        let run = OnlineEngine::clairvoyant()
            .run(&one, &mut AnyFit::first_fit())
            .unwrap();
        let b = Billing::Reserved {
            reserved: 1,
            reserved_price: 0.5,
            on_demand_price: 1.0,
        };
        assert_eq!(b.cost(&run), 50.0);
        // Reserved=0: everything on demand at 1.0 → cost = usage.
        let b0 = Billing::Reserved {
            reserved: 0,
            reserved_price: 0.5,
            on_demand_price: 1.0,
        };
        assert_eq!(b0.cost(&run), run.usage as f64);
    }

    #[test]
    fn optimal_reservation_beats_endpoints() {
        // Base load of 1 server for the whole horizon plus a short burst:
        // reserving exactly the base load is optimal at a 50% discount.
        let inst = Instance::from_triples(&[
            (0.9, 0, 1000),  // base
            (0.9, 100, 200), // burst
            (0.9, 120, 180), // burst
        ]);
        let run = OnlineEngine::clairvoyant()
            .run(&inst, &mut AnyFit::first_fit())
            .unwrap();
        let (best_r, best_cost) = optimal_reservation(&run, 0.5, 1.0);
        assert_eq!(best_r, 1, "reserve the base load");
        for r in [0u32, 3] {
            let c = Billing::Reserved {
                reserved: r,
                reserved_price: 0.5,
                on_demand_price: 1.0,
            }
            .cost(&run);
            assert!(best_cost <= c, "r={r}: {c} < best {best_cost}");
        }
    }

    #[test]
    fn recommend_rho_sweeps_and_picks_minimum() {
        let inst = inst();
        let rec = recommend_rho(&inst, &[10, 50, 100, 400], unit_billing()).unwrap();
        assert_eq!(rec.sweep.len(), 4);
        let min = rec
            .sweep
            .iter()
            .map(|&(_, c)| c)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(rec.best_cost, min);
        assert!(rec.sweep.iter().any(|&(r, _)| r == rec.best_rho));
        assert!(rec.theoretical_rho >= 1);
    }

    #[test]
    fn recommend_rho_default_ladder() {
        let rec = recommend_rho(&inst(), &[], unit_billing()).unwrap();
        assert_eq!(rec.sweep.len(), 7);
        // Ladder brackets the theoretical value.
        assert!(rec.sweep.iter().any(|&(r, _)| r <= rec.theoretical_rho));
        assert!(rec.sweep.iter().any(|&(r, _)| r >= rec.theoretical_rho));
    }

    #[test]
    fn cbdt_shim_matches_dbp_algos_cbdt() {
        use dbp_algos::online::ClassifyByDepartureTime;
        let inst = inst();
        for rho in [7, 60, 150] {
            let mut shim = super::dbp_packers::CbdtShim::new(rho);
            let mut real = ClassifyByDepartureTime::new(rho);
            let a = simulate(
                &inst,
                &mut shim,
                ClairvoyanceMode::Clairvoyant,
                unit_billing(),
            )
            .unwrap();
            let b = simulate(
                &inst,
                &mut real,
                ClairvoyanceMode::Clairvoyant,
                unit_billing(),
            )
            .unwrap();
            assert_eq!(a.usage, b.usage, "rho={rho}");
            assert_eq!(a.servers_acquired, b.servers_acquired);
        }
    }

    #[test]
    fn zero_error_noise_matches_clairvoyant() {
        let est = NoisyEstimator::new(1, 0.0);
        let mut p1 = ClassifyByDepartureTime::new(50);
        let mut p2 = ClassifyByDepartureTime::new(50);
        let a = simulate(&inst(), &mut p1, est.mode(), unit_billing()).unwrap();
        let b = simulate(
            &inst(),
            &mut p2,
            ClairvoyanceMode::Clairvoyant,
            unit_billing(),
        )
        .unwrap();
        assert_eq!(a.usage, b.usage);
    }
}
