//! Cost and capacity time series for operator dashboards.
//!
//! [`crate::SimReport`] gives end-of-run aggregates; this module derives
//! *time series* from a finished run: cumulative renting cost, open
//! server count, committed capacity vs served demand (instantaneous
//! utilization), and a side-by-side comparison builder for several
//! schedulers on one trace. All series are exact step functions derived
//! from the engine's bin records — no sampling error.

use crate::Billing;
use dbp_core::events::load_segments;
use dbp_core::stats::StepSeries;
use dbp_core::{Instance, OnlineRun, Size, Time};

/// Exact time series derived from one run.
#[derive(Clone, Debug)]
pub struct RunTimeline {
    /// Open servers over time (integral = usage).
    pub fleet: StepSeries,
    /// Served demand over time, in milli-capacity units (total active item
    /// size × 1000, rounded down) — comparable against `capacity`.
    pub demand_milli: StepSeries,
    /// Committed capacity over time in milli-capacity units
    /// (`1000 × open servers`).
    pub capacity_milli: StepSeries,
}

impl RunTimeline {
    /// Builds the timeline from a run and its instance.
    pub fn new(inst: &Instance, run: &OnlineRun) -> RunTimeline {
        let fleet = run.fleet_series();
        let capacity_milli = StepSeries {
            points: fleet.points.iter().map(|&(t, v)| (t, v * 1000)).collect(),
        };
        let demand_points: Vec<(Time, i64)> = load_segments(inst.items())
            .iter()
            .map(|s| {
                (
                    s.interval.start(),
                    (s.total_size.raw() as i128 * 1000 / Size::SCALE as i128) as i64,
                )
            })
            .collect();
        // Close the final segment back to zero.
        let mut demand_points = demand_points;
        if let Some(last) = inst.last_departure() {
            demand_points.push((last, 0));
        }
        RunTimeline {
            fleet,
            demand_milli: StepSeries {
                points: dedup_steps(demand_points),
            },
            capacity_milli,
        }
    }

    /// Instantaneous utilization at `t` in `[0, 1]` (1.0 when no servers
    /// are open).
    pub fn utilization_at(&self, t: Time) -> f64 {
        let cap = self.capacity_milli.value_at(t);
        if cap == 0 {
            1.0
        } else {
            self.demand_milli.value_at(t) as f64 / cap as f64
        }
    }

    /// The lowest instantaneous utilization over the run's breakpoints —
    /// the worst over-provisioning moment an autoscaler would flag.
    pub fn worst_utilization(&self) -> f64 {
        self.capacity_milli
            .points
            .iter()
            .map(|&(t, _)| self.utilization_at(t))
            .fold(1.0, f64::min)
    }
}

fn dedup_steps(mut points: Vec<(Time, i64)>) -> Vec<(Time, i64)> {
    points.sort_by_key(|p| p.0);
    let mut out: Vec<(Time, i64)> = Vec::with_capacity(points.len());
    for (t, v) in points {
        match out.last_mut() {
            Some(last) if last.0 == t => last.1 = v,
            Some(last) if last.1 == v => {}
            _ => out.push((t, v)),
        }
    }
    out
}

/// Cumulative renting cost over time under a billing model.
///
/// Per-tick billing accrues linearly while servers are open; per-hour
/// billing jumps by one hour's price at each server's hour boundaries
/// (billed at the *start* of each begun hour, the common cloud
/// convention).
pub fn cost_series(run: &OnlineRun, billing: Billing) -> StepSeries {
    let mut deltas: Vec<(Time, i64)> = Vec::new();
    match billing {
        Billing::PerTick { price } => {
            // Represent cumulative cost at server-count granularity: cost
            // rate equals price × open servers. We emit the *rate* series;
            // cumulative cost is its integral. To keep StepSeries (which
            // holds values, not integrals), emit milli-price rate.
            for b in &run.bins {
                let rate = (price * 1000.0).round() as i64;
                deltas.push((b.opened_at, rate));
                deltas.push((b.closed_at, -rate));
            }
            StepSeries::from_deltas(deltas)
        }
        Billing::PerHour {
            ticks_per_hour,
            price,
        } => {
            // Cumulative cost as a step function: jumps at hour starts.
            let p = (price * 1000.0).round() as i64;
            let mut jumps: Vec<(Time, i64)> = Vec::new();
            for b in &run.bins {
                let hours = (b.usage()).div_ceil(ticks_per_hour as u128) as i64;
                for h in 0..hours {
                    jumps.push((b.opened_at + h * ticks_per_hour, p));
                }
            }
            StepSeries::from_deltas(jumps)
        }
        Billing::Reserved {
            reserved,
            reserved_price,
            on_demand_price,
        } => {
            // Rate series (milli-price per tick): constant reserved burn
            // over the horizon plus on-demand overflow above the reserved
            // fleet size.
            let fleet = run.fleet_series();
            let start = run.bins.iter().map(|b| b.opened_at).min().unwrap_or(0);
            let end = run.bins.iter().map(|b| b.closed_at).max().unwrap_or(0);
            let base = (reserved as f64 * reserved_price * 1000.0).round() as i64;
            deltas.push((start, base));
            deltas.push((end, -base));
            for w in fleet.points.windows(2) {
                let above = (w[0].1 - reserved as i64).max(0);
                let rate = (above as f64 * on_demand_price * 1000.0).round() as i64;
                if rate != 0 {
                    deltas.push((w[0].0, rate));
                    deltas.push((w[1].0, -rate));
                }
            }
            StepSeries::from_deltas(deltas)
        }
    }
}

/// Side-by-side comparison rows for several schedulers on one trace.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Scheduler name.
    pub scheduler: String,
    /// Total usage (ticks).
    pub usage: u128,
    /// Peak fleet.
    pub peak: i64,
    /// Worst instantaneous utilization.
    pub worst_utilization: f64,
}

/// Builds comparison rows from named runs.
pub fn compare_runs(inst: &Instance, runs: &[(String, OnlineRun)]) -> Vec<ComparisonRow> {
    runs.iter()
        .map(|(name, run)| {
            let tl = RunTimeline::new(inst, run);
            ComparisonRow {
                scheduler: name.clone(),
                usage: run.usage,
                peak: tl.fleet.max(),
                worst_utilization: tl.worst_utilization(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit_billing;
    use dbp_algos::online::AnyFit;
    use dbp_core::online::ClairvoyanceMode;
    use dbp_core::{Instance, OnlineEngine};

    fn run(inst: &Instance) -> OnlineRun {
        OnlineEngine::new(ClairvoyanceMode::NonClairvoyant)
            .run(inst, &mut AnyFit::first_fit())
            .unwrap()
    }

    #[test]
    fn timeline_consistency() {
        let inst = Instance::from_triples(&[(0.5, 0, 100), (0.5, 10, 50), (0.9, 20, 80)]);
        let r = run(&inst);
        let tl = RunTimeline::new(&inst, &r);
        // Fleet integral equals usage.
        assert_eq!(tl.fleet.integral() as u128, r.usage);
        // At any breakpoint, demand ≤ capacity (valid packing).
        for &(t, _) in &tl.capacity_milli.points {
            assert!(
                tl.demand_milli.value_at(t) <= tl.capacity_milli.value_at(t),
                "demand exceeds capacity at t={t}"
            );
        }
        let wu = tl.worst_utilization();
        assert!((0.0..=1.0).contains(&wu));
    }

    #[test]
    fn empty_instance_yields_empty_timeline() {
        let inst = Instance::from_items(Vec::new()).unwrap();
        let r = run(&inst);
        let tl = RunTimeline::new(&inst, &r);
        assert_eq!(r.usage, 0);
        assert_eq!(tl.fleet.integral(), 0);
        assert!(tl.demand_milli.points.is_empty());
        assert!(tl.capacity_milli.points.is_empty());
        // No servers open anywhere: utilization conventions still hold.
        assert_eq!(tl.utilization_at(0), 1.0);
        assert_eq!(tl.worst_utilization(), 1.0);
        // Cost series of an empty run is empty under every model.
        assert!(cost_series(&r, unit_billing()).points.is_empty());
    }

    #[test]
    fn single_item_timeline_is_one_rectangle() {
        let inst = Instance::from_triples(&[(0.25, 5, 17)]);
        let r = run(&inst);
        let tl = RunTimeline::new(&inst, &r);
        assert_eq!(r.usage, 12);
        assert_eq!(tl.fleet.value_at(5), 1);
        assert_eq!(tl.fleet.value_at(16), 1);
        assert_eq!(tl.fleet.value_at(17), 0);
        assert_eq!(tl.fleet.value_at(4), 0);
        assert_eq!(tl.demand_milli.value_at(5), 250);
        assert_eq!(tl.demand_milli.value_at(17), 0);
        assert_eq!(tl.capacity_milli.value_at(5), 1000);
        assert!((tl.utilization_at(5) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn simultaneous_departures_collapse_to_one_step() {
        // Three items all depart at t=30: demand and fleet must drop to
        // zero in a single step with no intermediate breakpoints.
        let inst = Instance::from_triples(&[(0.5, 0, 30), (0.5, 5, 30), (0.5, 10, 30)]);
        let r = run(&inst);
        let tl = RunTimeline::new(&inst, &r);
        assert_eq!(tl.fleet.value_at(29), 2);
        assert_eq!(tl.fleet.value_at(30), 0);
        assert_eq!(tl.demand_milli.value_at(29), 1500);
        assert_eq!(tl.demand_milli.value_at(30), 0);
        // Exactly one breakpoint at t=30 in each series.
        for series in [&tl.fleet, &tl.demand_milli, &tl.capacity_milli] {
            assert_eq!(
                series.points.iter().filter(|p| p.0 == 30).count(),
                1,
                "duplicate breakpoints at the shared departure tick"
            );
        }
        assert_eq!(tl.fleet.integral() as u128, r.usage);
    }

    #[test]
    fn per_tick_cost_rate_integrates_to_cost() {
        let inst = Instance::from_triples(&[(0.5, 0, 100), (0.5, 10, 50)]);
        let r = run(&inst);
        let rate = cost_series(&r, unit_billing());
        // Integral of milli-rate / 1000 == usage × price(=1).
        assert_eq!(rate.integral() / 1000, r.usage as i128);
    }

    #[test]
    fn hourly_cost_jumps_sum_to_total() {
        let inst = Instance::from_triples(&[(0.5, 0, 150), (0.5, 200, 260)]);
        let r = run(&inst);
        let billing = Billing::PerHour {
            ticks_per_hour: 100,
            price: 2.0,
        };
        let series = cost_series(&r, billing);
        // Final cumulative value equals Billing::cost × 1000.
        let final_value = series.points.last().map(|p| p.1).unwrap_or(0);
        assert_eq!(final_value as f64 / 1000.0, billing.cost(&r));
    }

    #[test]
    fn reserved_rate_integrates_to_cost() {
        let inst = Instance::from_triples(&[
            (0.9, 0, 100),
            (0.9, 20, 60), // overflow above reserved=1 during [20,60)
        ]);
        let r = run(&inst);
        let billing = Billing::Reserved {
            reserved: 1,
            reserved_price: 0.5,
            on_demand_price: 2.0,
        };
        let series = cost_series(&r, billing);
        assert_eq!(
            (series.integral() as f64) / 1000.0,
            billing.cost(&r),
            "rate integral must equal total cost"
        );
    }

    #[test]
    fn comparison_rows() {
        let inst = Instance::from_triples(&[(0.5, 0, 100), (0.5, 10, 50)]);
        let runs = vec![("ff".to_string(), run(&inst))];
        let rows = compare_runs(&inst, &runs);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].usage, runs[0].1.usage);
        assert!(rows[0].peak >= 1);
    }
}
