//! Property tests for billing models and simulator metrics.

use dbp_algos::online::AnyFit;
use dbp_core::online::ClairvoyanceMode;
use dbp_core::{Instance, Item, OnlineEngine, OnlineRun, Size};
use dbp_sim::{optimal_reservation, simulate, unit_billing, Billing};
use proptest::prelude::*;

fn arb_instance(max_items: usize) -> impl Strategy<Value = Instance> {
    let item = (1u64..=64, 0i64..150, 1i64..80).prop_map(|(s, a, d)| (s, a, a + d));
    proptest::collection::vec(item, 1..=max_items).prop_map(|triples| {
        let items = triples
            .into_iter()
            .enumerate()
            .map(|(i, (s, a, dep))| Item::new(i as u32, Size::from_ratio(s, 64).unwrap(), a, dep))
            .collect();
        Instance::from_items(items).unwrap()
    })
}

fn ff_run(inst: &Instance) -> OnlineRun {
    OnlineEngine::new(ClairvoyanceMode::NonClairvoyant)
        .run(inst, &mut AnyFit::first_fit())
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-tick cost at unit price equals usage; price scales linearly.
    #[test]
    fn per_tick_linear(inst in arb_instance(20), price in 0.1f64..10.0) {
        let run = ff_run(&inst);
        let unit = unit_billing().cost(&run);
        prop_assert_eq!(unit, run.usage as f64);
        let scaled = Billing::PerTick { price }.cost(&run);
        prop_assert!((scaled - unit * price).abs() < 1e-6 * unit.max(1.0));
    }

    /// Hourly round-up never undercuts the per-tick equivalent rate, and
    /// never exceeds it by more than one hour per server.
    #[test]
    fn per_hour_bounds(inst in arb_instance(20), hour in 1i64..500) {
        let run = ff_run(&inst);
        let hourly = Billing::PerHour { ticks_per_hour: hour, price: hour as f64 }.cost(&run);
        let linear = run.usage as f64; // per-tick at price 1 == price hour/hour
        prop_assert!(hourly >= linear - 1e-6);
        let slack = (run.bins_opened() as f64) * hour as f64;
        prop_assert!(hourly <= linear + slack + 1e-6);
    }

    /// Reserved with zero reserved servers degenerates to pure on-demand
    /// per-tick billing.
    #[test]
    fn reserved_zero_is_on_demand(inst in arb_instance(20), price in 0.1f64..5.0) {
        let run = ff_run(&inst);
        let reserved = Billing::Reserved {
            reserved: 0,
            reserved_price: 123.0, // irrelevant
            on_demand_price: price,
        }
        .cost(&run);
        let od = Billing::PerTick { price }.cost(&run);
        prop_assert!((reserved - od).abs() < 1e-6 * od.max(1.0));
    }

    /// The reservation advisor's answer is never worse than either
    /// endpoint (0 reserved, peak reserved).
    #[test]
    fn optimal_reservation_dominates_endpoints(
        inst in arb_instance(20),
        rp in 0.1f64..1.0,
    ) {
        let run = ff_run(&inst);
        let (best_r, best_cost) = optimal_reservation(&run, rp, 1.0);
        let peak = run.fleet_series().max().max(0) as u32;
        prop_assert!(best_r <= peak);
        for r in [0, peak] {
            let c = Billing::Reserved {
                reserved: r,
                reserved_price: rp,
                on_demand_price: 1.0,
            }
            .cost(&run);
            prop_assert!(best_cost <= c + 1e-9);
        }
    }

    /// SimReport invariants across billing models: usage, server counts,
    /// and utilization do not depend on how money is counted.
    #[test]
    fn report_invariant_under_billing(inst in arb_instance(20)) {
        let billings = [
            unit_billing(),
            Billing::PerHour { ticks_per_hour: 50, price: 2.0 },
            Billing::Reserved { reserved: 2, reserved_price: 0.3, on_demand_price: 1.0 },
        ];
        let mut base: Option<(u128, usize, usize)> = None;
        for b in billings {
            let mut ff = AnyFit::first_fit();
            let rep = simulate(&inst, &mut ff, ClairvoyanceMode::NonClairvoyant, b).unwrap();
            prop_assert!(rep.utilization > 0.0 && rep.utilization <= 1.0 + 1e-9);
            let key = (rep.usage, rep.servers_acquired, rep.peak_servers);
            match &base {
                None => base = Some(key),
                Some(k) => prop_assert_eq!(*k, key),
            }
        }
    }
}
