//! Time-series metrics derived from the packing event stream.
//!
//! [`MetricsAggregator`] is a [`PackObserver`] that folds events into the
//! quantities the paper's figures are drawn from:
//!
//! * **active bins over time** — the fleet timeline an autoscaler sees;
//! * **total level `S(t)`** — the instantaneous resource demand, tracked
//!   exactly in raw fixed-point units;
//! * **`⌈S(t)⌉`** — the integrand of the paper's strongest lower bound
//!   LB3 = ∫⌈S(t)⌉dt (Proposition 3), so the gap between the active-bin
//!   curve and this curve *is* the instantaneous inefficiency;
//! * **per-bin utilization** — each closed bin's time-averaged level over
//!   its lifetime, summarized as a histogram;
//! * **instantaneous ratio vs. LB3** — active bins ÷ `⌈S(t)⌉` pointwise.
//!
//! [`MetricsReport::to_csv`] exports a merged timeline consumable by the
//! plotting helpers in `dbp-bench` (and any spreadsheet).

use dbp_core::observe::{PackEvent, PackObserver};
use dbp_core::stats::StepSeries;
use dbp_core::{BinId, Size, Time};
use std::collections::HashMap;

/// Number of buckets in the utilization histogram (bucket `i` covers
/// `[i/10, (i+1)/10)`, with 1.0 landing in the last bucket).
pub const HIST_BUCKETS: usize = 10;

struct BinState {
    opened_at: Time,
    last_change: Time,
    level_raw: u64,
    /// ∫ level dt so far, in raw-size × ticks.
    area_raw: u128,
}

/// Folds [`PackEvent`]s into time-series metrics. Attach to a run (e.g.
/// via `OnlineEngine::run_observed`), then call
/// [`MetricsAggregator::report`].
#[derive(Default)]
pub struct MetricsAggregator {
    fleet_deltas: Vec<(Time, i64)>,
    level_points: Vec<(Time, u128)>,
    total_level_raw: u128,
    bins: HashMap<BinId, BinState>,
    histogram: [u32; HIST_BUCKETS],
    utilization_sum: f64,
    bins_closed: u64,
    items_packed: u64,
    bins_failed: u64,
    arrivals_shed: u64,
}

impl MetricsAggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Produces the report. The aggregator can keep receiving events
    /// afterwards, but a report taken mid-run reflects only events so far
    /// (open bins contribute no utilization sample yet).
    pub fn report(&self) -> MetricsReport {
        let scale = u128::from(Size::SCALE);
        let ceil_points: Vec<(Time, i64)> = self
            .level_points
            .iter()
            .map(|&(t, raw)| (t, raw.div_ceil(scale) as i64))
            .collect();
        MetricsReport {
            active_bins: StepSeries::from_deltas(self.fleet_deltas.clone()),
            total_level: dedup_series(
                self.level_points
                    .iter()
                    .map(|&(t, raw)| (t, raw as f64 / Size::SCALE as f64))
                    .collect(),
            ),
            ceil_level: series_from_points(ceil_points),
            utilization_histogram: self.histogram,
            mean_utilization: if self.bins_closed == 0 {
                0.0
            } else {
                self.utilization_sum / self.bins_closed as f64
            },
            bins_closed: self.bins_closed,
            items_packed: self.items_packed,
            bins_failed: self.bins_failed,
            arrivals_shed: self.arrivals_shed,
        }
    }

    fn settle(&mut self, bin: BinId, at: Time) {
        if let Some(st) = self.bins.get_mut(&bin) {
            st.area_raw += u128::from(st.level_raw) * (at - st.last_change).max(0) as u128;
            st.last_change = at;
        }
    }
}

/// Collapses same-instant updates (last wins) and consecutive equal
/// values (first wins).
fn dedup_series(points: Vec<(Time, f64)>) -> Vec<(Time, f64)> {
    let mut out: Vec<(Time, f64)> = Vec::with_capacity(points.len());
    for (t, v) in points {
        if let Some(last) = out.last_mut() {
            if last.0 == t {
                last.1 = v;
                continue;
            }
            if last.1 == v {
                continue;
            }
        }
        out.push((t, v));
    }
    out
}

/// Sums independent step functions (e.g. per-shard fleet timelines) into
/// one series. Each input's value between breakpoints contributes to the
/// sum, so the result at any instant is the sum of the inputs at that
/// instant. Purely integer delta arithmetic: the merge is a deterministic
/// function of the inputs, independent of their computation order.
pub fn merge_step_series(parts: &[StepSeries]) -> StepSeries {
    let mut deltas = Vec::new();
    for s in parts {
        let mut prev = 0i64;
        for &(t, v) in &s.points {
            deltas.push((t, v - prev));
            prev = v;
        }
    }
    StepSeries::from_deltas(deltas)
}

/// Merges the time-series metrics of independent sessions (the shards of
/// a `dbp-shard` fleet) into fleet-wide totals.
///
/// * `active_bins` and `ceil_level` are summed as step functions. Note
///   the merged `ceil_level` is `Σᵢ ⌈Sᵢ(t)⌉` — the lower bound the
///   *sharded* fleet is judged against (each shard owns disjoint bins),
///   which is ≥ the unsharded `⌈S(t)⌉`; the gap is the packing-quality
///   price of partitioning.
/// * `total_level` sums the per-shard level curves, accumulating shards
///   in slice order at every change point so the floating-point result
///   is a deterministic function of the inputs.
/// * The histogram, counts, and closed-bin utilization mean merge as
///   weighted sums.
pub fn merge_reports(parts: &[MetricsReport]) -> MetricsReport {
    let active: Vec<StepSeries> = parts.iter().map(|p| p.active_bins.clone()).collect();
    let ceil: Vec<StepSeries> = parts.iter().map(|p| p.ceil_level.clone()).collect();
    let mut histogram = [0u32; HIST_BUCKETS];
    let mut util_weighted = 0.0f64;
    let mut bins_closed = 0u64;
    let mut items_packed = 0u64;
    let mut bins_failed = 0u64;
    let mut arrivals_shed = 0u64;
    for p in parts {
        for (slot, add) in histogram.iter_mut().zip(&p.utilization_histogram) {
            *slot += add;
        }
        util_weighted += p.mean_utilization * p.bins_closed as f64;
        bins_closed += p.bins_closed;
        items_packed += p.items_packed;
        bins_failed += p.bins_failed;
        arrivals_shed += p.arrivals_shed;
    }
    MetricsReport {
        active_bins: merge_step_series(&active),
        total_level: merge_level_series(parts),
        ceil_level: merge_step_series(&ceil),
        utilization_histogram: histogram,
        mean_utilization: if bins_closed == 0 {
            0.0
        } else {
            util_weighted / bins_closed as f64
        },
        bins_closed,
        items_packed,
        bins_failed,
        arrivals_shed,
    }
}

/// Sums the `total_level` curves of several reports, walking all change
/// points in ascending time and adding shard values in slice order.
fn merge_level_series(parts: &[MetricsReport]) -> Vec<(Time, f64)> {
    let mut times: Vec<Time> = parts
        .iter()
        .flat_map(|p| p.total_level.iter().map(|&(t, _)| t))
        .collect();
    times.sort_unstable();
    times.dedup();
    let mut idx = vec![0usize; parts.len()];
    let mut cur = vec![0.0f64; parts.len()];
    let mut out: Vec<(Time, f64)> = Vec::with_capacity(times.len());
    for t in times {
        let mut sum = 0.0f64;
        for (k, p) in parts.iter().enumerate() {
            let s = &p.total_level;
            while idx[k] < s.len() && s[idx[k]].0 <= t {
                cur[k] = s[idx[k]].1;
                idx[k] += 1;
            }
            sum += cur[k];
        }
        match out.last() {
            Some(&(_, prev)) if prev == sum => {}
            _ => out.push((t, sum)),
        }
    }
    out
}

/// Builds a [`StepSeries`] from absolute `(time, value)` samples.
fn series_from_points(points: Vec<(Time, i64)>) -> StepSeries {
    let mut deltas = Vec::with_capacity(points.len());
    let mut prev = 0i64;
    for (t, v) in points {
        deltas.push((t, v - prev));
        prev = v;
    }
    StepSeries::from_deltas(deltas)
}

impl PackObserver for MetricsAggregator {
    fn on_event(&mut self, event: &PackEvent) {
        match event {
            PackEvent::ItemArrived { .. } => self.items_packed += 1,
            PackEvent::BinOpened { bin, at, .. } => {
                self.fleet_deltas.push((*at, 1));
                self.bins.insert(
                    *bin,
                    BinState {
                        opened_at: *at,
                        last_change: *at,
                        level_raw: 0,
                        area_raw: 0,
                    },
                );
            }
            PackEvent::LevelChanged { bin, at, level, .. } => {
                self.settle(*bin, *at);
                if let Some(st) = self.bins.get_mut(bin) {
                    self.total_level_raw =
                        self.total_level_raw + u128::from(level.raw()) - u128::from(st.level_raw);
                    st.level_raw = level.raw();
                    self.level_points.push((*at, self.total_level_raw));
                }
            }
            PackEvent::BinClosed { bin, at, .. } => {
                self.settle(*bin, *at);
                self.fleet_deltas.push((*at, -1));
                if let Some(st) = self.bins.remove(bin) {
                    let lifetime = (at - st.opened_at) as u128;
                    if lifetime > 0 {
                        let capacity_time = lifetime * u128::from(Size::SCALE);
                        let util = st.area_raw as f64 / capacity_time as f64;
                        let bucket = ((util * HIST_BUCKETS as f64) as usize).min(HIST_BUCKETS - 1);
                        self.histogram[bucket] += 1;
                        self.utilization_sum += util;
                        self.bins_closed += 1;
                    }
                }
            }
            PackEvent::BinFailed { bin, at, .. } => {
                // A failure ends the bin's fleet contribution like a close,
                // but the displaced level vanishes in one step (no
                // per-item LevelChanged events are emitted for it).
                self.settle(*bin, *at);
                self.fleet_deltas.push((*at, -1));
                self.bins_failed += 1;
                if let Some(st) = self.bins.remove(bin) {
                    self.total_level_raw -= u128::from(st.level_raw);
                    self.level_points.push((*at, self.total_level_raw));
                    let lifetime = (at - st.opened_at) as u128;
                    if lifetime > 0 {
                        let capacity_time = lifetime * u128::from(Size::SCALE);
                        let util = st.area_raw as f64 / capacity_time as f64;
                        let bucket = ((util * HIST_BUCKETS as f64) as usize).min(HIST_BUCKETS - 1);
                        self.histogram[bucket] += 1;
                        self.utilization_sum += util;
                        self.bins_closed += 1;
                    }
                }
            }
            PackEvent::ArrivalShed { .. } => self.arrivals_shed += 1,
            PackEvent::PlacementDecided { .. } | PackEvent::EstimateUsed { .. } => {}
        }
    }
}

/// The time-series metrics of one observed run.
#[derive(Clone, Debug)]
pub struct MetricsReport {
    /// Open bins over time; its integral is the total usage.
    pub active_bins: StepSeries,
    /// Total active level `S(t)` in units of bin capacity.
    pub total_level: Vec<(Time, f64)>,
    /// `⌈S(t)⌉` over time; its integral is LB3.
    pub ceil_level: StepSeries,
    /// Closed-bin utilization histogram over [`HIST_BUCKETS`] equal
    /// buckets of `[0, 1]`.
    pub utilization_histogram: [u32; HIST_BUCKETS],
    /// Mean utilization over closed bins (0 if none closed).
    pub mean_utilization: f64,
    /// Bins that closed with a positive lifetime (normal closes plus
    /// failures).
    pub bins_closed: u64,
    /// Items observed arriving.
    pub items_packed: u64,
    /// Bins killed by fault injection.
    pub bins_failed: u64,
    /// Arrivals shed by admission control.
    pub arrivals_shed: u64,
}

impl MetricsReport {
    /// The instantaneous competitive-ratio curve: active bins divided by
    /// `⌈S(t)⌉`, sampled at every change point of either series (skipping
    /// instants where `⌈S(t)⌉ = 0`).
    pub fn ratio_vs_lb3(&self) -> Vec<(Time, f64)> {
        self.change_points()
            .into_iter()
            .filter_map(|t| {
                let ceil = self.ceil_level.value_at(t);
                (ceil > 0).then(|| (t, self.active_bins.value_at(t) as f64 / ceil as f64))
            })
            .collect()
    }

    /// The usage the paper charges: ∫ active_bins dt.
    pub fn usage(&self) -> u128 {
        self.active_bins.integral().max(0) as u128
    }

    /// ∫⌈S(t)⌉dt — the LB3 lower bound recomputed from observed levels.
    pub fn lb3(&self) -> u128 {
        self.ceil_level.integral().max(0) as u128
    }

    /// All change points of the merged timeline, ascending.
    fn change_points(&self) -> Vec<Time> {
        let mut times: Vec<Time> = self
            .active_bins
            .points
            .iter()
            .map(|p| p.0)
            .chain(self.ceil_level.points.iter().map(|p| p.0))
            .chain(self.total_level.iter().map(|p| p.0))
            .collect();
        times.sort_unstable();
        times.dedup();
        times
    }

    /// Renders the merged timeline as CSV:
    /// `time,active_bins,total_level,ceil_level,ratio_vs_lb3` (ratio is
    /// empty where `⌈S(t)⌉ = 0`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time,active_bins,total_level,ceil_level,ratio_vs_lb3\n");
        let mut level = 0.0f64;
        let mut li = 0usize;
        for t in self.change_points() {
            while li < self.total_level.len() && self.total_level[li].0 <= t {
                level = self.total_level[li].1;
                li += 1;
            }
            let active = self.active_bins.value_at(t);
            let ceil = self.ceil_level.value_at(t);
            let ratio = if ceil > 0 {
                format!("{:.6}", active as f64 / ceil as f64)
            } else {
                String::new()
            };
            out.push_str(&format!("{t},{active},{level:.6},{ceil},{ratio}\n"));
        }
        out
    }

    /// `(time, active_bins)` as float points for plotting.
    pub fn active_points(&self) -> Vec<(f64, f64)> {
        self.active_bins
            .points
            .iter()
            .map(|&(t, v)| (t as f64, v as f64))
            .collect()
    }

    /// `(time, ⌈S(t)⌉)` as float points for plotting.
    pub fn ceil_points(&self) -> Vec<(f64, f64)> {
        self.ceil_level
            .points
            .iter()
            .map(|&(t, v)| (t as f64, v as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::observe::FitDecision;
    use dbp_core::ItemId;

    fn ev_open(bin: u32, at: Time) -> PackEvent {
        PackEvent::BinOpened {
            bin: BinId(bin),
            at,
            tag: 0,
        }
    }
    fn ev_level(bin: u32, at: Time, level: f64, open_bins: usize) -> PackEvent {
        PackEvent::LevelChanged {
            bin: BinId(bin),
            at,
            level: Size::from_f64(level),
            open_bins,
        }
    }
    fn ev_close(bin: u32, at: Time, opened_at: Time, items: usize) -> PackEvent {
        PackEvent::BinClosed {
            bin: BinId(bin),
            at,
            opened_at,
            items,
        }
    }
    fn ev_placed(id: u32, bin: u32) -> PackEvent {
        PackEvent::PlacementDecided {
            id: ItemId(id),
            bin: BinId(bin),
            fit_rule: FitDecision::OpenedNew,
            candidates_scanned: 0,
            decide_ns: 0,
        }
    }

    /// One bin at half level over [0,10): S(t)=0.5, ⌈S⌉=1, 1 active bin.
    #[test]
    fn single_bin_metrics() {
        let mut agg = MetricsAggregator::new();
        for ev in [
            ev_open(0, 0),
            ev_placed(0, 0),
            ev_level(0, 0, 0.5, 1),
            ev_level(0, 10, 0.0, 0),
            ev_close(0, 10, 0, 1),
        ] {
            agg.on_event(&ev);
        }
        let rep = agg.report();
        assert_eq!(rep.usage(), 10);
        assert_eq!(rep.lb3(), 10);
        assert_eq!(rep.active_bins.max(), 1);
        assert_eq!(rep.ceil_level.max(), 1);
        assert_eq!(rep.bins_closed, 1);
        assert!((rep.mean_utilization - 0.5).abs() < 1e-9);
        assert_eq!(rep.utilization_histogram[5], 1);
        let ratios = rep.ratio_vs_lb3();
        assert!(ratios.iter().all(|&(_, r)| (r - 1.0).abs() < 1e-9));
    }

    /// Two half bins that could be one: ratio 2 while both are open.
    #[test]
    fn wasteful_packing_shows_ratio_two() {
        let mut agg = MetricsAggregator::new();
        for ev in [
            ev_open(0, 0),
            ev_placed(0, 0),
            ev_level(0, 0, 0.4, 1),
            ev_open(1, 0),
            ev_placed(1, 1),
            ev_level(1, 0, 0.4, 2),
            ev_level(0, 10, 0.0, 1),
            ev_close(0, 10, 0, 1),
            ev_level(1, 10, 0.0, 0),
            ev_close(1, 10, 0, 1),
        ] {
            agg.on_event(&ev);
        }
        let rep = agg.report();
        assert_eq!(rep.usage(), 20);
        assert_eq!(rep.lb3(), 10, "S(t)=0.8 ceils to one server");
        let r = rep.ratio_vs_lb3();
        assert_eq!(r.first().map(|&(t, _)| t), Some(0));
        assert!((r[0].1 - 2.0).abs() < 1e-9);
    }

    /// A failure drops the bin's whole level in one step and the fleet
    /// count with it; shed arrivals are counted.
    #[test]
    fn failure_and_shed_fold_into_metrics() {
        let mut agg = MetricsAggregator::new();
        for ev in [
            ev_open(0, 0),
            ev_placed(0, 0),
            ev_level(0, 0, 0.6, 1),
            PackEvent::BinFailed {
                bin: BinId(0),
                at: 4,
                opened_at: 0,
                displaced: 1,
                open_bins: 0,
            },
            PackEvent::ArrivalShed {
                id: ItemId(9),
                at: 5,
                open_bins: 0,
            },
        ] {
            agg.on_event(&ev);
        }
        let rep = agg.report();
        assert_eq!(rep.usage(), 4, "fleet contribution ends at the failure");
        assert_eq!(rep.bins_failed, 1);
        assert_eq!(rep.arrivals_shed, 1);
        assert_eq!(rep.active_bins.value_at(4), 0);
        assert_eq!(rep.ceil_level.value_at(4), 0, "displaced level vanishes");
        assert!((rep.mean_utilization - 0.6).abs() < 1e-6);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut agg = MetricsAggregator::new();
        for ev in [
            ev_open(0, 2),
            ev_placed(0, 0),
            ev_level(0, 2, 1.0, 1),
            ev_level(0, 7, 0.0, 0),
            ev_close(0, 7, 2, 1),
        ] {
            agg.on_event(&ev);
        }
        let csv = agg.report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "time,active_bins,total_level,ceil_level,ratio_vs_lb3"
        );
        assert!(lines[1].starts_with("2,1,1.000000,1,1.000000"), "{csv}");
        // Full utilization lands in the last histogram bucket.
        assert_eq!(agg.report().utilization_histogram[9], 1);
    }

    /// A report with one item in one bin over `[open_at, open_at + 10)`
    /// at `level`.
    fn one_bin_report(open_at: Time, level: f64) -> MetricsReport {
        let mut agg = MetricsAggregator::new();
        for ev in [
            PackEvent::ItemArrived {
                id: ItemId(0),
                size: Size::from_f64(level),
                at: open_at,
                departure: open_at + 10,
                visible_departure: Some(open_at + 10),
            },
            ev_open(0, open_at),
            ev_placed(0, 0),
            ev_level(0, open_at, level, 1),
            ev_level(0, open_at + 10, 0.0, 0),
            ev_close(0, open_at + 10, open_at, 1),
        ] {
            agg.on_event(&ev);
        }
        agg.report()
    }

    #[test]
    fn merge_step_series_handles_empty_and_single_part() {
        let merged = merge_step_series(&[]);
        assert!(merged.points.is_empty());
        assert_eq!(merged.integral(), 0);

        let only = StepSeries::from_deltas(vec![(0, 2), (5, -1), (9, -1)]);
        let merged = merge_step_series(std::slice::from_ref(&only));
        assert_eq!(merged.points, only.points, "identity on one part");

        // An empty part is a zero function: merging it in changes nothing.
        let with_empty = merge_step_series(&[only.clone(), StepSeries::default()]);
        assert_eq!(with_empty.points, only.points);
    }

    /// Parts with different numbers of breakpoints still sum pointwise:
    /// the merge walks all change points, not index-aligned pairs.
    #[test]
    fn merge_step_series_sums_mismatched_timelines_pointwise() {
        let long = StepSeries::from_deltas(vec![(0, 1), (2, 1), (4, -1), (6, -1)]);
        let short = StepSeries::from_deltas(vec![(3, 5), (10, -5)]);
        let merged = merge_step_series(&[long.clone(), short.clone()]);
        for t in 0..=11 {
            assert_eq!(
                merged.value_at(t),
                long.value_at(t) + short.value_at(t),
                "pointwise sum at t={t}"
            );
        }
        assert_eq!(merged.integral(), long.integral() + short.integral());
    }

    #[test]
    fn merge_reports_empty_is_a_zero_report() {
        let m = merge_reports(&[]);
        assert!(m.active_bins.points.is_empty());
        assert!(m.total_level.is_empty());
        assert!(m.ceil_level.points.is_empty());
        assert_eq!(m.utilization_histogram, [0u32; HIST_BUCKETS]);
        assert_eq!(m.mean_utilization, 0.0, "0, never NaN, with no bins");
        assert_eq!(m.bins_closed, 0);
        assert_eq!(m.items_packed, 0);
        assert_eq!(m.usage(), 0);
        assert_eq!(m.lb3(), 0);
        assert!(m.ratio_vs_lb3().is_empty());
    }

    #[test]
    fn merge_reports_single_part_is_identity() {
        let rep = one_bin_report(0, 0.5);
        let m = merge_reports(std::slice::from_ref(&rep));
        assert_eq!(m.active_bins.points, rep.active_bins.points);
        assert_eq!(m.total_level, rep.total_level);
        assert_eq!(m.ceil_level.points, rep.ceil_level.points);
        assert_eq!(m.utilization_histogram, rep.utilization_histogram);
        assert!((m.mean_utilization - rep.mean_utilization).abs() < 1e-12);
        assert_eq!(m.bins_closed, rep.bins_closed);
        assert_eq!(m.items_packed, rep.items_packed);
    }

    /// Shards whose timelines have different lengths and disjoint change
    /// points merge into pointwise sums and weighted scalar totals.
    #[test]
    fn merge_reports_with_mismatched_timelines() {
        let a = one_bin_report(0, 0.4); // changes at t=0 and t=10
        let b = one_bin_report(5, 0.8); // changes at t=5 and t=15
        let m = merge_reports(&[a.clone(), b.clone()]);
        assert_eq!(m.items_packed, 2);
        assert_eq!(m.bins_closed, 2);
        assert_eq!(m.usage(), a.usage() + b.usage());
        for t in [0, 4, 5, 9, 10, 14, 15] {
            assert_eq!(
                m.active_bins.value_at(t),
                a.active_bins.value_at(t) + b.active_bins.value_at(t)
            );
            assert_eq!(
                m.ceil_level.value_at(t),
                a.ceil_level.value_at(t) + b.ceil_level.value_at(t)
            );
        }
        // total_level on the overlap [5,10): 0.4 + 0.8.
        let level_at = |t: Time| {
            m.total_level
                .iter()
                .take_while(|&&(pt, _)| pt <= t)
                .last()
                .map(|&(_, v)| v)
                .unwrap_or(0.0)
        };
        // Size is 2⁻²⁴ fixed-point, so 0.4 and 0.8 round slightly: 1e-6
        // absorbs the quantization.
        assert!((level_at(7) - 1.2).abs() < 1e-6);
        assert!((level_at(12) - 0.8).abs() < 1e-6);
        // Per-shard ⌈Sᵢ⌉ sums can exceed the unsharded ceiling: 2 > ⌈1.2⌉.
        assert_eq!(m.ceil_level.value_at(7), 2);
        let expected_mean = (0.4 + 0.8) / 2.0;
        assert!((m.mean_utilization - expected_mean).abs() < 1e-6);
        let summed: Vec<u32> = a
            .utilization_histogram
            .iter()
            .zip(&b.utilization_histogram)
            .map(|(x, y)| x + y)
            .collect();
        assert_eq!(m.utilization_histogram.to_vec(), summed);
        assert_eq!(m.utilization_histogram.iter().sum::<u32>(), 2);
    }

    /// Every CSV row must reproduce the report's series values at that
    /// timestamp, and every change point must get a row.
    #[test]
    fn csv_rows_round_trip_the_report() {
        let a = one_bin_report(0, 0.4);
        let b = one_bin_report(5, 0.8);
        let rep = merge_reports(&[a, b]);
        let csv = rep.to_csv();
        let mut rows = 0usize;
        for line in csv.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 5, "malformed row: {line}");
            let t: Time = cols[0].parse().unwrap();
            let active: i64 = cols[1].parse().unwrap();
            let level: f64 = cols[2].parse().unwrap();
            let ceil: i64 = cols[3].parse().unwrap();
            assert_eq!(active, rep.active_bins.value_at(t));
            assert_eq!(ceil, rep.ceil_level.value_at(t));
            let expect_level = rep
                .total_level
                .iter()
                .take_while(|&&(pt, _)| pt <= t)
                .last()
                .map(|&(_, v)| v)
                .unwrap_or(0.0);
            assert!((level - expect_level).abs() < 1e-6, "level at t={t}");
            if ceil > 0 {
                let ratio: f64 = cols[4].parse().unwrap();
                assert!((ratio - active as f64 / ceil as f64).abs() < 1e-6);
            } else {
                assert!(cols[4].is_empty(), "ratio must be blank when ⌈S⌉=0");
            }
            rows += 1;
        }
        let mut expected_times: Vec<Time> = rep
            .active_bins
            .points
            .iter()
            .map(|p| p.0)
            .chain(rep.ceil_level.points.iter().map(|p| p.0))
            .chain(rep.total_level.iter().map(|p| p.0))
            .collect();
        expected_times.sort_unstable();
        expected_times.dedup();
        assert_eq!(rows, expected_times.len(), "one row per change point");
    }
}
