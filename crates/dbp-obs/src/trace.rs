//! JSONL trace format: one [`PackEvent`] per line.
//!
//! The encoding is lossless — [`dbp_core::Size`] values are written as
//! their raw fixed-point `u64` (`size_raw`, `level_raw`), never as
//! floats — so a parsed trace replays to the bit-identical packing (see
//! [`crate::replay`]). The schema is documented in
//! `docs/observability.md`.

use crate::json::{escape, parse, Json};
use dbp_core::observe::{FitDecision, PackEvent, PackObserver};
use dbp_core::{BinId, DbpError, ItemId, Size};
use std::io::Write;

/// Encodes one event as a single JSON line (no trailing newline).
pub fn event_to_json(ev: &PackEvent) -> String {
    match ev {
        PackEvent::ItemArrived {
            id,
            size,
            at,
            departure,
            visible_departure,
        } => {
            let vis = match visible_departure {
                Some(t) => t.to_string(),
                None => "null".to_string(),
            };
            format!(
                "{{\"type\":\"item_arrived\",\"id\":{},\"size_raw\":{},\"at\":{at},\
                 \"departure\":{departure},\"visible_departure\":{vis}}}",
                id.0,
                size.raw()
            )
        }
        PackEvent::EstimateUsed {
            id,
            estimate,
            actual,
        } => format!(
            "{{\"type\":\"estimate_used\",\"id\":{},\"estimate\":{estimate},\"actual\":{actual}}}",
            id.0
        ),
        PackEvent::PlacementDecided {
            id,
            bin,
            fit_rule,
            candidates_scanned,
            decide_ns,
        } => {
            let rule = match fit_rule {
                FitDecision::Reused => "reused",
                FitDecision::OpenedNew => "opened_new",
            };
            format!(
                "{{\"type\":\"placement_decided\",\"id\":{},\"bin\":{},\"fit_rule\":\"{rule}\",\
                 \"candidates_scanned\":{candidates_scanned},\"decide_ns\":{decide_ns}}}",
                id.0, bin.0
            )
        }
        PackEvent::BinOpened { bin, at, tag } => format!(
            "{{\"type\":\"bin_opened\",\"bin\":{},\"at\":{at},\"tag\":{tag}}}",
            bin.0
        ),
        PackEvent::LevelChanged {
            bin,
            at,
            level,
            open_bins,
        } => format!(
            "{{\"type\":\"level_changed\",\"bin\":{},\"at\":{at},\"level_raw\":{},\
             \"open_bins\":{open_bins}}}",
            bin.0,
            level.raw()
        ),
        PackEvent::BinClosed {
            bin,
            at,
            opened_at,
            items,
        } => format!(
            "{{\"type\":\"bin_closed\",\"bin\":{},\"at\":{at},\"opened_at\":{opened_at},\
             \"items\":{items}}}",
            bin.0
        ),
        PackEvent::BinFailed {
            bin,
            at,
            opened_at,
            displaced,
            open_bins,
        } => format!(
            "{{\"type\":\"bin_failed\",\"bin\":{},\"at\":{at},\"opened_at\":{opened_at},\
             \"displaced\":{displaced},\"open_bins\":{open_bins}}}",
            bin.0
        ),
        PackEvent::ArrivalShed { id, at, open_bins } => format!(
            "{{\"type\":\"arrival_shed\",\"id\":{},\"at\":{at},\"open_bins\":{open_bins}}}",
            id.0
        ),
    }
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn field_i64(v: &Json, key: &str) -> Result<i64, String> {
    field(v, key)?
        .as_i64()
        .ok_or_else(|| format!("field {key:?} is not an integer"))
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not an unsigned integer"))
}

/// Decodes one event from a parsed JSON object.
pub fn event_from_json(v: &Json) -> Result<PackEvent, String> {
    let ty = field(v, "type")?
        .as_str()
        .ok_or("field \"type\" is not a string")?;
    match ty {
        "item_arrived" => {
            let vis = field(v, "visible_departure")?;
            let visible_departure = if vis.is_null() {
                None
            } else {
                Some(
                    vis.as_i64()
                        .ok_or("field \"visible_departure\" is not an integer")?,
                )
            };
            Ok(PackEvent::ItemArrived {
                id: ItemId(field_u64(v, "id")? as u32),
                size: Size::from_raw(field_u64(v, "size_raw")?),
                at: field_i64(v, "at")?,
                departure: field_i64(v, "departure")?,
                visible_departure,
            })
        }
        "estimate_used" => Ok(PackEvent::EstimateUsed {
            id: ItemId(field_u64(v, "id")? as u32),
            estimate: field_i64(v, "estimate")?,
            actual: field_i64(v, "actual")?,
        }),
        "placement_decided" => {
            let rule = match field(v, "fit_rule")?.as_str() {
                Some("reused") => FitDecision::Reused,
                Some("opened_new") => FitDecision::OpenedNew,
                other => return Err(format!("bad fit_rule {other:?}")),
            };
            Ok(PackEvent::PlacementDecided {
                id: ItemId(field_u64(v, "id")? as u32),
                bin: BinId(field_u64(v, "bin")? as u32),
                fit_rule: rule,
                candidates_scanned: field_u64(v, "candidates_scanned")? as usize,
                decide_ns: field_u64(v, "decide_ns")?,
            })
        }
        "bin_opened" => Ok(PackEvent::BinOpened {
            bin: BinId(field_u64(v, "bin")? as u32),
            at: field_i64(v, "at")?,
            tag: field_u64(v, "tag")?,
        }),
        "level_changed" => Ok(PackEvent::LevelChanged {
            bin: BinId(field_u64(v, "bin")? as u32),
            at: field_i64(v, "at")?,
            level: Size::from_raw(field_u64(v, "level_raw")?),
            open_bins: field_u64(v, "open_bins")? as usize,
        }),
        "bin_closed" => Ok(PackEvent::BinClosed {
            bin: BinId(field_u64(v, "bin")? as u32),
            at: field_i64(v, "at")?,
            opened_at: field_i64(v, "opened_at")?,
            items: field_u64(v, "items")? as usize,
        }),
        "bin_failed" => Ok(PackEvent::BinFailed {
            bin: BinId(field_u64(v, "bin")? as u32),
            at: field_i64(v, "at")?,
            opened_at: field_i64(v, "opened_at")?,
            displaced: field_u64(v, "displaced")? as usize,
            open_bins: field_u64(v, "open_bins")? as usize,
        }),
        "arrival_shed" => Ok(PackEvent::ArrivalShed {
            id: ItemId(field_u64(v, "id")? as u32),
            at: field_i64(v, "at")?,
            open_bins: field_u64(v, "open_bins")? as usize,
        }),
        other => Err(format!("unknown event type {}", escape(other))),
    }
}

/// Parses a whole JSONL trace. Blank lines are skipped; errors carry the
/// 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<PackEvent>, DbpError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = parse(line).map_err(|what| DbpError::Trace { line: i + 1, what })?;
        events.push(event_from_json(&value).map_err(|what| DbpError::Trace { line: i + 1, what })?);
    }
    Ok(events)
}

/// Serializes a slice of events as a JSONL document.
pub fn events_to_jsonl(events: &[PackEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_to_json(ev));
        out.push('\n');
    }
    out
}

/// Encodes one event as a JSON line with a leading `"shard"` field, for
/// traces merged across a `dbp-shard` fleet. The tag is additive: the
/// untagged readers ([`event_from_json`], [`parse_jsonl`]) look fields up
/// by key and simply ignore it, so a tagged trace still replays.
pub fn event_to_json_tagged(shard: usize, ev: &PackEvent) -> String {
    let base = event_to_json(ev);
    debug_assert!(base.starts_with('{'));
    format!("{{\"shard\":{shard},{}", &base[1..])
}

/// Serializes one shard's events as shard-tagged JSONL (see
/// [`event_to_json_tagged`]).
pub fn events_to_jsonl_tagged(shard: usize, events: &[PackEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_to_json_tagged(shard, ev));
        out.push('\n');
    }
    out
}

/// Parses a JSONL trace keeping each line's `"shard"` tag (`None` for
/// untagged lines). Blank lines are skipped; errors carry the 1-based
/// line number.
pub fn parse_jsonl_tagged(text: &str) -> Result<Vec<(Option<usize>, PackEvent)>, DbpError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = parse(line).map_err(|what| DbpError::Trace { line: i + 1, what })?;
        let shard = value
            .get("shard")
            .and_then(Json::as_u64)
            .map(|s| s as usize);
        let ev = event_from_json(&value).map_err(|what| DbpError::Trace { line: i + 1, what })?;
        events.push((shard, ev));
    }
    Ok(events)
}

/// A [`PackObserver`] that streams events to a writer as JSONL.
///
/// `on_event` must not panic, so I/O errors are latched: the first error
/// stops further writing and is surfaced by [`TraceWriter::finish`] (or
/// inspectable via [`TraceWriter::error`]).
pub struct TraceWriter<W: Write> {
    sink: W,
    lines: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps a writer. Consider a `BufWriter` for file sinks: one write
    /// per event otherwise.
    pub fn new(sink: W) -> Self {
        TraceWriter {
            sink,
            lines: 0,
            error: None,
        }
    }

    /// Number of event lines successfully written.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// The latched I/O error, if any write failed.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the inner writer, surfacing any latched error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

impl<W: Write> PackObserver for TraceWriter<W> {
    fn on_event(&mut self, event: &PackEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = event_to_json(event);
        line.push('\n');
        match self.sink.write_all(line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<PackEvent> {
        vec![
            PackEvent::ItemArrived {
                id: ItemId(7),
                size: Size::from_f64(0.3),
                at: 5,
                departure: 40,
                visible_departure: Some(38),
            },
            PackEvent::ItemArrived {
                id: ItemId(8),
                size: Size::from_raw(1),
                at: 5,
                departure: 9,
                visible_departure: None,
            },
            PackEvent::EstimateUsed {
                id: ItemId(7),
                estimate: 38,
                actual: 40,
            },
            PackEvent::BinOpened {
                bin: BinId(2),
                at: 5,
                tag: 9,
            },
            PackEvent::PlacementDecided {
                id: ItemId(7),
                bin: BinId(2),
                fit_rule: FitDecision::OpenedNew,
                candidates_scanned: 2,
                decide_ns: 1234,
            },
            PackEvent::PlacementDecided {
                id: ItemId(8),
                bin: BinId(2),
                fit_rule: FitDecision::Reused,
                candidates_scanned: 1,
                decide_ns: 0,
            },
            PackEvent::LevelChanged {
                bin: BinId(2),
                at: 5,
                level: Size::from_f64(0.3),
                open_bins: 3,
            },
            PackEvent::BinClosed {
                bin: BinId(2),
                at: 40,
                opened_at: 5,
                items: 2,
            },
            PackEvent::BinFailed {
                bin: BinId(3),
                at: 17,
                opened_at: 6,
                displaced: 2,
                open_bins: 1,
            },
            PackEvent::ArrivalShed {
                id: ItemId(9),
                at: 18,
                open_bins: 4,
            },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for ev in samples() {
            let line = event_to_json(&ev);
            let back = event_from_json(&parse(&line).unwrap()).unwrap();
            assert_eq!(back, ev, "round-trip failed for {line}");
        }
    }

    #[test]
    fn jsonl_round_trips_with_blank_lines() {
        let events = samples();
        let mut text = events_to_jsonl(&events);
        text.insert_str(0, "\n\n");
        assert_eq!(parse_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_jsonl("{\"type\":\"bin_opened\",\"bin\":0,\"at\":0,\"tag\":0}\nnot json\n")
            .unwrap_err();
        assert!(matches!(err, DbpError::Trace { line: 2, .. }), "{err:?}");
        let err = parse_jsonl("{\"type\":\"mystery\"}\n").unwrap_err();
        assert!(matches!(err, DbpError::Trace { line: 1, .. }), "{err:?}");
    }

    #[test]
    fn writer_streams_lines() {
        let mut w = TraceWriter::new(Vec::new());
        for ev in samples() {
            w.on_event(&ev);
        }
        assert_eq!(w.lines_written(), samples().len() as u64);
        let buf = w.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(parse_jsonl(&text).unwrap(), samples());
    }

    #[test]
    fn writer_latches_io_errors() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = TraceWriter::new(Broken);
        w.on_event(&samples()[0]);
        w.on_event(&samples()[1]); // must not panic
        assert_eq!(w.lines_written(), 0);
        assert!(w.error().is_some());
        assert!(w.finish().is_err());
    }
}
