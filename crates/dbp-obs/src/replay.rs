//! Deterministic replay: reconstruct a run from its event stream.
//!
//! A trace produced by [`crate::trace::TraceWriter`] carries enough
//! information to rebuild both the originating [`Instance`] (from
//! `ItemArrived`, which records the *true* departure) and the exact
//! [`OnlineRun`] the engine produced (placements from
//! `PlacementDecided`, bin lifetimes from `BinOpened`/`BinClosed`).
//! [`Replay::verify`] then cross-checks the two — the reconstructed
//! packing must validate against the reconstructed instance and its
//! exact usage must match the usage implied by the bin-lifetime events —
//! which makes a trace file a self-contained correctness oracle for the
//! engine that wrote it.
//!
//! Offline traces synthesized by [`crate::offline::emit_packing`] replay
//! through the same path; a bin that goes idle and is later reused
//! appears as several open/close episodes of the same [`BinId`], and its
//! usage is the sum of episode lengths (the span of the union), matching
//! [`dbp_core::Packing::total_usage`].

use crate::trace::parse_jsonl;
use dbp_core::observe::PackEvent;
use dbp_core::online::{BinRecord, OnlineRun};
use dbp_core::{BinId, DbpError, Instance, Item, ItemId, Packing};
use std::collections::HashMap;

/// An open episode of a bin being rebuilt from events.
struct OpenEpisode {
    opened_at: i64,
    tag: u64,
    items: usize,
}

/// The reconstruction of a run from its event stream.
#[derive(Clone, Debug)]
pub struct Replay {
    /// The originating instance (true sizes, arrivals, departures).
    pub instance: Instance,
    /// The reconstructed run: packing, exact usage, bin lifetimes.
    pub run: OnlineRun,
}

impl Replay {
    /// Cross-checks the reconstruction: the packing must place every
    /// instance item exactly once within capacity, and the usage implied
    /// by bin-lifetime events must equal the packing's exact usage.
    pub fn verify(&self) -> Result<(), DbpError> {
        self.run.packing.validate(&self.instance)?;
        let from_packing = self.run.packing.total_usage(&self.instance);
        if self.run.usage != from_packing {
            return Err(DbpError::Internal {
                what: format!(
                    "replayed usage {} (from bin lifetimes) != {} (from packing spans)",
                    self.run.usage, from_packing
                ),
            });
        }
        Ok(())
    }
}

fn bad(what: String) -> DbpError {
    DbpError::Trace { line: 0, what }
}

/// Rebuilds the instance and run from an in-memory event stream.
pub fn replay_events(events: &[PackEvent]) -> Result<Replay, DbpError> {
    let mut items: Vec<Item> = Vec::new();
    let mut placements: Vec<(ItemId, BinId)> = Vec::new();
    let mut open: HashMap<BinId, OpenEpisode> = HashMap::new();
    let mut records: Vec<BinRecord> = Vec::new();
    let mut episode_items: HashMap<BinId, Vec<ItemId>> = HashMap::new();

    for ev in events {
        match ev {
            PackEvent::ItemArrived {
                id,
                size,
                at,
                departure,
                ..
            } => {
                items.push(Item::try_new(id.0, *size, *at, *departure)?);
            }
            PackEvent::BinOpened { bin, at, tag } => {
                if open
                    .insert(
                        *bin,
                        OpenEpisode {
                            opened_at: *at,
                            tag: *tag,
                            items: 0,
                        },
                    )
                    .is_some()
                {
                    return Err(bad(format!("bin {} opened while already open", bin.0)));
                }
                episode_items.entry(*bin).or_default();
            }
            PackEvent::PlacementDecided { id, bin, .. } => {
                let ep = open
                    .get_mut(bin)
                    .ok_or_else(|| bad(format!("item {id} placed in closed bin {}", bin.0)))?;
                ep.items += 1;
                placements.push((*id, *bin));
                episode_items
                    .get_mut(bin)
                    .expect("episode exists")
                    .push(*id);
            }
            PackEvent::BinClosed {
                bin,
                at,
                opened_at,
                items: n,
            } => {
                let ep = open
                    .remove(bin)
                    .ok_or_else(|| bad(format!("bin {} closed but never opened", bin.0)))?;
                if ep.opened_at != *opened_at {
                    return Err(bad(format!(
                        "bin {} close records opened_at {} but it opened at {}",
                        bin.0, opened_at, ep.opened_at
                    )));
                }
                if ep.items != *n {
                    return Err(bad(format!(
                        "bin {} close records {} items but {} were placed",
                        bin.0, n, ep.items
                    )));
                }
                records.push(BinRecord {
                    id: *bin,
                    opened_at: ep.opened_at,
                    closed_at: *at,
                    tag: ep.tag,
                    items: episode_items.remove(bin).expect("episode exists"),
                });
            }
            // Chaos traces are not replayable: a failed bin's truncated
            // lifetime and shed arrivals break the "every item placed,
            // every bin drains" model the oracle cross-checks. Fail loudly
            // instead of reconstructing a silently-wrong run.
            PackEvent::BinFailed { bin, at, .. } => {
                return Err(bad(format!(
                    "bin {} failed at {at}: chaos traces cannot be replayed",
                    bin.0
                )));
            }
            PackEvent::ArrivalShed { id, at, .. } => {
                return Err(bad(format!(
                    "arrival {id} shed at {at}: chaos traces cannot be replayed",
                )));
            }
            PackEvent::EstimateUsed { .. } | PackEvent::LevelChanged { .. } => {}
        }
    }
    if let Some(bin) = open.keys().next() {
        return Err(bad(format!(
            "trace ends with bin {} still open (truncated?)",
            bin.0
        )));
    }

    let num_bins = placements
        .iter()
        .map(|(_, b)| b.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let mut bins: Vec<Vec<ItemId>> = vec![Vec::new(); num_bins];
    for (item, bin) in &placements {
        bins[bin.0 as usize].push(*item);
    }
    // The engine lists records in opening order (ids are assigned
    // sequentially at open, so that's ascending id); close events arrive
    // in closing order. Re-sort so a replayed run is positionally
    // identical to the original. Offline multi-episode bins share an id;
    // the episode opening time breaks the tie.
    records.sort_by_key(|r| (r.id, r.opened_at));
    let usage: u128 = records.iter().map(|r| r.usage()).sum();
    Ok(Replay {
        instance: Instance::from_items(items)?,
        run: OnlineRun {
            packing: Packing::from_bins(bins),
            usage,
            bins: records,
        },
    })
}

/// Parses a JSONL trace document and rebuilds the run.
pub fn replay_jsonl(text: &str) -> Result<Replay, DbpError> {
    replay_events(&parse_jsonl(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::observe::{EventLog, FitDecision};
    use dbp_core::online::{Decision, ItemView, OnlinePacker, OpenBins};
    use dbp_core::{OnlineEngine, Size};

    struct FirstFit;
    impl OnlinePacker for FirstFit {
        fn name(&self) -> String {
            "ff".into()
        }
        fn place(&mut self, item: &ItemView, open: &OpenBins) -> Decision {
            open.iter()
                .find(|b| b.fits(item.size))
                .map(|b| Decision::Existing(b.id()))
                .unwrap_or(Decision::NEW)
        }
    }

    fn traced_run(inst: &Instance) -> (EventLog, OnlineRun) {
        let mut log = EventLog::new();
        let run = OnlineEngine::clairvoyant()
            .run_observed(inst, &mut FirstFit, &mut log)
            .unwrap();
        (log, run)
    }

    #[test]
    fn replay_reconstructs_run_exactly() {
        let inst = Instance::from_triples(&[
            (0.5, 0, 10),
            (0.5, 2, 8),
            (0.5, 3, 9),
            (0.9, 5, 20),
            (0.1, 12, 30),
        ]);
        let (log, run) = traced_run(&inst);
        let replay = replay_events(&log.events).unwrap();
        replay.verify().unwrap();
        assert_eq!(replay.run.packing, run.packing);
        assert_eq!(replay.run.usage, run.usage);
        assert_eq!(replay.instance.len(), inst.len());
        for (a, b) in replay.instance.items().iter().zip(inst.items()) {
            assert_eq!(
                (a.id(), a.size(), a.interval()),
                (b.id(), b.size(), b.interval())
            );
        }
    }

    #[test]
    fn replay_survives_jsonl_round_trip() {
        let inst = Instance::from_triples(&[(0.4, 0, 7), (0.4, 1, 12), (0.9, 3, 6)]);
        let (log, run) = traced_run(&inst);
        let text = crate::trace::events_to_jsonl(&log.events);
        let replay = replay_jsonl(&text).unwrap();
        replay.verify().unwrap();
        assert_eq!(replay.run.packing, run.packing);
        assert_eq!(replay.run.usage, run.usage);
    }

    #[test]
    fn truncated_trace_rejected() {
        let inst = Instance::from_triples(&[(0.5, 0, 10)]);
        let (log, _) = traced_run(&inst);
        let truncated = &log.events[..log.events.len() - 1];
        assert!(replay_events(truncated).is_err());
    }

    #[test]
    fn chaos_traces_are_rejected() {
        let err = replay_events(&[PackEvent::BinFailed {
            bin: BinId(0),
            at: 3,
            opened_at: 0,
            displaced: 1,
            open_bins: 0,
        }])
        .unwrap_err();
        assert!(matches!(err, DbpError::Trace { .. }), "{err}");
        let err = replay_events(&[PackEvent::ArrivalShed {
            id: ItemId(4),
            at: 3,
            open_bins: 2,
        }])
        .unwrap_err();
        assert!(matches!(err, DbpError::Trace { .. }), "{err}");
    }

    #[test]
    fn tampered_placement_caught_by_verify() {
        // Move the second 0.9 item onto the first 0.9 bin: overfull.
        let inst = Instance::from_triples(&[(0.9, 0, 10), (0.9, 1, 11)]);
        let (log, _) = traced_run(&inst);
        let mut events = log.events.clone();
        for ev in &mut events {
            if let PackEvent::PlacementDecided {
                id, bin, fit_rule, ..
            } = ev
            {
                if id.0 == 1 {
                    *bin = BinId(0);
                    *fit_rule = FitDecision::Reused;
                }
            }
        }
        // Make the stream structurally consistent with the move so only
        // verify() can catch it: bin 1 never opens/closes, bin 0 holds 2.
        events.retain(|ev| {
            !matches!(
                ev,
                PackEvent::BinOpened { bin: BinId(1), .. }
                    | PackEvent::BinClosed { bin: BinId(1), .. }
            )
        });
        for ev in &mut events {
            if let PackEvent::BinClosed {
                bin: BinId(0),
                at,
                items,
                ..
            } = ev
            {
                *at = 11;
                *items = 2;
            }
        }
        let replay = replay_events(&events).unwrap();
        assert!(matches!(
            replay.verify(),
            Err(DbpError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn size_is_bit_exact_through_text() {
        // A size with no finite decimal representation in f64 terms: raw
        // fixed-point value 1 (2^-24).
        let item = Item::new(0, Size::from_raw(1), 0, 5);
        let inst = Instance::from_items(vec![item]).unwrap();
        let (log, _) = traced_run(&inst);
        let text = crate::trace::events_to_jsonl(&log.events);
        let replay = replay_jsonl(&text).unwrap();
        assert_eq!(replay.instance.items()[0].size().raw(), 1);
    }
}
