//! A deliberately minimal JSON value and parser.
//!
//! The trace format (one object per line, flat, integer-valued) does not
//! need a general-purpose JSON stack, and the workspace carries no
//! `serde_json` dependency. Numbers are kept as their source text so
//! integer fields round-trip exactly — raw [`dbp_core::Size`] values are
//! `u64` and must not pass through `f64`.

use std::fmt::Write as _;

/// A parsed JSON value. Numbers keep their literal text (see module doc).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its literal text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants or missing
    /// keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a signed integer, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a float, if it is any number. Only for fields that
    /// are genuinely real-valued (rates, seconds) — integer ids and raw
    /// sizes must go through [`Json::as_u64`] / [`Json::as_i64`] to keep
    /// full 64-bit precision.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if the value is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Escapes `s` as the *contents* of a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one JSON document from `text`, requiring nothing but whitespace
/// to follow it.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            // Validate it is at least a well-formed float.
            s.parse::<f64>()
                .map_err(|_| format!("bad number {s:?} at byte {start}"))?;
            Ok(Json::Num(s.to_string()))
        }
        Some(c) => Err(format!("unexpected byte {:?} at {pos}", *c as char)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Consume one UTF-8 scalar starting at c.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b.get(*pos..*pos + len).ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_object() {
        let v = parse(r#"{"type":"bin_opened","bin":3,"at":-7,"tag":12}"#).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("bin_opened"));
        assert_eq!(v.get("bin").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("at").unwrap().as_i64(), Some(-7));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn u64_round_trips_exactly() {
        // 2^63 + 3 is not representable in f64; the literal text must
        // survive parsing untouched.
        let big = (1u64 << 63) + 3;
        let v = parse(&format!("{{\"raw\":{big}}}")).unwrap();
        assert_eq!(v.get("raw").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn null_and_bool_and_nesting() {
        let v = parse(r#"{"a":null,"b":[true,false,{"c":"x"}]}"#).unwrap();
        assert!(v.get("a").unwrap().is_null());
        match v.get("b").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items[0], Json::Bool(true));
                assert_eq!(items[2].get("c").unwrap().as_str(), Some("x"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let raw = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"s\":\"{}\"}}", escape(raw));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(raw));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("nope").is_err());
    }
}
