//! # dbp-obs — observability for dynamic bin packing runs
//!
//! Consumers of the event stream defined in [`dbp_core::observe`]:
//!
//! * [`trace`] — a lossless JSONL trace format ([`trace::TraceWriter`]
//!   streams events; [`trace::parse_jsonl`] reads them back).
//! * [`replay`] — deterministic reconstruction of the instance and the
//!   exact run from a trace, with [`replay::Replay::verify`] as a
//!   self-contained correctness oracle.
//! * [`metrics`] — time-series aggregation: active bins, total level
//!   `S(t)`, `⌈S(t)⌉` (the LB3 integrand), per-bin utilization
//!   histograms, and the instantaneous ratio vs. LB3, with CSV export.
//! * [`counters`] — cheap scalar counters (items, bins, scan depth,
//!   decision latency) surfaced in `dbp-bench::Measurement` and
//!   `dbp-sim::SimReport`.
//! * [`offline`] — synthesizes the event stream for a finished offline
//!   [`dbp_core::Packing`], so all of the above work for offline packers
//!   too.
//! * [`vectrace`] — the vector stack's JSONL trace: [`dbp_core::VecPackEvent`]
//!   lines with per-axis raw fixed-point arrays
//!   ([`vectrace::VecTraceWriter`] streams; [`vectrace::parse_jsonl`]
//!   reads them back bit-identically).
//!
//! Attach any combination of observers with [`dbp_core::observe::Tee`]:
//!
//! ```
//! use dbp_core::{Instance, OnlineEngine};
//! use dbp_core::observe::Tee;
//! use dbp_core::online::{Decision, ItemView, OnlinePacker, OpenBins};
//! use dbp_obs::counters::Counters;
//! use dbp_obs::metrics::MetricsAggregator;
//!
//! struct FirstFit;
//! impl OnlinePacker for FirstFit {
//!     fn name(&self) -> String { "ff".into() }
//!     fn place(&mut self, item: &ItemView, open: &OpenBins) -> Decision {
//!         open.iter().find(|b| b.fits(item.size))
//!             .map(|b| Decision::Existing(b.id()))
//!             .unwrap_or(Decision::NEW)
//!     }
//! }
//!
//! let inst = Instance::from_triples(&[(0.5, 0, 10), (0.5, 2, 8)]);
//! let mut obs = Tee(Counters::new(), MetricsAggregator::new());
//! let run = OnlineEngine::clairvoyant()
//!     .run_observed(&inst, &mut FirstFit, &mut obs)
//!     .unwrap();
//! let (counters, metrics) = (obs.0.snapshot(), obs.1.report());
//! assert_eq!(counters.items_packed, 2);
//! assert_eq!(metrics.usage(), run.usage);
//! ```

#![warn(missing_docs)]

pub mod counters;
pub mod json;
pub mod metrics;
pub mod offline;
pub mod replay;
pub mod trace;
pub mod vectrace;

pub use counters::{Counters, CountersSnapshot};
pub use metrics::{merge_reports, merge_step_series, MetricsAggregator, MetricsReport};
pub use offline::emit_packing;
pub use replay::{replay_events, replay_jsonl, Replay};
pub use trace::{
    events_to_jsonl, events_to_jsonl_tagged, parse_jsonl, parse_jsonl_tagged, TraceWriter,
};
pub use vectrace::VecTraceWriter;
