//! Event synthesis for offline packings.
//!
//! Offline packers ([`dbp_core::OfflinePacker`]) return a finished
//! [`Packing`] rather than making decisions inside the engine loop, so
//! there is no natural place for them to emit events. This module
//! replays a finished packing chronologically and synthesizes the same
//! event stream the online engine would have produced, which lets every
//! observer ([`crate::trace::TraceWriter`],
//! [`crate::metrics::MetricsAggregator`], [`crate::counters::Counters`])
//! and the replay oracle work uniformly across both packer families.
//!
//! Offline bins may go idle and be reused later; such a bin emits one
//! `BinOpened`/`BinClosed` pair per busy episode, so its replayed usage
//! is the span of its union of intervals — exactly what
//! [`Packing::total_usage`] charges.
//!
//! Synthesized `PlacementDecided` events carry `candidates_scanned = 0`
//! and `decide_ns = 0`: the offline packer's decision procedure already
//! ran, and its cost is not attributable to individual placements.

use dbp_core::observe::{FitDecision, PackEvent, PackObserver};
use dbp_core::{BinId, DbpError, Instance, ItemId, Packing, Size, Time};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

struct BinSlot {
    level: Size,
    active: usize,
    opened_at: Time,
    episode_items: usize,
}

/// Walks `packing` chronologically over `inst` and feeds the synthesized
/// event stream to `obs`. Fails if the packing does not place every item
/// of the instance exactly once (items missing from the packing surface
/// as [`DbpError::PackingCoverage`]).
pub fn emit_packing<O: PackObserver>(
    inst: &Instance,
    packing: &Packing,
    obs: &mut O,
) -> Result<(), DbpError> {
    let mut bin_of: HashMap<ItemId, BinId> = HashMap::with_capacity(inst.len());
    for (bin, items) in packing.iter_bins() {
        for id in items {
            bin_of.insert(*id, bin);
        }
    }

    let mut slots: HashMap<BinId, BinSlot> = HashMap::new();
    let mut open_count = 0usize;
    // Departure queue mirrors the online engine: (time, item) min-heap,
    // departures at time t processed before arrivals at t.
    let mut departures: BinaryHeap<Reverse<(Time, ItemId, BinId, Size)>> = BinaryHeap::new();

    let drain = |slots: &mut HashMap<BinId, BinSlot>,
                 open_count: &mut usize,
                 departures: &mut BinaryHeap<Reverse<(Time, ItemId, BinId, Size)>>,
                 until: Time,
                 obs: &mut O| {
        while let Some(&Reverse((dt, _, bin, size))) = departures.peek() {
            if dt > until {
                break;
            }
            departures.pop();
            let slot = slots.get_mut(&bin).expect("departing from a known bin");
            slot.level = slot.level.saturating_sub(size);
            slot.active -= 1;
            if slot.active == 0 {
                *open_count -= 1;
                obs.on_event(&PackEvent::LevelChanged {
                    bin,
                    at: dt,
                    level: Size::ZERO,
                    open_bins: *open_count,
                });
                obs.on_event(&PackEvent::BinClosed {
                    bin,
                    at: dt,
                    opened_at: slot.opened_at,
                    items: slot.episode_items,
                });
                slots.remove(&bin);
            } else {
                obs.on_event(&PackEvent::LevelChanged {
                    bin,
                    at: dt,
                    level: slot.level,
                    open_bins: *open_count,
                });
            }
        }
    };

    for item in inst.items() {
        let at = item.arrival();
        drain(&mut slots, &mut open_count, &mut departures, at, obs);
        let bin = *bin_of
            .get(&item.id())
            .ok_or_else(|| DbpError::PackingCoverage {
                what: format!("item {} is not placed", item.id()),
            })?;
        obs.on_event(&PackEvent::ItemArrived {
            id: item.id(),
            size: item.size(),
            at,
            departure: item.departure(),
            visible_departure: Some(item.departure()),
        });
        let fresh = !slots.contains_key(&bin);
        if fresh {
            open_count += 1;
            slots.insert(
                bin,
                BinSlot {
                    level: Size::ZERO,
                    active: 0,
                    opened_at: at,
                    episode_items: 0,
                },
            );
            obs.on_event(&PackEvent::BinOpened { bin, at, tag: 0 });
        }
        let slot = slots.get_mut(&bin).expect("just ensured");
        slot.level += item.size();
        slot.active += 1;
        slot.episode_items += 1;
        obs.on_event(&PackEvent::PlacementDecided {
            id: item.id(),
            bin,
            fit_rule: if fresh {
                FitDecision::OpenedNew
            } else {
                FitDecision::Reused
            },
            candidates_scanned: 0,
            decide_ns: 0,
        });
        obs.on_event(&PackEvent::LevelChanged {
            bin,
            at,
            level: slot.level,
            open_bins: open_count,
        });
        departures.push(Reverse((item.departure(), item.id(), bin, item.size())));
    }
    drain(&mut slots, &mut open_count, &mut departures, Time::MAX, obs);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay_events;
    use dbp_core::observe::EventLog;

    #[test]
    fn offline_events_replay_to_packing_usage() {
        // Bin 0 is reused after an idle gap: [0,10) then [20,30).
        let inst =
            Instance::from_triples(&[(0.5, 0, 10), (0.5, 0, 10), (0.25, 20, 30), (0.9, 5, 25)]);
        let packing =
            Packing::from_bins(vec![vec![ItemId(0), ItemId(1), ItemId(2)], vec![ItemId(3)]]);
        packing.validate(&inst).unwrap();
        let mut log = EventLog::new();
        emit_packing(&inst, &packing, &mut log).unwrap();
        let replay = replay_events(&log.events).unwrap();
        replay.verify().unwrap();
        assert_eq!(replay.run.usage, packing.total_usage(&inst));
        assert_eq!(replay.run.packing, packing);
        // The gap produces two episodes for bin 0 plus one for bin 1.
        assert_eq!(replay.run.bins.len(), 3);
    }

    #[test]
    fn unplaced_item_is_an_error() {
        let inst = Instance::from_triples(&[(0.5, 0, 10), (0.5, 1, 5)]);
        let packing = Packing::from_bins(vec![vec![ItemId(0)]]);
        let mut log = EventLog::new();
        assert!(matches!(
            emit_packing(&inst, &packing, &mut log),
            Err(DbpError::PackingCoverage { .. })
        ));
    }
}
