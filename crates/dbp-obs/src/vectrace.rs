//! JSONL trace format for the vector stack: one [`VecPackEvent`] per
//! line.
//!
//! The scalar schema ([`crate::trace`]) stays untouched; vector events
//! get their own line types (`vec_item_arrived`, `vec_level_changed`, …)
//! with demand and level vectors written as per-axis **raw** fixed-point
//! arrays (`axes_raw`, `level_raw`), never floats — a parsed trace
//! carries the bit-identical vectors the run produced.

use crate::json::{escape, parse, Json};
use dbp_core::{BinId, DbpError, ItemId, Size, SizeVec, VecPackEvent, VecPackObserver};
use std::io::Write;

fn axes_json(v: &SizeVec) -> String {
    let axes = v
        .axes()
        .iter()
        .map(|s| s.raw().to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!("[{axes}]")
}

/// Encodes one vector event as a single JSON line (no trailing newline).
pub fn event_to_json(ev: &VecPackEvent) -> String {
    match ev {
        VecPackEvent::ItemArrived {
            id,
            size,
            at,
            departure,
        } => {
            let dep = match departure {
                Some(t) => t.to_string(),
                None => "null".to_string(),
            };
            format!(
                "{{\"type\":\"vec_item_arrived\",\"id\":{},\"axes_raw\":{},\"at\":{at},\
                 \"departure\":{dep}}}",
                id.0,
                axes_json(size)
            )
        }
        VecPackEvent::BinOpened { bin, at, tag } => format!(
            "{{\"type\":\"vec_bin_opened\",\"bin\":{},\"at\":{at},\"tag\":{tag}}}",
            bin.0
        ),
        VecPackEvent::PlacementDecided {
            id,
            bin,
            opened,
            scanned,
        } => format!(
            "{{\"type\":\"vec_placement_decided\",\"id\":{},\"bin\":{},\"opened\":{opened},\
             \"scanned\":{scanned}}}",
            id.0, bin.0
        ),
        VecPackEvent::LevelChanged {
            bin,
            at,
            level,
            open_bins,
        } => format!(
            "{{\"type\":\"vec_level_changed\",\"bin\":{},\"at\":{at},\"level_raw\":{},\
             \"open_bins\":{open_bins}}}",
            bin.0,
            axes_json(level)
        ),
        VecPackEvent::BinClosed {
            bin,
            at,
            opened_at,
            items,
        } => format!(
            "{{\"type\":\"vec_bin_closed\",\"bin\":{},\"at\":{at},\"opened_at\":{opened_at},\
             \"items\":{items}}}",
            bin.0
        ),
    }
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn field_i64(v: &Json, key: &str) -> Result<i64, String> {
    field(v, key)?
        .as_i64()
        .ok_or_else(|| format!("field {key:?} is not an integer"))
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not an unsigned integer"))
}

fn field_vec(v: &Json, key: &str) -> Result<SizeVec, String> {
    let Json::Arr(axes) = field(v, key)? else {
        return Err(format!("field {key:?} is not an array"));
    };
    let axes = axes
        .iter()
        .map(|a| {
            a.as_u64()
                .map(Size::from_raw)
                .ok_or_else(|| format!("field {key:?} holds a non-integer axis"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    SizeVec::try_new(&axes).map_err(|e| format!("field {key:?}: {e}"))
}

/// Decodes one vector event from a parsed JSON object.
pub fn event_from_json(v: &Json) -> Result<VecPackEvent, String> {
    let ty = field(v, "type")?
        .as_str()
        .ok_or("field \"type\" is not a string")?;
    match ty {
        "vec_item_arrived" => {
            let dep = field(v, "departure")?;
            let departure = if dep.is_null() {
                None
            } else {
                Some(
                    dep.as_i64()
                        .ok_or("field \"departure\" is not an integer")?,
                )
            };
            Ok(VecPackEvent::ItemArrived {
                id: ItemId(field_u64(v, "id")? as u32),
                size: field_vec(v, "axes_raw")?,
                at: field_i64(v, "at")?,
                departure,
            })
        }
        "vec_bin_opened" => Ok(VecPackEvent::BinOpened {
            bin: BinId(field_u64(v, "bin")? as u32),
            at: field_i64(v, "at")?,
            tag: field_u64(v, "tag")?,
        }),
        "vec_placement_decided" => {
            let opened = match field(v, "opened")? {
                Json::Bool(b) => *b,
                _ => return Err("field \"opened\" is not a bool".into()),
            };
            Ok(VecPackEvent::PlacementDecided {
                id: ItemId(field_u64(v, "id")? as u32),
                bin: BinId(field_u64(v, "bin")? as u32),
                opened,
                scanned: field_u64(v, "scanned")? as usize,
            })
        }
        "vec_level_changed" => Ok(VecPackEvent::LevelChanged {
            bin: BinId(field_u64(v, "bin")? as u32),
            at: field_i64(v, "at")?,
            level: field_vec(v, "level_raw")?,
            open_bins: field_u64(v, "open_bins")? as usize,
        }),
        "vec_bin_closed" => Ok(VecPackEvent::BinClosed {
            bin: BinId(field_u64(v, "bin")? as u32),
            at: field_i64(v, "at")?,
            opened_at: field_i64(v, "opened_at")?,
            items: field_u64(v, "items")? as usize,
        }),
        other => Err(format!("unknown event type {}", escape(other))),
    }
}

/// Parses a whole vector JSONL trace. Blank lines are skipped; errors
/// carry the 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<VecPackEvent>, DbpError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = parse(line).map_err(|what| DbpError::Trace { line: i + 1, what })?;
        events.push(event_from_json(&value).map_err(|what| DbpError::Trace { line: i + 1, what })?);
    }
    Ok(events)
}

/// Serializes a slice of vector events as a JSONL document.
pub fn events_to_jsonl(events: &[VecPackEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_to_json(ev));
        out.push('\n');
    }
    out
}

/// A [`VecPackObserver`] that streams events to a writer as JSONL.
///
/// `on_event` must not panic, so I/O errors are latched: the first error
/// stops further writing and is surfaced by [`VecTraceWriter::finish`]
/// (or inspectable via [`VecTraceWriter::error`]).
pub struct VecTraceWriter<W: Write> {
    sink: W,
    lines: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> VecTraceWriter<W> {
    /// Wraps a writer. Consider a `BufWriter` for file sinks: one write
    /// per event otherwise.
    pub fn new(sink: W) -> Self {
        VecTraceWriter {
            sink,
            lines: 0,
            error: None,
        }
    }

    /// Number of event lines successfully written.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// The latched I/O error, if any write failed.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the inner writer, surfacing any latched error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

impl<W: Write> VecPackObserver for VecTraceWriter<W> {
    fn on_event(&mut self, event: &VecPackEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = event_to_json(event);
        line.push('\n');
        match self.sink.write_all(line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::{VecInstance, VecItem, VecOnlineEngine};

    fn samples() -> Vec<VecPackEvent> {
        vec![
            VecPackEvent::ItemArrived {
                id: ItemId(7),
                size: SizeVec::from_f64s(&[0.3, 0.6]),
                at: 5,
                departure: Some(40),
            },
            VecPackEvent::ItemArrived {
                id: ItemId(8),
                size: SizeVec::new(&[Size::from_raw(1), Size::from_raw(3)]),
                at: 5,
                departure: None,
            },
            VecPackEvent::BinOpened {
                bin: BinId(2),
                at: 5,
                tag: 9,
            },
            VecPackEvent::PlacementDecided {
                id: ItemId(7),
                bin: BinId(2),
                opened: true,
                scanned: 2,
            },
            VecPackEvent::LevelChanged {
                bin: BinId(2),
                at: 5,
                level: SizeVec::from_f64s(&[0.3, 0.6]),
                open_bins: 3,
            },
            VecPackEvent::BinClosed {
                bin: BinId(2),
                at: 40,
                opened_at: 5,
                items: 2,
            },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for ev in samples() {
            let line = event_to_json(&ev);
            let back = event_from_json(&parse(&line).unwrap()).unwrap();
            assert_eq!(back, ev, "round-trip failed for {line}");
        }
    }

    #[test]
    fn jsonl_round_trips_with_blank_lines() {
        let events = samples();
        let mut text = events_to_jsonl(&events);
        text.insert_str(0, "\n\n");
        assert_eq!(parse_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err =
            parse_jsonl("{\"type\":\"vec_bin_opened\",\"bin\":0,\"at\":0,\"tag\":0}\nnot json\n")
                .unwrap_err();
        assert!(matches!(err, DbpError::Trace { line: 2, .. }), "{err:?}");
        let err = parse_jsonl("{\"type\":\"mystery\"}\n").unwrap_err();
        assert!(matches!(err, DbpError::Trace { line: 1, .. }), "{err:?}");
    }

    /// A real engine run streams through the writer and parses back to
    /// the exact event sequence an in-memory log records.
    #[test]
    fn live_run_traces_losslessly() {
        use dbp_algos::online::VecAnyFit;
        let items = vec![
            VecItem::new(0, SizeVec::from_f64s(&[0.6, 0.2]), 0, 12),
            VecItem::new(1, SizeVec::from_f64s(&[0.5, 0.5]), 1, 9),
            VecItem::new(2, SizeVec::from_f64s(&[0.3, 0.7]), 2, 7),
            VecItem::new(3, SizeVec::from_f64s(&[0.1, 0.1]), 8, 20),
        ];
        let inst = VecInstance::from_items(items).unwrap();

        let mut log = dbp_core::VecEventLog::new();
        let run_logged = VecOnlineEngine::clairvoyant()
            .run_observed(&inst, &mut VecAnyFit::first_fit(), &mut log)
            .unwrap();

        let mut writer = VecTraceWriter::new(Vec::new());
        let run_traced = VecOnlineEngine::clairvoyant()
            .run_observed(&inst, &mut VecAnyFit::first_fit(), &mut writer)
            .unwrap();
        assert_eq!(run_logged, run_traced);
        assert_eq!(writer.lines_written(), log.events.len() as u64);

        let text = String::from_utf8(writer.finish().unwrap()).unwrap();
        assert_eq!(parse_jsonl(&text).unwrap(), log.events);
    }

    #[test]
    fn writer_latches_io_errors() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = VecTraceWriter::new(Broken);
        w.on_event(&samples()[0]);
        w.on_event(&samples()[1]); // must not panic
        assert_eq!(w.lines_written(), 0);
        assert!(w.error().is_some());
        assert!(w.finish().is_err());
    }
}
