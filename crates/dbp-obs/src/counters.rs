//! Scalar counters and timing totals over a packing run.
//!
//! [`Counters`] is the cheapest real observer: a handful of integer adds
//! per event. It is what `dbp-bench` attaches to every measurement so
//! that [`CountersSnapshot`] can ride along in `Measurement` and
//! `SimReport` without meaningfully perturbing timings.

use dbp_core::observe::{FitDecision, PackEvent, PackObserver};

/// Accumulates counters from the event stream.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    snap: CountersSnapshot,
}

impl Counters {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The totals so far.
    pub fn snapshot(&self) -> CountersSnapshot {
        self.snap
    }
}

impl PackObserver for Counters {
    #[inline]
    fn on_event(&mut self, event: &PackEvent) {
        let s = &mut self.snap;
        match event {
            PackEvent::ItemArrived { .. } => s.items_packed += 1,
            PackEvent::EstimateUsed { .. } => s.estimates_used += 1,
            PackEvent::PlacementDecided {
                fit_rule,
                candidates_scanned,
                decide_ns,
                ..
            } => {
                if *fit_rule == FitDecision::Reused {
                    s.placements_reused += 1;
                }
                s.candidates_scanned += *candidates_scanned as u64;
                s.decide_ns_total += decide_ns;
                s.decide_ns_max = s.decide_ns_max.max(*decide_ns);
            }
            PackEvent::BinOpened { .. } => s.bins_opened += 1,
            PackEvent::BinClosed { .. } => s.bins_closed += 1,
            PackEvent::BinFailed { .. } => s.bins_failed += 1,
            PackEvent::ArrivalShed { .. } => s.arrivals_shed += 1,
            PackEvent::LevelChanged { .. } => {}
        }
    }
}

/// A point-in-time copy of the run counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Items fed to the packer.
    pub items_packed: u64,
    /// Placements that reused an open bin.
    pub placements_reused: u64,
    /// Bins opened.
    pub bins_opened: u64,
    /// Bins closed.
    pub bins_closed: u64,
    /// Total open bins inspected across all placement decisions (scan
    /// depth for reuses, rejections for opens).
    pub candidates_scanned: u64,
    /// Total wall-clock nanoseconds spent inside `place` calls.
    pub decide_ns_total: u64,
    /// The slowest single `place` call, in nanoseconds.
    pub decide_ns_max: u64,
    /// Departure estimates substituted under noisy clairvoyance.
    pub estimates_used: u64,
    /// Bins killed by fault injection.
    pub bins_failed: u64,
    /// Arrivals shed by admission control.
    pub arrivals_shed: u64,
}

impl CountersSnapshot {
    /// Mean open bins scanned per placement (0 with no placements).
    pub fn mean_candidates(&self) -> f64 {
        if self.items_packed == 0 {
            0.0
        } else {
            self.candidates_scanned as f64 / self.items_packed as f64
        }
    }

    /// Mean nanoseconds per placement decision (0 with no placements).
    pub fn mean_decide_ns(&self) -> f64 {
        if self.items_packed == 0 {
            0.0
        } else {
            self.decide_ns_total as f64 / self.items_packed as f64
        }
    }

    /// Fraction of placements that reused an open bin.
    pub fn reuse_fraction(&self) -> f64 {
        if self.items_packed == 0 {
            0.0
        } else {
            self.placements_reused as f64 / self.items_packed as f64
        }
    }

    /// Sums event counts across independent sessions (e.g. the shards of a
    /// `dbp-shard` fleet) into fleet-wide totals.
    ///
    /// The wall-clock timing fields (`decide_ns_total`, `decide_ns_max`)
    /// are **zeroed** in the merged snapshot: they are measured per run
    /// and vary with scheduling, so summing them would both mislead (the
    /// shards overlap in time) and break the bit-identical determinism
    /// contract of the merge. Read per-shard timings from the individual
    /// snapshots instead.
    pub fn merged(parts: &[CountersSnapshot]) -> CountersSnapshot {
        let mut out = CountersSnapshot::default();
        for p in parts {
            out.items_packed += p.items_packed;
            out.placements_reused += p.placements_reused;
            out.bins_opened += p.bins_opened;
            out.bins_closed += p.bins_closed;
            out.candidates_scanned += p.candidates_scanned;
            out.estimates_used += p.estimates_used;
            out.bins_failed += p.bins_failed;
            out.arrivals_shed += p.arrivals_shed;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::{BinId, ItemId, Size};

    #[test]
    fn counts_add_up() {
        let mut c = Counters::new();
        c.on_event(&PackEvent::ItemArrived {
            id: ItemId(0),
            size: Size::HALF,
            at: 0,
            departure: 9,
            visible_departure: Some(9),
        });
        c.on_event(&PackEvent::BinOpened {
            bin: BinId(0),
            at: 0,
            tag: 0,
        });
        c.on_event(&PackEvent::PlacementDecided {
            id: ItemId(0),
            bin: BinId(0),
            fit_rule: FitDecision::OpenedNew,
            candidates_scanned: 3,
            decide_ns: 100,
        });
        c.on_event(&PackEvent::ItemArrived {
            id: ItemId(1),
            size: Size::HALF,
            at: 1,
            departure: 9,
            visible_departure: Some(9),
        });
        c.on_event(&PackEvent::PlacementDecided {
            id: ItemId(1),
            bin: BinId(0),
            fit_rule: FitDecision::Reused,
            candidates_scanned: 1,
            decide_ns: 300,
        });
        c.on_event(&PackEvent::BinClosed {
            bin: BinId(0),
            at: 9,
            opened_at: 0,
            items: 2,
        });
        let s = c.snapshot();
        assert_eq!(s.items_packed, 2);
        assert_eq!(s.bins_opened, 1);
        assert_eq!(s.bins_closed, 1);
        assert_eq!(s.placements_reused, 1);
        assert_eq!(s.candidates_scanned, 4);
        assert_eq!(s.decide_ns_total, 400);
        assert_eq!(s.decide_ns_max, 300);
        assert!((s.mean_candidates() - 2.0).abs() < 1e-9);
        assert!((s.mean_decide_ns() - 200.0).abs() < 1e-9);
        assert!((s.reuse_fraction() - 0.5).abs() < 1e-9);
    }

    /// Every derived mean must be exactly 0.0 — never NaN — when no
    /// placements happened, including on a merge of zero parts.
    #[test]
    fn means_are_zero_not_nan_with_no_placements() {
        for s in [CountersSnapshot::default(), CountersSnapshot::merged(&[])] {
            assert_eq!(s.items_packed, 0);
            assert_eq!(s.mean_candidates(), 0.0);
            assert_eq!(s.mean_decide_ns(), 0.0);
            assert_eq!(s.reuse_fraction(), 0.0);
        }
        // Non-placement activity alone must not poison the means either.
        let shed_only = CountersSnapshot {
            arrivals_shed: 5,
            bins_failed: 2,
            ..CountersSnapshot::default()
        };
        assert_eq!(shed_only.mean_candidates(), 0.0);
        assert_eq!(shed_only.mean_decide_ns(), 0.0);
        assert_eq!(shed_only.reuse_fraction(), 0.0);
    }

    /// `merged` sums event counts but zeroes wall-clock fields: shard
    /// timings overlap in time, and summing them would break the
    /// deterministic-merge contract.
    #[test]
    fn merged_sums_counts_and_zeroes_timings() {
        let a = CountersSnapshot {
            items_packed: 10,
            placements_reused: 4,
            bins_opened: 6,
            bins_closed: 5,
            candidates_scanned: 30,
            decide_ns_total: 1_000,
            decide_ns_max: 400,
            estimates_used: 1,
            bins_failed: 1,
            arrivals_shed: 2,
        };
        let b = CountersSnapshot {
            items_packed: 2,
            candidates_scanned: 6,
            decide_ns_total: 999,
            decide_ns_max: 999,
            ..CountersSnapshot::default()
        };
        let m = CountersSnapshot::merged(&[a, b]);
        assert_eq!(m.items_packed, 12);
        assert_eq!(m.placements_reused, 4);
        assert_eq!(m.bins_opened, 6);
        assert_eq!(m.bins_closed, 5);
        assert_eq!(m.candidates_scanned, 36);
        assert_eq!(m.estimates_used, 1);
        assert_eq!(m.bins_failed, 1);
        assert_eq!(m.arrivals_shed, 2);
        assert_eq!(m.decide_ns_total, 0, "wall-clock totals are per-run");
        assert_eq!(m.decide_ns_max, 0, "wall-clock maxima are per-run");
        assert!((m.mean_candidates() - 3.0).abs() < 1e-9);
        assert_eq!(m.mean_decide_ns(), 0.0, "merged timing means read as 0");
        // A single-part merge is the part, minus its timing fields.
        let one = CountersSnapshot::merged(&[a]);
        assert_eq!(
            one,
            CountersSnapshot {
                decide_ns_total: 0,
                decide_ns_max: 0,
                ..a
            }
        );
    }
}
