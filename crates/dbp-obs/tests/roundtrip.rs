//! The PR's acceptance oracle: a JSONL trace replayed through
//! `dbp_obs::replay` must reconstruct the originating run bit-for-bit —
//! identical `usage` and identical bin assignments — across multiple
//! algorithms and random workloads, for both online and offline packers.

use dbp_algos::offline::{ArrivalFirstFit, DurationDescendingFirstFit};
use dbp_algos::online::{AnyFit, ClassifyByDepartureTime, ClassifyByDuration, HybridFirstFit};
use dbp_core::observe::{EventLog, Tee};
use dbp_core::{ClairvoyanceMode, Instance, Item, OfflinePacker, OnlineEngine, OnlinePacker, Size};
use dbp_obs::counters::Counters;
use dbp_obs::metrics::MetricsAggregator;
use dbp_obs::trace::events_to_jsonl;
use dbp_obs::{emit_packing, replay_jsonl};

/// Deterministic xorshift64* PRNG — the workspace test convention for
/// randomness without a `rand` dependency in this crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random instance: sizes in (0, 1], arrivals spread over a horizon,
/// durations in [1, 200].
fn random_instance(seed: u64, n: usize) -> Instance {
    let mut rng = Rng(seed | 1);
    let mut items = Vec::with_capacity(n);
    for id in 0..n {
        let size = Size::from_raw(1 + rng.below(Size::SCALE));
        let arrival = rng.below(500) as i64;
        let duration = 1 + rng.below(200) as i64;
        items.push(Item::new(id as u32, size, arrival, arrival + duration));
    }
    Instance::from_items(items).unwrap()
}

fn online_packers() -> Vec<Box<dyn OnlinePacker>> {
    vec![
        Box::new(AnyFit::first_fit()),
        Box::new(AnyFit::best_fit()),
        Box::new(HybridFirstFit::new(3)),
        Box::new(ClassifyByDepartureTime::new(64)),
        Box::new(ClassifyByDuration::new(8, 2.0)),
    ]
}

#[test]
fn online_traces_replay_bit_for_bit() {
    for seed in [3, 17, 91] {
        let inst = random_instance(seed, 120);
        for mut packer in online_packers() {
            let mut log = EventLog::new();
            let run = OnlineEngine::clairvoyant()
                .run_observed(&inst, packer.as_mut(), &mut log)
                .unwrap();
            let text = events_to_jsonl(&log.events);
            let replay = replay_jsonl(&text).unwrap();
            replay.verify().unwrap();
            let name = packer.name();
            assert_eq!(
                replay.run.usage, run.usage,
                "usage drifted through the trace for {name} seed {seed}"
            );
            assert_eq!(
                replay.run.packing, run.packing,
                "bin assignments drifted through the trace for {name} seed {seed}"
            );
            assert_eq!(replay.run.bins.len(), run.bins.len());
            for (a, b) in replay.run.bins.iter().zip(&run.bins) {
                assert_eq!(
                    (a.id, a.opened_at, a.closed_at),
                    (b.id, b.opened_at, b.closed_at)
                );
                assert_eq!(a.items, b.items, "{name} seed {seed} bin {:?}", a.id);
            }
        }
    }
}

#[test]
fn non_clairvoyant_traces_replay_with_hidden_departures() {
    let inst = random_instance(29, 80);
    let mut packer = AnyFit::first_fit();
    let mut log = EventLog::new();
    let run = OnlineEngine::non_clairvoyant()
        .run_observed(&inst, &mut packer, &mut log)
        .unwrap();
    let replay = replay_jsonl(&events_to_jsonl(&log.events)).unwrap();
    replay.verify().unwrap();
    // The trace records true departures even when the packer saw none,
    // so the instance (and hence usage) reconstructs exactly.
    assert_eq!(replay.run.usage, run.usage);
    assert_eq!(replay.run.packing, run.packing);
}

#[test]
fn noisy_traces_replay_against_true_departures() {
    use std::sync::Arc;
    let inst = random_instance(43, 80);
    let mode = ClairvoyanceMode::Noisy(Arc::new(|r: &Item| r.departure() + 7));
    let mut packer = ClassifyByDepartureTime::new(64);
    let mut log = EventLog::new();
    let run = OnlineEngine::new(mode)
        .run_observed(&inst, &mut packer, &mut log)
        .unwrap();
    let replay = replay_jsonl(&events_to_jsonl(&log.events)).unwrap();
    replay.verify().unwrap();
    assert_eq!(replay.run.usage, run.usage);
    assert_eq!(replay.run.packing, run.packing);
}

#[test]
fn offline_traces_replay_to_exact_usage() {
    let packers: Vec<Box<dyn OfflinePacker>> = vec![
        Box::new(ArrivalFirstFit::new()),
        Box::new(DurationDescendingFirstFit::default()),
    ];
    for seed in [7, 23] {
        let inst = random_instance(seed, 90);
        for packer in &packers {
            let packing = packer.pack(&inst);
            packing.validate(&inst).unwrap();
            let mut log = EventLog::new();
            emit_packing(&inst, &packing, &mut log).unwrap();
            let replay = replay_jsonl(&events_to_jsonl(&log.events)).unwrap();
            replay.verify().unwrap();
            assert_eq!(
                replay.run.usage,
                packing.total_usage(&inst),
                "{} seed {seed}",
                packer.name()
            );
            // Same bins as sets: offline packers may list a bin's items
            // in decision order while the trace is chronological.
            assert_eq!(replay.run.packing.num_bins(), packing.num_bins());
            for (bin, items) in packing.iter_bins() {
                let mut got = replay.run.packing.bin(bin).to_vec();
                let mut want = items.to_vec();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "{} seed {seed}", packer.name());
            }
        }
    }
}

#[test]
fn observers_agree_with_each_other() {
    let inst = random_instance(57, 150);
    let mut packer = AnyFit::first_fit();
    let mut obs = Tee(
        Counters::new(),
        Tee(MetricsAggregator::new(), EventLog::new()),
    );
    let run = OnlineEngine::clairvoyant()
        .run_observed(&inst, &mut packer, &mut obs)
        .unwrap();
    let counters = obs.0.snapshot();
    let metrics = obs.1 .0.report();
    let log = &obs.1 .1;
    assert_eq!(counters.items_packed as usize, inst.len());
    assert_eq!(counters.bins_opened as usize, run.bins_opened());
    assert_eq!(counters.bins_opened, counters.bins_closed);
    assert_eq!(metrics.usage(), run.usage, "∫active_bins dt == usage");
    assert_eq!(metrics.items_packed as usize, inst.len());
    let lb = dbp_core::accounting::lower_bounds(&inst);
    assert_eq!(metrics.lb3(), lb.lb3, "observed ⌈S(t)⌉ integrates to LB3");
    let replay = dbp_obs::replay_events(&log.events).unwrap();
    replay.verify().unwrap();
    assert_eq!(replay.run.usage, run.usage);
}
