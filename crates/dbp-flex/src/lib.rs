//! # dbp-flex — flexible jobs: release times and deadlines (§6)
//!
//! The paper's concluding remarks propose extending MinUsageTime DBP "to
//! model flexible jobs that have release times and deadlines and do not
//! have to be processed immediately upon arrival" — the setting of
//! Khandekar et al. (FSTTCS 2010, cited as \[14\]), who give a
//! 5-approximation via demand classification for their variant.
//!
//! A [`FlexJob`] has a size, a processing length `p`, and a window
//! `[release, deadline)` with `deadline − release ≥ p`; the scheduler
//! chooses a start time `t ∈ [release, deadline − p]` *and* a bin. Once
//! started, a job runs contiguously without migration. The objective is
//! unchanged: total bin usage time.
//!
//! Two offline schedulers are provided:
//!
//! * [`rigid_schedule`] — ignores flexibility (starts every job at its
//!   release) and packs with Duration Descending First Fit; the baseline
//!   that turns the problem back into Clairvoyant MinUsageTime DBP.
//! * [`flex_schedule`] — longest-job-first greedy that, for each job,
//!   scans candidate start times (window edges plus alignments against
//!   already-scheduled busy periods) across first-fit-feasible bins and
//!   picks the placement minimizing the *increase* in total usage. A
//!   documented heuristic in the spirit of Khandekar et al.'s
//!   First Fit with Demands (we do not claim their bound for it).
//!
//! The output converts to a `dbp_core` [`Instance`] + [`Packing`] pair, so
//! validation and usage accounting reuse the exact core machinery.
//!
//! ```
//! use dbp_core::Size;
//! use dbp_flex::{flex_schedule_optimized, rigid_schedule, FlexJob};
//!
//! // Two half-size jobs with staggered windows: rigid pays 40, the
//! // local search overlaps them for 20.
//! let jobs = vec![
//!     FlexJob::new(0, Size::HALF, 0, 100, 20),
//!     FlexJob::new(1, Size::HALF, 30, 130, 20),
//! ];
//! assert_eq!(rigid_schedule(&jobs).validate(&jobs).unwrap(), 40);
//! assert_eq!(flex_schedule_optimized(&jobs).validate(&jobs).unwrap(), 20);
//! ```

#![warn(missing_docs)]

use dbp_core::interval::{Interval, Time};
use dbp_core::profile::{BTreeProfile, LevelProfile};
use dbp_core::{Instance, Item, Packing, Size};

/// A job with scheduling flexibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlexJob {
    /// Unique id.
    pub id: u32,
    /// Size (fraction of bin capacity), in `(0, 1]`.
    pub size: Size,
    /// Earliest possible start.
    pub release: Time,
    /// Latest possible completion (exclusive).
    pub deadline: Time,
    /// Contiguous processing length, `1 ≤ length ≤ deadline − release`.
    pub length: i64,
}

impl FlexJob {
    /// Creates a job; panics if the window cannot fit the length or the
    /// size is invalid.
    pub fn new(id: u32, size: Size, release: Time, deadline: Time, length: i64) -> FlexJob {
        assert!(size.is_valid_item_size(), "size must be in (0, 1]");
        assert!(length >= 1, "length must be positive");
        assert!(
            deadline - release >= length,
            "window [{release}, {deadline}) cannot fit length {length}"
        );
        FlexJob {
            id,
            size,
            release,
            deadline,
            length,
        }
    }

    /// Scheduling slack: `deadline − release − length`.
    pub fn slack(&self) -> i64 {
        self.deadline - self.release - self.length
    }

    /// The latest feasible start time.
    pub fn latest_start(&self) -> Time {
        self.deadline - self.length
    }
}

/// A complete schedule: a chosen start time and bin for every job.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlexSchedule {
    /// `(job id, start time, bin index)` triples.
    pub placements: Vec<(u32, Time, usize)>,
}

impl FlexSchedule {
    /// Materializes the schedule as a core instance (items at their chosen
    /// start times) plus packing, enabling exact validation and usage
    /// accounting.
    pub fn materialize(&self, jobs: &[FlexJob]) -> (Instance, Packing) {
        let by_id: std::collections::HashMap<u32, &FlexJob> =
            jobs.iter().map(|j| (j.id, j)).collect();
        let mut items = Vec::with_capacity(self.placements.len());
        let num_bins = self
            .placements
            .iter()
            .map(|&(_, _, b)| b + 1)
            .max()
            .unwrap_or(0);
        let mut bins = vec![Vec::new(); num_bins];
        for &(id, start, bin) in &self.placements {
            let job = by_id[&id];
            let item = Item::new(id, job.size, start, start + job.length);
            items.push(item);
            bins[bin].push(item.id());
        }
        let inst = Instance::from_items(items).expect("valid scheduled items");
        (inst, Packing::from_bins(bins))
    }

    /// Validates window constraints and capacity; returns total usage.
    pub fn validate(&self, jobs: &[FlexJob]) -> Result<u128, String> {
        if self.placements.len() != jobs.len() {
            return Err(format!(
                "{} of {} jobs scheduled",
                self.placements.len(),
                jobs.len()
            ));
        }
        let by_id: std::collections::HashMap<u32, &FlexJob> =
            jobs.iter().map(|j| (j.id, j)).collect();
        for &(id, start, _) in &self.placements {
            let job = by_id.get(&id).ok_or_else(|| format!("unknown job {id}"))?;
            if start < job.release || start > job.latest_start() {
                return Err(format!(
                    "job {id} starts at {start} outside window [{}, {}]",
                    job.release,
                    job.latest_start()
                ));
            }
        }
        let (inst, packing) = self.materialize(jobs);
        packing.validate(&inst).map_err(|e| e.to_string())?;
        Ok(packing.total_usage(&inst))
    }
}

/// Lower bound on any schedule's usage: the time–space demand `Σ s·p`
/// rounded up, and the longest single job.
pub fn flex_lower_bound(jobs: &[FlexJob]) -> u128 {
    let demand: u128 = jobs
        .iter()
        .map(|j| j.size.raw() as u128 * j.length as u128)
        .sum();
    let demand_ticks = demand.div_ceil(Size::SCALE as u128);
    let longest = jobs.iter().map(|j| j.length as u128).max().unwrap_or(0);
    demand_ticks.max(longest)
}

/// Baseline: start every job at its release time and pack with Duration
/// Descending First Fit (flexibility ignored).
pub fn rigid_schedule(jobs: &[FlexJob]) -> FlexSchedule {
    // Duration-descending placement by interval first fit, tracking bins.
    let mut sorted: Vec<&FlexJob> = jobs.iter().collect();
    sorted.sort_by_key(|j| (std::cmp::Reverse(j.length), j.release, j.id));
    let mut bins: Vec<BTreeProfile> = Vec::new();
    let mut placements = Vec::with_capacity(jobs.len());
    for job in sorted {
        let iv = Interval::of(job.release, job.release + job.length);
        let idx = match bins
            .iter()
            .position(|p| p.fits(iv, job.size, Size::CAPACITY))
        {
            Some(i) => i,
            None => {
                bins.push(BTreeProfile::new());
                bins.len() - 1
            }
        };
        bins[idx].add(iv, job.size);
        placements.push((job.id, job.release, idx));
    }
    FlexSchedule { placements }
}

/// State of one bin during flexible scheduling: its level profile plus the
/// busy intervals already committed (for usage-delta computation and
/// candidate alignment).
struct FlexBin {
    profile: BTreeProfile,
    busy: Vec<Interval>,
}

impl FlexBin {
    /// The usage increase if an interval `iv` is added.
    fn usage_delta(&self, iv: Interval) -> i64 {
        let before = dbp_core::interval::span_of(self.busy.iter().copied());
        let after =
            dbp_core::interval::span_of(self.busy.iter().copied().chain(std::iter::once(iv)));
        after - before
    }
}

/// Flexible greedy (see module docs): longest job first; candidate starts
/// are the window edges and alignments with existing busy-period
/// boundaries; the feasible (bin, start) pair with the smallest usage
/// increase wins, ties to the earliest bin then earliest start. A fresh
/// bin (delta = full length) is always a fallback.
pub fn flex_schedule(jobs: &[FlexJob]) -> FlexSchedule {
    let mut sorted: Vec<&FlexJob> = jobs.iter().collect();
    sorted.sort_by_key(|j| (std::cmp::Reverse(j.length), j.release, j.id));
    let mut bins: Vec<FlexBin> = Vec::new();
    let mut placements = Vec::with_capacity(jobs.len());

    for job in sorted {
        // Candidate starts: window edges plus busy-boundary alignments.
        let mut candidates: Vec<Time> = vec![job.release, job.latest_start()];
        for bin in &bins {
            for b in &bin.busy {
                // Start when an existing busy period starts or ends, or
                // end exactly where one starts or ends.
                for t in [
                    b.start(),
                    b.end(),
                    b.start() - job.length,
                    b.end() - job.length,
                ] {
                    if t >= job.release && t <= job.latest_start() {
                        candidates.push(t);
                    }
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();

        // Best (delta, bin, start) over feasible placements.
        let mut best: Option<(i64, usize, Time)> = None;
        for (bi, bin) in bins.iter().enumerate() {
            for &start in &candidates {
                let iv = Interval::of(start, start + job.length);
                if !bin.profile.fits(iv, job.size, Size::CAPACITY) {
                    continue;
                }
                let delta = bin.usage_delta(iv);
                let key = (delta, bi, start);
                if best.map(|b| key < b).unwrap_or(true) {
                    best = Some(key);
                }
            }
        }
        let (bi, start) = match best {
            // Opening a new bin always costs the full length; reuse wins
            // ties.
            Some((delta, bi, start)) if delta <= job.length => (bi, start),
            _ => {
                bins.push(FlexBin {
                    profile: BTreeProfile::new(),
                    busy: Vec::new(),
                });
                (bins.len() - 1, job.release)
            }
        };
        let iv = Interval::of(start, start + job.length);
        bins[bi].profile.add(iv, job.size);
        bins[bi].busy.push(iv);
        placements.push((job.id, start, bi));
    }
    FlexSchedule { placements }
}

/// Iterative improvement: repeatedly remove one job and re-insert it at
/// its usage-minimizing feasible placement (over all bins, all candidate
/// starts aligned to the other jobs' busy boundaries and window edges).
/// Accepts strict improvements only; stops at a fixpoint or after
/// `max_rounds` sweeps.
///
/// This is where flexibility actually pays: the constructive greedy of
/// [`flex_schedule`] cannot delay an early job to overlap a later one,
/// but re-insertion can (e.g. two half-size jobs with staggered windows
/// collapse from usage `2p` to `p`).
pub fn improve_schedule(
    jobs: &[FlexJob],
    schedule: &FlexSchedule,
    max_rounds: usize,
) -> FlexSchedule {
    let by_id: std::collections::HashMap<u32, &FlexJob> = jobs.iter().map(|j| (j.id, j)).collect();
    let mut placements = schedule.placements.clone();
    let num_bins = placements.iter().map(|&(_, _, b)| b + 1).max().unwrap_or(0);

    let total_usage = |pl: &[(u32, Time, usize)]| -> i64 {
        let mut per_bin: Vec<Vec<Interval>> = vec![Vec::new(); num_bins + pl.len()];
        for &(id, start, bin) in pl {
            per_bin[bin].push(Interval::of(start, start + by_id[&id].length));
        }
        per_bin
            .iter()
            .map(|ivs| dbp_core::interval::span_of(ivs.iter().copied()))
            .sum()
    };

    for _ in 0..max_rounds {
        let mut improved = false;
        for idx in 0..placements.len() {
            let (id, cur_start, cur_bin) = placements[idx];
            let job = by_id[&id];
            let base_usage = total_usage(&placements);

            // Candidate starts: window edges + alignments with every other
            // placement's busy boundaries.
            let mut candidates: Vec<Time> = vec![job.release, job.latest_start()];
            for &(oid, ostart, _) in &placements {
                if oid == id {
                    continue;
                }
                let oend = ostart + by_id[&oid].length;
                for t in [ostart, oend, ostart - job.length, oend - job.length] {
                    if t >= job.release && t <= job.latest_start() {
                        candidates.push(t);
                    }
                }
            }
            candidates.sort_unstable();
            candidates.dedup();

            let mut best: Option<(i64, usize, Time)> = None;
            for bin in 0..num_bins {
                // Profile of this bin without the current job.
                let mut profile = BTreeProfile::new();
                for &(oid, ostart, obin) in &placements {
                    if obin == bin && oid != id {
                        let oj = by_id[&oid];
                        profile.add(Interval::of(ostart, ostart + oj.length), oj.size);
                    }
                }
                for &start in &candidates {
                    let iv = Interval::of(start, start + job.length);
                    if !profile.fits(iv, job.size, Size::CAPACITY) {
                        continue;
                    }
                    let mut trial = placements.clone();
                    trial[idx] = (id, start, bin);
                    let usage = total_usage(&trial);
                    if usage < base_usage && best.map(|b| usage < b.0).unwrap_or(true) {
                        best = Some((usage, bin, start));
                    }
                }
            }
            if let Some((_, bin, start)) = best {
                placements[idx] = (id, start, bin);
                improved = true;
            } else {
                placements[idx] = (id, cur_start, cur_bin);
            }
        }
        if !improved {
            break;
        }
    }
    FlexSchedule { placements }
}

/// The full flexible pipeline: constructive greedy then local search.
pub fn flex_schedule_optimized(jobs: &[FlexJob]) -> FlexSchedule {
    improve_schedule(jobs, &flex_schedule(jobs), 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, size: f64, release: Time, deadline: Time, length: i64) -> FlexJob {
        FlexJob::new(id, Size::from_f64(size), release, deadline, length)
    }

    #[test]
    fn job_construction_validates() {
        let j = job(0, 0.5, 0, 100, 30);
        assert_eq!(j.slack(), 70);
        assert_eq!(j.latest_start(), 70);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn window_too_small_rejected() {
        let _ = job(0, 0.5, 0, 10, 20);
    }

    #[test]
    fn rigid_schedules_everything_at_release() {
        let jobs = vec![job(0, 0.5, 0, 100, 30), job(1, 0.5, 5, 100, 20)];
        let s = rigid_schedule(&jobs);
        let usage = s.validate(&jobs).unwrap();
        for &(_, start, _) in &s.placements {
            assert!(jobs.iter().any(|j| j.release == start));
        }
        // Both fit one bin at their releases: usage = span [0,30).
        assert_eq!(usage, 30);
    }

    #[test]
    fn flexibility_reduces_usage() {
        // Two half-size jobs with staggered windows: every rigid schedule
        // pays 40 (disjoint busy periods, no overlap possible at the
        // releases); the local search delays job 0 so both run over
        // [30, 50) in one bin — usage 20.
        let jobs = vec![job(0, 0.5, 0, 100, 20), job(1, 0.5, 30, 130, 20)];
        let rigid = rigid_schedule(&jobs).validate(&jobs).unwrap();
        assert_eq!(rigid, 40); // [0,20) ∪ [30,50) in one bin, gap free
        let flex = flex_schedule_optimized(&jobs);
        let usage = flex.validate(&jobs).unwrap();
        assert_eq!(usage, 20, "local search must overlap the two jobs");
    }

    #[test]
    fn flexible_never_invalid_and_never_worse_than_fresh_bins() {
        let jobs = vec![
            job(0, 0.9, 0, 50, 25),
            job(1, 0.9, 10, 60, 25),
            job(2, 0.3, 0, 200, 40),
            job(3, 0.3, 50, 300, 40),
            job(4, 0.6, 20, 90, 10),
        ];
        let s = flex_schedule(&jobs);
        let usage = s.validate(&jobs).unwrap();
        let total_len: u128 = jobs.iter().map(|j| j.length as u128).sum();
        assert!(usage <= total_len);
        assert!(usage >= flex_lower_bound(&jobs));
    }

    #[test]
    fn zero_slack_degenerates_to_rigid_quality() {
        // With no slack anywhere, flexible and rigid face the same
        // feasible sets; flexible's greedy may differ but not by being
        // infeasible.
        let jobs = vec![
            job(0, 0.4, 0, 30, 30),
            job(1, 0.4, 10, 50, 40),
            job(2, 0.4, 20, 45, 25),
        ];
        let rigid = rigid_schedule(&jobs).validate(&jobs).unwrap();
        let flex = flex_schedule(&jobs).validate(&jobs).unwrap();
        assert_eq!(rigid, flex);
    }

    #[test]
    fn lower_bound_cases() {
        assert_eq!(flex_lower_bound(&[]), 0);
        let jobs = vec![job(0, 1.0, 0, 10, 10), job(1, 1.0, 0, 20, 10)];
        // demand = 20 ticks, longest = 10 → 20.
        assert_eq!(flex_lower_bound(&jobs), 20);
    }
}
