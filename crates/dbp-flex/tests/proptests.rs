//! Property tests for the flexible-jobs extension.

use dbp_core::Size;
use dbp_flex::{flex_lower_bound, flex_schedule, flex_schedule_optimized, rigid_schedule, FlexJob};
use proptest::prelude::*;

fn arb_jobs(max: usize) -> impl Strategy<Value = Vec<FlexJob>> {
    let job = (1u64..=64, 0i64..100, 1i64..40, 0i64..80)
        .prop_map(|(s, rel, len, slack)| (s, rel, len, slack));
    proptest::collection::vec(job, 1..=max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (s, rel, len, slack))| {
                FlexJob::new(
                    i as u32,
                    Size::from_ratio(s, 64).unwrap(),
                    rel,
                    rel + len + slack,
                    len,
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three schedulers produce valid schedules above the lower bound
    /// and below the trivial one-bin-per-job ceiling.
    #[test]
    fn schedulers_valid(jobs in arb_jobs(14)) {
        let lb = flex_lower_bound(&jobs);
        let ceiling: u128 = jobs.iter().map(|j| j.length as u128).sum();
        for (name, schedule) in [
            ("rigid", rigid_schedule(&jobs)),
            ("greedy", flex_schedule(&jobs)),
            ("optimized", flex_schedule_optimized(&jobs)),
        ] {
            let usage = schedule.validate(&jobs).unwrap_or_else(|e| panic!("{name}: {e}"));
            prop_assert!(usage >= lb, "{} beat the lower bound", name);
            prop_assert!(usage <= ceiling, "{} exceeded the ceiling", name);
        }
    }

    /// Local search never makes the greedy schedule worse.
    #[test]
    fn local_search_monotone(jobs in arb_jobs(12)) {
        let greedy = flex_schedule(&jobs).validate(&jobs).unwrap();
        let optimized = flex_schedule_optimized(&jobs).validate(&jobs).unwrap();
        prop_assert!(optimized <= greedy);
    }

    /// Start times always respect windows (validate checks it, but this
    /// asserts the invariant directly for shrinker-friendly output).
    #[test]
    fn starts_within_windows(jobs in arb_jobs(12)) {
        let s = flex_schedule_optimized(&jobs);
        for &(id, start, _) in &s.placements {
            let j = jobs.iter().find(|j| j.id == id).unwrap();
            prop_assert!(start >= j.release);
            prop_assert!(start <= j.latest_start());
        }
    }

    /// Widening every window (extra slack) never increases the rigid
    /// baseline (unchanged starts) and keeps all schedulers valid.
    #[test]
    fn extra_slack_is_safe(jobs in arb_jobs(10), extra in 1i64..50) {
        let wider: Vec<FlexJob> = jobs
            .iter()
            .map(|j| FlexJob::new(j.id, j.size, j.release, j.deadline + extra, j.length))
            .collect();
        let r1 = rigid_schedule(&jobs).validate(&jobs).unwrap();
        let r2 = rigid_schedule(&wider).validate(&wider).unwrap();
        prop_assert_eq!(r1, r2, "rigid ignores slack");
        flex_schedule_optimized(&wider).validate(&wider).unwrap();
    }
}
