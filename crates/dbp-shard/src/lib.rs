//! # dbp-shard — sharded multi-fleet streaming with deterministic merge
//!
//! Partitions one arrival stream across K independent
//! [`dbp_core::stream::StreamingSession`]s (each with its own packer and
//! its own server fleet) and merges per-shard usage, counters, and
//! metrics into fleet-wide totals that are **bit-identical for every
//! worker-thread count and OS schedule**.
//!
//! The three layers:
//!
//! * [`ShardRouter`] — the pluggable, stateless arrival→shard policy
//!   (seeded hash, size class, duration-tag affinity). A router is a
//!   pure function of the item, so the partition is reproducible from
//!   the instance alone.
//! * [`ShardedSession`] — the coordinator: validates the global stream
//!   contract (non-decreasing arrivals, unique ids), batches arrivals at
//!   timestamp boundaries, fans batches out to persistent worker
//!   threads that own the shards.
//! * [`ShardReport`] / [`ShardSlice`] — the merge: additive totals are
//!   folded in shard-index order; [`ShardReport::merged_run`] stitches
//!   the per-shard packings into one run that validates against the
//!   original instance.
//!
//! ## Why shard?
//!
//! Throughput: best-fit style packers scan every open bin per placement,
//! so cost per item grows with fleet depth; splitting the stream K ways
//! cuts each scan to the shard's own fleet. Quality: the merged fleet
//! can only be *larger* than the unsharded one (its lower bound is
//! `Σᵢ ⌈Sᵢ(t)⌉ ≥ ⌈S(t)⌉`), and the router choice controls how much of
//! that headroom is actually paid. `docs/performance.md` quantifies
//! both sides; the `dbp-audit` shard family checks the accounting.

#![warn(missing_docs)]

pub mod report;
pub mod router;
pub mod session;

pub use report::{ShardReport, ShardSlice};
pub use router::ShardRouter;
pub use session::{merged_counters, ShardConfig, ShardedSession};
