//! Pluggable arrival→shard routing policies.
//!
//! A router is a *pure function* of the item and the shard count — no
//! state, no randomness at routing time — so the partition induced by a
//! router is reproducible from the instance alone. That property is what
//! lets the audit family rebuild each shard's sub-stream independently
//! and check the merged run against it.

use dbp_core::{DbpError, Item, Size};

/// splitmix64 — the same avalanche mix the audit fuzzer uses for
/// stream-independent sub-seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How arrivals are partitioned across the shards of a
/// [`crate::ShardedSession`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardRouter {
    /// Seeded hash of the item id — the load balancer: spreads items
    /// (and therefore level) evenly, independent of item shape. Changing
    /// the seed re-deals the partition without touching anything else.
    SeededHash {
        /// Hash seed; the partition is a pure function of `(seed, id)`.
        seed: u64,
    },
    /// Bucket by item size: shard `⌊(size / capacity) · K⌋` (clamped).
    /// Items of similar size land together, which keeps per-shard
    /// packings dense (a shard of 0.1-sized items fits ten per bin) at
    /// the cost of uneven shard load when the size mix is skewed.
    SizeClass,
    /// Bucket by duration class: shard `⌊duration / rho⌋ mod K`. Jobs of
    /// similar lifetime co-locate, which is exactly the grouping the
    /// paper's classification strategies exploit — bins close promptly
    /// because their tenants leave together.
    TagAffinity {
        /// Width of one duration class in ticks (≥ 1).
        rho: i64,
    },
}

impl ShardRouter {
    /// The default router: seeded hash with seed 0.
    pub fn hash() -> ShardRouter {
        ShardRouter::SeededHash { seed: 0 }
    }

    /// Validates the router parameters.
    pub fn validate(&self) -> Result<(), DbpError> {
        match *self {
            ShardRouter::TagAffinity { rho } if rho < 1 => Err(DbpError::InvalidParameter {
                what: format!("tag-affinity class width {rho} must be >= 1"),
            }),
            _ => Ok(()),
        }
    }

    /// Parses a CLI spec: `hash`, `hash:SEED`, `size`, `tag`, or
    /// `tag:RHO` (`tag` defaults to class width 1).
    pub fn parse(spec: &str) -> Result<ShardRouter, DbpError> {
        let bad = |what: String| DbpError::InvalidParameter { what };
        let (kind, param) = match spec.split_once(':') {
            Some((k, p)) => (k, Some(p)),
            None => (spec, None),
        };
        let router = match (kind, param) {
            ("hash", None) => ShardRouter::hash(),
            ("hash", Some(p)) => ShardRouter::SeededHash {
                seed: p
                    .parse()
                    .map_err(|_| bad(format!("bad hash router seed {p:?}")))?,
            },
            ("size", None) => ShardRouter::SizeClass,
            ("size", Some(_)) => return Err(bad("size router takes no parameter".into())),
            ("tag", None) => ShardRouter::TagAffinity { rho: 1 },
            ("tag", Some(p)) => ShardRouter::TagAffinity {
                rho: p
                    .parse()
                    .map_err(|_| bad(format!("bad tag router class width {p:?}")))?,
            },
            _ => {
                return Err(bad(format!(
                    "unknown router {spec:?}; available: hash[:seed], size, tag[:rho]"
                )))
            }
        };
        router.validate()?;
        Ok(router)
    }

    /// Stable display name (with parameters), round-trippable through
    /// [`ShardRouter::parse`].
    pub fn name(&self) -> String {
        match *self {
            ShardRouter::SeededHash { seed } => format!("hash:{seed}"),
            ShardRouter::SizeClass => "size".to_string(),
            ShardRouter::TagAffinity { rho } => format!("tag:{rho}"),
        }
    }

    /// The shard for `item` in a fleet of `shards` shards. Always in
    /// `0..shards`; a single-shard fleet routes everything to shard 0.
    pub fn route(&self, item: &Item, shards: usize) -> usize {
        if shards <= 1 {
            return 0;
        }
        match *self {
            ShardRouter::SeededHash { seed } => {
                (mix(seed ^ mix(u64::from(item.id().0))) % shards as u64) as usize
            }
            ShardRouter::SizeClass => {
                // Sizes are raw fixed-point in [1, SCALE]; map (0, 1] of
                // capacity onto 0..shards without floating point.
                ((u128::from(item.size().raw() - 1) * shards as u128) / u128::from(Size::SCALE))
                    as usize
            }
            ShardRouter::TagAffinity { rho } => {
                let class = item.duration().max(1) / rho.max(1);
                (class as u64 % shards as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::Item;

    fn item(id: u32, size: f64, dur: i64) -> Item {
        Item::new(id, Size::from_f64(size), 0, dur)
    }

    #[test]
    fn routes_stay_in_range_for_every_policy() {
        let routers = [
            ShardRouter::hash(),
            ShardRouter::SeededHash { seed: 99 },
            ShardRouter::SizeClass,
            ShardRouter::TagAffinity { rho: 7 },
        ];
        for k in [1usize, 2, 3, 8, 13] {
            for r in routers {
                for id in 0..200u32 {
                    let it = item(
                        id,
                        (f64::from(id % 100) + 1.0) / 100.0,
                        1 + i64::from(id % 50),
                    );
                    let s = r.route(&it, k);
                    assert!(s < k, "{}: shard {s} out of range for k={k}", r.name());
                }
            }
        }
    }

    #[test]
    fn size_class_buckets_monotonically() {
        let k = 4;
        let small = ShardRouter::SizeClass.route(&item(0, 0.05, 10), k);
        let big = ShardRouter::SizeClass.route(&item(1, 1.0, 10), k);
        assert_eq!(small, 0);
        assert_eq!(big, k - 1, "full-size items land in the top bucket");
    }

    #[test]
    fn tag_affinity_groups_by_duration_class() {
        let r = ShardRouter::TagAffinity { rho: 10 };
        let a = r.route(&item(0, 0.5, 12), 8);
        let b = r.route(&item(1, 0.2, 17), 8);
        let c = r.route(&item(2, 0.2, 27), 8);
        assert_eq!(a, b, "same duration class, same shard");
        assert_ne!(b, c, "adjacent classes split");
    }

    #[test]
    fn hash_seed_changes_the_deal_but_not_determinism() {
        let it = item(42, 0.3, 25);
        let a = ShardRouter::SeededHash { seed: 1 }.route(&it, 8);
        let b = ShardRouter::SeededHash { seed: 1 }.route(&it, 8);
        assert_eq!(a, b);
        let spread: std::collections::HashSet<usize> = (0..64u64)
            .map(|seed| ShardRouter::SeededHash { seed }.route(&it, 8))
            .collect();
        assert!(spread.len() > 1, "seed must influence the partition");
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        for spec in ["hash:0", "hash:77", "size", "tag:1", "tag:50"] {
            let r = ShardRouter::parse(spec).expect(spec);
            assert_eq!(r.name(), spec);
        }
        assert_eq!(ShardRouter::parse("hash").unwrap(), ShardRouter::hash());
        assert_eq!(
            ShardRouter::parse("tag").unwrap(),
            ShardRouter::TagAffinity { rho: 1 }
        );
        for bad in ["", "rr", "hash:x", "tag:0", "tag:-3", "size:2"] {
            assert!(ShardRouter::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
