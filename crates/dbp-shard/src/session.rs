//! The sharded session: K independent [`StreamingSession`]s behind one
//! arrival stream, with persistent worker threads and a deterministic
//! merge at the end.
//!
//! # Execution model
//!
//! Arrivals are routed to shards by the configured [`ShardRouter`] and
//! buffered per worker. The buffer flushes only at a *timestamp
//! boundary* (when the arrival clock advances past the buffered cohort),
//! so every batch a worker receives contains whole timestamps — all
//! events of one instant travel together, the batched analogue of the
//! `run_grid` barrier. Each worker owns a fixed set of shards (shard `i`
//! belongs to worker `i mod T`, the same static interleaving `run_grid`
//! uses for slot distribution), applies its batches in stream order, and
//! accumulates results locally; nothing is shared between workers, and
//! the coordinator merges per-shard results in shard-index order after
//! joining. That is the whole determinism argument: each shard's event
//! sequence is a pure function of `(instance, router, K)`, so per-shard
//! results cannot depend on the worker count or the scheduler, and the
//! merge visits shards in a fixed order.

use crate::report::{FleetTelemetry, ShardReport, ShardSlice};
use crate::router::ShardRouter;
use dbp_core::observe::{EventLog, OpKind, PackEvent, PackObserver};
use dbp_core::online::ClairvoyanceMode;
use dbp_core::stream::StreamingSession;
use dbp_core::{DbpError, Item, OnlinePacker, Time};
use dbp_obs::{Counters, CountersSnapshot, MetricsAggregator};
use dbp_telemetry::{
    reparent_by_seq, stitch, RunMetrics, SpanCollector, SpanRecord, TelemetryRecorder, WorkMetrics,
    NO_SEQ,
};
use std::collections::HashSet;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of a [`ShardedSession`].
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Number of independent shards (K ≥ 1).
    pub shards: usize,
    /// The arrival→shard routing policy.
    pub router: ShardRouter,
    /// Worker threads (`None` = min(K, available parallelism); a value
    /// is clamped to at most K; `Some(0)` is rejected).
    pub threads: Option<usize>,
    /// Flush granularity in buffered items. Batches always end on a
    /// timestamp boundary, so this is a floor, not an exact size.
    pub batch: usize,
    /// Fold per-shard [`MetricsAggregator`] timelines (merged at finish).
    pub collect_metrics: bool,
    /// Keep every [`PackEvent`] per shard (for shard-tagged traces).
    /// Memory-heavy on long streams; off by default.
    pub collect_events: bool,
    /// Attach a [`TelemetryRecorder`] per shard and record coordinator /
    /// worker spans, assembled into a
    /// [`crate::report::FleetTelemetry`] at finish. Adds a sampled-timing
    /// overhead (<5%, measured in `BENCH_telemetry.json`); off by
    /// default.
    pub collect_telemetry: bool,
}

impl ShardConfig {
    /// A config with `shards` shards and the given router; metrics on,
    /// event capture off, default batching.
    pub fn new(shards: usize, router: ShardRouter) -> ShardConfig {
        ShardConfig {
            shards,
            router,
            threads: None,
            batch: 8192,
            collect_metrics: true,
            collect_events: false,
            collect_telemetry: false,
        }
    }

    /// Checks every parameter is inside its documented domain.
    pub fn validate(&self) -> Result<(), DbpError> {
        if self.shards == 0 {
            return Err(DbpError::InvalidParameter {
                what: "shard count must be >= 1".into(),
            });
        }
        if self.batch == 0 {
            return Err(DbpError::InvalidParameter {
                what: "batch size must be >= 1".into(),
            });
        }
        if self.threads == Some(0) {
            return Err(DbpError::InvalidParameter {
                what: "worker thread count must be >= 1".into(),
            });
        }
        self.router.validate()
    }

    /// The worker count this config resolves to.
    fn resolve_workers(&self) -> usize {
        self.threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
            .clamp(1, self.shards)
    }
}

/// The per-shard observer bundle: counters always, metrics and event
/// capture by configuration.
struct ShardObs {
    counters: Counters,
    metrics: Option<MetricsAggregator>,
    events: Option<EventLog>,
    telemetry: Option<TelemetryRecorder>,
}

impl ShardObs {
    fn new(collect_metrics: bool, collect_events: bool, collect_telemetry: bool) -> ShardObs {
        ShardObs {
            counters: Counters::new(),
            metrics: collect_metrics.then(MetricsAggregator::new),
            events: collect_events.then(EventLog::new),
            telemetry: collect_telemetry.then(TelemetryRecorder::new),
        }
    }
}

impl PackObserver for ShardObs {
    const ENABLED: bool = true;

    fn on_event(&mut self, event: &PackEvent) {
        self.counters.on_event(event);
        if let Some(m) = &mut self.metrics {
            m.on_event(event);
        }
        if let Some(l) = &mut self.events {
            l.on_event(event);
        }
        if let Some(t) = &mut self.telemetry {
            t.on_event(event);
        }
    }

    fn wants_timing(&mut self) -> bool {
        // With telemetry attached, the recorder's 1-in-N sampler decides
        // (its histograms are the timing consumer); without it, keep the
        // historical always-timed behavior that feeds the counters.
        match &mut self.telemetry {
            Some(t) => t.wants_timing(),
            None => true,
        }
    }

    fn on_op(&mut self, op: OpKind, ns: u64) {
        if let Some(t) = &mut self.telemetry {
            t.on_op(op, ns);
        }
    }
}

/// A batch of routed arrivals for one worker (tagged with the flush
/// sequence number its spans stitch against), or the end-of-stream mark.
enum Msg {
    Batch(u64, Vec<(usize, Item)>),
    Finish,
}

/// Per-worker profiling a worker hands back alongside its slices when
/// telemetry is on: its batch spans (recorded against the coordinator's
/// epoch) and its batch-flush histograms.
struct WorkerProf {
    spans: Vec<SpanRecord>,
    run: RunMetrics,
}

/// What one worker hands back: the slices of its owned shards plus its
/// profiling data, or the failing shard and its error (`usize::MAX`
/// marks a panic).
type WorkerResult = Result<(Vec<ShardSlice>, Option<WorkerProf>), (usize, DbpError)>;

struct Worker {
    tx: Option<SyncSender<Msg>>,
    handle: Option<JoinHandle<WorkerResult>>,
    /// Slices recovered by [`join_worker`], collected after all joins.
    stash: Vec<ShardSlice>,
    /// Worker profiling recovered by [`join_worker`].
    prof: Option<WorkerProf>,
}

/// K independent streaming fleets behind a single arrival stream.
///
/// The API mirrors [`StreamingSession`]: feed non-decreasing arrivals
/// with globally unique ids via [`ShardedSession::arrive`], then call
/// [`ShardedSession::finish`] for the merged [`ShardReport`]. A
/// single-shard session is semantically identical to a plain
/// [`StreamingSession`] (proven bit-for-bit in the test suite).
///
/// ```
/// use dbp_algos::online::AnyFit;
/// use dbp_core::online::ClairvoyanceMode;
/// use dbp_core::{Instance, OnlinePacker};
/// use dbp_shard::{ShardConfig, ShardRouter, ShardedSession};
///
/// let inst = Instance::from_triples(&[(0.5, 0, 10), (0.4, 1, 8), (0.3, 2, 12)]);
/// let packers: Vec<Box<dyn OnlinePacker + Send>> = (0..2)
///     .map(|_| Box::new(AnyFit::first_fit()) as Box<dyn OnlinePacker + Send>)
///     .collect();
/// let cfg = ShardConfig::new(2, ShardRouter::hash());
/// let mut fleet = ShardedSession::new(ClairvoyanceMode::Clairvoyant, packers, cfg).unwrap();
/// for item in inst.items() {
///     fleet.arrive(item).unwrap();
/// }
/// let report = fleet.finish().unwrap();
/// assert_eq!(report.items, 3);
/// assert_eq!(report.usage, report.slices.iter().map(|s| s.usage()).sum::<u128>());
/// ```
pub struct ShardedSession {
    cfg: ShardConfig,
    workers: Vec<Worker>,
    /// Buffered routed arrivals, one buffer per worker.
    pending: Vec<Vec<(usize, Item)>>,
    pending_items: usize,
    /// The arrival clock (max arrival fed so far).
    last_arrival: Option<Time>,
    /// Global id dedupe, same watermark + overflow-set scheme as
    /// [`StreamingSession`].
    watermark: u32,
    above: HashSet<u32>,
    items_routed: u64,
    per_shard_routed: Vec<u64>,
    /// Set when a worker died mid-stream: the shard-annotated cause.
    /// Every later `arrive`/`flush` — and `finish` — reports it instead
    /// of touching the torn-down worker again.
    failure: Option<DbpError>,
    /// Coordinator span collector when `collect_telemetry` is on; its
    /// epoch is shared with every worker.
    spans: Option<SpanCollector>,
    /// Id of the root `stream` span inside `spans`.
    root_span: u64,
    /// Sequence number of the next flush (tags batches and flush spans).
    next_seq: u64,
}

impl ShardedSession {
    /// Spawns the worker threads and hands each its shards' packers
    /// (shard `i` is owned by worker `i mod T`). `packers.len()` must
    /// equal `cfg.shards`; every packer is `reset()` by its session.
    pub fn new(
        mode: ClairvoyanceMode,
        packers: Vec<Box<dyn OnlinePacker + Send>>,
        cfg: ShardConfig,
    ) -> Result<ShardedSession, DbpError> {
        cfg.validate()?;
        if packers.len() != cfg.shards {
            return Err(DbpError::InvalidParameter {
                what: format!(
                    "{} packers supplied for {} shards",
                    packers.len(),
                    cfg.shards
                ),
            });
        }
        let workers_n = cfg.resolve_workers();
        let mut per_worker: Vec<Vec<(usize, Box<dyn OnlinePacker + Send>)>> =
            (0..workers_n).map(|_| Vec::new()).collect();
        for (shard, packer) in packers.into_iter().enumerate() {
            per_worker[shard % workers_n].push((shard, packer));
        }
        let (mut spans, mut root_span) = (None, 0);
        if cfg.collect_telemetry {
            let mut c = SpanCollector::new();
            root_span = c.begin("stream", 0, None, NO_SEQ);
            spans = Some(c);
        }
        let epoch = spans.as_ref().map(|c| c.epoch());
        let workers = per_worker
            .into_iter()
            .enumerate()
            .map(|(widx, owned)| {
                // Two batches of backpressure per worker: the coordinator
                // can route ahead while a worker drains, but an unbounded
                // queue can never form.
                let (tx, rx) = sync_channel::<Msg>(2);
                let mode = mode.clone();
                let collect_metrics = cfg.collect_metrics;
                let collect_events = cfg.collect_events;
                let handle = std::thread::spawn(move || {
                    worker_main(
                        mode,
                        owned,
                        rx,
                        collect_metrics,
                        collect_events,
                        epoch,
                        widx,
                    )
                });
                Worker {
                    tx: Some(tx),
                    handle: Some(handle),
                    stash: Vec::new(),
                    prof: None,
                }
            })
            .collect();
        Ok(ShardedSession {
            pending: vec![Vec::new(); workers_n],
            pending_items: 0,
            last_arrival: None,
            watermark: 0,
            above: HashSet::new(),
            items_routed: 0,
            per_shard_routed: vec![0; cfg.shards],
            failure: None,
            spans,
            root_span,
            next_seq: 0,
            cfg,
            workers,
        })
    }

    /// Routes one arrival to its shard. Arrival times must be
    /// non-decreasing and item ids globally unique — the same contract
    /// as [`StreamingSession::arrive`], enforced here at the coordinator
    /// so violations surface identically for every `(K, threads)`
    /// combination. Returns the shard the item was routed to.
    ///
    /// Packer errors inside a shard are asynchronous: they tear down
    /// that worker, and the next `arrive` — or
    /// [`ShardedSession::finish`] — reports the underlying error. After
    /// the first such failure the stream is dead: every subsequent
    /// `arrive` returns the same shard-annotated error.
    pub fn arrive(&mut self, item: &Item) -> Result<usize, DbpError> {
        if let Some(e) = &self.failure {
            return Err(e.clone());
        }
        let now = item.arrival();
        if let Some(last) = self.last_arrival {
            if now < last {
                return Err(DbpError::BadDecision {
                    what: format!("arrivals must be non-decreasing: {now} after {last}"),
                });
            }
        }
        self.note_id(item.id().0)?;
        // Timestamp boundary: everything buffered is strictly older than
        // `now`, so the cohort is complete and may be flushed.
        if self.pending_items >= self.cfg.batch && self.last_arrival.is_some_and(|t| now > t) {
            self.flush()?;
        }
        self.last_arrival = Some(now);
        let shard = self.cfg.router.route(item, self.cfg.shards);
        debug_assert!(shard < self.cfg.shards);
        self.pending[shard % self.workers.len()].push((shard, *item));
        self.pending_items += 1;
        self.items_routed += 1;
        self.per_shard_routed[shard] += 1;
        Ok(shard)
    }

    /// The arrival clock (max arrival fed so far).
    pub fn now(&self) -> Option<Time> {
        self.last_arrival
    }

    /// Items routed so far, total and per shard.
    pub fn routed(&self) -> (u64, &[u64]) {
        (self.items_routed, &self.per_shard_routed)
    }

    /// Global id dedupe, mirroring the streaming session's
    /// watermark + overflow-set scheme.
    fn note_id(&mut self, raw_id: u32) -> Result<(), DbpError> {
        if raw_id < self.watermark || !self.above.insert(raw_id) {
            return Err(DbpError::DuplicateItemId { id: raw_id });
        }
        while self.watermark < u32::MAX && self.above.remove(&self.watermark) {
            self.watermark += 1;
        }
        Ok(())
    }

    /// Fans the buffered cohorts out to their workers. Each flush gets a
    /// fresh sequence number shared by every batch it sends, so worker
    /// batch spans can be stitched under the coordinator's flush span.
    fn flush(&mut self) -> Result<(), DbpError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let root = self.root_span;
        let flush_span = self
            .spans
            .as_mut()
            .map(|c| c.begin("flush", 0, Some(root), seq));
        let result = self.flush_inner(seq);
        if let (Some(c), Some(id)) = (self.spans.as_mut(), flush_span) {
            c.end(id);
        }
        result
    }

    fn flush_inner(&mut self, seq: u64) -> Result<(), DbpError> {
        for w in 0..self.workers.len() {
            if self.pending[w].is_empty() {
                continue;
            }
            let batch = std::mem::take(&mut self.pending[w]);
            self.pending_items -= batch.len();
            let Some(tx) = self.workers[w].tx.as_ref() else {
                // This worker was already joined by an earlier failed
                // flush. Re-surface the recorded failure instead of
                // panicking at the missing sender.
                let e = self.failure.clone().unwrap_or_else(|| DbpError::Internal {
                    what: "shard worker unavailable with no recorded failure".into(),
                });
                return Err(e);
            };
            if tx.send(Msg::Batch(seq, batch)).is_err() {
                // The worker exited early — its packer rejected an item
                // or a session invariant tripped. Join it for the real
                // error.
                let e = match join_worker(&mut self.workers[w]) {
                    Some((usize::MAX, e)) => e,
                    Some((shard, e)) => annotate(shard, e),
                    None => DbpError::Internal {
                        what: "shard worker exited without reporting an error".into(),
                    },
                };
                self.failure = Some(e.clone());
                return Err(e);
            }
        }
        Ok(())
    }

    /// Flushes the stream, joins every worker, and merges per-shard
    /// results into a [`ShardReport`] — in shard-index order, so the
    /// merged report is bit-identical for every worker count and
    /// schedule.
    pub fn finish(mut self) -> Result<ShardReport, DbpError> {
        let flush_result = if self.failure.is_some() {
            Ok(())
        } else {
            self.flush()
        };
        for w in &self.workers {
            if let Some(tx) = &w.tx {
                // A dead worker's channel just errors; its join result
                // carries the diagnosis.
                let _ = tx.send(Msg::Finish);
            }
        }
        let mut first_error: Option<(usize, DbpError)> = None;
        for w in &mut self.workers {
            if let Some((shard, e)) = join_worker(w) {
                if shard == usize::MAX {
                    // A panic, not a shard error: surface immediately.
                    return Err(e);
                }
                if first_error.as_ref().is_none_or(|(s, _)| shard < *s) {
                    first_error = Some((shard, e));
                }
            }
        }
        if let Some((shard, e)) = first_error {
            return Err(annotate(shard, e));
        }
        if let Some(e) = self.failure.take() {
            // The failing worker was already joined mid-stream, so the
            // loop above saw nothing; report the recorded cause rather
            // than a confusing missing-slices count.
            return Err(e);
        }
        flush_result?;
        let mut slices: Vec<ShardSlice> = Vec::with_capacity(self.cfg.shards);
        let mut profs: Vec<WorkerProf> = Vec::new();
        for w in &mut self.workers {
            slices.append(&mut w.stash);
            profs.extend(w.prof.take());
        }
        slices.sort_by_key(|s| s.shard);
        if slices.len() != self.cfg.shards {
            return Err(DbpError::Internal {
                what: format!(
                    "expected {} shard results, got {}",
                    self.cfg.shards,
                    slices.len()
                ),
            });
        }
        let merge_started = self.spans.as_ref().map(|c| (c.now_ns(), Instant::now()));
        let mut report =
            ShardReport::merge(&self.cfg, self.workers.len(), self.items_routed, slices);
        if let (Some(mut coord), Some((start_ns, started))) = (self.spans.take(), merge_started) {
            let merge_ns = started.elapsed().as_nanos() as u64;
            coord.record("merge", 0, Some(self.root_span), NO_SEQ, start_ns, merge_ns);
            coord.end(self.root_span);
            report.telemetry = Some(assemble_fleet_telemetry(
                coord,
                profs,
                &report.slices,
                merge_ns,
            ));
        }
        Ok(report)
    }
}

impl Drop for ShardedSession {
    fn drop(&mut self) {
        // Abandoned without finish(): close the channels and reap the
        // threads so a dropped session cannot leak workers.
        for w in &mut self.workers {
            w.tx = None;
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Prefixes a worker error with its shard for diagnosis.
fn annotate(shard: usize, e: DbpError) -> DbpError {
    DbpError::BadDecision {
        what: format!("shard {shard}: {e}"),
    }
}

/// Joins a worker (idempotent), returning its error if it failed.
/// Successful slices land in the worker's `stash`; a panicking worker
/// reports as `(usize::MAX, Internal)`.
fn join_worker(w: &mut Worker) -> Option<(usize, DbpError)> {
    w.tx = None;
    let handle = w.handle.take()?;
    match handle.join() {
        Ok(Ok((slices, prof))) => {
            w.stash = slices;
            w.prof = prof;
            None
        }
        Ok(Err((shard, e))) => Some((shard, e)),
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            };
            Some((
                usize::MAX,
                DbpError::Internal {
                    what: format!("shard worker panicked: {msg}"),
                },
            ))
        }
    }
}

/// One worker thread: owns its shards' packers and sessions for the
/// whole stream, applies batches in arrival order, finishes every
/// session at end-of-stream.
fn worker_main(
    mode: ClairvoyanceMode,
    mut packers: Vec<(usize, Box<dyn OnlinePacker + Send>)>,
    rx: Receiver<Msg>,
    collect_metrics: bool,
    collect_events: bool,
    epoch: Option<Instant>,
    worker_idx: usize,
) -> WorkerResult {
    // slot_of[shard] = index into `sessions` (usize::MAX for foreign
    // shards — a routing bug lands on the bounds check, not silence).
    let max_shard = packers.iter().map(|(s, _)| *s).max().unwrap_or(0);
    let mut slot_of = vec![usize::MAX; max_shard + 1];
    for (slot, (shard, _)) in packers.iter().enumerate() {
        slot_of[*shard] = slot;
    }
    let collect_telemetry = epoch.is_some();
    // Worker-level profiling: batch spans on this worker's own track
    // (recorded against the coordinator's epoch so all spans share one
    // timeline) plus batch-flush histograms. Batch spans carry the flush
    // sequence and are reparented under the coordinator's flush span
    // when the fleet report is assembled.
    let mut spans = epoch.map(SpanCollector::with_epoch);
    let mut batch_rec = collect_telemetry.then(TelemetryRecorder::new);
    let track = worker_idx as u32 + 1;
    let mut sessions: Vec<(usize, StreamingSession<'_, ShardObs>, usize, u64)> = packers
        .iter_mut()
        .map(|(shard, p)| {
            let obs = ShardObs::new(collect_metrics, collect_events, collect_telemetry);
            (
                *shard,
                StreamingSession::with_observer(mode.clone(), p.as_mut(), obs),
                0usize,
                0u64,
            )
        })
        .collect();
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Batch(seq, batch) => {
                let started = spans.as_ref().map(|c| (c.now_ns(), Instant::now()));
                let count = batch.len() as u64;
                for (shard, item) in batch {
                    let entry = &mut sessions[slot_of[shard]];
                    if let Err(e) = entry.1.arrive(&item) {
                        return Err((shard, e));
                    }
                    entry.2 = entry.2.max(entry.1.open_bins());
                    entry.3 += 1;
                }
                if let (Some(c), Some((start_ns, started))) = (spans.as_mut(), started) {
                    let ns = started.elapsed().as_nanos() as u64;
                    c.record("batch", track, None, seq, start_ns, ns);
                    if let Some(r) = batch_rec.as_mut() {
                        r.record_batch(count, ns);
                    }
                }
            }
            Msg::Finish => break,
        }
    }
    let mut slices = Vec::with_capacity(sessions.len());
    for (shard, session, peak, items) in sessions {
        let (run, obs) = session.finish_with_observer().map_err(|e| (shard, e))?;
        slices.push(ShardSlice {
            shard,
            items,
            peak_open_bins: peak,
            counters: obs.counters.snapshot(),
            metrics: obs.metrics.map(|m| m.report()),
            events: obs.events.map(|l| l.events),
            telemetry: obs.telemetry.map(|t| t.into_snapshot()),
            run,
        });
    }
    let prof = spans.map(|c| WorkerProf {
        spans: c.into_spans(),
        run: batch_rec.map(|r| r.into_snapshot().run).unwrap_or_default(),
    });
    Ok((slices, prof))
}

/// Stitches coordinator and worker spans into one tree and folds the
/// telemetry histograms: work metrics merge deterministically in
/// shard-index order, run metrics combine for display only.
fn assemble_fleet_telemetry(
    coord: SpanCollector,
    profs: Vec<WorkerProf>,
    slices: &[ShardSlice],
    merge_ns: u64,
) -> FleetTelemetry {
    let work_parts: Vec<&WorkMetrics> = slices
        .iter()
        .filter_map(|s| s.telemetry.as_ref().map(|t| &t.work))
        .collect();
    let work = WorkMetrics::merged(&work_parts);
    let mut coord_run = RunMetrics::default();
    coord_run.merge_ns.record(merge_ns);
    let mut run_parts: Vec<&RunMetrics> = slices
        .iter()
        .filter_map(|s| s.telemetry.as_ref().map(|t| &t.run))
        .collect();
    run_parts.extend(profs.iter().map(|p| &p.run));
    run_parts.push(&coord_run);
    let run_combined = RunMetrics::combined(&run_parts);
    let mut parts = vec![coord.into_spans()];
    parts.extend(profs.into_iter().map(|p| p.spans));
    let mut spans = stitch(parts);
    reparent_by_seq(&mut spans, "batch", "flush");
    FleetTelemetry {
        work,
        run_combined,
        spans,
    }
}

/// The merged counters of a slice set, for callers that keep slices
/// around without a full report.
pub fn merged_counters(slices: &[ShardSlice]) -> CountersSnapshot {
    let parts: Vec<CountersSnapshot> = slices.iter().map(|s| s.counters).collect();
    CountersSnapshot::merged(&parts)
}
