//! Per-shard result slices and the fleet-wide merged report.
//!
//! Everything here is a *fold in shard-index order* over data each
//! worker produced independently, which is what makes the merge
//! bit-identical across worker counts: no floating-point sum ever
//! depends on thread scheduling, only on the fixed shard order.

use crate::session::ShardConfig;
use dbp_core::observe::PackEvent;
use dbp_core::online::BinRecord;
use dbp_core::stats::StepSeries;
use dbp_core::{BinId, OnlineRun, Packing};
use dbp_obs::{merge_reports, merge_step_series, CountersSnapshot, MetricsReport};
use dbp_telemetry::{RunMetrics, SpanRecord, TelemetrySnapshot, WorkMetrics};

/// One shard's complete result: the run of its private
/// [`dbp_core::stream::StreamingSession`] plus its observer state.
#[derive(Clone, Debug)]
pub struct ShardSlice {
    /// The shard index in `0..K`.
    pub shard: usize,
    /// Items this shard received.
    pub items: u64,
    /// Peak concurrently-open bins inside this shard.
    pub peak_open_bins: usize,
    /// Event counters of this shard alone (timings are this shard's
    /// wall-clock and are *not* folded into the merged report).
    pub counters: CountersSnapshot,
    /// Metrics timelines, when `collect_metrics` was on.
    pub metrics: Option<MetricsReport>,
    /// The raw event stream, when `collect_events` was on.
    pub events: Option<Vec<PackEvent>>,
    /// Telemetry histograms, when `collect_telemetry` was on. The `work`
    /// half is a pure function of this shard's sub-stream; the `run`
    /// half is this shard's wall clock.
    pub telemetry: Option<TelemetrySnapshot>,
    /// The shard's finished run over its sub-stream.
    pub run: OnlineRun,
}

impl ShardSlice {
    /// Total usage time of this shard's bins, in ticks.
    pub fn usage(&self) -> u128 {
        self.run.usage
    }
}

/// The merged outcome of a [`crate::ShardedSession`].
///
/// Additive quantities (usage, items, bins, counters, histograms) are
/// exact fleet-wide totals. The merged `ceil_level` metric is
/// `Σᵢ ⌈Sᵢ(t)⌉` — the sharded fleet's own lower bound, which is ≥ the
/// unsharded `⌈S(t)⌉`; the gap between the two is precisely the
/// packing-quality price of partitioning the stream.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard count K.
    pub shards: usize,
    /// Router display name (round-trippable through
    /// [`crate::ShardRouter::parse`]).
    pub router: String,
    /// Worker threads the session actually used.
    pub workers: usize,
    /// Total items streamed.
    pub items: u64,
    /// Fleet-wide total usage time in ticks (Σ per-shard usage).
    pub usage: u128,
    /// Total bins opened across all shards.
    pub bins_opened: u64,
    /// Peak *fleet-wide* concurrently-open bins (max of the merged
    /// open-server timeline, not the sum of per-shard peaks).
    pub peak_open_bins: usize,
    /// Fleet-wide counters ([`CountersSnapshot::merged`]; timing fields
    /// zeroed — read them per shard from [`ShardReport::slices`]).
    pub counters: CountersSnapshot,
    /// Merged metrics timelines, when every shard collected them.
    pub metrics: Option<MetricsReport>,
    /// Fleet-wide telemetry, when the session ran with
    /// `collect_telemetry` (the coordinator attaches it in `finish`).
    pub telemetry: Option<FleetTelemetry>,
    /// The per-shard slices, in shard-index order.
    pub slices: Vec<ShardSlice>,
}

/// Fleet-wide telemetry assembled by [`crate::ShardedSession::finish`].
#[derive(Clone, Debug)]
pub struct FleetTelemetry {
    /// Deterministic work histograms, folded over slices in shard-index
    /// order: bit-identical for every worker count and schedule, like
    /// the rest of the merged report.
    pub work: WorkMetrics,
    /// Display-only union of every shard's and worker's wall-clock
    /// histograms plus the coordinator's merge timing
    /// ([`RunMetrics::combined`] semantics: this run only, never compare
    /// across runs or feed into golden state).
    pub run_combined: RunMetrics,
    /// The stitched span tree: coordinator `stream`/`flush`/`merge`
    /// spans on track 0, worker `batch` spans on track `w + 1`
    /// reparented under their flush by sequence number.
    pub spans: Vec<SpanRecord>,
}

impl ShardReport {
    /// Folds sorted slices into the fleet report. `slices` must already
    /// be complete and in shard-index order.
    pub(crate) fn merge(
        cfg: &ShardConfig,
        workers: usize,
        items: u64,
        slices: Vec<ShardSlice>,
    ) -> ShardReport {
        debug_assert!(slices.windows(2).all(|w| w[0].shard < w[1].shard));
        let usage = slices.iter().map(|s| s.run.usage).sum();
        let bins_opened = slices.iter().map(|s| s.run.bins_opened() as u64).sum();
        let counter_parts: Vec<CountersSnapshot> = slices.iter().map(|s| s.counters).collect();
        let counters = CountersSnapshot::merged(&counter_parts);
        let metrics = if slices.iter().all(|s| s.metrics.is_some()) {
            let parts: Vec<MetricsReport> = slices
                .iter()
                .map(|s| s.metrics.clone().expect("checked above"))
                .collect();
            Some(merge_reports(&parts))
        } else {
            None
        };
        let fleet: Vec<StepSeries> = slices.iter().map(|s| s.run.fleet_series()).collect();
        let peak_open_bins = merge_step_series(&fleet).max().max(0) as usize;
        ShardReport {
            shards: cfg.shards,
            router: cfg.router.name(),
            workers,
            items,
            usage,
            bins_opened,
            peak_open_bins,
            counters,
            metrics,
            // Spans and merge timing live on the coordinator; the session
            // attaches the assembled FleetTelemetry after merging.
            telemetry: None,
            slices,
        }
    }

    /// The fleet-wide open-server timeline: the pointwise sum of every
    /// shard's [`OnlineRun::fleet_series`]. Its integral equals
    /// [`ShardReport::usage`] and its max is
    /// [`ShardReport::peak_open_bins`].
    pub fn fleet_series(&self) -> StepSeries {
        let parts: Vec<StepSeries> = self.slices.iter().map(|s| s.run.fleet_series()).collect();
        merge_step_series(&parts)
    }

    /// Stitches the per-shard runs into one [`OnlineRun`] over the
    /// original instance, renumbering bins shard by shard (shard 0's
    /// bins first, then shard 1's, …). Item ids are untouched — each
    /// shard packed the original items — so the merged packing validates
    /// directly against the full instance, which is how the audit family
    /// runs its capacity sweep on a sharded run.
    pub fn merged_run(&self) -> OnlineRun {
        let total_bins: usize = self.slices.iter().map(|s| s.run.bins_opened()).sum();
        let mut bins_items = Vec::with_capacity(total_bins);
        let mut records: Vec<BinRecord> = Vec::with_capacity(total_bins);
        for slice in &self.slices {
            for r in &slice.run.bins {
                let id = BinId(records.len() as u32);
                bins_items.push(r.items.clone());
                records.push(BinRecord {
                    id,
                    opened_at: r.opened_at,
                    closed_at: r.closed_at,
                    tag: r.tag,
                    items: r.items.clone(),
                });
            }
        }
        OnlineRun {
            packing: Packing::from_bins(bins_items),
            usage: self.usage,
            bins: records,
        }
    }

    /// Serializes every shard's captured event stream as shard-tagged
    /// JSONL (see [`dbp_obs::trace::events_to_jsonl_tagged`]), shard 0
    /// first. `None` unless the session ran with `collect_events`.
    pub fn tagged_jsonl(&self) -> Option<String> {
        if !self.slices.iter().all(|s| s.events.is_some()) {
            return None;
        }
        let mut out = String::new();
        for slice in &self.slices {
            let events = slice.events.as_ref().expect("checked above");
            out.push_str(&dbp_obs::trace::events_to_jsonl_tagged(slice.shard, events));
        }
        Some(out)
    }

    /// Mean items per shard and the max/mean load imbalance factor of
    /// the router's deal (1.0 = perfectly even).
    pub fn balance(&self) -> (f64, f64) {
        if self.slices.is_empty() || self.items == 0 {
            return (0.0, 1.0);
        }
        let mean = self.items as f64 / self.slices.len() as f64;
        let max = self.slices.iter().map(|s| s.items).max().unwrap_or(0) as f64;
        (mean, max / mean)
    }
}
