//! Differential semantics: a sharded run is *defined* as running each
//! router-induced sub-stream through its own plain [`StreamingSession`].
//! These tests rebuild that definition by hand and demand bit-identical
//! per-shard runs and exact merged totals.

use dbp_algos::online::{AnyFit, ClassifyByDuration};
use dbp_core::online::ClairvoyanceMode;
use dbp_core::{Instance, OnlinePacker, StreamingSession};
use dbp_shard::{ShardConfig, ShardRouter, ShardedSession};
use dbp_workloads::random::UniformWorkload;
use dbp_workloads::Workload;
use proptest::prelude::*;

fn duration_params(inst: &Instance) -> (i64, f64) {
    let durs: Vec<i64> = inst.items().iter().map(|it| it.duration()).collect();
    let min = durs.iter().copied().min().unwrap_or(1).max(1);
    let max = durs.iter().copied().max().unwrap_or(1).max(1);
    (min, max as f64 / min as f64)
}

fn packer_for(algo: &str, inst: &Instance) -> Box<dyn OnlinePacker + Send> {
    match algo {
        "ff" => Box::new(AnyFit::first_fit()),
        "bf" => Box::new(AnyFit::best_fit()),
        "cbd" => {
            let (delta, mu) = duration_params(inst);
            Box::new(ClassifyByDuration::with_known_durations(delta, mu))
        }
        other => panic!("unknown algo {other}"),
    }
}

/// Runs each shard's sub-stream through a plain session — the reference
/// semantics the sharded session must reproduce exactly.
fn reference_runs(
    inst: &Instance,
    algo: &str,
    router: ShardRouter,
    k: usize,
) -> Vec<dbp_core::OnlineRun> {
    (0..k)
        .map(|shard| {
            let mut packer = packer_for(algo, inst);
            let mut session = StreamingSession::new(ClairvoyanceMode::Clairvoyant, packer.as_mut());
            for item in inst.items() {
                if router.route(item, k) == shard {
                    session.arrive(item).expect("reference arrive");
                }
            }
            session.finish().expect("reference finish")
        })
        .collect()
}

fn check_instance(inst: &Instance, algo: &str, router: ShardRouter, k: usize) {
    let cfg = ShardConfig {
        threads: Some(2),
        batch: 13,
        collect_metrics: false,
        ..ShardConfig::new(k, router)
    };
    let packers: Vec<Box<dyn OnlinePacker + Send>> =
        (0..k).map(|_| packer_for(algo, inst)).collect();
    let mut fleet = ShardedSession::new(ClairvoyanceMode::Clairvoyant, packers, cfg).unwrap();
    for item in inst.items() {
        fleet.arrive(item).unwrap();
    }
    let report = fleet.finish().unwrap();
    let reference = reference_runs(inst, algo, router, k);
    let ctx = format!("{algo} router={} k={k}", report.router);
    assert_eq!(report.slices.len(), k, "{ctx}: slice count");
    for (slice, reference_run) in report.slices.iter().zip(&reference) {
        assert_eq!(
            &slice.run, reference_run,
            "{ctx}: shard {} diverges from its plain-session reference",
            slice.shard
        );
    }
    let reference_usage: u128 = reference.iter().map(|r| r.usage).sum();
    assert_eq!(report.usage, reference_usage, "{ctx}: merged usage");
    let reference_bins: u64 = reference.iter().map(|r| r.bins_opened() as u64).sum();
    assert_eq!(report.bins_opened, reference_bins, "{ctx}: merged bins");
}

#[test]
fn sharded_run_equals_per_shard_plain_sessions() {
    let inst = UniformWorkload::new(600).generate_seeded(11);
    for algo in ["ff", "bf", "cbd"] {
        for router in [
            ShardRouter::hash(),
            ShardRouter::SizeClass,
            ShardRouter::TagAffinity { rho: 20 },
        ] {
            for k in [1usize, 2, 3, 8] {
                check_instance(&inst, algo, router, k);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn random_instances_shard_differentially(
        seed in 0u64..1000,
        n in 20usize..200,
        k in 1usize..5,
        router_pick in 0usize..3,
    ) {
        let inst = UniformWorkload::new(n).generate_seeded(seed);
        let router = match router_pick {
            0 => ShardRouter::SeededHash { seed },
            1 => ShardRouter::SizeClass,
            _ => ShardRouter::TagAffinity { rho: 1 + (seed % 40) as i64 },
        };
        check_instance(&inst, "ff", router, k);
    }
}
