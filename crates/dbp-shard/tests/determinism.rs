//! The tentpole guarantee: a sharded run's merged result is bit-identical
//! for every worker-thread count, batch size, and OS schedule, and a
//! single-shard session is exactly a plain [`StreamingSession`].

use dbp_algos::online::{AnyFit, ClassifyByDepartureTime};
use dbp_core::observe::Tee;
use dbp_core::online::ClairvoyanceMode;
use dbp_core::{DbpError, Instance, Item, OnlinePacker, Size, StreamingSession};
use dbp_obs::{Counters, MetricsAggregator, MetricsReport};
use dbp_shard::{ShardConfig, ShardReport, ShardRouter, ShardedSession};
use dbp_workloads::random::PoissonWorkload;
use dbp_workloads::Workload;

/// The workload every test in this file shares: ~4k Poisson arrivals.
fn instance() -> Instance {
    PoissonWorkload::new(2.0, 2000).generate_seeded(7)
}

/// `(delta, mu)` of an instance, the parameters the classify packers take.
fn duration_params(inst: &Instance) -> (i64, f64) {
    let durs: Vec<i64> = inst.items().iter().map(|it| it.duration()).collect();
    let min = durs.iter().copied().min().unwrap_or(1).max(1);
    let max = durs.iter().copied().max().unwrap_or(1).max(1);
    (min, max as f64 / min as f64)
}

fn make_packers(algo: &str, inst: &Instance, k: usize) -> Vec<Box<dyn OnlinePacker + Send>> {
    (0..k)
        .map(|_| match algo {
            "ff" => Box::new(AnyFit::first_fit()) as Box<dyn OnlinePacker + Send>,
            "bf" => Box::new(AnyFit::best_fit()),
            "cbdt" => {
                let (delta, mu) = duration_params(inst);
                Box::new(ClassifyByDepartureTime::with_known_durations(delta, mu))
            }
            other => panic!("unknown algo {other}"),
        })
        .collect()
}

fn run_sharded(
    inst: &Instance,
    algo: &str,
    k: usize,
    threads: Option<usize>,
    batch: usize,
) -> ShardReport {
    let cfg = ShardConfig {
        threads,
        batch,
        ..ShardConfig::new(k, ShardRouter::hash())
    };
    let mut fleet = ShardedSession::new(
        ClairvoyanceMode::Clairvoyant,
        make_packers(algo, inst, k),
        cfg,
    )
    .expect("session construction");
    for item in inst.items() {
        fleet.arrive(item).expect("arrive");
    }
    fleet.finish().expect("finish")
}

/// Field-by-field metrics equality (MetricsReport is not `Eq` because of
/// its f64 fields; determinism demands *exact* equality anyway).
fn assert_metrics_identical(a: &MetricsReport, b: &MetricsReport, ctx: &str) {
    assert_eq!(a.active_bins, b.active_bins, "{ctx}: active_bins");
    assert_eq!(a.ceil_level, b.ceil_level, "{ctx}: ceil_level");
    assert_eq!(a.total_level, b.total_level, "{ctx}: total_level");
    assert_eq!(
        a.utilization_histogram, b.utilization_histogram,
        "{ctx}: histogram"
    );
    assert!(
        a.mean_utilization == b.mean_utilization,
        "{ctx}: mean_utilization {} != {}",
        a.mean_utilization,
        b.mean_utilization
    );
    assert_eq!(a.bins_closed, b.bins_closed, "{ctx}: bins_closed");
    assert_eq!(a.items_packed, b.items_packed, "{ctx}: items_packed");
    assert_eq!(a.bins_failed, b.bins_failed, "{ctx}: bins_failed");
    assert_eq!(a.arrivals_shed, b.arrivals_shed, "{ctx}: arrivals_shed");
}

fn assert_reports_identical(a: &ShardReport, b: &ShardReport, ctx: &str) {
    assert_eq!(a.shards, b.shards, "{ctx}: shards");
    assert_eq!(a.items, b.items, "{ctx}: items");
    assert_eq!(a.usage, b.usage, "{ctx}: usage");
    assert_eq!(a.bins_opened, b.bins_opened, "{ctx}: bins_opened");
    assert_eq!(a.peak_open_bins, b.peak_open_bins, "{ctx}: peak");
    assert_eq!(a.counters, b.counters, "{ctx}: merged counters");
    match (&a.metrics, &b.metrics) {
        (Some(x), Some(y)) => assert_metrics_identical(x, y, ctx),
        (None, None) => {}
        _ => panic!("{ctx}: metrics presence differs"),
    }
    assert_eq!(a.slices.len(), b.slices.len(), "{ctx}: slice count");
    for (sa, sb) in a.slices.iter().zip(&b.slices) {
        let sctx = format!("{ctx}, shard {}", sa.shard);
        assert_eq!(sa.shard, sb.shard, "{sctx}: index");
        assert_eq!(sa.items, sb.items, "{sctx}: items");
        assert_eq!(sa.peak_open_bins, sb.peak_open_bins, "{sctx}: peak");
        // Per-shard counters carry real wall-clock timings; compare the
        // deterministic fields only.
        let (mut ca, mut cb) = (sa.counters, sb.counters);
        ca.decide_ns_total = 0;
        ca.decide_ns_max = 0;
        cb.decide_ns_total = 0;
        cb.decide_ns_max = 0;
        assert_eq!(ca, cb, "{sctx}: counters");
        assert_eq!(sa.run, sb.run, "{sctx}: run");
        match (&sa.metrics, &sb.metrics) {
            (Some(x), Some(y)) => assert_metrics_identical(x, y, &sctx),
            (None, None) => {}
            _ => panic!("{sctx}: metrics presence differs"),
        }
    }
}

#[test]
fn merged_results_identical_across_threads_and_batches() {
    let inst = instance();
    for algo in ["ff", "cbdt"] {
        for k in [1usize, 2, 8] {
            let baseline = run_sharded(&inst, algo, k, Some(1), 1);
            assert_eq!(baseline.items, inst.len() as u64);
            for threads in [Some(2), Some(3), Some(8), None] {
                for batch in [1usize, 7, 4096] {
                    let other = run_sharded(&inst, algo, k, threads, batch);
                    let ctx = format!("{algo} k={k} threads={threads:?} batch={batch}");
                    assert_reports_identical(&baseline, &other, &ctx);
                }
            }
        }
    }
}

#[test]
fn single_shard_matches_plain_streaming_session() {
    let inst = instance();
    for algo in ["ff", "bf", "cbdt"] {
        let report = run_sharded(&inst, algo, 1, Some(1), 64);
        let mut packer = make_packers(algo, &inst, 1).pop().unwrap();
        let obs = Tee(Counters::new(), MetricsAggregator::new());
        let mut session =
            StreamingSession::with_observer(ClairvoyanceMode::Clairvoyant, packer.as_mut(), obs);
        for item in inst.items() {
            session.arrive(item).expect("plain arrive");
        }
        let (plain_run, obs) = session.finish_with_observer().expect("plain finish");
        let slice = &report.slices[0];
        assert_eq!(
            slice.run, plain_run,
            "{algo}: run differs from plain session"
        );
        assert_eq!(report.usage, plain_run.usage, "{algo}: usage");
        let mut plain_counters = obs.0.snapshot();
        let mut shard_counters = slice.counters;
        plain_counters.decide_ns_total = 0;
        plain_counters.decide_ns_max = 0;
        shard_counters.decide_ns_total = 0;
        shard_counters.decide_ns_max = 0;
        assert_eq!(shard_counters, plain_counters, "{algo}: counters");
        let plain_metrics = obs.1.report();
        assert_metrics_identical(
            report.metrics.as_ref().expect("metrics on"),
            &plain_metrics,
            &format!("{algo}: merged metrics vs plain"),
        );
    }
}

#[test]
fn every_router_yields_a_valid_exactly_once_partition() {
    let inst = instance();
    for router in [
        ShardRouter::hash(),
        ShardRouter::SeededHash { seed: 42 },
        ShardRouter::SizeClass,
        ShardRouter::TagAffinity { rho: 25 },
    ] {
        let cfg = ShardConfig {
            threads: Some(2),
            ..ShardConfig::new(4, router)
        };
        let mut fleet = ShardedSession::new(
            ClairvoyanceMode::Clairvoyant,
            make_packers("ff", &inst, 4),
            cfg,
        )
        .unwrap();
        for item in inst.items() {
            fleet.arrive(item).unwrap();
        }
        let report = fleet.finish().unwrap();
        let ctx = report.router.clone();
        // Exactly-once: every item of the instance appears in exactly one
        // shard, and the merged run validates against the full instance.
        assert_eq!(report.items, inst.len() as u64, "{ctx}: item count");
        let per_shard: u64 = report.slices.iter().map(|s| s.items).sum();
        assert_eq!(per_shard, report.items, "{ctx}: slice items sum");
        let merged = report.merged_run();
        merged
            .packing
            .validate(&inst)
            .expect("merged packing valid");
        assert_eq!(merged.usage, report.usage, "{ctx}: merged run usage");
        // The fleet timeline integrates to the total usage.
        assert_eq!(
            report.fleet_series().integral(),
            report.usage as i128,
            "{ctx}: fleet series integral"
        );
    }
}

#[test]
fn stream_contract_violations_match_plain_session_errors() {
    let mk = |id: u32, at: i64| Item::new(id, Size::from_f64(0.5), at, at + 10);
    // Out-of-order arrivals.
    let mut fleet = ShardedSession::new(
        ClairvoyanceMode::Clairvoyant,
        make_packers("ff", &instance(), 2),
        ShardConfig::new(2, ShardRouter::hash()),
    )
    .unwrap();
    fleet.arrive(&mk(0, 10)).unwrap();
    let err = fleet.arrive(&mk(1, 5)).unwrap_err();
    assert_eq!(
        err.to_string(),
        "bad online decision: arrivals must be non-decreasing: 5 after 10"
    );
    // Duplicate ids, including after watermark advance.
    let mut fleet = ShardedSession::new(
        ClairvoyanceMode::Clairvoyant,
        make_packers("ff", &instance(), 2),
        ShardConfig::new(2, ShardRouter::hash()),
    )
    .unwrap();
    fleet.arrive(&mk(0, 0)).unwrap();
    fleet.arrive(&mk(1, 1)).unwrap();
    assert_eq!(
        fleet.arrive(&mk(0, 2)),
        Err(DbpError::DuplicateItemId { id: 0 })
    );
}

#[test]
fn shard_errors_propagate_with_shard_context() {
    /// Claims a bin id that was never opened: the per-shard session must
    /// reject the decision and the coordinator must surface it.
    struct Rogue;
    impl OnlinePacker for Rogue {
        fn name(&self) -> String {
            "rogue".into()
        }
        fn place(
            &mut self,
            _: &dbp_core::online::ItemView,
            _: &dbp_core::OpenBins,
        ) -> dbp_core::online::Decision {
            dbp_core::online::Decision::Existing(dbp_core::BinId(9_999))
        }
    }
    let inst = instance();
    let packers: Vec<Box<dyn OnlinePacker + Send>> =
        vec![Box::new(AnyFit::first_fit()), Box::new(Rogue)];
    let mut fleet = ShardedSession::new(
        ClairvoyanceMode::Clairvoyant,
        packers,
        ShardConfig::new(2, ShardRouter::hash()),
    )
    .unwrap();
    let mut failed = None;
    for item in inst.items() {
        if let Err(e) = fleet.arrive(item) {
            failed = Some(e);
            break;
        }
    }
    let err = match failed {
        Some(e) => e,
        None => fleet.finish().expect_err("rogue packer must fail the run"),
    };
    let msg = err.to_string();
    assert!(
        msg.contains("shard 1"),
        "error must name the failing shard: {msg}"
    );
}

#[test]
fn arrive_after_worker_failure_errors_instead_of_panicking() {
    // Regression: `flush_inner` used to `.expect("sender live until
    // finish")` on the worker sender. After a failed flush joined the
    // worker (nulling its sender), the next flush-triggering `arrive`
    // panicked the coordinator instead of returning the recorded
    // shard-annotated error.
    struct Rogue;
    impl OnlinePacker for Rogue {
        fn name(&self) -> String {
            "rogue".into()
        }
        fn place(
            &mut self,
            _: &dbp_core::online::ItemView,
            _: &dbp_core::OpenBins,
        ) -> dbp_core::online::Decision {
            dbp_core::online::Decision::Existing(dbp_core::BinId(9_999))
        }
    }
    let mk = |id: u32, at: i64| Item::new(id, Size::from_f64(0.5), at, at + 10);
    let cfg = ShardConfig {
        threads: Some(1),
        batch: 1,
        ..ShardConfig::new(1, ShardRouter::hash())
    };
    let packers: Vec<Box<dyn OnlinePacker + Send>> = vec![Box::new(Rogue)];
    let mut fleet = ShardedSession::new(ClairvoyanceMode::Clairvoyant, packers, cfg).unwrap();
    // Strictly increasing arrivals with batch = 1: every arrive past the
    // first flushes the previous cohort, so the dead worker is hit soon
    // after it tears down.
    let mut first = None;
    for id in 0..200u32 {
        if let Err(e) = fleet.arrive(&mk(id, i64::from(id))) {
            first = Some((id, e));
            break;
        }
    }
    let (at, first_err) = first.expect("worker failure must surface through arrive");
    let msg = first_err.to_string();
    assert!(
        msg.contains("shard 0"),
        "error must name the failing shard: {msg}"
    );
    // Two more arrivals: pre-fix, the first buffers and the second
    // panics in `flush_inner`. Post-fix, both report the recorded error.
    for step in 1..=2u32 {
        let id = at + step;
        assert_eq!(
            fleet.arrive(&mk(id, i64::from(id))),
            Err(first_err.clone()),
            "arrive after a worker failure must keep returning the cause"
        );
    }
    // And finish() reports the cause too, not a missing-slices count.
    let fin = fleet.finish().expect_err("finish after a worker failure");
    assert_eq!(fin, first_err);
}

#[test]
fn dropped_session_reaps_workers_cleanly() {
    let inst = instance();
    let mut fleet = ShardedSession::new(
        ClairvoyanceMode::Clairvoyant,
        make_packers("ff", &inst, 4),
        ShardConfig::new(4, ShardRouter::hash()),
    )
    .unwrap();
    for item in inst.items().iter().take(100) {
        fleet.arrive(item).unwrap();
    }
    drop(fleet); // must not hang or leak threads
}

/// Runs the fleet with telemetry collection on.
fn run_telemetry(
    inst: &Instance,
    algo: &str,
    k: usize,
    threads: Option<usize>,
    batch: usize,
) -> ShardReport {
    let cfg = ShardConfig {
        threads,
        batch,
        collect_telemetry: true,
        ..ShardConfig::new(k, ShardRouter::hash())
    };
    let mut fleet = ShardedSession::new(
        ClairvoyanceMode::Clairvoyant,
        make_packers(algo, inst, k),
        cfg,
    )
    .expect("session construction");
    for item in inst.items() {
        fleet.arrive(item).expect("arrive");
    }
    fleet.finish().expect("finish")
}

#[test]
fn telemetry_work_histograms_identical_across_worker_counts() {
    let inst = instance();
    for algo in ["ff", "cbdt"] {
        for k in [1usize, 4] {
            let baseline = run_telemetry(&inst, algo, k, Some(1), 1);
            let base = baseline.telemetry.as_ref().expect("telemetry collected");
            assert!(base.work.candidates.count() > 0, "histograms populated");
            for threads in [Some(2), None] {
                for batch in [1usize, 4096] {
                    let other = run_telemetry(&inst, algo, k, threads, batch);
                    let tel = other.telemetry.as_ref().expect("telemetry collected");
                    let ctx = format!("{algo} k={k} threads={threads:?} batch={batch}");
                    assert_eq!(base.work, tel.work, "{ctx}: fleet work histograms");
                    for (sa, sb) in baseline.slices.iter().zip(&other.slices) {
                        let (ta, tb) = (
                            sa.telemetry.as_ref().expect("slice telemetry"),
                            sb.telemetry.as_ref().expect("slice telemetry"),
                        );
                        assert_eq!(ta.work, tb.work, "{ctx}: shard {} work", sa.shard);
                    }
                }
            }
        }
    }
}

#[test]
fn telemetry_spans_form_a_stitched_tree() {
    let inst = instance();
    let report = run_telemetry(&inst, "ff", 4, Some(2), 256);
    let tel = report.telemetry.as_ref().expect("telemetry collected");
    let spans = &tel.spans;
    let roots: Vec<_> = spans.iter().filter(|s| s.name == "stream").collect();
    assert_eq!(roots.len(), 1, "one root span");
    assert!(roots[0].dur_ns > 0, "root span closed");
    let flushes = spans.iter().filter(|s| s.name == "flush").count();
    assert!(flushes >= 1, "at least the final flush");
    let batches: Vec<_> = spans.iter().filter(|s| s.name == "batch").collect();
    assert!(!batches.is_empty(), "workers recorded batch spans");
    // Every batch span must have been reparented under a flush span
    // with the same sequence number.
    for b in &batches {
        let parent = b.parent.expect("batch spans reparented");
        let p = spans
            .iter()
            .find(|s| s.id == parent)
            .expect("parent exists");
        assert_eq!(p.name, "flush");
        assert_eq!(p.seq, b.seq, "stitched by sequence");
    }
    assert!(
        spans.iter().any(|s| s.name == "merge"),
        "merge span recorded"
    );
    assert!(
        batches.iter().all(|s| s.track >= 1),
        "worker spans on worker tracks"
    );
    // Run-side wall histograms exist for this run (never merged).
    assert!(tel.run_combined.batch_items.count() > 0);
    assert_eq!(
        tel.run_combined.merge_ns.count(),
        1,
        "exactly one merge timing"
    );
}
