//! Injectable IO failpoints for durability torture tests.
//!
//! Every durability-critical IO operation in the tree (WAL appends and
//! fsyncs, checkpoint writes, renames, directory syncs, prunes) calls
//! [`io_op`] with a static point name *before* touching the filesystem.
//! Two independent arming mechanisms ride on that hook:
//!
//! * **Thread-local error injection** — [`fail_from`] arms the calling
//!   thread so that its `n`-th and every later IO op returns an injected
//!   [`std::io::Error`] instead of running. This is how the in-process
//!   crash-point sweep walks a service through "the disk died at op
//!   *k*" for every *k*: the driver thread owns both the service calls
//!   and the armed state, so parallel tests never interfere.
//! * **Process-global abort** — setting the `DBP_CRASH_AT_IO`
//!   environment variable to `n` before the process starts makes the
//!   `n`-th IO op (counted across *all* threads) call
//!   [`std::process::abort`]. This is the subprocess kill-at-nth-io
//!   mode: a real SIGABRT mid-write, with no destructors and no flush,
//!   which is as close to `kill -9` as a test can schedule
//!   deterministically.
//!
//! When neither mechanism is armed the hook is two relaxed counter
//! bumps — cheap enough to leave compiled into release builds, which is
//! the point: the torture harness exercises the *same* binary the
//! benchmarks measure.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// IO ops counted process-wide (all threads), for the abort mode.
static GLOBAL_OPS: AtomicU64 = AtomicU64::new(0);

/// Parsed `DBP_CRASH_AT_IO` value, read once.
static CRASH_AT: OnceLock<Option<u64>> = OnceLock::new();

thread_local! {
    /// IO ops performed by this thread since the last [`reset_thread`].
    static THREAD_OPS: Cell<u64> = const { Cell::new(0) };
    /// When set, thread ops numbered `>= n` (1-based) fail.
    static FAIL_FROM: Cell<Option<u64>> = const { Cell::new(None) };
}

fn crash_at() -> Option<u64> {
    *CRASH_AT.get_or_init(|| {
        std::env::var("DBP_CRASH_AT_IO")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|n| *n > 0)
    })
}

/// The failpoint hook. Call with a static point name immediately before
/// a durability-critical filesystem operation; propagate the error as if
/// the operation itself had failed.
pub fn io_op(point: &'static str) -> std::io::Result<()> {
    let global = GLOBAL_OPS.fetch_add(1, Ordering::Relaxed) + 1;
    if let Some(n) = crash_at() {
        if global >= n {
            eprintln!("dbp-failpoint: aborting at io op {global} (point {point:?})");
            std::process::abort();
        }
    }
    let op = THREAD_OPS.with(|c| {
        let v = c.get() + 1;
        c.set(v);
        v
    });
    if let Some(n) = FAIL_FROM.with(Cell::get) {
        if op >= n {
            return Err(std::io::Error::other(format!(
                "injected failpoint {point:?} at io op {op}"
            )));
        }
    }
    Ok(())
}

/// Arms the calling thread: its `n`-th (1-based) and every later IO op
/// fails until [`reset_thread`]. `n = 1` fails everything.
pub fn fail_from(n: u64) {
    FAIL_FROM.with(|c| c.set(Some(n.max(1))));
}

/// Disarms injection on the calling thread and restarts its op counter.
pub fn reset_thread() {
    FAIL_FROM.with(|c| c.set(None));
    THREAD_OPS.with(|c| c.set(0));
}

/// IO ops performed by the calling thread since the last reset — the
/// torture sweep's crash-point space.
pub fn thread_ops() -> u64 {
    THREAD_OPS.with(Cell::get)
}

/// IO ops performed process-wide since start; mirrors what the
/// `DBP_CRASH_AT_IO` abort mode counts against.
pub fn global_ops() -> u64 {
    GLOBAL_OPS.load(Ordering::Relaxed)
}

/// Disarms the calling thread on drop — keeps a panicking torture case
/// from leaking an armed failpoint into the next test on the thread.
pub struct FailGuard;

impl FailGuard {
    /// Resets the thread counter and arms failure from op `n`.
    pub fn fail_from(n: u64) -> FailGuard {
        reset_thread();
        fail_from(n);
        FailGuard
    }
}

impl Drop for FailGuard {
    fn drop(&mut self) {
        reset_thread();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_ops_succeed_and_count() {
        reset_thread();
        assert!(io_op("a").is_ok());
        assert!(io_op("b").is_ok());
        assert_eq!(thread_ops(), 2);
        assert!(global_ops() >= 2);
    }

    #[test]
    fn armed_thread_fails_from_n_onward() {
        let _g = FailGuard::fail_from(3);
        assert!(io_op("one").is_ok());
        assert!(io_op("two").is_ok());
        let err = io_op("three").unwrap_err();
        assert!(err.to_string().contains("injected failpoint"));
        assert!(err.to_string().contains("three"));
        assert!(io_op("four").is_err(), "stays failed until reset");
        drop(_g);
        reset_thread();
        assert!(io_op("five").is_ok(), "guard drop disarms");
        reset_thread();
    }

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _g = FailGuard::fail_from(1);
            assert!(io_op("x").is_err());
        }
        assert!(io_op("y").is_ok());
        reset_thread();
    }
}
