//! Seeded fault plans and recovery/admission policies.
//!
//! A [`FaultPlan`] is a deterministic, time-ordered list of
//! [`FaultEvent`]s replayed against a live session by
//! [`crate::chaos::run_chaos`]. Determinism is load-bearing: the audit
//! chaos family shrinks counterexamples by re-running the same plan on
//! smaller instances, which only works if the plan is a pure function of
//! its seed.

use dbp_core::Time;

/// What a single fault does to the fleet when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Kill up to `count` servers picked pseudo-randomly (from the plan
    /// seed and the fault's index) among the bins open at fire time —
    /// the cloud spot-revocation model.
    SpotRevocation {
        /// How many servers to revoke (clamped to the open fleet).
        count: usize,
    },
    /// Kill every open server — a whole-fleet crash.
    Crash,
    /// Kill every open server on one rack, with servers assigned to
    /// racks round-robin by bin id (`bin.id % racks == rack`) — the
    /// correlated-failure model.
    RackFailure {
        /// The failing rack index, in `0..racks`.
        rack: u32,
        /// Total number of racks (must be ≥ 1).
        racks: u32,
    },
}

/// One fault at one instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: Time,
    /// What it does.
    pub kind: FaultKind,
}

/// A deterministic, time-ordered fault schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for victim selection inside [`FaultKind::SpotRevocation`].
    pub seed: u64,
    /// The faults, sorted by fire time.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan from explicit events (sorted by time; order among
    /// same-time events is preserved).
    pub fn new(seed: u64, mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.at);
        FaultPlan { seed, events }
    }

    /// The empty plan (chaos runner degenerates to a plain run).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// A seeded plan of `faults` events spread over `[0, horizon)`:
    /// mostly single spot revocations, with occasional rack failures and
    /// (rarely) a crash, all derived from `seed`.
    pub fn seeded(seed: u64, horizon: Time, faults: usize) -> FaultPlan {
        let horizon = horizon.max(1);
        let mut events = Vec::with_capacity(faults);
        for i in 0..faults {
            let at = (mix(seed, 2 * i as u64) % horizon as u64) as Time;
            let roll = mix(seed, 2 * i as u64 + 1);
            let kind = match roll % 10 {
                0 => FaultKind::Crash,
                1 | 2 => FaultKind::RackFailure {
                    rack: ((roll >> 8) % 4) as u32,
                    racks: 4,
                },
                _ => FaultKind::SpotRevocation {
                    count: 1 + ((roll >> 8) % 2) as usize,
                },
            };
            events.push(FaultEvent { at, kind });
        }
        FaultPlan::new(seed, events)
    }
}

/// What happens to a job displaced by a server failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Resubmit at the failure instant, with no retry limit.
    Immediate,
    /// Capped exponential backoff: retry `k` (1-based) is resubmitted
    /// `min(base · 2^(k−1), cap)` ticks after the failure; the job is
    /// dropped once `max_retries` retries have been consumed.
    Backoff {
        /// Delay of the first retry, in ticks (≥ 0).
        base: i64,
        /// Upper bound on any single delay, in ticks.
        cap: i64,
        /// Retries allowed before the job is dropped.
        max_retries: u32,
    },
    /// Resubmit immediately, but drop the job once `max_retries` retries
    /// have been consumed.
    DropAfter {
        /// Retries allowed before the job is dropped.
        max_retries: u32,
    },
}

impl RecoveryPolicy {
    /// When retry number `retry` (1-based) of a job displaced at `at`
    /// should be resubmitted, or `None` if the policy drops it instead.
    pub fn resubmit_at(&self, at: Time, retry: u32) -> Option<Time> {
        match *self {
            RecoveryPolicy::Immediate => Some(at),
            RecoveryPolicy::Backoff {
                base,
                cap,
                max_retries,
            } => {
                if retry > max_retries {
                    return None;
                }
                // 2^(k−1) overflows i64 from k = 64 up (and goes negative
                // at exactly 63); the doubling is monotone, so past 62 the
                // cap has certainly been reached.
                let delay = if retry > 62 {
                    cap
                } else {
                    base.saturating_mul(1i64 << (retry - 1)).min(cap)
                }
                .max(0);
                Some(at.saturating_add(delay))
            }
            RecoveryPolicy::DropAfter { max_retries } => {
                if retry > max_retries {
                    None
                } else {
                    Some(at)
                }
            }
        }
    }
}

/// What happens to an arrival shed at the fleet cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Queue the job and re-present it when a server next frees up;
    /// reject only if no open server will ever depart.
    Queue,
    /// Reject the job outright.
    Reject,
}

/// SplitMix64 over `(seed, n)` — the crate's one source of randomness,
/// shared by victim selection and plan generation so a `(seed, index)`
/// pair always means the same draw.
pub(crate) fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed ^ (n.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_sort_and_are_deterministic() {
        let p = FaultPlan::new(
            1,
            vec![
                FaultEvent {
                    at: 9,
                    kind: FaultKind::Crash,
                },
                FaultEvent {
                    at: 3,
                    kind: FaultKind::SpotRevocation { count: 1 },
                },
            ],
        );
        assert_eq!(p.events[0].at, 3);
        let a = FaultPlan::seeded(7, 100, 5);
        let b = FaultPlan::seeded(7, 100, 5);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 5);
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.events.iter().all(|e| (0..100).contains(&e.at)));
        assert_ne!(a, FaultPlan::seeded(8, 100, 5));
    }

    #[test]
    fn backoff_schedule_doubles_then_caps_then_drops() {
        let p = RecoveryPolicy::Backoff {
            base: 4,
            cap: 10,
            max_retries: 4,
        };
        assert_eq!(p.resubmit_at(100, 1), Some(104));
        assert_eq!(p.resubmit_at(100, 2), Some(108));
        assert_eq!(p.resubmit_at(100, 3), Some(110), "capped at 10");
        assert_eq!(p.resubmit_at(100, 4), Some(110));
        assert_eq!(p.resubmit_at(100, 5), None, "budget exhausted");
        // Huge retry numbers must not overflow the shift.
        let wide = RecoveryPolicy::Backoff {
            base: 1,
            cap: i64::MAX,
            max_retries: u32::MAX,
        };
        assert!(wide.resubmit_at(0, 200).is_some());
    }

    #[test]
    fn immediate_and_drop_after() {
        assert_eq!(RecoveryPolicy::Immediate.resubmit_at(5, 999), Some(5));
        let d = RecoveryPolicy::DropAfter { max_retries: 2 };
        assert_eq!(d.resubmit_at(5, 1), Some(5));
        assert_eq!(d.resubmit_at(5, 2), Some(5));
        assert_eq!(d.resubmit_at(5, 3), None);
    }
}
